"""Plan persistence: save an optimized plan, reload it later.

The §5.4 Remark's workflow: "schedule search and evaluation need to be done
only once for a given program template; should the parameters change, we can
simply plug the new values in".  A saved plan stores the schedule (affine
rows per statement) and the labels of the realized sharing opportunities;
loading re-attaches it to a freshly analyzed program and re-costs it for the
current parameters — nothing numeric is trusted from the file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping

from .analysis import ProgramAnalysis
from .exceptions import ReproError
from .ir import AffineExpr, Program, Schedule
from .optimizer import IOModel, evaluate_plan
from .optimizer.plan import Plan

__all__ = ["schedule_to_dict", "schedule_from_dict", "save_plan", "load_plan"]


def schedule_to_dict(schedule: Schedule) -> dict:
    """JSON-safe encoding: per statement, rows as {var: coeff} + const."""
    out = {}
    for name, rows in schedule.rows.items():
        out[name] = [{"coeffs": {v: str(c) for v, c in r.coeffs.items()},
                      "const": str(r.const)} for r in rows]
    return {"rows": out, "meta": {k: v for k, v in schedule.meta.items()
                                  if isinstance(v, (str, int, float, list))}}


def schedule_from_dict(data: dict) -> Schedule:
    from fractions import Fraction
    rows = {}
    for name, rs in data["rows"].items():
        rows[name] = [AffineExpr({v: Fraction(c) for v, c in r["coeffs"].items()},
                                 Fraction(r["const"])) for r in rs]
    return Schedule(rows, meta=dict(data.get("meta", {})))


def save_plan(path: str | Path, plan: Plan, program: Program) -> None:
    """Write the plan's schedule + realized-opportunity labels to JSON."""
    payload = {
        "format": "repro-plan-v1",
        "program": program.name,
        "realized": plan.realized_labels,
        "schedule": schedule_to_dict(plan.schedule),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_plan(path: str | Path, program: Program, analysis: ProgramAnalysis,
              params: Mapping[str, int],
              io_model: IOModel | None = None) -> Plan:
    """Reload a saved plan against a (re-)analyzed program and re-cost it.

    The realized opportunities are looked up by label in ``analysis``; a
    label that no longer resolves (the program changed) raises.  Costs are
    recomputed for ``params`` — stale numbers cannot leak in.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-plan-v1":
        raise ReproError(f"{path}: not a saved plan")
    if payload.get("program") != program.name:
        raise ReproError(
            f"{path}: saved for program {payload.get('program')!r}, "
            f"got {program.name!r}")
    schedule = schedule_from_dict(payload["schedule"])
    for stmt in program.statements:
        if stmt.name not in schedule.rows:
            raise ReproError(f"{path}: no schedule rows for statement {stmt.name}")
    realized = [analysis.opportunity(label) for label in payload["realized"]]
    cost = evaluate_plan(program, params, schedule, realized, io_model)
    return Plan(-1, schedule, realized, cost)
