"""Reference evaluator: dense in-memory interpretation of a program.

Runs every statement instance in the original textual order directly on
dense numpy matrices — no storage, no buffer pool, no optimizer.  Plan
executions are verified against this to prove that schedule transformations
preserve program semantics (the "legality" the optimizer promises).
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..exceptions import ExecutionError
from ..ir import ArrayKind, Program, Schedule
from .kernels import run_kernel

__all__ = ["reference_outputs"]


def reference_outputs(program: Program, params: Mapping[str, int],
                      inputs: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Dense results of every OUTPUT (and intermediate) array."""
    mats: dict[str, np.ndarray] = {}
    for name, arr in program.arrays.items():
        shape = arr.shape_elems(params)
        if arr.kind is ArrayKind.INPUT:
            if name not in inputs:
                raise ExecutionError(f"missing input matrix {name!r}")
            if inputs[name].shape != shape:
                raise ExecutionError(
                    f"input {name}: shape {inputs[name].shape} != {shape}")
            mats[name] = np.array(inputs[name], dtype=np.float64)
        else:
            mats[name] = np.zeros(shape)

    schedule = Schedule.original(program)
    instances = []
    for stmt in program.statements:
        for point in stmt.instances(params):
            instances.append((schedule.time_vector(stmt, point, params), stmt, point))
    instances.sort(key=lambda t: _padded(t[0]))

    for _, stmt, point in instances:
        reads = []
        for access in stmt.reads:
            if not access.guard_holds(point, params):
                continue
            reads.append(_block_view(mats, access, point, params).copy())
        write = stmt.write
        if write is None:
            continue
        out_shape = write.array.block_shape
        result = run_kernel(stmt.kernel, reads, out_shape, stmt.kernel_args)
        _block_view(mats, write, point, params)[...] = result

    return {name: mats[name] for name, arr in program.arrays.items()
            if arr.kind is not ArrayKind.INPUT}


def _block_view(mats, access, point, params) -> np.ndarray:
    coords = access.block_at(point, params)
    shape = access.array.block_shape
    mat = mats[access.array.name]
    slices = tuple(slice(c * s, (c + 1) * s) for c, s in zip(coords, shape))
    return mat[slices]


def _padded(time_vec):
    # Original 2d+1 times have different lengths across statements; tuple
    # comparison on the shared prefix is decided by beta constants.
    return tuple(time_vec)
