"""In-core block kernels (the GotoBLAS2 role, via numpy's BLAS).

A kernel computes one statement instance's write block from its read blocks.
Read blocks arrive positionally, in the order the statement declared its
reads; an optional trailing *accumulator* read (the guarded self-read of
``+=`` statements) is absent on the first iteration, in which case the
kernel starts from zeros.

Registry keys are the ``kernel=`` strings used by the operator library and
the program builder.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..exceptions import ExecutionError

__all__ = ["KERNELS", "run_kernel", "register_kernel"]

Kernel = Callable[[Sequence[np.ndarray], tuple[int, ...], dict], np.ndarray]

KERNELS: dict[str, Kernel] = {}


def register_kernel(name: str):
    def wrap(fn: Kernel) -> Kernel:
        KERNELS[name] = fn
        return fn
    return wrap


def run_kernel(name: str, reads: Sequence[np.ndarray],
               out_shape: tuple[int, ...],
               args: dict | None = None) -> np.ndarray:
    try:
        fn = KERNELS[name]
    except KeyError:
        raise ExecutionError(f"unknown kernel {name!r}") from None
    result = fn(reads, out_shape, args or {})
    if result.shape != out_shape:
        raise ExecutionError(
            f"kernel {name}: produced shape {result.shape}, expected {out_shape}")
    return result


def _acc(reads: Sequence[np.ndarray], expected_operands: int,
         out_shape: tuple[int, ...]) -> np.ndarray:
    """The accumulator block: the optional read beyond the fixed operands."""
    if len(reads) == expected_operands + 1:
        return reads[expected_operands]
    if len(reads) == expected_operands:
        return np.zeros(out_shape)
    raise ExecutionError(
        f"kernel got {len(reads)} reads, expected {expected_operands} or "
        f"{expected_operands + 1}")


@register_kernel("nop")
def _nop(reads, out_shape, args):
    return np.zeros(out_shape)


@register_kernel("copy")
def _copy(reads, out_shape, args):
    if len(reads) != 1:
        raise ExecutionError(f"copy expects 1 read, got {len(reads)}")
    return reads[0].copy()


@register_kernel("add")
def _add(reads, out_shape, args):
    if len(reads) != 2:
        raise ExecutionError(f"add expects 2 reads, got {len(reads)}")
    return reads[0] + reads[1]


@register_kernel("sub")
def _sub(reads, out_shape, args):
    if len(reads) != 2:
        raise ExecutionError(f"sub expects 2 reads, got {len(reads)}")
    return reads[0] - reads[1]


@register_kernel("scale")
def _scale(reads, out_shape, args):
    """reads: [block, 1x1 scale factor block]"""
    if len(reads) != 2:
        raise ExecutionError(f"scale expects 2 reads, got {len(reads)}")
    return reads[0] * reads[1][0, 0]


@register_kernel("copy_acc")
def _copy_acc(reads, out_shape, args):
    """X += A : accumulate a single operand."""
    return _acc(reads, 1, out_shape) + reads[0]


@register_kernel("add_acc")
def _add_acc(reads, out_shape, args):
    """X += A + B : accumulate a two-operand sum."""
    return _acc(reads, 2, out_shape) + reads[0] + reads[1]


@register_kernel("gemm_nn")
def _gemm_nn(reads, out_shape, args):
    return _acc(reads, 2, out_shape) + reads[0] @ reads[1]


# The fixture / operator-library alias for the classic accumulating matmul.
KERNELS["matmul_acc"] = KERNELS["gemm_nn"]


@register_kernel("gemm_tn")
def _gemm_tn(reads, out_shape, args):
    return _acc(reads, 2, out_shape) + reads[0].T @ reads[1]


@register_kernel("gemm_nt")
def _gemm_nt(reads, out_shape, args):
    return _acc(reads, 2, out_shape) + reads[0] @ reads[1].T


@register_kernel("syrk_tn")
def _syrk_tn(reads, out_shape, args):
    """X'X accumulation with a single read of the X block (BLAS SYRK-style)."""
    return _acc(reads, 1, out_shape) + reads[0].T @ reads[0]


@register_kernel("inverse")
def _inverse(reads, out_shape, args):
    if len(reads) != 1:
        raise ExecutionError(f"inverse expects 1 read, got {len(reads)}")
    return np.linalg.inv(reads[0])


@register_kernel("colsumsq_acc")
def _colsumsq_acc(reads, out_shape, args):
    """Residual sum of squares per column, accumulated into a 1 x k block."""
    return _acc(reads, 1, out_shape) + (reads[0] ** 2).sum(axis=0, keepdims=True)
