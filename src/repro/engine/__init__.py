"""Execution engine: runs optimizer plans against real (simulated-timing)
storage with numpy block kernels.

Public surface:

* :func:`run_program` — storage setup + plan execution + output readback;
* :func:`execute_plan` — the inner loop over an :class:`ExecutablePlan`;
* :class:`ExecutionReport` — measured I/O, simulated seconds, CPU time;
* :func:`reference_outputs` — dense in-memory oracle for verification;
* ``KERNELS`` / :func:`register_kernel` — the block-kernel registry.
"""

from .executor import ExecutionReport, execute_plan, run_program
from .kernels import KERNELS, register_kernel, run_kernel
from .reference import reference_outputs

__all__ = [
    "run_program",
    "execute_plan",
    "ExecutionReport",
    "reference_outputs",
    "KERNELS",
    "register_kernel",
    "run_kernel",
]
