"""Execution engine: runs optimizer plans against real (simulated-timing)
storage with numpy block kernels.

Public surface:

* :func:`run_program` — storage setup + plan execution + output readback,
  with optional fault injection, checkpointing, and resume;
* :func:`execute_plan` — the inner loop over an :class:`ExecutablePlan`;
* :class:`ExecutionReport` — measured I/O, simulated seconds, CPU time;
* :class:`ExecutionJournal` / :func:`plan_fingerprint` — the instance-level
  checkpoint log behind ``resume=True``;
* :class:`PrefetchPipeline` / :class:`PrefetchStats` — the plan-driven
  I/O–compute overlap behind ``prefetch_depth=N``;
* :func:`reference_outputs` — dense in-memory oracle for verification;
* ``KERNELS`` / :func:`register_kernel` — the block-kernel registry.
"""

from .executor import ExecutionReport, execute_plan, run_program
from .journal import ExecutionJournal, plan_fingerprint
from .kernels import KERNELS, register_kernel, run_kernel
from .prefetch import PrefetchPipeline, PrefetchStats
from .reference import reference_outputs

__all__ = [
    "run_program",
    "execute_plan",
    "ExecutionReport",
    "ExecutionJournal",
    "plan_fingerprint",
    "PrefetchPipeline",
    "PrefetchStats",
    "reference_outputs",
    "KERNELS",
    "register_kernel",
    "run_kernel",
]
