"""Plan-driven prefetch pipeline: I/O–compute overlap (ROADMAP item 2).

The chosen plan is a perfect oracle of the future block-access sequence
(:meth:`~repro.codegen.exec_plan.ExecutablePlan.read_sequence`), so the
engine can walk it *ahead* of the compute loop: background reader threads
claim upcoming disk READs, batch contiguous on-disk runs into single
seek+transfer ops, and stage the blocks into the buffer pool pinned — LRU
pressure cannot drop them between staging and consumption.  The compute
loop then consumes staged blocks instead of blocking on disk, pushing wall
clock from ``io + compute`` toward ``max(io, compute)`` — the RIOT-style
win the paper's access-pattern oracle makes safe.

Correctness rules the pipeline enforces:

* **Write barrier** — an item is claimable only once the last plan-ordered
  disk WRITE of its block has completed (``barrier <= watermark``, advanced
  by :meth:`PrefetchPipeline.progress`); reading earlier would stage stale
  bytes.
* **Back-pressure** — staged-but-unconsumed bytes never exceed
  ``budget_bytes`` (carved out of the memory cap by the caller), and at
  most ``depth`` items are in flight; an item too large for the whole
  budget is left to the main thread (``taken_by_main``).
* **Order** — claims and consumption both follow plan order, so the
  blocks staged are exactly the next ones the compute loop will ask for.
* **Failure attribution** — a read that fails (checksum exhaustion, fault
  beyond the retry budget) is recorded against its item and re-raised by
  :meth:`consume` on the exact access that would have performed the read
  serially; faults, checksum retries, and checkpoint/resume compose
  unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Sequence

from ..cancel import CancelToken, set_interrupt
from ..codegen.exec_plan import PrefetchItem
from ..exceptions import ExecutionError

__all__ = ["PrefetchPipeline", "PrefetchStats"]

# Item lifecycle.  PENDING -> CLAIMED -> STAGED -> CONSUMED is the happy
# path; PENDING -> TAKEN means the main thread performs the read serially
# (pipeline closed, item over budget, or compute caught up with the
# readers); CLAIMED -> FAILED stores the reader's exception for re-raise
# at consumption.
_PENDING, _CLAIMED, _STAGED, _TAKEN, _CONSUMED, _FAILED = range(6)


class PrefetchStats:
    """Counters describing one pipeline's run (``report.prefetch``)."""

    __slots__ = ("staged_blocks", "batched_runs", "batched_blocks",
                 "consumed_staged", "taken_by_main", "discarded", "failed",
                 "wait_seconds", "max_staged_bytes")

    def __init__(self):
        self.staged_blocks = 0      # blocks reader threads staged
        self.batched_runs = 0       # contiguous runs read as one op
        self.batched_blocks = 0     # blocks covered by those runs
        self.consumed_staged = 0    # staged blocks the compute loop used
        self.taken_by_main = 0      # reads the main thread did serially
        self.discarded = 0          # staged blocks dropped at close()
        self.failed = 0             # reads that raised in a reader thread
        self.wait_seconds = 0.0     # compute time spent waiting on readers
        self.max_staged_bytes = 0   # peak staged-but-unconsumed bytes

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}

    def __repr__(self) -> str:
        return (f"PrefetchStats(staged={self.staged_blocks}, "
                f"runs={self.batched_runs}x{self.batched_blocks}, "
                f"consumed={self.consumed_staged}, taken={self.taken_by_main}, "
                f"wait={self.wait_seconds:.3f}s)")


class PrefetchPipeline:
    """Background readers staging the plan's future READs into the pool.

    ``pool`` must be thread-safe (``thread_safe = True``); the executor
    wraps a plain :class:`~repro.storage.BufferPool` in
    :class:`~repro.storage.LockedPool` before constructing one of these.
    ``completed`` is the highest instance index already executed (``-1``
    for a fresh run; the resume boundary minus one on a resumed run).
    """

    def __init__(self, items: Sequence[PrefetchItem],
                 stores: Mapping[str, object], pool, *,
                 depth: int, budget_bytes: int | None = None,
                 workers: int = 1, io_stats=None, tracer=None,
                 completed: int = -1,
                 cancel: "CancelToken | None" = None):
        if depth < 1:
            raise ExecutionError(f"prefetch depth must be >= 1, got {depth}")
        if not getattr(pool, "thread_safe", False):
            raise ExecutionError(
                "prefetch pipeline needs a thread-safe pool (wrap plain "
                "BufferPool in LockedPool)")
        self._items = list(items)
        self._stores = stores
        self._pool = pool
        self._depth = depth
        self._budget = budget_bytes
        self._io_stats = io_stats
        self._tracer = tracer
        self._cancel = cancel
        self.stats = PrefetchStats()

        n = len(self._items)
        self._state = [_PENDING] * n
        self._errors: dict[int, BaseException] = {}
        self._cursor = 0            # next item the compute loop consumes
        self._scan = 0              # next item readers consider claiming
        self._watermark = completed
        self._inflight = 0          # items CLAIMED or STAGED
        self._inflight_bytes = 0
        self._closing = False
        self._cond = threading.Condition()
        self._threads = [
            threading.Thread(target=self._reader_loop, daemon=True,
                             name=f"prefetch-{i}")
            for i in range(max(1, workers))]
        for t in self._threads:
            t.start()
        if cancel is not None:
            # Wake readers parked on the condition so they observe the
            # cancellation promptly instead of sleeping until close().
            cancel.subscribe(self._wake_all)

    def _wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()

    # -- geometry helpers ---------------------------------------------------

    @staticmethod
    def _nbytes(item: PrefetchItem) -> int:
        return item.access.access.array.block_bytes

    # -- reader side --------------------------------------------------------

    def _claimable(self, item: PrefetchItem, extra_items: int,
                   extra_bytes: int) -> bool:
        if item.barrier > self._watermark:
            return False
        if self._inflight + extra_items >= self._depth:
            return False
        nbytes = self._nbytes(item)
        if self._budget is not None and \
                self._inflight_bytes + extra_bytes + nbytes > self._budget:
            return False
        return True

    def _claim_locked(self) -> list[PrefetchItem] | None:
        """The next claimable run, or ``None`` if nothing is ready now.

        Advances ``_scan`` past settled items; an item too large to ever
        fit the budget is marked TAKEN (the main thread reads it serially,
        outside the staging budget).  A claimed run extends over strictly
        consecutive on-disk blocks of one array, bounded by depth, budget,
        and the write barrier.
        """
        items, state = self._items, self._state
        n = len(items)
        while self._scan < n and state[self._scan] != _PENDING:
            self._scan += 1
        while self._scan < n:
            head = items[self._scan]
            if self._budget is not None and self._nbytes(head) > self._budget:
                state[self._scan] = _TAKEN
                self._cond.notify_all()
                self._scan += 1
                continue
            if not self._claimable(head, 0, 0):
                return None
            run = [head]
            state[self._scan] = _CLAIMED
            self._scan += 1
            batched = hasattr(self._stores.get(
                head.access.access.array.name), "read_block_run")
            run_bytes = self._nbytes(head)
            while batched and self._scan < n:
                nxt = items[self._scan]
                if (state[self._scan] != _PENDING
                        or nxt.access.access.array.name
                        != head.access.access.array.name
                        or nxt.linear != run[-1].linear + 1
                        or not self._claimable(nxt, len(run), run_bytes)):
                    break
                run.append(nxt)
                state[self._scan] = _CLAIMED
                run_bytes += self._nbytes(nxt)
                self._scan += 1
            self._inflight += len(run)
            self._inflight_bytes += run_bytes
            self.stats.max_staged_bytes = max(self.stats.max_staged_bytes,
                                              self._inflight_bytes)
            return run
        return None

    def _reader_loop(self) -> None:
        # Retry backoffs inside this thread's disk reads observe the job's
        # cancellation; the thread dies with the pipeline, so no restore.
        if self._cancel is not None:
            set_interrupt(self._cancel.event)
        while True:
            with self._cond:
                run = None
                while run is None:
                    if self._closing or self._scan >= len(self._items):
                        return
                    if self._cancel is not None and self._cancel.cancelled:
                        # Cancellation checkpoint: claim nothing further.
                        # Already-claimed runs finish staging; close()
                        # discards whatever was never consumed.
                        return
                    run = self._claim_locked()
                    if run is None:
                        self._cond.wait()
            try:
                self._read_run(run)
            except BaseException as err:  # bookkeeping bug backstop
                with self._cond:
                    for item in run:
                        if self._state[item.seq] == _CLAIMED:
                            self._state[item.seq] = _FAILED
                            self._errors[item.seq] = err
                            self.stats.failed += 1
                            self._inflight -= 1
                            self._inflight_bytes -= self._nbytes(item)
                    self._closing = True
                    self._cond.notify_all()
                return

    def _read_run(self, run: list[PrefetchItem]) -> None:
        """Read and stage one claimed run; record per-item outcomes."""
        store = self._stores[run[0].access.access.array.name]
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("prefetch.stage", "engine",
                         array=run[0].access.access.array.name,
                         start_block=list(run[0].access.block),
                         blocks=len(run), seq=run[0].seq)
        try:
            blocks: list = [None] * len(run)
            extra = [0] * len(run)
            errors: list[BaseException | None] = [None] * len(run)
            batched = False
            if len(run) > 1:
                try:
                    blocks, extra = store.read_block_run(
                        run[0].access.block, len(run))
                    batched = True
                except Exception:
                    # A batched failure would surface on the run's *first*
                    # consuming access; re-read per item so the error lands
                    # on exactly the access serial execution would charge.
                    blocks = [None] * len(run)
                    extra = [0] * len(run)
            if not batched:
                for i, item in enumerate(run):
                    before = (self._io_stats.thread_value("read_bytes")
                              if self._io_stats is not None else 0)
                    try:
                        blocks[i] = store.read_block(item.access.block)
                    except Exception as err:
                        errors[i] = err
                        continue
                    if self._io_stats is not None:
                        extra[i] = (self._io_stats.thread_value("read_bytes")
                                    - before - self._nbytes(item))
            for i, item in enumerate(run):
                if errors[i] is None:
                    try:
                        self._pool.stage(item.block_key, blocks[i])
                    except Exception as err:
                        errors[i] = err
        finally:
            if tracer is not None:
                tracer.end()

        with self._cond:
            if batched:
                self.stats.batched_runs += 1
                self.stats.batched_blocks += len(run)
            for i, item in enumerate(run):
                if errors[i] is not None:
                    self._state[item.seq] = _FAILED
                    self._errors[item.seq] = errors[i]
                    self.stats.failed += 1
                    self._inflight -= 1
                    self._inflight_bytes -= self._nbytes(item)
                    # Stop claiming: the compute loop will abort on this
                    # access anyway, and further staging is wasted I/O.
                    self._closing = True
                else:
                    self._state[item.seq] = _STAGED
                    self.stats.staged_blocks += 1
                    if tracer is not None:
                        tracer.instant(
                            "exec.io", "engine",
                            stmt=item.access.access.statement.name,
                            array=item.access.access.array.name,
                            op="read",
                            bytes=self._nbytes(item) + extra[i])
            self._cond.notify_all()

    # -- compute side -------------------------------------------------------

    def progress(self, instance_index: int) -> None:
        """Instance ``instance_index`` completed: raise the write barrier."""
        with self._cond:
            if instance_index > self._watermark:
                self._watermark = instance_index
                self._cond.notify_all()

    def consume(self, key: tuple):
        """The staged block for the next planned READ, or ``None``.

        Must be called once per READ access in plan order with that
        access's block key.  Returns the pinned
        :class:`~repro.storage.BufferedBlock` when the pipeline staged the
        block (the stage pin converts to the consumer's pin atomically), or
        ``None`` when the main thread should read serially.  Re-raises a
        reader-thread failure here — on the access that consumes it.
        """
        with self._cond:
            if self._cursor >= len(self._items):
                raise ExecutionError(
                    f"prefetch consume({key}) past the end of the plan's "
                    f"read sequence")
            item = self._items[self._cursor]
            if item.block_key != key:
                raise ExecutionError(
                    f"prefetch consume order mismatch: plan expects "
                    f"{item.block_key} at #{item.seq}, engine asked for {key}")
            seq = self._cursor
            self._cursor += 1
            state = self._state
            if state[seq] == _CLAIMED:
                tracer = self._tracer
                if tracer is not None:
                    tracer.begin("prefetch.wait", "engine", seq=seq,
                                 array=item.access.access.array.name,
                                 block=list(item.access.block))
                t0 = time.perf_counter()
                try:
                    while state[seq] == _CLAIMED:
                        self._cond.wait()
                finally:
                    self.stats.wait_seconds += time.perf_counter() - t0
                    if tracer is not None:
                        tracer.end()
            if state[seq] in (_PENDING, _TAKEN):
                state[seq] = _TAKEN
                self.stats.taken_by_main += 1
                self._cond.notify_all()
                return None
            if state[seq] == _FAILED:
                err = self._errors.pop(seq)
                self._cond.notify_all()
                raise err
            assert state[seq] == _STAGED, state[seq]
            state[seq] = _CONSUMED
            self._inflight -= 1
            self._inflight_bytes -= self._nbytes(item)
            self.stats.consumed_staged += 1
            self._cond.notify_all()
        # Outside the condition: the pool serializes itself, and only this
        # (compute) thread consumes or discards stage marks.
        return self._pool.consume_staged(key, pin=1)

    # -- teardown -----------------------------------------------------------

    def close(self) -> None:
        """Stop the readers and discard staged-but-unconsumed blocks.

        Idempotent; safe after both normal completion and a mid-plan
        failure.  Discarded blocks came straight from disk, so dropping
        them loses nothing — a resumed run re-reads what it needs.
        """
        with self._cond:
            self._closing = True
            self._cond.notify_all()
        for t in self._threads:
            t.join()
        for seq in range(self._cursor, len(self._items)):
            if self._state[seq] == _STAGED:
                self._state[seq] = _CONSUMED
                if self._pool.discard_staged(self._items[seq].block_key):
                    self.stats.discarded += 1
        self._errors.clear()
