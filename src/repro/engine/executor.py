"""Execution engine: replays an :class:`ExecutablePlan` against real storage.

``execute_plan`` walks the plan's scheduled instances, serving every access
through the buffer pool exactly as annotated (READ from disk, REUSE from
memory, WRITE through, WRITE_SKIP memory-only), honouring pin directives so
blocks the optimizer promised to hold actually stay resident.

Two residency policies:

* ``plan_exact`` (default) — only plan-directed retention keeps blocks;
  everything unpinned is dropped after each instance.  Actual I/O then
  matches the optimizer's prediction byte for byte (the substance of the
  paper's Figures 3(b)/4(b)/5(b)/6(b)).
* opportunistic — classic LRU under the cap; actual I/O can only be lower.

``run_program`` is the one-call convenience: creates stores on a simulated
disk, loads inputs, executes, and reads outputs back for verification.
"""

from __future__ import annotations

import time
from typing import Mapping

import numpy as np

from ..codegen.exec_plan import ExecutablePlan, IOAction, build_executable_plan
from ..exceptions import ExecutionError
from ..ir import ArrayKind, Program
from ..optimizer.costing import IOModel
from ..optimizer.plan import Plan
from ..storage import BufferPool, DAFMatrix, IOStats, LABTree, SimulatedDisk
from .kernels import run_kernel

__all__ = ["ExecutionReport", "execute_plan", "run_program"]


class ExecutionReport:
    """What actually happened during one plan execution."""

    __slots__ = ("io", "simulated_io_seconds", "cpu_seconds", "wall_seconds",
                 "peak_memory_bytes", "pool_hits", "pool_misses", "instances")

    def __init__(self, io: IOStats, simulated_io_seconds: float,
                 cpu_seconds: float, wall_seconds: float,
                 peak_memory_bytes: int, pool_hits: int, pool_misses: int,
                 instances: int):
        self.io = io
        self.simulated_io_seconds = simulated_io_seconds
        self.cpu_seconds = cpu_seconds
        self.wall_seconds = wall_seconds
        self.peak_memory_bytes = peak_memory_bytes
        self.pool_hits = pool_hits
        self.pool_misses = pool_misses
        self.instances = instances

    @property
    def simulated_total_seconds(self) -> float:
        return self.simulated_io_seconds + self.cpu_seconds

    def __repr__(self) -> str:
        return (f"ExecutionReport(io={self.simulated_io_seconds:.2f}s sim, "
                f"cpu={self.cpu_seconds:.2f}s, read={self.io.read_bytes}B, "
                f"write={self.io.write_bytes}B, peak={self.peak_memory_bytes}B)")


def execute_plan(plan: ExecutablePlan, stores: Mapping[str, object],
                 disk: SimulatedDisk,
                 memory_cap_bytes: int | None = None,
                 plan_exact: bool = True) -> ExecutionReport:
    """Run an executable plan against open stores on ``disk``."""
    pool = BufferPool(memory_cap_bytes)
    start_stats = disk.stats.snapshot()
    cpu = 0.0
    t_wall = time.perf_counter()

    # Blocks whose newest version exists only in memory (WRITE_SKIP): the
    # on-disk copy is stale, so an opportunistic-mode REUSE fallback must
    # not silently re-read it.
    memory_only: set[tuple] = set()

    for inst in plan.instances:
        read_blocks: list[np.ndarray] = []
        touched: list[tuple] = []
        instance_pins: list[tuple] = []
        for pa in inst.reads:
            store = stores[pa.access.array.name]
            key = pa.block_key
            if pa.action is IOAction.REUSE:
                if not pool.contains(key):
                    if plan_exact:
                        raise ExecutionError(
                            f"plan bug: REUSE of non-resident block {key} at "
                            f"{inst.stmt.name}@{inst.point}")
                    if key in memory_only:
                        raise ExecutionError(
                            f"REUSE of evicted block {key} at "
                            f"{inst.stmt.name}@{inst.point}: its newest "
                            f"version was never written to disk "
                            f"(WRITE_SKIP), so the data is lost")
                    # Opportunistic LRU legally evicted a plan-retained
                    # block under a tight cap; the disk copy is current, so
                    # fall back to a counted re-read instead of crashing.
                    blk = pool.fetch(
                        key, loader=lambda s=store, b=pa.block: s.read_block(b))
                else:
                    blk = pool.fetch(key, loader=_no_loader(key))
            elif plan_exact:
                # READ is charged disk I/O even if incidentally resident:
                # the engine replays exactly what the optimizer costed.
                data = store.read_block(pa.block)
                blk = pool.put(key, data)
            else:
                # Opportunistic (LRU) mode: resident blocks are buffer hits.
                blk = pool.fetch(
                    key, loader=lambda s=store, b=pa.block: s.read_block(b))
            read_blocks.append(blk.data)
            touched.append(key)
            # Operands stay resident until the kernel has consumed them.
            pool.pin(key)
            instance_pins.append(key)
            for _ in range(pa.unpin_before):
                pool.unpin(key)
            for _ in range(pa.pin_after):
                pool.pin(key)

        if inst.write is not None:
            pa = inst.write
            store = stores[pa.access.array.name]
            key = pa.block_key
            out_shape = pa.access.array.block_shape
            t0 = time.perf_counter()
            result = run_kernel(inst.stmt.kernel, read_blocks, out_shape,
                                inst.stmt.kernel_args)
            cpu += time.perf_counter() - t0
            for _ in range(pa.unpin_before):
                pool.unpin(key)
            blk = pool.put(key, result)
            touched.append(key)
            if pa.action is IOAction.WRITE:
                store.write_block(pa.block, result)
                memory_only.discard(key)
            else:
                memory_only.add(key)
            for _ in range(pa.pin_after):
                pool.pin(key)

        for key in instance_pins:
            pool.unpin(key)
        if plan_exact:
            for key in touched:
                blk = pool._blocks.get(key)
                if blk is not None and blk.pins == 0:
                    pool.release(key)

    wall = time.perf_counter() - t_wall
    stats = disk.stats.since(start_stats)
    return ExecutionReport(stats, disk.io_model.seconds(stats.read_bytes,
                                                        stats.write_bytes),
                           cpu, wall, pool.peak_bytes, pool.hits, pool.misses,
                           len(plan.instances))


def _no_loader(key):
    def fail():
        raise ExecutionError(f"unexpected load of {key} during REUSE")
    return fail


def run_program(program: Program, params: Mapping[str, int], plan: Plan,
                workdir, inputs: Mapping[str, np.ndarray],
                io_model: IOModel | None = None,
                memory_cap_bytes: int | None = None,
                store_format: str = "daf",
                plan_exact: bool = True
                ) -> tuple[ExecutionReport, dict[str, np.ndarray]]:
    """Create storage, load inputs, execute, read back outputs.

    ``inputs`` maps input-array names to dense matrices of the full (scaled)
    shape.  Returns the execution report and the dense contents of every
    OUTPUT array.
    """
    factory = {"daf": DAFMatrix, "labtree": LABTree}.get(store_format)
    if factory is None:
        raise ExecutionError(f"unknown store format {store_format!r}")

    with SimulatedDisk(workdir, io_model or IOModel()) as disk:
        stores: dict[str, object] = {}
        for name, arr in program.arrays.items():
            store = factory.create(disk, name, arr.num_blocks(params),
                                   arr.block_shape)
            stores[name] = store
            if arr.kind is ArrayKind.INPUT:
                if name not in inputs:
                    raise ExecutionError(f"missing input matrix {name!r}")
                store.write_matrix(inputs[name], count=False)
            else:
                # Preallocate so unwritten regions read as zeros (DAF); for
                # LAB-trees blocks materialize on write.
                if isinstance(store, DAFMatrix):
                    store.write_matrix(
                        np.zeros(arr.shape_elems(params)), count=False)

        exec_plan = build_executable_plan(program, params, plan)
        report = execute_plan(exec_plan, stores, disk, memory_cap_bytes,
                              plan_exact)

        outputs = {name: stores[name].read_matrix(count=False)
                   for name, arr in program.arrays.items()
                   if arr.kind is ArrayKind.OUTPUT}
    return report, outputs
