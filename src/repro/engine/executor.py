"""Execution engine: replays an :class:`ExecutablePlan` against real storage.

``execute_plan`` walks the plan's scheduled instances, serving every access
through the buffer pool exactly as annotated (READ from disk, REUSE from
memory, WRITE through, WRITE_SKIP memory-only), honouring pin directives so
blocks the optimizer promised to hold actually stay resident.

Two residency policies:

* ``plan_exact`` (default) — only plan-directed retention keeps blocks;
  everything unpinned is dropped after each instance.  Actual I/O then
  matches the optimizer's prediction byte for byte (the substance of the
  paper's Figures 3(b)/4(b)/5(b)/6(b)).
* opportunistic — classic LRU under the cap; actual I/O can only be lower.

Fault tolerance: with a :class:`~repro.engine.journal.ExecutionJournal`
attached, every completed instance is checkpointed; ``resume=True`` replays
a partially completed plan from its last *consistent* instance — the
largest index from which execution can continue given that a crash empties
the buffer pool.  Blocks the plan holds across that boundary are re-warmed
from disk; if a held block's newest version was memory-only (WRITE_SKIP),
the resume point rewinds to the instance that produced it.

``run_program`` is the one-call convenience: creates (or, resuming,
reopens) stores on a simulated disk, loads inputs, executes, and reads
outputs back for verification.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from pathlib import Path
from typing import Mapping

import numpy as np

from ..cancel import CancelToken, current_interrupt, set_interrupt
from ..codegen.exec_plan import ExecutablePlan, IOAction, build_executable_plan
from ..exceptions import ExecutionError, StorageError
from ..ir import ArrayKind, Program
from ..obs import trace as obs_trace
from ..obs.validate import RESUME_STMT, CostValidation, validate_cost
from ..optimizer.costing import IOModel
from ..optimizer.plan import Plan
from ..storage import (BufferPool, DAFMatrix, FaultInjector, IOStats, LABTree,
                       LockedPool, RetryPolicy, SimulatedDisk, make_disk)
from .journal import ExecutionJournal, plan_fingerprint
from .kernels import run_kernel
from .prefetch import PrefetchPipeline, PrefetchStats

__all__ = ["ExecutionReport", "execute_plan", "run_program"]

JOURNAL_NAME = "execution.journal"


class ExecutionReport:
    """What actually happened during one plan execution."""

    __slots__ = ("io", "simulated_io_seconds", "cpu_seconds", "wall_seconds",
                 "peak_memory_bytes", "pool_hits", "pool_misses", "instances",
                 "resumed_from", "validation", "prefetch")

    def __init__(self, io: IOStats, simulated_io_seconds: float,
                 cpu_seconds: float, wall_seconds: float,
                 peak_memory_bytes: int, pool_hits: int, pool_misses: int,
                 instances: int, resumed_from: int = 0):
        self.io = io
        self.simulated_io_seconds = simulated_io_seconds
        self.cpu_seconds = cpu_seconds
        self.wall_seconds = wall_seconds
        self.peak_memory_bytes = peak_memory_bytes
        self.pool_hits = pool_hits
        self.pool_misses = pool_misses
        # Instances *executed in this run* (on a resumed run, strictly fewer
        # than the plan's total) and the index execution restarted from.
        self.instances = instances
        self.resumed_from = resumed_from
        # Filled by run_program(..., validate=...): the cost-model audit.
        self.validation: CostValidation | None = None
        # Filled by execute_plan(..., prefetch_depth=N): pipeline counters.
        self.prefetch: "PrefetchStats | None" = None

    @property
    def simulated_total_seconds(self) -> float:
        return self.simulated_io_seconds + self.cpu_seconds

    def __repr__(self) -> str:
        return (f"ExecutionReport(io={self.simulated_io_seconds:.2f}s sim, "
                f"cpu={self.cpu_seconds:.2f}s, read={self.io.read_bytes}B, "
                f"write={self.io.write_bytes}B, peak={self.peak_memory_bytes}B)")


def _dry_replay(plan: ExecutablePlan, upto: int, plan_exact: bool
                ) -> tuple[dict[tuple, int], set[tuple]]:
    """Replay the pool bookkeeping of instances ``[0, upto)`` without I/O.

    Returns ``(pins, memory_only)`` where ``pins`` maps every block key
    resident at the boundary to its pin count.  Mirrors the live loop's pin
    arithmetic exactly; in plan-exact mode a key is resident iff pinned, so
    the pins map *is* the residency set a resumed run must re-warm.
    """
    pins: dict[tuple, int] = {}
    memory_only: set[tuple] = set()
    for inst in plan.instances[:upto]:
        instance_pins: list[tuple] = []
        touched: list[tuple] = []
        for pa in inst.reads:
            key = pa.block_key
            pins.setdefault(key, 0)
            touched.append(key)
            pins[key] += 1
            instance_pins.append(key)
            pins[key] -= pa.unpin_before
            pins[key] += pa.pin_after
        if inst.write is not None:
            pa = inst.write
            key = pa.block_key
            pins.setdefault(key, 0)
            pins[key] -= pa.unpin_before
            touched.append(key)
            if pa.action is IOAction.WRITE:
                memory_only.discard(key)
            else:
                memory_only.add(key)
            pins[key] += pa.pin_after
        for key in instance_pins:
            pins[key] -= 1
        if plan_exact:
            for key in touched:
                if pins.get(key) == 0:
                    del pins[key]
    return pins, memory_only


def _last_write_index(plan: ExecutablePlan, key: tuple, before: int) -> int:
    for idx in range(before - 1, -1, -1):
        write = plan.instances[idx].write
        if write is not None and write.block_key == key:
            return idx
    return 0


def _resume_state(plan: ExecutablePlan, completed: int, plan_exact: bool
                  ) -> tuple[int, dict[tuple, int], set[tuple]]:
    """The last consistent resume point at or before ``completed``.

    A boundary is consistent when every block held across it has a current
    disk copy (re-warmable).  A held block whose newest version was
    WRITE_SKIP exists only in the crashed process's memory, so the resume
    point rewinds to the instance that produced it; rewinding can expose
    further memory-only dependencies, hence the fixpoint loop (monotonically
    decreasing, terminating at 0 = plain full re-execution).
    """
    r = completed
    while r > 0:
        pins, memory_only = _dry_replay(plan, r, plan_exact)
        stale = [k for k, p in pins.items() if p > 0 and k in memory_only]
        if not stale:
            return r, {k: p for k, p in pins.items() if p > 0}, memory_only
        r = min(_last_write_index(plan, k, r) for k in stale)
    return 0, {}, set()


def execute_plan(plan: ExecutablePlan, stores: Mapping[str, object],
                 disk: SimulatedDisk,
                 memory_cap_bytes: int | None = None,
                 plan_exact: bool = True,
                 journal: ExecutionJournal | None = None,
                 resume: bool = False,
                 pool: BufferPool | None = None,
                 prefetch_depth: int = 0,
                 prefetch_budget_bytes: int | None = None,
                 prefetch_workers: int = 1,
                 cancel: "CancelToken | None" = None) -> ExecutionReport:
    """Run an executable plan against open stores on ``disk``.

    ``pool`` injects an externally owned buffer pool (``memory_cap_bytes``
    is then ignored — the injected pool already enforces its own cap).
    This is how :mod:`repro.service` runs many concurrent queries over one
    shared :class:`~repro.storage.SharedBufferPool`: blocks another query
    loaded are hits here, and the pool-level statistics in the returned
    report then aggregate over every query sharing the pool.

    ``prefetch_depth`` > 0 overlaps I/O with compute: background reader
    threads stage up to that many upcoming READ blocks into the pool
    (see :class:`~repro.engine.prefetch.PrefetchPipeline`), bounded by
    ``prefetch_budget_bytes`` of staged-but-unconsumed data.  I/O
    attribution stays byte-exact: every disk read is traced against the
    statement×array of the access that consumes it, whether it was staged
    ahead or read inline.

    ``cancel`` attaches a :class:`~repro.cancel.CancelToken`: the loop
    checks it at every instance boundary (raising the token's typed
    :class:`~repro.exceptions.JobCancelled` /
    :class:`~repro.exceptions.DeadlineExceeded`), prefetch readers stop
    claiming, and retry backoffs are cut short — after which the normal
    ``finally`` teardown discards staged blocks and closes the journal,
    leaving a checkpointed run resumable.
    """
    if pool is None:
        pool = BufferPool(memory_cap_bytes)
    start_stats = disk.stats.snapshot()
    cpu = 0.0
    t_wall = time.perf_counter()

    # Traced I/O attribution: each planned access is measured as the delta
    # of the disk's counted byte totals around it, so checksum-healing
    # re-reads land on the access that needed them.  One `exec.io` instant
    # per non-zero access, keyed (stmt, array, op) — exactly the join key
    # cost validation uses.
    tracer = obs_trace.CURRENT
    io_stats = disk.stats

    def traced_io(fn, op, stmt_name, array_name):
        if tracer is None:
            return fn()
        field = "read_bytes" if op == "read" else "write_bytes"
        # Per-*thread* counters: prefetch reader threads bump the shared
        # totals concurrently, so a global before/after delta would tear.
        before = io_stats.thread_value(field)
        out = fn()
        delta = io_stats.thread_value(field) - before
        if delta:
            tracer.instant("exec.io", "engine", stmt=stmt_name,
                           array=array_name, op=op, bytes=delta)
        return out

    # Blocks whose newest version exists only in memory (WRITE_SKIP): the
    # on-disk copy is stale, so an opportunistic-mode REUSE fallback must
    # not silently re-read it.
    memory_only: set[tuple] = set()

    start_index = 0
    if resume and journal is not None:
        completed, journal_mem = journal.load()
        if completed:
            start_index, warm_pins, memory_only = _resume_state(
                plan, completed, plan_exact)
            if start_index == completed and memory_only != journal_mem:
                raise ExecutionError(
                    f"journal inconsistent with plan replay at instance "
                    f"{completed}: memory-only sets differ")
            # Re-warm every block held across the boundary; the fixpoint
            # above guarantees each has a current disk copy.  Pins are
            # applied atomically with the install so an injected shared
            # pool cannot evict the block in between.
            for key, npins in warm_pins.items():
                pool.put(key, traced_io(
                    lambda k=key: stores[k[0]].read_block(k[1]),
                    "read", RESUME_STMT, key[0]), pin=npins)
    if journal is not None:
        journal.start(resume=start_index > 0)

    # Plan-driven prefetch: readers walk the future READ sequence ahead of
    # the compute loop.  They need a thread-safe pool surface; a plain
    # private BufferPool gets the LockedPool adapter (same pool object
    # underneath, so stats and cap behave identically).
    pipeline = None
    if prefetch_depth:
        items = plan.read_sequence(start_index)
        if items:
            if not getattr(pool, "thread_safe", False):
                pool = LockedPool(pool)
            pipeline = PrefetchPipeline(
                items, stores, pool, depth=prefetch_depth,
                budget_bytes=prefetch_budget_bytes,
                workers=prefetch_workers, io_stats=io_stats, tracer=tracer,
                completed=start_index - 1, cancel=cancel)

    # Deep storage retry loops poll the thread-local interrupt: a cancelled
    # job's backoff sleeps return immediately instead of running out.
    prev_interrupt = current_interrupt()
    if cancel is not None:
        set_interrupt(cancel.event)
    try:
        for index in range(start_index, len(plan.instances)):
            if cancel is not None:
                cancel.check()
            inst = plan.instances[index]
            if tracer is not None:
                tracer.begin("exec.instance", "engine", index=index,
                             stmt=inst.stmt.name, point=list(inst.point))
            # The span must close even when a kernel or storage error aborts
            # the instance mid-body: a dangling begin corrupts the nesting
            # of every later span in the Chrome export.
            try:
                read_blocks: list[np.ndarray] = []
                touched: list[tuple] = []
                instance_pins: list[tuple] = []
                mem_add: list[tuple] = []
                mem_del: list[tuple] = []
                for pa in inst.reads:
                    store = stores[pa.access.array.name]
                    key = pa.block_key
                    if pa.action is IOAction.REUSE:
                        if plan_exact:
                            if not pool.contains(key):
                                raise ExecutionError(
                                    f"plan bug: REUSE of non-resident block {key} at "
                                    f"{inst.stmt.name}@{inst.point}")
                            blk = pool.fetch(key, loader=_no_loader(key), pin=1)
                        elif key in memory_only:
                            # The newest version never reached disk (WRITE_SKIP):
                            # a re-read would resurrect stale data, so eviction
                            # here is unrecoverable data loss.
                            if not pool.contains(key):
                                raise ExecutionError(
                                    f"REUSE of evicted block {key} at "
                                    f"{inst.stmt.name}@{inst.point}: its newest "
                                    f"version was never written to disk "
                                    f"(WRITE_SKIP), so the data is lost")
                            blk = pool.fetch(key, loader=_no_loader(key), pin=1)
                        else:
                            # Opportunistic LRU may legally evict a plan-retained
                            # block under a tight cap — and a *shared* pool may
                            # evict it between any residency check and the fetch —
                            # so fetch with a counted re-read fallback: a resident
                            # block is simply a hit and the loader never runs.
                            blk = traced_io(
                                lambda: pool.fetch(key, loader=lambda s=store,
                                                   b=pa.block: s.read_block(b),
                                                   pin=1),
                                "read", inst.stmt.name, pa.access.array.name)
                    else:
                        # READ action: ask the pipeline first — a staged
                        # block arrives pinned, its disk I/O already traced
                        # against this very access by the reader thread.
                        blk = (pipeline.consume(key)
                               if pipeline is not None else None)
                        if blk is None and plan_exact:
                            # READ is charged disk I/O even if incidentally
                            # resident: the engine replays exactly what the
                            # optimizer costed.
                            data = traced_io(
                                lambda s=store, b=pa.block: s.read_block(b),
                                "read", inst.stmt.name, pa.access.array.name)
                            blk = pool.put(key, data, pin=1)
                        elif blk is None:
                            # Opportunistic (LRU) mode: resident blocks are
                            # buffer hits.
                            blk = traced_io(
                                lambda: pool.fetch(key, loader=lambda s=store,
                                                   b=pa.block: s.read_block(b),
                                                   pin=1),
                                "read", inst.stmt.name, pa.access.array.name)
                    read_blocks.append(blk.data)
                    touched.append(key)
                    # Operands stay resident until the kernel has consumed them;
                    # the pin rode along atomically with the fetch/put above.
                    instance_pins.append(key)
                    for _ in range(pa.unpin_before):
                        pool.unpin(key)
                    for _ in range(pa.pin_after):
                        pool.pin(key)

                if inst.write is not None:
                    pa = inst.write
                    store = stores[pa.access.array.name]
                    key = pa.block_key
                    out_shape = pa.access.array.block_shape
                    t0 = time.perf_counter()
                    result = run_kernel(inst.stmt.kernel, read_blocks, out_shape,
                                        inst.stmt.kernel_args)
                    cpu += time.perf_counter() - t0
                    for _ in range(pa.unpin_before):
                        pool.unpin(key)
                    # Retention pins apply atomically with the install: a shared
                    # pool must not see the result unpinned in between.
                    pool.put(key, result, pin=pa.pin_after)
                    touched.append(key)
                    if pa.action is IOAction.WRITE:
                        traced_io(
                            lambda s=store, b=pa.block, r=result: s.write_block(b, r),
                            "write", inst.stmt.name, pa.access.array.name)
                        if key in memory_only:
                            memory_only.discard(key)
                            mem_del.append(key)
                    else:
                        if key not in memory_only:
                            memory_only.add(key)
                            mem_add.append(key)

                for key in instance_pins:
                    pool.unpin(key)
                if plan_exact:
                    for key in touched:
                        pool.release_if_unpinned(key)
                if journal is not None:
                    journal.append(index, mem_add, mem_del)
                if pipeline is not None:
                    # This instance's WRITE (if any) is durably on disk:
                    # readers blocked on it as a barrier may now proceed.
                    pipeline.progress(index)
            finally:
                if tracer is not None:
                    tracer.end()
    finally:
        if cancel is not None:
            set_interrupt(prev_interrupt)
        if pipeline is not None:
            pipeline.close()
        if journal is not None:
            journal.close()

    wall = time.perf_counter() - t_wall
    stats = disk.stats.since(start_stats)
    report = ExecutionReport(stats, disk.io_model.seconds(stats.read_bytes,
                                                          stats.write_bytes),
                             cpu, wall, pool.peak_bytes, pool.hits,
                             pool.misses, len(plan.instances) - start_index,
                             resumed_from=start_index)
    if pipeline is not None:
        report.prefetch = pipeline.stats
    return report


def _no_loader(key):
    def fail():
        raise ExecutionError(f"unexpected load of {key} during REUSE")
    return fail


def run_program(program: Program, params: Mapping[str, int], plan: Plan,
                workdir, inputs: Mapping[str, np.ndarray],
                io_model: IOModel | None = None,
                memory_cap_bytes: int | None = None,
                store_format: str = "daf",
                plan_exact: bool = True,
                faults: "FaultInjector | int | None" = None,
                retry: RetryPolicy | None = None,
                atomic_writes: bool | None = None,
                checkpoint: bool = False,
                resume: bool = False,
                tracer: "obs_trace.Tracer | None" = None,
                validate: "bool | float" = False,
                prefetch_depth: int = 0,
                prefetch_budget_bytes: int | None = None,
                io_pace: float = 0.0,
                shards: int = 1,
                stripe_bytes: int | None = None,
                pace_channels: int | None = None
                ) -> tuple[ExecutionReport, dict[str, np.ndarray]]:
    """Create storage, load inputs, execute, read back outputs.

    ``inputs`` maps input-array names to dense matrices of the full (scaled)
    shape.  Returns the execution report and the dense contents of every
    OUTPUT array.

    Observability:

    * ``tracer`` — scope this run onto the given trace bus (otherwise the
      globally installed tracer, if any, is used);
    * ``validate`` — audit the cost model: join the plan's predicted I/O
      against the traced actuals per statement and per array, attaching the
      :class:`~repro.obs.validate.CostValidation` as ``report.validation``.
      ``True`` audits byte-exact; a float is the relative byte tolerance.
      Needs an event-keeping tracer; one is created automatically when none
      is installed.

    Fault tolerance:

    * ``faults`` — a :class:`FaultInjector`, or an int seed for the default
      5 %-transient policy; injected faults are absorbed by the disk's
      ``retry`` policy (counted in ``report.io.retries``);
    * ``atomic_writes`` — undo-record protection for counted writes;
      defaults on whenever faults or checkpointing are in play;
    * ``checkpoint`` — journal every completed instance to
      ``<workdir>/execution.journal``;
    * ``resume`` — continue a previous checkpointed run in ``workdir``:
      interrupted writes are rolled back, stores are reopened (inputs are
      already on disk), and execution restarts from the last consistent
      instance.  Falls back to a fresh checkpointed run when no journal
      exists yet.

    I/O–compute overlap:

    * ``prefetch_depth`` — stage up to this many upcoming READ blocks on
      background reader threads (0 = serial, the default);
    * ``prefetch_budget_bytes`` — cap on staged-but-unconsumed bytes;
      defaults to the memory cap minus the plan's predicted peak residency
      (unbounded when no cap is set);
    * ``io_pace`` — scale real sleeps onto counted I/O (``pace`` of the
      :class:`SimulatedDisk`): 1.0 makes wall clock reflect the modeled
      disk, which is how the overlap benchmark measures hidden I/O time.

    Scale-out:

    * ``shards`` — stripe the run's stores across this many independent
      disks (:class:`~repro.storage.sharding.ShardedDisk`); 1 keeps the
      plain single disk.  ``faults`` may then be a sequence of per-shard
      injectors (``None`` entries allowed) to confine faults to a shard;
    * ``stripe_bytes`` — stripe unit for sharded runs;
    * ``pace_channels`` — cap concurrent paced transfers per disk/shard
      (``None`` = historical unbounded pacing).
    """
    factory = {"daf": DAFMatrix, "labtree": LABTree}.get(store_format)
    if factory is None:
        raise ExecutionError(f"unknown store format {store_format!r}")

    per_shard_injectors = None
    if isinstance(faults, (list, tuple)):
        per_shard_injectors = list(faults)
        injector = None
    else:
        injector = FaultInjector.transient(seed=faults) \
            if isinstance(faults, int) else faults
    if atomic_writes is None:
        atomic_writes = injector is not None \
            or per_shard_injectors is not None or checkpoint or resume
    workdir = Path(workdir)
    exec_plan = build_executable_plan(program, params, plan)
    journal = None
    if checkpoint or resume:
        journal = ExecutionJournal(workdir / JOURNAL_NAME,
                                   plan_fingerprint(exec_plan))
    resuming = resume and (workdir / JOURNAL_NAME).exists()

    want_validation = validate is not False
    tolerance = float(validate) if not isinstance(validate, bool) else 0.0
    eff_tracer = tracer if tracer is not None else obs_trace.CURRENT
    if eff_tracer is None and want_validation:
        # Validation joins against traced exec.io events, so it needs a bus;
        # a private in-memory one keeps the run's default footprint at zero.
        eff_tracer = obs_trace.Tracer()
    scope = obs_trace.use(eff_tracer) if eff_tracer is not obs_trace.CURRENT \
        else nullcontext()
    events_start = len(eff_tracer.events) if eff_tracer is not None else 0

    # Default prefetch budget: whatever headroom the memory cap leaves above
    # the plan's predicted peak residency.  Staged bytes then never push a
    # plan-exact run over the cap; an explicit budget overrides.
    if prefetch_depth and prefetch_budget_bytes is None \
            and memory_cap_bytes is not None:
        prefetch_budget_bytes = max(0, memory_cap_bytes
                                    - plan.cost.memory_bytes)

    model = io_model or IOModel()
    disk_kw: dict = {}
    if stripe_bytes is not None:
        disk_kw["stripe_bytes"] = stripe_bytes
    if per_shard_injectors is not None:
        if shards <= 1:
            raise ExecutionError(
                "per-shard fault injectors need shards > 1")
        disk_kw["fault_injectors"] = per_shard_injectors
    with scope, make_disk(workdir, shards, io_model=model, pace=io_pace,
                          pace_channels=pace_channels,
                          fault_injector=injector, retry=retry,
                          atomic_writes=atomic_writes, **disk_kw) as disk:
        stores: dict[str, object] = {}
        try:
            if resuming:
                # Roll interrupted writes back to their pre-write images
                # before any store opens a handle.
                disk.recover()
                for name in program.arrays:
                    stores[name] = factory.open(disk, name)
            else:
                for name, arr in program.arrays.items():
                    store = factory.create(disk, name, arr.num_blocks(params),
                                           arr.block_shape)
                    stores[name] = store
                    if arr.kind is ArrayKind.INPUT:
                        if name not in inputs:
                            raise ExecutionError(f"missing input matrix {name!r}")
                        store.write_matrix(inputs[name], count=False)
                    elif isinstance(store, DAFMatrix):
                        # Block-by-block zero fill: unwritten regions read as
                        # zeros without ever materializing the dense matrix
                        # (LAB-tree blocks materialize on first write).
                        store.preallocate()

            with obs_trace.span("run_program", "engine",
                                program=program.name, plan=plan.index,
                                plan_exact=plan_exact, resume=resuming):
                report = execute_plan(exec_plan, stores, disk,
                                      memory_cap_bytes, plan_exact,
                                      journal=journal, resume=resuming,
                                      prefetch_depth=prefetch_depth,
                                      prefetch_budget_bytes=prefetch_budget_bytes)

            outputs = {name: stores[name].read_matrix(count=False)
                       for name, arr in program.arrays.items()
                       if arr.kind is ArrayKind.OUTPUT}
        finally:
            # A kernel or storage error mid-plan must still leave the disk
            # context cleanly closeable: flush whatever store state exists
            # (best effort — the original exception stays the loud one).
            for store in stores.values():
                try:
                    store.close()
                except StorageError:
                    pass

    if want_validation:
        note = ""
        if not plan_exact:
            note = ("opportunistic LRU mode: actual I/O may legally "
                    "undershoot the plan-exact prediction")
        report.validation = validate_cost(
            exec_plan, eff_tracer.events[events_start:], io_model=model,
            tolerance=tolerance, retries=report.io.retries,
            checksum_failures=report.io.checksum_failures, note=note)
    return report, outputs
