"""Execution journal: instance-level checkpointing for ``execute_plan``.

A JSON-lines file alongside the stores.  The first line is a header binding
the journal to one executable plan (a fingerprint over every instance's
accesses and I/O actions); each subsequent line records one *completed*
instance index plus the delta it applied to the engine's ``memory_only``
set (blocks whose newest version exists only in memory after a WRITE_SKIP).

Append-or-nothing recovery discipline: a line is written only after the
instance's write reached the store, each append is flushed (optionally
fsynced), and a torn trailing line — the signature of a crash mid-append —
is ignored on load.  Re-executed instances after a resume legitimately
re-append their indices; the *last* valid line therefore names the most
recently completed instance.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from ..exceptions import ExecutionError

__all__ = ["ExecutionJournal", "plan_fingerprint"]

_VERSION = 1


def plan_fingerprint(plan) -> str:
    """Digest of an executable plan's instance sequence and I/O actions."""
    h = hashlib.sha1()
    for inst in plan.instances:
        write = inst.write
        h.update(repr((
            inst.stmt.name, tuple(inst.point),
            [(pa.access.array.name, pa.block, pa.action.value)
             for pa in inst.reads],
            (write.access.array.name, write.block, write.action.value)
            if write is not None else None,
        )).encode())
    return h.hexdigest()


def _encode_key(key: tuple) -> list:
    name, coords = key
    return [name, list(coords)]


def _decode_key(raw: list) -> tuple:
    return (raw[0], tuple(raw[1]))


class ExecutionJournal:
    """Append-only completion log for one plan execution."""

    def __init__(self, path: str | os.PathLike, fingerprint: str,
                 fsync: bool = False):
        self.path = Path(path)
        self.fingerprint = fingerprint
        self.fsync = fsync
        self._fh = None

    # -- reading -------------------------------------------------------------

    def load(self) -> tuple[int, set[tuple]]:
        """``(completed, memory_only)`` recorded by a previous run.

        ``completed`` is the count of contiguously completed instances (the
        last valid entry's index + 1); zero when the journal is absent or
        holds no entries.  Raises :class:`ExecutionError` if the journal
        belongs to a different plan.
        """
        if not self.path.exists():
            return 0, set()
        completed = 0
        memory_only: set[tuple] = set()
        header_seen = False
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn trailing append from a crash — stop here
                if not header_seen:
                    header_seen = True
                    if entry.get("version") != _VERSION:
                        raise ExecutionError(
                            f"{self.path}: unsupported journal version "
                            f"{entry.get('version')!r}")
                    if entry.get("fingerprint") != self.fingerprint:
                        raise ExecutionError(
                            f"{self.path}: journal belongs to a different "
                            f"plan (fingerprint mismatch)")
                    continue
                completed = entry["i"] + 1
                for raw in entry.get("mem_add", ()):
                    memory_only.add(_decode_key(raw))
                for raw in entry.get("mem_del", ()):
                    memory_only.discard(_decode_key(raw))
        return completed, memory_only

    # -- writing -------------------------------------------------------------

    def start(self, resume: bool = False) -> None:
        """Open for appending; a fresh (non-resume) start truncates."""
        self._fh = open(self.path, "a" if resume else "w", encoding="utf-8")
        if not resume:
            self._write({"version": _VERSION, "fingerprint": self.fingerprint})

    def append(self, index: int, mem_add: list[tuple],
               mem_del: list[tuple]) -> None:
        entry: dict = {"i": index}
        if mem_add:
            entry["mem_add"] = [_encode_key(k) for k in mem_add]
        if mem_del:
            entry["mem_del"] = [_encode_key(k) for k in mem_del]
        self._write(entry)

    def _write(self, obj: dict) -> None:
        if self._fh is None:
            raise ExecutionError("journal not started")
        self._fh.write(json.dumps(obj, separators=(",", ":")) + "\n")
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __repr__(self) -> str:
        return f"ExecutionJournal({self.path}, {self.fingerprint[:10]}...)"
