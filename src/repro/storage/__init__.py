"""Storage substrate: RIOTStore [26] formats + buffer manager + simulated disk.

Public surface:

* :class:`SimulatedDisk` / :class:`IOStats` — real files, byte-accurate
  accounting, bandwidth-model timing;
* :class:`DAFMatrix` — Directly Addressable File (dense blocked matrices);
* :class:`LABTree` — Linearized Array B-tree (sparse-capable B+-tree format);
* :class:`BlockLayout` — column-major block/element layout arithmetic;
* :class:`BufferPool` — explicitly capped memory with pinning (Section 4.2).
"""

from .blocks import BlockLayout
from .buffer import BufferedBlock, BufferPool
from .daf import DAFMatrix
from .disk import DiskFile, IOStats, SimulatedDisk
from .labtree import LABTree

__all__ = [
    "BlockLayout",
    "BufferPool",
    "BufferedBlock",
    "DAFMatrix",
    "LABTree",
    "SimulatedDisk",
    "DiskFile",
    "IOStats",
]
