"""Storage substrate: RIOTStore [26] formats + buffer manager + simulated disk.

Public surface:

* :class:`SimulatedDisk` / :class:`IOStats` — real files, byte-accurate
  accounting, bandwidth-model timing, bounded retry with backoff, and
  undo-record crash recovery;
* :class:`ShardedDisk` / :func:`make_disk` — the same surface striped
  across N independent shards with per-shard fault domains and parallel
  segment I/O (``repro.storage.sharding``);
* :class:`DAFMatrix` — Directly Addressable File (dense blocked matrices);
* :class:`LABTree` — Linearized Array B-tree (sparse-capable B+-tree format);
* :class:`BlockLayout` / :class:`BlockChecksums` — column-major layout
  arithmetic and the per-block checksum sidecar;
* :class:`BufferPool` — explicitly capped memory with pinning (Section 4.2);
* :class:`SharedBufferPool` — the thread-safe variant concurrent queries
  share (single lock, loader de-duplication, per-owner pin accounting);
* :class:`FaultInjector` / :class:`FaultPolicy` / :class:`RetryPolicy` —
  deterministic fault injection and the retry policy that absorbs it.
"""

from .blocks import BlockChecksums, BlockLayout, block_checksum
from .buffer import BufferedBlock, BufferPool, LockedPool, SharedBufferPool
from .daf import DAFMatrix
from .disk import DiskFile, IOStats, SimulatedDisk
from .faults import FaultInjector, FaultPolicy, InjectedFault, RetryPolicy
from .labtree import LABTree
from .sharding import DEFAULT_STRIPE_BYTES, ShardedDisk, ShardedFile, \
    make_disk

__all__ = [
    "BlockChecksums",
    "BlockLayout",
    "BufferPool",
    "BufferedBlock",
    "LockedPool",
    "SharedBufferPool",
    "DAFMatrix",
    "FaultInjector",
    "FaultPolicy",
    "InjectedFault",
    "LABTree",
    "RetryPolicy",
    "SimulatedDisk",
    "ShardedDisk",
    "ShardedFile",
    "DiskFile",
    "IOStats",
    "DEFAULT_STRIPE_BYTES",
    "make_disk",
    "block_checksum",
]
