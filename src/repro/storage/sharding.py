"""Sharded disk: stripe one logical store across N independent disks.

The paper's cost model — and everything built on it — assumes one disk.
The service's north star is hardware-speed I/O under heavy concurrent
traffic, and one spindle (or one NVMe channel) is the first wall: N
independent devices move N blocks at once.  :class:`ShardedDisk` raises
the stack onto that hardware shape without changing a single caller:

* it presents the exact :class:`~repro.storage.disk.SimulatedDisk`
  surface (``open``/``exists``/``stats``/``recover``/``close``), so
  DAF/LAB-tree stores, the buffer pool, prefetch staging,
  checkpoint/resume and the advisor all compose unchanged;
* every logical file is **striped**: byte stripe ``s`` of file ``name``
  lives on shard ``(H(name) + s) mod N`` — deterministic placement keyed
  by the content address (the service's ``ds_<digest>`` names hash the
  data itself) plus the linear stripe index, so re-opening a store finds
  its blocks without any mapping metadata;
* each shard is a full :class:`SimulatedDisk` with its **own** fault
  injector, retry budget, pacing channel and undo-record log — fault
  domains are per shard, and :meth:`recover` fans out to every one;
* a logical transfer spanning multiple shards issues its per-shard
  segments **in parallel**, so a striped run-read overlaps N physical
  transfers the way a RAID-0 read would.

Accounting is two-level by design.  ``ShardedDisk.stats`` counts
*logical* operations — one counted ``read_at`` is one logical op of its
full size, exactly what a single :class:`SimulatedDisk` would have
counted, so plans, cost-model validation and per-job attribution are
byte- and count-identical across shard counts.  Each shard's own
``stats`` counts the *physical* segment transfers it served (its fault
retries are mirrored up into the logical ``retries`` total so absorbed
faults stay visible in one place).
"""

from __future__ import annotations

import hashlib
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..cancel import current_interrupt, set_interrupt
from ..exceptions import StorageError
from ..obs import metrics as obs_metrics
from ..optimizer.costing import IOModel
from .disk import _BYTE_BUCKETS, IOStats, SimulatedDisk
from .faults import FaultInjector, RetryPolicy

__all__ = ["ShardedDisk", "ShardedFile", "make_disk", "DEFAULT_STRIPE_BYTES"]

#: Default stripe unit.  Small enough that a batched run-read of a few
#: blocks spans shards (intra-operation parallelism), large enough that a
#: single block read stays a single physical transfer.
DEFAULT_STRIPE_BYTES = 64 << 10


def _name_base(name: str) -> int:
    """Stable placement origin for one file name.

    The service's dataset stores are content-addressed (``ds_<digest>``),
    so hashing the name *is* hashing the content address; private stores
    hash their job-scoped name.  blake2b keeps placement stable across
    processes (``hash()`` is salted per interpreter).
    """
    return int.from_bytes(
        hashlib.blake2b(name.encode(), digest_size=8).digest(), "big")


def make_disk(root, shards: int = 1, *, stripe_bytes: int | None = None,
              **kw):
    """One disk or a sharded array of them, behind one construction call.

    ``shards <= 1`` returns a plain :class:`SimulatedDisk` (no striping
    layer at all — the single-disk fast path stays exactly what it was);
    ``shards > 1`` returns a :class:`ShardedDisk`.  Keyword arguments are
    forwarded to whichever is built.
    """
    if shards <= 1:
        kw.pop("fault_injectors", None)
        return SimulatedDisk(root, **kw)
    if stripe_bytes is not None:
        kw["stripe_bytes"] = stripe_bytes
    return ShardedDisk(root, shards, **kw)


class ShardedDisk:
    """N independent :class:`SimulatedDisk` shards behind one store API."""

    def __init__(self, root: str | os.PathLike, nshards: int,
                 io_model: IOModel | None = None,
                 fault_injector: FaultInjector | None = None,
                 fault_injectors: "list[FaultInjector | None] | None" = None,
                 retry: RetryPolicy | None = None,
                 atomic_writes: bool = False, fsync: bool = False,
                 pace: float = 0.0, pace_channels: int | None = None,
                 stripe_bytes: int = DEFAULT_STRIPE_BYTES):
        if nshards < 1:
            raise StorageError("nshards must be >= 1")
        if stripe_bytes < 1:
            raise StorageError("stripe_bytes must be >= 1")
        if fault_injector is not None and fault_injectors is not None:
            raise StorageError(
                "pass fault_injector (every shard) or fault_injectors "
                "(per shard), not both")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.io_model = io_model or IOModel()
        self.retry = retry or RetryPolicy()
        self.atomic_writes = atomic_writes
        self.pace = float(pace)
        self.stripe_bytes = int(stripe_bytes)
        self.nshards = int(nshards)
        if fault_injectors is None:
            # A single injector is shared by every shard, mirroring the
            # single-disk contract; a list confines faults to the shards
            # that carry one (the per-shard fault-domain knob).
            fault_injectors = [fault_injector] * self.nshards
        if len(fault_injectors) != self.nshards:
            raise StorageError(
                f"{len(fault_injectors)} fault injectors for "
                f"{self.nshards} shards")
        self.fault_injectors = list(fault_injectors)
        # Each shard paces on its own channel: N shards really do move N
        # transfers at once, which is the whole point of striping.
        self.shards = [
            SimulatedDisk(self.root / f"shard{i}", self.io_model,
                          fault_injector=self.fault_injectors[i],
                          retry=self.retry, atomic_writes=atomic_writes,
                          fsync=fsync, pace=pace,
                          pace_channels=pace_channels)
            for i in range(self.nshards)]
        # Logical (single-disk-equivalent) accounting.
        self.stats = IOStats()
        registry = obs_metrics.CURRENT
        self._hist_read = self._hist_write = None
        if registry is not None:
            label = registry.seq("sharded_disk")
            self.stats.bind(registry, disk=label, shards=str(self.nshards))
            self._hist_read = registry.histogram(
                "repro_disk_op_bytes", buckets=_BYTE_BUCKETS,
                op="read", disk=label)
            self._hist_write = registry.histogram(
                "repro_disk_op_bytes", buckets=_BYTE_BUCKETS,
                op="write", disk=label)
        # Absorbed shard retries surface in the logical totals too — one
        # place to look, same place a single disk reports them.
        for shard in self.shards:
            shard.stats.mirror = (self.stats, ("retries",))
        self._files: dict[str, ShardedFile] = {}
        self._open_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    # -- fan-out machinery ---------------------------------------------------

    def _executor(self) -> ThreadPoolExecutor:
        with self._open_lock:
            if self._pool is None:
                # Sized so several concurrent logical ops can each fan out
                # across every shard without convoying behind one another;
                # pacing is governed by the per-shard channels, not here.
                self._pool = ThreadPoolExecutor(
                    max_workers=4 * self.nshards,
                    thread_name_prefix="repro-shard")
            return self._pool

    def fan_out(self, tasks):
        """Run shard-segment thunks, in parallel when there are several.

        The caller's cancellation interrupt propagates into the pool
        threads so a cancelled job's shard retry backoffs cut short
        exactly as they would on the calling thread.
        """
        if len(tasks) == 1:
            return [tasks[0]()]
        interrupt = current_interrupt()

        def run(task):
            prev = current_interrupt()
            set_interrupt(interrupt)
            try:
                return task()
            finally:
                set_interrupt(prev)

        futures = [self._executor().submit(run, t) for t in tasks]
        # Collect every outcome before raising: a failed segment must not
        # leave siblings racing a caller that already unwound.
        outcomes = []
        for f in futures:
            try:
                outcomes.append((True, f.result()))
            except BaseException as err:  # noqa: BLE001 - re-raised below
                outcomes.append((False, err))
        for ok, out in outcomes:
            if not ok:
                raise out
        return [out for _, out in outcomes]

    # -- SimulatedDisk surface -----------------------------------------------

    def open(self, name: str) -> "ShardedFile":
        with self._open_lock:
            if self._closed:
                raise StorageError("disk is closed")
            if name not in self._files:
                self._files[name] = ShardedFile(self, name)
            return self._files[name]

    def exists(self, name: str) -> bool:
        return any(shard.exists(name) for shard in self.shards)

    def simulated_seconds(self, stats: IOStats | None = None) -> float:
        s = stats or self.stats
        return self.io_model.seconds(s.read_bytes, s.write_bytes)

    def pace_sleep(self, read_bytes: int = 0, write_bytes: int = 0) -> None:
        """No-op: pacing happens on the shards' own channels, in parallel."""

    def pending_undos(self) -> list[Path]:
        out: list[Path] = []
        for shard in self.shards:
            out.extend(shard.pending_undos())
        return out

    def recover(self, match=None) -> int:
        """Roll back interrupted writes on **every** shard."""
        return sum(shard.recover(match) for shard in self.shards)

    def close(self) -> None:
        with self._open_lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._files.clear()
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    def shard_stats(self) -> list[IOStats]:
        """Physical per-shard counters (segment transfers, retries)."""
        return [shard.stats for shard in self.shards]

    def __repr__(self) -> str:
        return (f"ShardedDisk({self.root}, shards={self.nshards}, "
                f"stripe={self.stripe_bytes}B, {self.stats!r})")


class ShardedFile:
    """One logical file striped across the shards; positional + counted.

    Presents the :class:`~repro.storage.disk.DiskFile` surface.  Stripes
    keep their **global** offsets inside each shard's backing file (the
    files are sparse where other shards own the bytes), so shard-local
    addressing is the identity and undo records survive re-sharding-free
    recovery.  One counted logical op = one increment of the sharded
    disk's logical ``stats``, however many physical segments it fanned
    into; the segments themselves are counted ops *on their shards* —
    that is where fault injection, retry, pacing and the physical byte
    counters live.
    """

    __slots__ = ("disk", "name", "path", "_base", "_shard_files")

    def __init__(self, disk: ShardedDisk, name: str):
        self.disk = disk
        self.name = name
        # .path.name is what fault policies and undo bookkeeping match on.
        self.path = disk.root / name
        self._base = _name_base(name)
        self._shard_files = [shard.open(name) for shard in disk.shards]

    # -- stripe arithmetic ---------------------------------------------------

    def owner(self, stripe: int) -> int:
        """Deterministic stripe placement: content-address hash + index."""
        return (self._base + stripe) % self.disk.nshards

    def segments(self, offset: int, size: int) -> list[tuple[int, int, int]]:
        """Split ``[offset, offset+size)`` into ``(shard, offset, size)``
        runs, coalescing adjacent stripes that land on the same shard (a
        1-shard disk always coalesces to a single segment)."""
        unit = self.disk.stripe_bytes
        end = offset + size
        segs: list[list[int]] = []
        pos = offset
        while pos < end:
            stripe = pos // unit
            seg_end = min(end, (stripe + 1) * unit)
            shard = self.owner(stripe)
            if segs and segs[-1][0] == shard \
                    and segs[-1][1] + segs[-1][2] == pos:
                segs[-1][2] += seg_end - pos
            else:
                segs.append([shard, pos, seg_end - pos])
            pos = seg_end
        return [tuple(s) for s in segs]

    # -- counted positional I/O ----------------------------------------------

    def read_at(self, offset: int, size: int, count: bool = True) -> bytes:
        if offset < 0 or size < 0:
            raise StorageError(f"bad read range offset={offset} size={size}")
        segs = self.segments(offset, size)
        if not segs:
            data = b""
        elif len(segs) == 1:
            shard, off, n = segs[0]
            data = self._shard_files[shard].read_at(off, n, count=count)
        else:
            parts = self.disk.fan_out([
                (lambda s=shard, o=off, n=n:
                 self._shard_files[s].read_at(o, n, count=count))
                for shard, off, n in segs])
            data = b"".join(parts)
        if count:
            self.disk.stats.add(read_bytes=size, read_ops=1)
            if self.disk._hist_read is not None:
                self.disk._hist_read.observe(size)
        return data

    def write_at(self, offset: int, data: bytes, count: bool = True,
                 atomic: bool | None = None) -> None:
        if offset < 0:
            raise StorageError(f"bad write offset {offset}")
        segs = self.segments(offset, len(data))
        if len(segs) == 1:
            shard, off, n = segs[0]
            self._shard_files[shard].write_at(off, data, count=count,
                                              atomic=atomic)
        elif segs:
            self.disk.fan_out([
                (lambda s=shard, o=off, n=n:
                 self._shard_files[s].write_at(
                     o, data[o - offset:o - offset + n], count=count,
                     atomic=atomic))
                for shard, off, n in segs])
        if count:
            self.disk.stats.add(write_bytes=len(data), write_ops=1)
            if self.disk._hist_write is not None:
                self.disk._hist_write.observe(len(data))

    # -- metadata ------------------------------------------------------------

    def size(self) -> int:
        # Stripes sit at global offsets, so the logical extent is the
        # furthest any shard's backing file reaches.
        return max(f.size() for f in self._shard_files)

    def truncate(self, size: int) -> None:
        for f in self._shard_files:
            f.truncate(size)

    def flush(self) -> None:
        for f in self._shard_files:
            f.flush()

    def close(self) -> None:
        for f in self._shard_files:
            f.close()
