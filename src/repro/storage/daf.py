"""DAF — Directly Addressable File (RIOTStore [26]).

The simplest of the two RIOTStore formats: one flat file per matrix, blocks
at computed offsets (column-major block order, column-major elements within
a block, no stored indexes).  Reads and writes are whole blocks, the
program's unit of I/O.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import StorageError
from ..obs import trace as obs_trace
from .blocks import BlockChecksums, BlockLayout, read_block_verified
from .disk import SimulatedDisk

__all__ = ["DAFMatrix"]

_MAGIC = b"DAF1"
_HEADER_BYTES = 64


class DAFMatrix:
    """A dense blocked matrix stored in a directly addressable file.

    A tiny fixed header records the geometry so files are self-describing;
    header I/O is not counted against the plan (metadata, not data).  Every
    block write records a checksum in a ``.daf.crc`` sidecar and every read
    verifies it (see :func:`~repro.storage.blocks.read_block_verified`).
    """

    def __init__(self, disk: SimulatedDisk, name: str, layout: BlockLayout):
        self.disk = disk
        self.name = name
        self.layout = layout
        self.file = disk.open(name + ".daf")
        self.checksums = BlockChecksums(disk.open(name + ".daf.crc"),
                                        layout.num_blocks)

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, disk: SimulatedDisk, name: str, grid: Sequence[int],
               block_shape: Sequence[int], dtype=np.float64) -> "DAFMatrix":
        layout = BlockLayout(grid, block_shape, dtype)
        if layout.rank != 2:
            raise StorageError("DAF stores 2-d matrices")
        mat = cls(disk, name, layout)
        mat._write_header()
        # Preallocate the data region so short-read errors surface early.
        mat.file.truncate(_HEADER_BYTES + layout.total_bytes)
        return mat

    @classmethod
    def open(cls, disk: SimulatedDisk, name: str) -> "DAFMatrix":
        header = disk.open(name + ".daf").read_at(0, _HEADER_BYTES, count=False)
        if header[:4] != _MAGIC:
            raise StorageError(f"{name}: not a DAF file")
        vals = np.frombuffer(header[4:60], dtype=np.int64)
        grid = (int(vals[0]), int(vals[1]))
        block_shape = (int(vals[2]), int(vals[3]))
        itemsize = int(vals[4])
        dtype = {8: np.float64, 4: np.float32}.get(itemsize)
        if dtype is None:
            raise StorageError(f"{name}: unsupported itemsize {itemsize}")
        return cls(disk, name, BlockLayout(grid, block_shape, dtype))

    def _write_header(self) -> None:
        vals = np.array([*self.layout.grid, *self.layout.block_shape,
                         self.layout.dtype.itemsize, 0, 0], dtype=np.int64)
        header = _MAGIC + vals.tobytes() + b"\0" * (_HEADER_BYTES - 4 - vals.nbytes)
        self.file.write_at(0, header[:_HEADER_BYTES], count=False)

    # -- block I/O -------------------------------------------------------------

    def write_block(self, coords: Sequence[int], block: np.ndarray,
                    count: bool = True) -> None:
        index = self.layout.linearize(coords)
        offset = _HEADER_BYTES + index * self.layout.block_bytes
        data = self.layout.block_to_bytes(block)
        self.file.write_at(offset, data, count=count)
        self.checksums.record(index, data)

    def read_block(self, coords: Sequence[int], count: bool = True) -> np.ndarray:
        index = self.layout.linearize(coords)
        offset = _HEADER_BYTES + index * self.layout.block_bytes
        data = read_block_verified(self.file, offset, self.layout.block_bytes,
                                   self.checksums, index, self.name, coords,
                                   count=count)
        return self.layout.bytes_to_block(data)

    def read_block_run(self, start_coords: Sequence[int], nblocks: int,
                       count: bool = True) -> tuple[list[np.ndarray], list[int]]:
        """Read ``nblocks`` consecutive blocks with one counted seek+transfer.

        Blocks are contiguous on disk in linear (column-major) order, so a
        run starting at ``start_coords`` costs one seek plus one
        ``nblocks * block_bytes`` transfer instead of ``nblocks`` separate
        ops — the batched path the prefetch pipeline uses for contiguous
        plan runs.  Each block is still checksum-verified individually; a
        mismatching block is healed through the ordinary retried
        :meth:`read_block` path (or raises
        :class:`~repro.exceptions.CorruptBlockError` if the corruption is
        persistent), and the healing re-read's bytes are returned per block
        in ``extra`` so callers can attribute them to the right access.
        """
        bb = self.layout.block_bytes
        start = self.layout.linearize(start_coords)
        if nblocks < 1 or start + nblocks > self.layout.num_blocks:
            raise StorageError(
                f"{self.name}: run of {nblocks} blocks from {tuple(start_coords)} "
                f"exceeds grid {self.layout.grid}")
        offset = _HEADER_BYTES + start * bb
        data = self.file.read_at(offset, nblocks * bb, count=count)
        blocks: list[np.ndarray] = []
        extra = [0] * nblocks
        stats = self.disk.stats
        for i in range(nblocks):
            chunk = data[i * bb:(i + 1) * bb]
            if not self.checksums.verify(start + i, chunk):
                coords = self.layout.delinearize(start + i)
                stats.add(checksum_failures=1)
                tracer = obs_trace.CURRENT
                if tracer is not None:
                    tracer.instant("disk.checksum_failure", "storage",
                                   store=self.name, block=list(coords),
                                   attempt=1)
                before = stats.thread_value("read_bytes")
                blocks.append(self.read_block(coords, count=count))
                extra[i] = stats.thread_value("read_bytes") - before
            else:
                blocks.append(self.layout.bytes_to_block(chunk))
        return blocks, extra

    # -- whole-matrix helpers (loading inputs / verifying outputs) ---------------------

    def write_matrix(self, matrix: np.ndarray, count: bool = False) -> None:
        """Store a full dense matrix (used to load inputs; uncounted by default)."""
        if matrix.shape != self.layout.total_shape:
            raise StorageError(
                f"{self.name}: matrix shape {matrix.shape} != {self.layout.total_shape}")
        br, bc = self.layout.block_shape
        for (bi, bj) in self.layout.iter_blocks():
            self.write_block((bi, bj),
                             matrix[bi * br:(bi + 1) * br, bj * bc:(bj + 1) * bc],
                             count=count)

    def read_matrix(self, count: bool = False) -> np.ndarray:
        out = np.empty(self.layout.total_shape, dtype=self.layout.dtype)
        br, bc = self.layout.block_shape
        for (bi, bj) in self.layout.iter_blocks():
            out[bi * br:(bi + 1) * br, bj * bc:(bj + 1) * bc] = \
                self.read_block((bi, bj), count=count)
        return out

    def preallocate(self) -> None:
        """Zero-fill the store one block buffer at a time.

        Unlike materializing ``np.zeros(total_shape)``, peak memory stays at
        one block regardless of matrix size — the point of being
        out-of-core.  Checksums are recorded, so later reads of untouched
        regions are verified like any other block.
        """
        zero = np.zeros(self.layout.block_shape, dtype=self.layout.dtype)
        for coords in self.layout.iter_blocks():
            self.write_block(coords, zero, count=False)

    def close(self) -> None:
        self.file.flush()
        self.checksums.file.flush()

    def __repr__(self) -> str:
        return f"DAFMatrix({self.name}, {self.layout!r})"
