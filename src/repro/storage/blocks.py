"""Block layout arithmetic for dense blocked matrices.

The paper's storage scheme (Section 6): matrices are stored in large logical
blocks laid out on disk in column-major order of their block coordinates;
elements within a block are column-major too.  Because every element has a
predetermined position, no indexes are stored.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..exceptions import StorageError

__all__ = ["BlockLayout"]


class BlockLayout:
    """Maps block coordinates of an (n-dimensional) blocked array to linear
    block indices and byte offsets, column-major."""

    __slots__ = ("grid", "block_shape", "dtype", "block_bytes")

    def __init__(self, grid: Sequence[int], block_shape: Sequence[int],
                 dtype: np.dtype | str = np.float64):
        self.grid = tuple(int(g) for g in grid)
        self.block_shape = tuple(int(b) for b in block_shape)
        if len(self.grid) != len(self.block_shape):
            raise StorageError("grid / block_shape rank mismatch")
        if any(g <= 0 for g in self.grid) or any(b <= 0 for b in self.block_shape):
            raise StorageError("grid and block_shape must be positive")
        self.dtype = np.dtype(dtype)
        self.block_bytes = int(np.prod(self.block_shape)) * self.dtype.itemsize

    @property
    def rank(self) -> int:
        return len(self.grid)

    @property
    def num_blocks(self) -> int:
        return int(np.prod(self.grid))

    @property
    def total_shape(self) -> tuple[int, ...]:
        return tuple(g * b for g, b in zip(self.grid, self.block_shape))

    @property
    def total_bytes(self) -> int:
        return self.num_blocks * self.block_bytes

    def check_coords(self, coords: Sequence[int]) -> tuple[int, ...]:
        c = tuple(int(x) for x in coords)
        if len(c) != self.rank:
            raise StorageError(f"block coords {c} have rank {len(c)} != {self.rank}")
        for x, g in zip(c, self.grid):
            if not 0 <= x < g:
                raise StorageError(f"block coords {c} outside grid {self.grid}")
        return c

    def linearize(self, coords: Sequence[int]) -> int:
        """Column-major linear index: the first coordinate varies fastest."""
        c = self.check_coords(coords)
        idx = 0
        for x, g in zip(reversed(c), reversed(self.grid)):
            idx = idx * g + x
        # reversed twice: the loop above is row-major over reversed dims,
        # which is exactly column-major over the original dims.
        return idx

    def delinearize(self, index: int) -> tuple[int, ...]:
        if not 0 <= index < self.num_blocks:
            raise StorageError(f"linear block index {index} out of range")
        coords = []
        for g in self.grid:
            coords.append(index % g)
            index //= g
        return tuple(coords)

    def offset_of(self, coords: Sequence[int]) -> int:
        return self.linearize(coords) * self.block_bytes

    def iter_blocks(self) -> Iterable[tuple[int, ...]]:
        for i in range(self.num_blocks):
            yield self.delinearize(i)

    def block_to_bytes(self, block: np.ndarray) -> bytes:
        if block.shape != self.block_shape:
            raise StorageError(f"block shape {block.shape} != {self.block_shape}")
        return np.ascontiguousarray(block.astype(self.dtype, copy=False),
                                    dtype=self.dtype).tobytes(order="F")

    def bytes_to_block(self, data: bytes) -> np.ndarray:
        if len(data) != self.block_bytes:
            raise StorageError(f"payload of {len(data)} bytes != block size {self.block_bytes}")
        return np.frombuffer(data, dtype=self.dtype).reshape(
            self.block_shape, order="F").copy()

    def __repr__(self) -> str:
        return (f"BlockLayout(grid={self.grid}, block={self.block_shape}, "
                f"dtype={self.dtype.name})")
