"""Block layout arithmetic for dense blocked matrices.

The paper's storage scheme (Section 6): matrices are stored in large logical
blocks laid out on disk in column-major order of their block coordinates;
elements within a block are column-major too.  Because every element has a
predetermined position, no indexes are stored.
"""

from __future__ import annotations

import struct
import zlib
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import StorageError
from ..obs import trace as obs_trace

try:  # hardware CRC32C (Castagnoli) when the optional wheel is present
    from crc32c import crc32c as _crc32
except ImportError:  # zlib's CRC32: same width and detection strength here
    _crc32 = zlib.crc32

__all__ = ["BlockLayout", "BlockChecksums", "block_checksum"]


def block_checksum(data: bytes) -> int:
    """32-bit payload checksum (CRC32C when available, CRC32 otherwise)."""
    return _crc32(data) & 0xFFFFFFFF


class BlockChecksums:
    """Per-block checksum sidecar for one store.

    One little-endian uint64 per linear block index: the low 32 bits hold
    the checksum, bit 32 marks the slot as recorded (so a genuine checksum
    of zero is distinguishable from "never written").  Sidecar I/O is
    metadata — uncounted, never fault-injected — because it is the machinery
    that *detects* faults in the data path.
    """

    _SET = 1 << 32
    _SLOT = struct.Struct("<Q")

    __slots__ = ("file", "num_blocks")

    def __init__(self, file, num_blocks: int):
        self.file = file
        self.num_blocks = int(num_blocks)
        size = self._SLOT.size * self.num_blocks
        if file.size() < size:
            file.truncate(size)

    def record(self, index: int, data: bytes) -> None:
        value = block_checksum(data) | self._SET
        self.file.write_at(index * self._SLOT.size, self._SLOT.pack(value),
                           count=False, atomic=False)

    def expected(self, index: int) -> int | None:
        """The recorded checksum, or ``None`` if the block was never
        written through the checksummed path."""
        raw = self.file.read_at(index * self._SLOT.size, self._SLOT.size,
                                count=False)
        (value,) = self._SLOT.unpack(raw)
        return (value & 0xFFFFFFFF) if value & self._SET else None

    def verify(self, index: int, data: bytes) -> bool:
        expected = self.expected(index)
        return expected is None or block_checksum(data) == expected


def read_block_verified(file, offset: int, nbytes: int,
                        checksums: "BlockChecksums", index: int,
                        store_name: str, coords, count: bool = True) -> bytes:
    """Checksum-verified positional block read with bounded re-reads.

    Transient faults are already absorbed inside ``file.read_at``; this
    layer catches *corruption* (payload mismatching the recorded checksum),
    counts it in ``IOStats.checksum_failures``, and re-reads up to the
    disk's retry budget — a fresh read of an intact disk copy heals an
    in-flight bit flip.  Persistent mismatch raises
    :class:`~repro.exceptions.CorruptBlockError`.
    """
    from ..exceptions import CorruptBlockError
    disk = file.disk
    expected = checksums.expected(index)
    attempt = 0
    while True:
        data = file.read_at(offset, nbytes, count=count)
        if expected is None or block_checksum(data) == expected:
            return data
        disk.stats.add(checksum_failures=1)
        tracer = obs_trace.CURRENT
        if tracer is not None:
            tracer.instant("disk.checksum_failure", "storage",
                           store=store_name, block=list(coords),
                           attempt=attempt + 1)
        attempt += 1
        if attempt > disk.retry.max_retries:
            raise CorruptBlockError(
                f"{store_name}: block {tuple(coords)} failed checksum "
                f"verification after {attempt} reads "
                f"(expected {expected:#010x})")
        disk.retry.sleep(attempt)


class BlockLayout:
    """Maps block coordinates of an (n-dimensional) blocked array to linear
    block indices and byte offsets, column-major."""

    __slots__ = ("grid", "block_shape", "dtype", "block_bytes")

    def __init__(self, grid: Sequence[int], block_shape: Sequence[int],
                 dtype: np.dtype | str = np.float64):
        self.grid = tuple(int(g) for g in grid)
        self.block_shape = tuple(int(b) for b in block_shape)
        if len(self.grid) != len(self.block_shape):
            raise StorageError("grid / block_shape rank mismatch")
        if any(g <= 0 for g in self.grid) or any(b <= 0 for b in self.block_shape):
            raise StorageError("grid and block_shape must be positive")
        self.dtype = np.dtype(dtype)
        self.block_bytes = int(np.prod(self.block_shape)) * self.dtype.itemsize

    @property
    def rank(self) -> int:
        return len(self.grid)

    @property
    def num_blocks(self) -> int:
        return int(np.prod(self.grid))

    @property
    def total_shape(self) -> tuple[int, ...]:
        return tuple(g * b for g, b in zip(self.grid, self.block_shape))

    @property
    def total_bytes(self) -> int:
        return self.num_blocks * self.block_bytes

    def check_coords(self, coords: Sequence[int]) -> tuple[int, ...]:
        c = tuple(int(x) for x in coords)
        if len(c) != self.rank:
            raise StorageError(f"block coords {c} have rank {len(c)} != {self.rank}")
        for x, g in zip(c, self.grid):
            if not 0 <= x < g:
                raise StorageError(f"block coords {c} outside grid {self.grid}")
        return c

    def linearize(self, coords: Sequence[int]) -> int:
        """Column-major linear index: the first coordinate varies fastest."""
        c = self.check_coords(coords)
        idx = 0
        for x, g in zip(reversed(c), reversed(self.grid)):
            idx = idx * g + x
        # reversed twice: the loop above is row-major over reversed dims,
        # which is exactly column-major over the original dims.
        return idx

    def delinearize(self, index: int) -> tuple[int, ...]:
        if not 0 <= index < self.num_blocks:
            raise StorageError(f"linear block index {index} out of range")
        coords = []
        for g in self.grid:
            coords.append(index % g)
            index //= g
        return tuple(coords)

    def offset_of(self, coords: Sequence[int]) -> int:
        return self.linearize(coords) * self.block_bytes

    def iter_blocks(self) -> Iterable[tuple[int, ...]]:
        for i in range(self.num_blocks):
            yield self.delinearize(i)

    def block_to_bytes(self, block: np.ndarray) -> bytes:
        if block.shape != self.block_shape:
            raise StorageError(f"block shape {block.shape} != {self.block_shape}")
        return np.ascontiguousarray(block.astype(self.dtype, copy=False),
                                    dtype=self.dtype).tobytes(order="F")

    def bytes_to_block(self, data: bytes) -> np.ndarray:
        if len(data) != self.block_bytes:
            raise StorageError(f"payload of {len(data)} bytes != block size {self.block_bytes}")
        return np.frombuffer(data, dtype=self.dtype).reshape(
            self.block_shape, order="F").copy()

    def __repr__(self) -> str:
        return (f"BlockLayout(grid={self.grid}, block={self.block_shape}, "
                f"dtype={self.dtype.name})")
