"""Buffer manager with an explicit memory cap (Section 4.2).

The paper argues for explicit application-managed memory instead of letting
virtual memory thrash: plans declare exactly which blocks stay resident and
for how long.  This pool enforces that contract:

* blocks are keyed by ``(store name, block coords)``;
* ``fetch`` returns a resident block or loads it through the store
  (counting I/O on the simulated disk);
* ``pin``/``unpin`` protect blocks the plan retains for realized sharing;
* unpinned blocks are evicted LRU when space is needed;
* exceeding the cap with pinned blocks raises :class:`BufferPoolError` —
  the optimizer's memory estimate was supposed to prevent that.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Hashable

import numpy as np

from ..exceptions import BufferPoolError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["BufferPool", "SharedBufferPool", "LockedPool", "BufferedBlock"]


class BufferedBlock:
    """A resident block: payload + pin count + dirty flag + stage marks."""

    __slots__ = ("key", "data", "pins", "dirty", "nbytes", "staged")

    def __init__(self, key: tuple, data: np.ndarray):
        self.key = key
        self.data = data
        self.pins = 0
        self.dirty = False
        self.nbytes = int(data.nbytes)
        # Outstanding prefetch stage marks: each carries one of the pins
        # until consume_staged/discard_staged surrenders it.
        self.staged = 0

    def __repr__(self) -> str:
        return f"BufferedBlock({self.key}, pins={self.pins}, dirty={self.dirty})"


class BufferPool:
    """LRU pool of matrix blocks under a hard byte cap.

    The statistics fields (``hits``/``misses``/``evictions``/``used_bytes``/
    ``peak_bytes``) are thin views over :mod:`repro.obs.metrics` instruments;
    when a registry is installed at construction time the pool binds them
    under a unique ``pool=...`` label so ``expose_text`` shows live pools.
    """

    _COUNTERS = ("hits", "misses", "evictions")
    _GAUGES = ("used_bytes", "peak_bytes")

    #: Whether every transition is safe to drive from multiple threads.
    #: The engine checks this before prefetching into an injected pool and
    #: wraps unsafe pools in :class:`LockedPool`.
    thread_safe = False

    def __init__(self, cap_bytes: int | None = None):
        if cap_bytes is not None and cap_bytes <= 0:
            raise BufferPoolError("cap must be positive (or None for unlimited)")
        self.cap_bytes = cap_bytes
        self._blocks: "OrderedDict[tuple, BufferedBlock]" = OrderedDict()
        for f in self._COUNTERS:
            setattr(self, "_" + f, obs_metrics.Counter("repro_pool_" + f))
        for f in self._GAUGES:
            setattr(self, "_" + f, obs_metrics.Gauge("repro_pool_" + f))
        registry = obs_metrics.CURRENT
        if registry is not None:
            self.bind(registry, pool=registry.seq("pool"))

    def bind(self, registry: obs_metrics.MetricsRegistry, **labels) -> None:
        """Adopt this pool's instruments into ``registry`` under ``labels``."""
        for f in self._COUNTERS + self._GAUGES:
            inst = getattr(self, "_" + f)
            inst.labels = dict(labels)
            registry.register(inst)

    # -- residency ------------------------------------------------------------

    def contains(self, key: tuple) -> bool:
        return key in self._blocks

    def fetch(self, key: tuple, loader: Callable[[], np.ndarray],
              pin: int = 0) -> BufferedBlock:
        """Resident block for ``key``, loading via ``loader`` on a miss.

        ``pin`` adds that many pins *atomically with the lookup*: a caller
        that fetches and then pins in two steps leaves a window in which a
        concurrent eviction can drop the block (impossible here, real in
        :class:`SharedBufferPool`), so the engine always pins through this
        argument.
        """
        blk = self._blocks.get(key)
        tracer = obs_trace.CURRENT
        if blk is not None:
            self.hits += 1
            if tracer is not None:
                tracer.instant("pool.hit", "pool", key=str(key))
            self._blocks.move_to_end(key)
            blk.pins += pin
            return blk
        data = loader()
        # The miss is counted only once the loader has succeeded, matching
        # SharedBufferPool: a loader that raises completed no load, and
        # counting it would skew the hit ratio of retried fetches.
        self.misses += 1
        if tracer is not None:
            tracer.instant("pool.miss", "pool", key=str(key))
        blk = self._admit(key, data)
        blk.pins += pin
        return blk

    def put(self, key: tuple, data: np.ndarray, dirty: bool = False,
            pin: int = 0, force: bool = False) -> BufferedBlock:
        """Install (or replace) a block produced in memory.

        Replacing a resident *dirty* block with clean data silently drops
        bytes that never reached disk — the same loss ``_make_room`` and
        :meth:`release` refuse loudly — so it raises unless the caller
        passes ``force=True`` (or installs dirty data itself, which keeps
        the block dirty).  Pins and stage marks survive replacement.
        """
        old = self._blocks.get(key)
        if old is not None:
            if old.dirty and not dirty and not force:
                raise BufferPoolError(
                    f"replacing dirty block {key} with clean data would "
                    f"discard unwritten bytes (write it back first, or pass "
                    f"force=True to drop it)")
            del self._blocks[key]
            self.used_bytes -= old.nbytes
        blk = self._admit(key, data)
        if old is not None:
            blk.pins = old.pins
            blk.staged = old.staged
        blk.dirty = dirty
        blk.pins += pin
        return blk

    def _admit(self, key: tuple, data: np.ndarray) -> BufferedBlock:
        blk = BufferedBlock(key, data)
        self._make_room(blk.nbytes)
        self._blocks[key] = blk
        self.used_bytes += blk.nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return blk

    def _make_room(self, incoming: int) -> None:
        if self.cap_bytes is None:
            return
        if incoming > self.cap_bytes:
            raise BufferPoolError(
                f"block of {incoming} bytes exceeds pool cap {self.cap_bytes}")
        while self.used_bytes + incoming > self.cap_bytes:
            victim = next((b for b in self._blocks.values() if b.pins == 0), None)
            if victim is None:
                raise BufferPoolError(
                    f"memory cap {self.cap_bytes} exceeded with all "
                    f"{len(self._blocks)} blocks pinned "
                    f"(need {incoming}, used {self.used_bytes})")
            if victim.dirty:
                raise BufferPoolError(
                    f"evicting dirty block {victim.key}: the plan failed to "
                    f"schedule its write-back")
            del self._blocks[victim.key]
            self.used_bytes -= victim.nbytes
            self.evictions += 1
            tracer = obs_trace.CURRENT
            if tracer is not None:
                tracer.instant("pool.evict", "pool", key=str(victim.key),
                               bytes=victim.nbytes)

    # -- pinning -----------------------------------------------------------------

    def pin(self, key: tuple) -> None:
        try:
            blk = self._blocks[key]
        except KeyError:
            raise BufferPoolError(f"pin of non-resident block {key}") from None
        blk.pins += 1
        tracer = obs_trace.CURRENT
        if tracer is not None:
            tracer.instant("pool.pin", "pool", key=str(key), pins=blk.pins)

    def unpin(self, key: tuple) -> None:
        try:
            blk = self._blocks[key]
        except KeyError:
            raise BufferPoolError(f"unpin of non-resident block {key}") from None
        if blk.pins <= 0:
            raise BufferPoolError(f"unpin without pin on {key}")
        blk.pins -= 1
        tracer = obs_trace.CURRENT
        if tracer is not None:
            tracer.instant("pool.unpin", "pool", key=str(key), pins=blk.pins)

    def release(self, key: tuple, force: bool = False) -> None:
        """Drop a block regardless of LRU position (pins must be zero).

        A dirty block holds data that never reached disk; dropping it is the
        same data loss ``_make_room`` refuses, so it raises here too unless
        ``force=True`` (teardown escape hatch for callers that know the data
        is dead).
        """
        blk = self._blocks.get(key)
        if blk is None:
            return
        if blk.pins > 0:
            raise BufferPoolError(f"release of pinned block {key}")
        if blk.dirty and not force:
            raise BufferPoolError(
                f"release of dirty block {key} would discard unwritten data "
                f"(schedule its write-back, or pass force=True to drop it)")
        del self._blocks[key]
        self.used_bytes -= blk.nbytes

    def release_if_unpinned(self, key: tuple, force: bool = False) -> bool:
        """Drop ``key`` iff it is resident with a zero pin count.

        The plan-exact engine's end-of-instance sweep: returns ``True`` when
        the block was dropped, ``False`` when it is absent or still pinned.
        Dirty blocks raise exactly as :meth:`release` does.
        """
        blk = self._blocks.get(key)
        if blk is None or blk.pins > 0:
            return False
        self.release(key, force=force)
        return True

    def pin_count(self, key: tuple) -> int:
        blk = self._blocks.get(key)
        return blk.pins if blk is not None else 0

    def mark_clean(self, key: tuple) -> None:
        blk = self._blocks.get(key)
        if blk is not None:
            blk.dirty = False

    # -- prefetch staging -----------------------------------------------------

    def stage(self, key: tuple, data: np.ndarray) -> BufferedBlock:
        """Install a prefetched block, pinned-on-stage.

        The stage pin guarantees neither LRU pressure nor an eviction sweep
        can drop the block between staging and consumption;
        :meth:`consume_staged` hands that pin to the consumer atomically.
        Stage marks accumulate: a block the plan reads twice inside the
        lookahead window carries two marks and two pins.
        """
        blk = self.put(key, data, pin=1)
        blk.staged += 1
        tracer = obs_trace.CURRENT
        if tracer is not None:
            tracer.instant("pool.stage", "pool", key=str(key),
                           bytes=blk.nbytes, staged=blk.staged)
        return blk

    def consume_staged(self, key: tuple, pin: int = 1) -> BufferedBlock:
        """Convert one stage mark into ``pin`` consumer pins, atomically.

        The net pin change is ``pin - 1`` (the stage pin is surrendered in
        the same transition), so the block is never observable unpinned in
        between.  Raises :class:`BufferPoolError` when ``key`` carries no
        stage mark — consuming a block nobody staged is an engine bug.
        """
        blk = self._blocks.get(key)
        if blk is None or blk.staged <= 0:
            raise BufferPoolError(f"consume of non-staged block {key}")
        blk.staged -= 1
        blk.pins += pin - 1
        self._blocks.move_to_end(key)
        return blk

    def discard_staged(self, key: tuple) -> bool:
        """Drop one stage mark and its pin (pipeline-teardown path).

        Staged data came straight from disk, so dropping it loses nothing;
        the block is released once no pins remain.  Returns ``True`` iff a
        mark was dropped.
        """
        blk = self._blocks.get(key)
        if blk is None or blk.staged <= 0:
            return False
        blk.staged -= 1
        blk.pins -= 1
        if blk.pins <= 0:
            self.release(key)
        return True

    # -- introspection --------------------------------------------------------------

    def resident_keys(self) -> list[tuple]:
        return list(self._blocks)

    def pinned_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values() if b.pins > 0)

    def total_pins(self) -> int:
        """Sum of all pin counts — 0 on a quiesced pool (leak check)."""
        return sum(b.pins for b in self._blocks.values())

    def staged_marks(self) -> int:
        """Resident blocks still carrying a stage mark — 0 once every
        pipeline has consumed or discarded its staging (leak check)."""
        return sum(1 for b in self._blocks.values() if b.staged)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        cap = "unbounded" if self.cap_bytes is None else f"{self.cap_bytes}B"
        return (f"BufferPool({len(self._blocks)} blocks, {self.used_bytes}B used, "
                f"cap {cap}, peak {self.peak_bytes}B)")


def _stat_view(field: str) -> property:
    attr = "_" + field

    def fget(self):
        return getattr(self, attr).value

    def fset(self, value):
        getattr(self, attr).value = value

    return property(fget, fset)


for _f in BufferPool._COUNTERS + BufferPool._GAUGES:
    setattr(BufferPool, _f, _stat_view(_f))
del _f


class SharedBufferPool(BufferPool):
    """Thread-safe :class:`BufferPool` shared by concurrent queries.

    The inter-query sharing substrate of :mod:`repro.service`: one pool,
    one global byte cap, many executor threads.  Three additions over the
    single-threaded base:

    * **one lock** (a condition over an ``RLock``) serializes every
      residency / pin / eviction transition, so the cap is never exceeded
      and a pinned block is never evicted, exactly as in the sequential
      pool;
    * **loader de-duplication** — a fetch that must go to disk marks the
      key *in flight* and drops the lock while the loader runs; concurrent
      fetches of the same key wait on the condition instead of issuing a
      second disk read, while fetches of other keys proceed in parallel;
    * **per-owner pin accounting** — pins taken with an ``owner`` tag are
      remembered per owner, so :meth:`release_owner` can drop everything a
      crashed query still held without touching other queries' pins.
    """

    thread_safe = True

    def __init__(self, cap_bytes: int | None = None):
        super().__init__(cap_bytes)
        self._cond = threading.Condition(threading.RLock())
        self._loading: set[tuple] = set()
        self._owner_pins: dict[Hashable, dict[tuple, int]] = {}

    # -- residency ------------------------------------------------------------

    def contains(self, key: tuple) -> bool:
        with self._cond:
            return key in self._blocks

    def fetch(self, key: tuple, loader: Callable[[], np.ndarray],
              pin: int = 0, owner: Hashable | None = None) -> BufferedBlock:
        tracer = obs_trace.CURRENT
        with self._cond:
            while True:
                blk = self._blocks.get(key)
                if blk is not None:
                    self.hits += 1
                    if tracer is not None:
                        tracer.instant("pool.hit", "pool", key=str(key))
                    self._blocks.move_to_end(key)
                    self._pin_locked(key, blk, pin, owner)
                    return blk
                if key not in self._loading:
                    self._loading.add(key)
                    break
                # Another thread is already reading this block from disk:
                # wait for it instead of issuing a duplicate read.
                self._cond.wait()
        # Load outside the lock — distinct keys load in parallel and the
        # pool stays responsive during (possibly fault-retried) disk I/O.
        try:
            data = loader()
        except BaseException:
            with self._cond:
                self._loading.discard(key)
                self._cond.notify_all()
            raise
        with self._cond:
            self._loading.discard(key)
            self.misses += 1
            if tracer is not None:
                tracer.instant("pool.miss", "pool", key=str(key))
            blk = self._admit(key, data)
            self._pin_locked(key, blk, pin, owner)
            self._cond.notify_all()
            return blk

    def put(self, key: tuple, data: np.ndarray, dirty: bool = False,
            pin: int = 0, owner: Hashable | None = None,
            force: bool = False) -> BufferedBlock:
        with self._cond:
            blk = super().put(key, data, dirty, force=force)
            self._pin_locked(key, blk, pin, owner)
            self._cond.notify_all()
            return blk

    # -- prefetch staging -----------------------------------------------------

    def stage(self, key: tuple, data: np.ndarray,
              owner: Hashable | None = None) -> BufferedBlock:
        with self._cond:
            blk = self.put(key, data, pin=1, owner=owner)
            blk.staged += 1
            tracer = obs_trace.CURRENT
            if tracer is not None:
                tracer.instant("pool.stage", "pool", key=str(key),
                               bytes=blk.nbytes, staged=blk.staged)
            return blk

    def consume_staged(self, key: tuple, pin: int = 1,
                       owner: Hashable | None = None) -> BufferedBlock:
        with self._cond:
            blk = self._blocks.get(key)
            if blk is None or blk.staged <= 0:
                raise BufferPoolError(f"consume of non-staged block {key}")
            blk.staged -= 1
            self._drop_pin_locked(key, blk, owner)
            self._pin_locked(key, blk, pin, owner)
            self._blocks.move_to_end(key)
            self._cond.notify_all()
            return blk

    def discard_staged(self, key: tuple,
                       owner: Hashable | None = None) -> bool:
        with self._cond:
            blk = self._blocks.get(key)
            if blk is None or blk.staged <= 0:
                return False
            blk.staged -= 1
            self._drop_pin_locked(key, blk, owner)
            if blk.pins <= 0:
                super().release(key)
            self._cond.notify_all()
            return True

    # -- pinning -----------------------------------------------------------------

    def _drop_pin_locked(self, key: tuple, blk: BufferedBlock,
                         owner: Hashable | None) -> None:
        blk.pins -= 1
        if owner is not None:
            held = self._owner_pins.get(owner)
            if held and key in held:
                held[key] -= 1
                if held[key] <= 0:
                    del held[key]

    def _pin_locked(self, key: tuple, blk: BufferedBlock, n: int,
                    owner: Hashable | None) -> None:
        if n <= 0:
            return
        blk.pins += n
        if owner is not None:
            held = self._owner_pins.setdefault(owner, {})
            held[key] = held.get(key, 0) + n

    def pin(self, key: tuple, owner: Hashable | None = None) -> None:
        with self._cond:
            blk = self._blocks.get(key)
            if blk is None:
                raise BufferPoolError(f"pin of non-resident block {key}")
            self._pin_locked(key, blk, 1, owner)
            tracer = obs_trace.CURRENT
            if tracer is not None:
                tracer.instant("pool.pin", "pool", key=str(key), pins=blk.pins)

    def unpin(self, key: tuple, owner: Hashable | None = None) -> None:
        with self._cond:
            blk = self._blocks.get(key)
            if blk is None:
                raise BufferPoolError(f"unpin of non-resident block {key}")
            if blk.pins <= 0:
                raise BufferPoolError(f"unpin without pin on {key}")
            blk.pins -= 1
            if owner is not None:
                held = self._owner_pins.get(owner)
                if held and key in held:
                    held[key] -= 1
                    if held[key] <= 0:
                        del held[key]
            tracer = obs_trace.CURRENT
            if tracer is not None:
                tracer.instant("pool.unpin", "pool", key=str(key), pins=blk.pins)

    def release_owner(self, owner: Hashable) -> int:
        """Drop every pin ``owner`` still holds (crashed-query cleanup).

        Returns the number of pins released.  Blocks themselves stay
        resident — unpinned, they are normal LRU victims.
        """
        with self._cond:
            held = self._owner_pins.pop(owner, {})
            released = 0
            for key, n in held.items():
                blk = self._blocks.get(key)
                if blk is not None:
                    drop = min(n, blk.pins)
                    blk.pins -= drop
                    released += drop
            return released

    def owner_pin_count(self, owner: Hashable) -> int:
        with self._cond:
            return sum(self._owner_pins.get(owner, {}).values())

    def drop_matching(self, pred: Callable[[tuple], bool],
                      force: bool = False) -> int:
        """Release every unpinned resident block whose key satisfies
        ``pred`` (e.g. a finished query's private blocks).  Returns the
        number of blocks dropped."""
        with self._cond:
            victims = [k for k, b in self._blocks.items()
                       if b.pins == 0 and pred(k)]
            for key in victims:
                super().release(key, force=force)
            return len(victims)

    # -- locked passthroughs of the single-threaded surface ----------------------

    def release(self, key: tuple, force: bool = False) -> None:
        with self._cond:
            super().release(key, force)

    def release_if_unpinned(self, key: tuple, force: bool = False) -> bool:
        with self._cond:
            return super().release_if_unpinned(key, force)

    def pin_count(self, key: tuple) -> int:
        with self._cond:
            return super().pin_count(key)

    def mark_clean(self, key: tuple) -> None:
        with self._cond:
            super().mark_clean(key)

    def resident_keys(self) -> list[tuple]:
        with self._cond:
            return super().resident_keys()

    def pinned_bytes(self) -> int:
        with self._cond:
            return super().pinned_bytes()

    def total_pins(self) -> int:
        with self._cond:
            return super().total_pins()

    def staged_marks(self) -> int:
        with self._cond:
            return super().staged_marks()

    def __len__(self) -> int:
        with self._cond:
            return len(self._blocks)


class LockedPool:
    """Serializing adapter giving a single-threaded pool a thread-safe surface.

    The prefetch pipeline's reader threads mutate the pool concurrently
    with the engine's compute thread.  Pools that advertise
    ``thread_safe = True`` (:class:`SharedBufferPool`, the service's
    ``JobPoolView``) are used directly; a plain private :class:`BufferPool`
    is wrapped in this adapter, which funnels every transition through one
    lock.  ``fetch`` runs its loader under the lock — acceptable in the
    engine, where prefetch makes loader-bearing fetches the rare fallback.
    """

    thread_safe = True

    __slots__ = ("pool", "_lock")

    def __init__(self, pool: BufferPool):
        self.pool = pool
        self._lock = threading.Lock()

    def contains(self, key: tuple) -> bool:
        with self._lock:
            return self.pool.contains(key)

    def fetch(self, key: tuple, loader: Callable[[], np.ndarray],
              pin: int = 0) -> BufferedBlock:
        with self._lock:
            return self.pool.fetch(key, loader, pin=pin)

    def put(self, key: tuple, data: np.ndarray, dirty: bool = False,
            pin: int = 0, force: bool = False) -> BufferedBlock:
        with self._lock:
            return self.pool.put(key, data, dirty, pin=pin, force=force)

    def stage(self, key: tuple, data: np.ndarray) -> BufferedBlock:
        with self._lock:
            return self.pool.stage(key, data)

    def consume_staged(self, key: tuple, pin: int = 1) -> BufferedBlock:
        with self._lock:
            return self.pool.consume_staged(key, pin=pin)

    def discard_staged(self, key: tuple) -> bool:
        with self._lock:
            return self.pool.discard_staged(key)

    def pin(self, key: tuple) -> None:
        with self._lock:
            self.pool.pin(key)

    def unpin(self, key: tuple) -> None:
        with self._lock:
            self.pool.unpin(key)

    def release(self, key: tuple, force: bool = False) -> None:
        with self._lock:
            self.pool.release(key, force)

    def release_if_unpinned(self, key: tuple, force: bool = False) -> bool:
        with self._lock:
            return self.pool.release_if_unpinned(key, force)

    def pin_count(self, key: tuple) -> int:
        with self._lock:
            return self.pool.pin_count(key)

    def mark_clean(self, key: tuple) -> None:
        with self._lock:
            self.pool.mark_clean(key)

    def resident_keys(self) -> list[tuple]:
        with self._lock:
            return self.pool.resident_keys()

    def pinned_bytes(self) -> int:
        with self._lock:
            return self.pool.pinned_bytes()

    def total_pins(self) -> int:
        with self._lock:
            return self.pool.total_pins()

    def staged_marks(self) -> int:
        with self._lock:
            return self.pool.staged_marks()

    def __len__(self) -> int:
        with self._lock:
            return len(self.pool)

    def __repr__(self) -> str:
        return f"LockedPool({self.pool!r})"


def _delegate_stat(field: str) -> property:
    def fget(self):
        return getattr(self.pool, field)

    return property(fget)


for _f in ("cap_bytes",) + BufferPool._COUNTERS + BufferPool._GAUGES:
    setattr(LockedPool, _f, _delegate_stat(_f))
del _f
