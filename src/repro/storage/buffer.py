"""Buffer manager with an explicit memory cap (Section 4.2).

The paper argues for explicit application-managed memory instead of letting
virtual memory thrash: plans declare exactly which blocks stay resident and
for how long.  This pool enforces that contract:

* blocks are keyed by ``(store name, block coords)``;
* ``fetch`` returns a resident block or loads it through the store
  (counting I/O on the simulated disk);
* ``pin``/``unpin`` protect blocks the plan retains for realized sharing;
* unpinned blocks are evicted LRU when space is needed;
* exceeding the cap with pinned blocks raises :class:`BufferPoolError` —
  the optimizer's memory estimate was supposed to prevent that.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np

from ..exceptions import BufferPoolError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace

__all__ = ["BufferPool", "BufferedBlock"]


class BufferedBlock:
    """A resident block: payload + pin count + dirty flag."""

    __slots__ = ("key", "data", "pins", "dirty", "nbytes")

    def __init__(self, key: tuple, data: np.ndarray):
        self.key = key
        self.data = data
        self.pins = 0
        self.dirty = False
        self.nbytes = int(data.nbytes)

    def __repr__(self) -> str:
        return f"BufferedBlock({self.key}, pins={self.pins}, dirty={self.dirty})"


class BufferPool:
    """LRU pool of matrix blocks under a hard byte cap.

    The statistics fields (``hits``/``misses``/``evictions``/``used_bytes``/
    ``peak_bytes``) are thin views over :mod:`repro.obs.metrics` instruments;
    when a registry is installed at construction time the pool binds them
    under a unique ``pool=...`` label so ``expose_text`` shows live pools.
    """

    _COUNTERS = ("hits", "misses", "evictions")
    _GAUGES = ("used_bytes", "peak_bytes")

    def __init__(self, cap_bytes: int | None = None):
        if cap_bytes is not None and cap_bytes <= 0:
            raise BufferPoolError("cap must be positive (or None for unlimited)")
        self.cap_bytes = cap_bytes
        self._blocks: "OrderedDict[tuple, BufferedBlock]" = OrderedDict()
        for f in self._COUNTERS:
            setattr(self, "_" + f, obs_metrics.Counter("repro_pool_" + f))
        for f in self._GAUGES:
            setattr(self, "_" + f, obs_metrics.Gauge("repro_pool_" + f))
        registry = obs_metrics.CURRENT
        if registry is not None:
            self.bind(registry, pool=registry.seq("pool"))

    def bind(self, registry: obs_metrics.MetricsRegistry, **labels) -> None:
        """Adopt this pool's instruments into ``registry`` under ``labels``."""
        for f in self._COUNTERS + self._GAUGES:
            inst = getattr(self, "_" + f)
            inst.labels = dict(labels)
            registry.register(inst)

    # -- residency ------------------------------------------------------------

    def contains(self, key: tuple) -> bool:
        return key in self._blocks

    def fetch(self, key: tuple, loader: Callable[[], np.ndarray]) -> BufferedBlock:
        """Resident block for ``key``, loading via ``loader`` on a miss."""
        blk = self._blocks.get(key)
        tracer = obs_trace.CURRENT
        if blk is not None:
            self.hits += 1
            if tracer is not None:
                tracer.instant("pool.hit", "pool", key=str(key))
            self._blocks.move_to_end(key)
            return blk
        self.misses += 1
        if tracer is not None:
            tracer.instant("pool.miss", "pool", key=str(key))
        data = loader()
        return self._admit(key, data)

    def put(self, key: tuple, data: np.ndarray, dirty: bool = False) -> BufferedBlock:
        """Install (or replace) a block produced in memory."""
        old = self._blocks.pop(key, None)
        if old is not None:
            self.used_bytes -= old.nbytes
        blk = self._admit(key, data)
        if old is not None:
            blk.pins = old.pins
        blk.dirty = dirty
        return blk

    def _admit(self, key: tuple, data: np.ndarray) -> BufferedBlock:
        blk = BufferedBlock(key, data)
        self._make_room(blk.nbytes)
        self._blocks[key] = blk
        self.used_bytes += blk.nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)
        return blk

    def _make_room(self, incoming: int) -> None:
        if self.cap_bytes is None:
            return
        if incoming > self.cap_bytes:
            raise BufferPoolError(
                f"block of {incoming} bytes exceeds pool cap {self.cap_bytes}")
        while self.used_bytes + incoming > self.cap_bytes:
            victim = next((b for b in self._blocks.values() if b.pins == 0), None)
            if victim is None:
                raise BufferPoolError(
                    f"memory cap {self.cap_bytes} exceeded with all "
                    f"{len(self._blocks)} blocks pinned "
                    f"(need {incoming}, used {self.used_bytes})")
            if victim.dirty:
                raise BufferPoolError(
                    f"evicting dirty block {victim.key}: the plan failed to "
                    f"schedule its write-back")
            del self._blocks[victim.key]
            self.used_bytes -= victim.nbytes
            self.evictions += 1
            tracer = obs_trace.CURRENT
            if tracer is not None:
                tracer.instant("pool.evict", "pool", key=str(victim.key),
                               bytes=victim.nbytes)

    # -- pinning -----------------------------------------------------------------

    def pin(self, key: tuple) -> None:
        try:
            blk = self._blocks[key]
        except KeyError:
            raise BufferPoolError(f"pin of non-resident block {key}") from None
        blk.pins += 1
        tracer = obs_trace.CURRENT
        if tracer is not None:
            tracer.instant("pool.pin", "pool", key=str(key), pins=blk.pins)

    def unpin(self, key: tuple) -> None:
        try:
            blk = self._blocks[key]
        except KeyError:
            raise BufferPoolError(f"unpin of non-resident block {key}") from None
        if blk.pins <= 0:
            raise BufferPoolError(f"unpin without pin on {key}")
        blk.pins -= 1
        tracer = obs_trace.CURRENT
        if tracer is not None:
            tracer.instant("pool.unpin", "pool", key=str(key), pins=blk.pins)

    def release(self, key: tuple, force: bool = False) -> None:
        """Drop a block regardless of LRU position (pins must be zero).

        A dirty block holds data that never reached disk; dropping it is the
        same data loss ``_make_room`` refuses, so it raises here too unless
        ``force=True`` (teardown escape hatch for callers that know the data
        is dead).
        """
        blk = self._blocks.get(key)
        if blk is None:
            return
        if blk.pins > 0:
            raise BufferPoolError(f"release of pinned block {key}")
        if blk.dirty and not force:
            raise BufferPoolError(
                f"release of dirty block {key} would discard unwritten data "
                f"(schedule its write-back, or pass force=True to drop it)")
        del self._blocks[key]
        self.used_bytes -= blk.nbytes

    def release_if_unpinned(self, key: tuple, force: bool = False) -> bool:
        """Drop ``key`` iff it is resident with a zero pin count.

        The plan-exact engine's end-of-instance sweep: returns ``True`` when
        the block was dropped, ``False`` when it is absent or still pinned.
        Dirty blocks raise exactly as :meth:`release` does.
        """
        blk = self._blocks.get(key)
        if blk is None or blk.pins > 0:
            return False
        self.release(key, force=force)
        return True

    def pin_count(self, key: tuple) -> int:
        blk = self._blocks.get(key)
        return blk.pins if blk is not None else 0

    def mark_clean(self, key: tuple) -> None:
        blk = self._blocks.get(key)
        if blk is not None:
            blk.dirty = False

    # -- introspection --------------------------------------------------------------

    def resident_keys(self) -> list[tuple]:
        return list(self._blocks)

    def pinned_bytes(self) -> int:
        return sum(b.nbytes for b in self._blocks.values() if b.pins > 0)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        cap = "unbounded" if self.cap_bytes is None else f"{self.cap_bytes}B"
        return (f"BufferPool({len(self._blocks)} blocks, {self.used_bytes}B used, "
                f"cap {cap}, peak {self.peak_bytes}B)")


def _stat_view(field: str) -> property:
    attr = "_" + field

    def fget(self):
        return getattr(self, attr).value

    def fset(self, value):
        getattr(self, attr).value = value

    return property(fget, fset)


for _f in BufferPool._COUNTERS + BufferPool._GAUGES:
    setattr(BufferPool, _f, _stat_view(_f))
del _f
