"""LAB-tree — Linearized Array B-tree (RIOTStore [26]).

The second RIOTStore format: a disk-paged B+-tree keyed by the linearized
block index, with block payloads in a separate data segment.  For dense
matrices it behaves like the DAF (every block present exactly once); unlike
the DAF it supports sparse population — blocks are materialized on first
write — which is what the original paper used it for.

Layout:

* ``<name>.labt`` — 4 KiB tree pages.  Page 0 is the meta page (magic,
  geometry, root page id, page count, next free data offset).  Leaf pages
  hold sorted (key, data_offset) pairs plus a next-leaf link; internal pages
  hold sorted separator keys and child page ids.
* ``<name>.labd`` — block payloads, one extent per materialized block.

Tree-page I/O is metadata and is not charged to the plan (the paper's
numbers count block transfers); payload I/O is counted.
"""

from __future__ import annotations

import struct
from typing import Iterator, Sequence

import numpy as np

from ..exceptions import StorageError
from .blocks import BlockChecksums, BlockLayout, read_block_verified
from .disk import SimulatedDisk

__all__ = ["LABTree"]


def _lower_bound(keys: list[int], key: int) -> int:
    """First index i with keys[i] >= key."""
    import bisect
    return bisect.bisect_left(keys, key)


def _upper_bound(keys: list[int], key: int) -> int:
    """First index i with keys[i] > key (the child slot for descent)."""
    import bisect
    return bisect.bisect_right(keys, key)

PAGE_SIZE = 4096
_MAGIC = b"LABT"
_META_FMT = "<4sqqqqqqq"  # magic, rows, cols, brow, bcol, itemsize, root, npages
_META_EXTRA_FMT = "<q"     # next data offset (appended after meta fmt)
_LEAF, _INTERNAL = 1, 2
# Node header: type (1 byte) + nkeys (int32) + next_leaf (int64)
_NODE_HDR = struct.Struct("<bih")
_ORDER = (PAGE_SIZE - 16) // 16 - 1  # (key, value) int64 pairs per page


class _Node:
    __slots__ = ("page_id", "kind", "keys", "values", "next_leaf")

    def __init__(self, page_id: int, kind: int, keys=None, values=None,
                 next_leaf: int = -1):
        self.page_id = page_id
        self.kind = kind
        self.keys: list[int] = keys or []
        # leaf: data offsets; internal: child page ids (len(keys) + 1)
        self.values: list[int] = values or []
        self.next_leaf = next_leaf

    @property
    def is_leaf(self) -> bool:
        return self.kind == _LEAF


class LABTree:
    """B+-tree-backed blocked matrix with the same API as DAFMatrix."""

    def __init__(self, disk: SimulatedDisk, name: str, layout: BlockLayout):
        self.disk = disk
        self.name = name
        self.layout = layout
        self.tree_file = disk.open(name + ".labt")
        self.data_file = disk.open(name + ".labd")
        self.checksums = BlockChecksums(disk.open(name + ".labc"),
                                        layout.num_blocks)
        self._root = 1
        self._npages = 2
        self._next_data = 0
        self._cache: dict[int, _Node] = {}

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, disk: SimulatedDisk, name: str, grid: Sequence[int],
               block_shape: Sequence[int], dtype=np.float64) -> "LABTree":
        layout = BlockLayout(grid, block_shape, dtype)
        tree = cls(disk, name, layout)
        root = _Node(1, _LEAF)
        tree._write_node(root)
        tree._write_meta()
        return tree

    @classmethod
    def open(cls, disk: SimulatedDisk, name: str) -> "LABTree":
        raw = disk.open(name + ".labt").read_at(0, PAGE_SIZE, count=False)
        magic, rows, cols, brow, bcol, itemsize, root, npages = \
            struct.unpack_from(_META_FMT, raw, 0)
        if magic != _MAGIC:
            raise StorageError(f"{name}: not a LAB-tree file")
        (next_data,) = struct.unpack_from(_META_EXTRA_FMT, raw,
                                          struct.calcsize(_META_FMT))
        dtype = {8: np.float64, 4: np.float32}[itemsize]
        tree = cls(disk, name, BlockLayout((rows, cols), (brow, bcol), dtype))
        tree._root, tree._npages, tree._next_data = root, npages, next_data
        return tree

    def _write_meta(self) -> None:
        g = self.layout.grid
        b = self.layout.block_shape
        raw = struct.pack(_META_FMT, _MAGIC, g[0], g[1], b[0], b[1],
                          self.layout.dtype.itemsize, self._root, self._npages)
        raw += struct.pack(_META_EXTRA_FMT, self._next_data)
        self.tree_file.write_at(0, raw.ljust(PAGE_SIZE, b"\0"), count=False)

    # -- node (page) I/O: metadata, uncounted --------------------------------------

    def _read_node(self, page_id: int) -> _Node:
        if page_id in self._cache:
            return self._cache[page_id]
        raw = self.tree_file.read_at(page_id * PAGE_SIZE, PAGE_SIZE, count=False)
        kind, nkeys, next_leaf = _NODE_HDR.unpack_from(raw, 0)
        body = np.frombuffer(raw, dtype=np.int64,
                             count=2 * nkeys + (0 if kind == _LEAF else 1),
                             offset=16)
        if kind == _LEAF:
            keys = [int(v) for v in body[:nkeys]]
            values = [int(v) for v in body[nkeys:2 * nkeys]]
            node = _Node(page_id, kind, keys, values, next_leaf)
        else:
            keys = [int(v) for v in body[:nkeys]]
            values = [int(v) for v in body[nkeys:2 * nkeys + 1]]
            node = _Node(page_id, kind, keys, values)
        self._cache[page_id] = node
        return node

    def _write_node(self, node: _Node) -> None:
        nkeys = len(node.keys)
        raw = _NODE_HDR.pack(node.kind, nkeys, node.next_leaf).ljust(16, b"\0")
        vals = node.keys + node.values
        raw += np.asarray(vals, dtype=np.int64).tobytes()
        if len(raw) > PAGE_SIZE:
            raise StorageError("LAB-tree node overflow (order bug)")
        self.tree_file.write_at(node.page_id * PAGE_SIZE,
                                raw.ljust(PAGE_SIZE, b"\0"), count=False)
        self._cache[node.page_id] = node

    def _alloc_page(self) -> int:
        page_id = self._npages
        self._npages += 1
        return page_id

    # -- search / insert -----------------------------------------------------------

    def _find_leaf(self, key: int) -> list[_Node]:
        """Root-to-leaf path for ``key``."""
        path = [self._read_node(self._root)]
        while not path[-1].is_leaf:
            node = path[-1]
            idx = _upper_bound(node.keys, key)
            path.append(self._read_node(node.values[idx]))
        return path

    def _lookup(self, key: int) -> int | None:
        leaf = self._find_leaf(key)[-1]
        idx = _lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return None

    def _insert(self, key: int, value: int) -> None:
        path = self._find_leaf(key)
        leaf = path[-1]
        idx = _lower_bound(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.values[idx] = value
            self._write_node(leaf)
            return
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._split_up(path)
        self._write_meta()

    def _split_up(self, path: list[_Node]) -> None:
        node = path[-1]
        self._write_node(node)
        level = len(path) - 1
        while len(node.keys) > _ORDER:
            mid = len(node.keys) // 2
            if node.is_leaf:
                right = _Node(self._alloc_page(), _LEAF,
                              node.keys[mid:], node.values[mid:], node.next_leaf)
                sep = right.keys[0]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
                node.next_leaf = right.page_id
            else:
                right = _Node(self._alloc_page(), _INTERNAL,
                              node.keys[mid + 1:], node.values[mid + 1:])
                sep = node.keys[mid]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid + 1]
            self._write_node(node)
            self._write_node(right)
            if level == 0:
                new_root = _Node(self._alloc_page(), _INTERNAL,
                                 [sep], [node.page_id, right.page_id])
                self._write_node(new_root)
                self._root = new_root.page_id
                return
            level -= 1
            parent = path[level]
            idx = _upper_bound(parent.keys, sep)
            parent.keys.insert(idx, sep)
            parent.values.insert(idx + 1, right.page_id)
            self._write_node(parent)
            node = parent

    # -- block API ------------------------------------------------------------------

    def write_block(self, coords: Sequence[int], block: np.ndarray,
                    count: bool = True) -> None:
        key = self.layout.linearize(coords)
        offset = self._lookup(key)
        if offset is None:
            offset = self._next_data
            self._next_data += self.layout.block_bytes
            self._insert(key, offset)
            self._write_meta()
        data = self.layout.block_to_bytes(block)
        self.data_file.write_at(offset, data, count=count)
        self.checksums.record(key, data)

    def read_block(self, coords: Sequence[int], count: bool = True) -> np.ndarray:
        key = self.layout.linearize(coords)
        offset = self._lookup(key)
        if offset is None:
            raise StorageError(f"{self.name}: block {tuple(coords)} not materialized")
        data = read_block_verified(self.data_file, offset,
                                   self.layout.block_bytes, self.checksums,
                                   key, self.name, coords, count=count)
        return self.layout.bytes_to_block(data)

    def has_block(self, coords: Sequence[int]) -> bool:
        return self._lookup(self.layout.linearize(coords)) is not None

    def iter_keys(self) -> Iterator[int]:
        """All materialized block keys in order (leaf chain walk)."""
        node = self._read_node(self._root)
        while not node.is_leaf:
            node = self._read_node(node.values[0])
        while True:
            yield from node.keys
            if node.next_leaf < 0:
                break
            node = self._read_node(node.next_leaf)

    # -- whole-matrix helpers ------------------------------------------------------------

    def write_matrix(self, matrix: np.ndarray, count: bool = False) -> None:
        if matrix.shape != self.layout.total_shape:
            raise StorageError(
                f"{self.name}: matrix shape {matrix.shape} != {self.layout.total_shape}")
        br, bc = self.layout.block_shape
        for (bi, bj) in self.layout.iter_blocks():
            self.write_block((bi, bj),
                             matrix[bi * br:(bi + 1) * br, bj * bc:(bj + 1) * bc],
                             count=count)

    def read_matrix(self, count: bool = False) -> np.ndarray:
        out = np.zeros(self.layout.total_shape, dtype=self.layout.dtype)
        br, bc = self.layout.block_shape
        for key in list(self.iter_keys()):
            bi, bj = self.layout.delinearize(key)
            out[bi * br:(bi + 1) * br, bj * bc:(bj + 1) * bc] = \
                self.read_block((bi, bj), count=count)
        return out

    def close(self) -> None:
        """Flush the meta page and all file buffers (call before reopen)."""
        self._write_meta()
        self.tree_file.flush()
        self.data_file.flush()
        self.checksums.file.flush()

    def __repr__(self) -> str:
        return f"LABTree({self.name}, {self.layout!r}, root={self._root})"
