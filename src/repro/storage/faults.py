"""Deterministic fault injection and retry policy for the simulated disk.

The paper's engine assumes RIOTStore sits on a reliable device; growing
toward production means the storage layer must *prove* it survives the
usual failure modes.  This module supplies the adversary:

* :class:`FaultPolicy` — per-store / per-op fault rates (transient errors,
  corrupted reads, torn writes), with optional activation delay and budget;
* :class:`FaultInjector` — a seedable decision engine consulted by
  :class:`~repro.storage.disk.DiskFile` on every *counted* operation.  Same
  seed + same operation sequence → same faults, so every failure a test
  provokes is reproducible bit for bit;
* :class:`RetryPolicy` — bounded exponential backoff used by the disk to
  absorb transient faults (absorbed retries are counted in
  ``IOStats.retries``).

Uncounted operations (headers, B-tree pages, checksum sidecars, input
loading) are never faulted: they model metadata the durability machinery
itself relies on, and keeping them clean makes the injected-fault sequence
a deterministic function of the *plan's* I/O alone.
"""

from __future__ import annotations

import logging
import random
import time
from fnmatch import fnmatch
from typing import Iterable, Sequence

from ..cancel import current_interrupt
from ..obs import trace as obs_trace

__all__ = ["FaultPolicy", "FaultInjector", "InjectedFault", "RetryPolicy"]

log = logging.getLogger("repro.storage.faults")


class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``delay(attempt)`` for attempt 1, 2, 3 ... is ``backoff_base * 2**(n-1)``
    capped at ``backoff_cap``.  A zero base disables sleeping entirely
    (useful in tests, where determinism matters and wall time does not).
    """

    __slots__ = ("max_retries", "backoff_base", "backoff_cap")

    def __init__(self, max_retries: int = 4, backoff_base: float = 0.001,
                 backoff_cap: float = 0.05):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap

    def delay(self, attempt: int) -> float:
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))

    def sleep(self, attempt: int, interrupt=None) -> None:
        """Back off before retry ``attempt`` — interruptibly.

        ``interrupt`` is a :class:`threading.Event`; when set (job
        cancellation, service shutdown) the backoff returns immediately so
        the bounded retry loop drains fast and the caller reaches its next
        cancellation checkpoint without stalling.  Defaults to the
        thread-local interrupt installed by the executor / prefetch
        readers (:func:`repro.cancel.interrupt_scope`), so the deep
        ``DiskFile`` retry loops need no signature change.
        """
        d = self.delay(attempt)
        if d <= 0:
            return
        ev = interrupt if interrupt is not None else current_interrupt()
        if ev is None:
            time.sleep(d)
        else:
            ev.wait(d)

    def __repr__(self) -> str:
        return (f"RetryPolicy(max_retries={self.max_retries}, "
                f"base={self.backoff_base}, cap={self.backoff_cap})")


class FaultPolicy:
    """Fault rates for one (file-name pattern, operation) scope.

    ``match`` is an ``fnmatch`` pattern against the file name (e.g.
    ``"A.daf"`` or ``"*.labd"``); ``op`` is ``"read"``, ``"write"`` or
    ``"*"``.  Rates are independent probabilities per operation:

    * ``transient`` — the op raises :class:`TransientIOError` (no transfer);
    * ``corrupt``   — a read completes but returns flipped bytes;
    * ``torn``      — a write lands a strict prefix of its payload, then
      fails as transient (the classic torn-page crash).

    ``after`` skips the first N matching operations (lets a test "break the
    disk" mid-run); ``max_faults`` bounds the total injected by this policy.
    """

    __slots__ = ("match", "op", "transient", "corrupt", "torn",
                 "after", "max_faults", "seen", "injected")

    def __init__(self, match: str = "*", op: str = "*",
                 transient: float = 0.0, corrupt: float = 0.0,
                 torn: float = 0.0, after: int = 0,
                 max_faults: int | None = None):
        if op not in ("read", "write", "*"):
            raise ValueError(f"op must be 'read', 'write' or '*', not {op!r}")
        for name, rate in (("transient", transient), ("corrupt", corrupt),
                           ("torn", torn)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate {rate} outside [0, 1]")
        if transient + corrupt + torn > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        self.match = match
        self.op = op
        self.transient = transient
        self.corrupt = corrupt
        self.torn = torn
        self.after = after
        self.max_faults = max_faults
        self.seen = 0       # matching ops observed
        self.injected = 0   # faults actually injected

    def applies(self, name: str, op: str) -> bool:
        if self.op != "*" and self.op != op:
            return False
        return fnmatch(name, self.match)

    def exhausted(self) -> bool:
        return self.max_faults is not None and self.injected >= self.max_faults

    def __repr__(self) -> str:
        return (f"FaultPolicy({self.match!r}, op={self.op}, "
                f"transient={self.transient}, corrupt={self.corrupt}, "
                f"torn={self.torn}, after={self.after}, "
                f"injected={self.injected})")


class InjectedFault:
    """Trace record of one injected fault."""

    __slots__ = ("seq", "op", "name", "offset", "size", "kind", "detail")

    def __init__(self, seq: int, op: str, name: str, offset: int, size: int,
                 kind: str, detail: int | None = None):
        self.seq = seq
        self.op = op
        self.name = name
        self.offset = offset
        self.size = size
        self.kind = kind        # "transient" | "corrupt" | "torn"
        self.detail = detail    # torn: tear offset; corrupt: flipped byte pos

    def __repr__(self) -> str:
        extra = f"@{self.detail}" if self.detail is not None else ""
        return (f"InjectedFault(#{self.seq} {self.kind}{extra} "
                f"{self.op} {self.name}:{self.offset}+{self.size})")


class FaultInjector:
    """Seedable fault decision engine, consulted per counted disk op.

    The first policy whose scope matches an operation decides its fate;
    every decision draws from one shared :class:`random.Random`, so a fixed
    seed and a fixed operation sequence yield a fixed fault sequence.  Every
    injected fault is appended to ``trace`` and logged on the
    ``repro.storage.faults`` logger.
    """

    def __init__(self, seed: int = 0,
                 policies: Iterable[FaultPolicy] | None = None):
        self.seed = seed
        self.rng = random.Random(seed)
        self.policies: list[FaultPolicy] = list(policies or ())
        self.trace: list[InjectedFault] = []
        self._seq = 0

    @classmethod
    def transient(cls, seed: int = 0, rate: float = 0.05, op: str = "*",
                  match: str = "*") -> "FaultInjector":
        """The common case: uniformly flaky (but recoverable) I/O."""
        return cls(seed, [FaultPolicy(match, op, transient=rate)])

    # -- decision points (called by DiskFile) --------------------------------

    def _decide(self, op: str, name: str, offset: int, size: int
                ) -> tuple[str, int | None] | None:
        for policy in self.policies:
            if not policy.applies(name, op):
                continue
            policy.seen += 1
            if policy.seen <= policy.after or policy.exhausted():
                return None
            u = self.rng.random()
            if u < policy.transient:
                return self._record(policy, op, name, offset, size,
                                    "transient")
            u -= policy.transient
            # Corruption is a read phenomenon, tearing a write phenomenon;
            # each op type has its own second band after the transient one.
            if op == "read" and u < policy.corrupt:
                flip = self.rng.randrange(size) if size > 0 else 0
                return self._record(policy, op, name, offset, size,
                                    "corrupt", flip)
            if op == "write" and u < policy.torn and size > 1:
                tear = 1 + self.rng.randrange(size - 1)
                return self._record(policy, op, name, offset, size,
                                    "torn", tear)
            return None
        return None

    def _record(self, policy: FaultPolicy, op: str, name: str, offset: int,
                size: int, kind: str, detail: int | None = None
                ) -> tuple[str, int | None]:
        policy.injected += 1
        fault = InjectedFault(self._seq, op, name, offset, size, kind, detail)
        self._seq += 1
        self.trace.append(fault)
        tracer = obs_trace.CURRENT
        if tracer is not None:
            tracer.instant("fault.injected", "fault", kind=kind, op=op,
                           file=name, offset=offset, bytes=size, seq=fault.seq)
        log.debug("injected %r", fault)
        return kind, detail

    def on_read(self, name: str, offset: int, size: int
                ) -> tuple[str, int | None] | None:
        """``None`` | ``("transient", None)`` | ``("corrupt", flip_pos)``."""
        return self._decide("read", name, offset, size)

    def on_write(self, name: str, offset: int, size: int
                 ) -> tuple[str, int | None] | None:
        """``None`` | ``("transient", None)`` | ``("torn", tear_offset)``."""
        return self._decide("write", name, offset, size)

    @staticmethod
    def corrupt(data: bytes, flip_pos: int) -> bytes:
        """Return ``data`` with one byte flipped (never a no-op)."""
        if not data:
            return data
        pos = flip_pos % len(data)
        out = bytearray(data)
        out[pos] ^= 0xFF
        return bytes(out)

    # -- introspection -------------------------------------------------------

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for fault in self.trace:
            out[fault.kind] = out.get(fault.kind, 0) + 1
        return out

    def __repr__(self) -> str:
        return (f"FaultInjector(seed={self.seed}, "
                f"{len(self.policies)} policies, {self.counts()})")
