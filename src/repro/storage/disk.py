"""Simulated disk: real files + byte-accurate I/O accounting.

Replaces the paper's instrumented hard drive (substitution #2 in DESIGN.md):
every byte moved through this layer is counted, and volumes are converted to
simulated seconds with the same linear bandwidth model the paper measured
(96 MB/s sustained reads, 60 MB/s writes).  Data really is written to and
read from the filesystem, so executions are faithful end to end; only the
*timing* is modelled rather than waited for.
"""

from __future__ import annotations

import os
from pathlib import Path

from ..exceptions import StorageError
from ..optimizer.costing import IOModel

__all__ = ["IOStats", "SimulatedDisk", "DiskFile"]


class IOStats:
    """Byte and operation counters for one disk."""

    __slots__ = ("read_bytes", "write_bytes", "read_ops", "write_ops")

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.read_bytes = 0
        self.write_bytes = 0
        self.read_ops = 0
        self.write_ops = 0

    def snapshot(self) -> "IOStats":
        s = IOStats()
        s.read_bytes, s.write_bytes = self.read_bytes, self.write_bytes
        s.read_ops, s.write_ops = self.read_ops, self.write_ops
        return s

    def since(self, other: "IOStats") -> "IOStats":
        s = IOStats()
        s.read_bytes = self.read_bytes - other.read_bytes
        s.write_bytes = self.write_bytes - other.write_bytes
        s.read_ops = self.read_ops - other.read_ops
        s.write_ops = self.write_ops - other.write_ops
        return s

    def __repr__(self) -> str:
        return (f"IOStats(read={self.read_bytes}B/{self.read_ops}ops, "
                f"write={self.write_bytes}B/{self.write_ops}ops)")


class SimulatedDisk:
    """A directory of flat files with centralized I/O accounting."""

    def __init__(self, root: str | os.PathLike, io_model: IOModel | None = None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.io_model = io_model or IOModel()
        self.stats = IOStats()
        self._files: dict[str, DiskFile] = {}
        self._closed = False

    def open(self, name: str) -> "DiskFile":
        if self._closed:
            raise StorageError("disk is closed")
        if name not in self._files:
            self._files[name] = DiskFile(self, self.root / name)
        return self._files[name]

    def exists(self, name: str) -> bool:
        return (self.root / name).exists()

    def simulated_seconds(self, stats: IOStats | None = None) -> float:
        s = stats or self.stats
        return self.io_model.seconds(s.read_bytes, s.write_bytes)

    def close(self) -> None:
        for f in self._files.values():
            f.close()
        self._files.clear()
        self._closed = True

    def __enter__(self) -> "SimulatedDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SimulatedDisk({self.root}, {self.stats!r})"


class DiskFile:
    """One file on the simulated disk; positional reads/writes, counted."""

    def __init__(self, disk: SimulatedDisk, path: Path):
        self.disk = disk
        self.path = path
        # "r+b" honours seek positions on write ("a+b" would append always);
        # create the file first if it does not exist yet.
        if not path.exists():
            path.touch()
        self._fh = open(path, "r+b")

    def read_at(self, offset: int, size: int, count: bool = True) -> bytes:
        if offset < 0 or size < 0:
            raise StorageError(f"bad read range offset={offset} size={size}")
        self._fh.seek(offset)
        data = self._fh.read(size)
        if len(data) != size:
            raise StorageError(
                f"{self.path.name}: short read at {offset} ({len(data)}/{size} bytes)")
        if count:
            self.disk.stats.read_bytes += size
            self.disk.stats.read_ops += 1
        return data

    def write_at(self, offset: int, data: bytes, count: bool = True) -> None:
        if offset < 0:
            raise StorageError(f"bad write offset {offset}")
        self._fh.seek(offset)
        self._fh.write(data)
        if count:
            self.disk.stats.write_bytes += len(data)
            self.disk.stats.write_ops += 1

    def size(self) -> int:
        self._fh.seek(0, os.SEEK_END)
        return self._fh.tell()

    def truncate(self, size: int) -> None:
        self._fh.truncate(size)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()
