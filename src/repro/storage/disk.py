"""Simulated disk: real files + byte-accurate I/O accounting.

Replaces the paper's instrumented hard drive (substitution #2 in DESIGN.md):
every byte moved through this layer is counted, and volumes are converted to
simulated seconds with the same linear bandwidth model the paper measured
(96 MB/s sustained reads, 60 MB/s writes).  Data really is written to and
read from the filesystem, so executions are faithful end to end; only the
*timing* is modelled rather than waited for.

Durability (this layer's contract under injected faults, see
``repro.storage.faults``):

* transient faults raised by the :class:`FaultInjector` are absorbed with
  bounded exponential-backoff retries (``IOStats.retries``); exhaustion
  surfaces as a plain :class:`StorageError`;
* with ``atomic_writes`` enabled, every counted write first publishes an
  *undo record* — the about-to-be-overwritten bytes staged to a temp file
  and ``os.rename``d into place (the rename is the atomic commit point,
  optionally fsynced).  A write that dies after exhausting its retries
  leaves the undo record behind; :meth:`SimulatedDisk.recover` rolls the
  torn region back to its pre-write image, so a crashed run restarts from
  a consistent store.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path

from ..exceptions import StorageError, TransientIOError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..optimizer.costing import IOModel
from .faults import FaultInjector, RetryPolicy

__all__ = ["IOStats", "SimulatedDisk", "DiskFile"]

_UNDO_SUFFIX = ".undo"

# Histogram bucket bounds for counted-op payload sizes (bytes).
_BYTE_BUCKETS = (4096, 65536, 1 << 20, 4 << 20, 16 << 20, 64 << 20)


class IOStats:
    """Byte and operation counters for one disk.

    Every public field is a thin view over a
    :class:`repro.obs.metrics.Counter`; :meth:`bind` adopts those counters
    into a metrics registry (done automatically by :class:`SimulatedDisk`
    when a registry is installed), so the same numbers the engine asserts
    on are the numbers the exposition dump shows.
    """

    _FIELDS = ("read_bytes", "write_bytes", "read_ops", "write_ops",
               "retries", "checksum_failures")

    __slots__ = tuple("_" + f for f in _FIELDS) + ("_lock", "_local",
                                                   "mirror")

    def __init__(self):
        for f in self._FIELDS:
            setattr(self, "_" + f, obs_metrics.Counter("repro_io_" + f))
        self._lock = threading.Lock()
        self._local = threading.local()
        # Optional (target IOStats, field-name tuple): deltas to the named
        # fields are forwarded to the target as well.  A sharded disk sets
        # this on each shard so absorbed shard retries surface in the
        # logical aggregate alongside the logical op counts.
        self.mirror: "tuple[IOStats, tuple[str, ...]] | None" = None

    def add(self, **deltas: int) -> None:
        """Atomically accumulate counter deltas (``add(read_bytes=n, ...)``).

        Concurrent executors sharing one disk (:mod:`repro.service`) hammer
        these counters from many threads; the plain ``stats.field += n``
        property path is a read-modify-write that loses increments under
        contention, so every counted-op hot path goes through here.
        """
        with self._lock:
            for f, n in deltas.items():
                counter = getattr(self, "_" + f)
                counter.value += n
        mine = self._local.__dict__
        for f, n in deltas.items():
            mine[f] = mine.get(f, 0) + n
        if self.mirror is not None:
            target, fields = self.mirror
            fwd = {f: n for f, n in deltas.items() if f in fields and n}
            if fwd:
                target.add(**fwd)

    def thread_value(self, field: str) -> int:
        """Cumulative amount *this thread* has added to ``field``.

        Per-access attribution (the engine's ``exec.io`` deltas) measures a
        counter before and after one call; against the shared totals that
        measurement tears as soon as prefetch readers or concurrent
        executors count in between.  Per-thread views make the delta exact
        regardless of what other threads do.
        """
        return self._local.__dict__.get(field, 0)

    def bind(self, registry: "obs_metrics.MetricsRegistry", **labels) -> None:
        """Register this holder's counters as labeled registry series."""
        for f in self._FIELDS:
            counter = getattr(self, "_" + f)
            counter.labels = dict(labels)
            registry.register(counter)

    def reset(self) -> None:
        with self._lock:
            for f in self._FIELDS:
                getattr(self, "_" + f).value = 0

    def snapshot(self) -> "IOStats":
        s = IOStats()
        with self._lock:
            s.read_bytes, s.write_bytes = self.read_bytes, self.write_bytes
            s.read_ops, s.write_ops = self.read_ops, self.write_ops
            s.retries = self.retries
            s.checksum_failures = self.checksum_failures
        return s

    def merge(self, other: "IOStats") -> None:
        """Fold another holder's totals into this one (atomic per field).

        The scale-out primitive: worker processes return ``IOStats``
        snapshots and the parent merges them into its live counters, so
        multi-process totals stay exact rather than sampled.
        """
        deltas = {f: getattr(other, f) for f in self._FIELDS
                  if getattr(other, f)}
        if deltas:
            self.add(**deltas)

    # Pickled as a plain field dict: locks, thread-locals and mirror links
    # are process-private and rebuilt empty on the other side.
    def __getstate__(self) -> dict:
        snap = self.snapshot()
        return {f: getattr(snap, f) for f in self._FIELDS}

    def __setstate__(self, state: dict) -> None:
        self.__init__()
        for f, value in state.items():
            setattr(self, f, value)

    def since(self, other: "IOStats") -> "IOStats":
        """Delta relative to an earlier snapshot, as a fresh ``IOStats``.

        Reads through :meth:`snapshot` so the six fields come from one
        consistent point in time — unlocked field-by-field reads tear
        per-job deltas when concurrent executors are still counting.
        """
        now = self.snapshot()
        s = IOStats()
        for f in self._FIELDS:
            setattr(s, f, getattr(now, f) - getattr(other, f))
        return s

    def __repr__(self) -> str:
        extra = ""
        if self.retries or self.checksum_failures:
            extra = (f", retries={self.retries}, "
                     f"checksum_failures={self.checksum_failures}")
        return (f"IOStats(read={self.read_bytes}B/{self.read_ops}ops, "
                f"write={self.write_bytes}B/{self.write_ops}ops{extra})")


def _stat_view(field: str) -> property:
    attr = "_" + field

    def fget(self):
        return getattr(self, attr).value

    def fset(self, value):
        getattr(self, attr).value = value

    return property(fget, fset)


for _f in IOStats._FIELDS:
    setattr(IOStats, _f, _stat_view(_f))


class SimulatedDisk:
    """A directory of flat files with centralized I/O accounting."""

    def __init__(self, root: str | os.PathLike, io_model: IOModel | None = None,
                 fault_injector: FaultInjector | None = None,
                 retry: RetryPolicy | None = None,
                 atomic_writes: bool = False, fsync: bool = False,
                 pace: float = 0.0, pace_channels: int | None = None):
        # ``pace``: opt-in wall-clock pacing — sleep this fraction of the
        # modeled seconds after every successful counted op.  The default 0
        # keeps timing modeled-but-never-waited-for; the prefetch overlap
        # benchmark sets pace=1.0 so I/O-compute overlap shows up in wall
        # time the way it would against the paper's physical disk.
        # ``pace_channels``: cap on how many paced transfers proceed at
        # once.  ``None`` (default) keeps the historical unbounded pacing —
        # every thread sleeps its own modeled time in parallel, a device
        # with infinite channels.  Setting 1 models a single spindle/NVMe
        # channel whose transfers serialize, which is what makes striping
        # across shards (each with its own channel) a real throughput win.
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.io_model = io_model or IOModel()
        self.stats = IOStats()
        # Metrics (off unless a registry is installed): adopt the stats
        # counters as labeled series and keep per-op payload histograms.
        registry = obs_metrics.CURRENT
        self._hist_read = self._hist_write = None
        if registry is not None:
            label = registry.seq("disk")
            self.stats.bind(registry, disk=label)
            self._hist_read = registry.histogram(
                "repro_disk_op_bytes", buckets=_BYTE_BUCKETS,
                op="read", disk=label)
            self._hist_write = registry.histogram(
                "repro_disk_op_bytes", buckets=_BYTE_BUCKETS,
                op="write", disk=label)
        self.fault_injector = fault_injector
        self.retry = retry or RetryPolicy()
        self.atomic_writes = atomic_writes
        self.fsync = fsync
        self.pace = float(pace)
        self.pace_channels = pace_channels
        self._pace_sem = (threading.BoundedSemaphore(pace_channels)
                          if pace_channels and pace_channels > 0 else None)
        self._files: dict[str, DiskFile] = {}
        self._open_lock = threading.Lock()
        self._closed = False

    def open(self, name: str) -> "DiskFile":
        # Serialized: concurrent executors opening the same store must share
        # one DiskFile (and its file lock), not race two handles into being.
        with self._open_lock:
            if self._closed:
                raise StorageError("disk is closed")
            if name not in self._files:
                self._files[name] = DiskFile(self, self.root / name)
            return self._files[name]

    def exists(self, name: str) -> bool:
        return (self.root / name).exists()

    def simulated_seconds(self, stats: IOStats | None = None) -> float:
        s = stats or self.stats
        return self.io_model.seconds(s.read_bytes, s.write_bytes)

    def pace_sleep(self, read_bytes: int = 0, write_bytes: int = 0) -> None:
        """Sleep the paced fraction of the modeled transfer time (no-op at
        the default ``pace=0``).  Called outside any file lock so paced
        transfers on different threads genuinely overlap."""
        if self.pace:
            delay = self.io_model.seconds(read_bytes, write_bytes) * self.pace
            if self._pace_sem is None:
                time.sleep(delay)
            else:
                with self._pace_sem:
                    time.sleep(delay)

    # -- crash recovery ------------------------------------------------------

    def pending_undos(self) -> list[Path]:
        """Undo records left behind by writes that died mid-flight."""
        return sorted(self.root.glob(f".*{_UNDO_SUFFIX}"))

    def recover(self, match=None) -> int:
        """Roll back every interrupted write to its pre-write image.

        Call before opening stores (e.g. at the start of a resumed run):
        each surviving undo record restores the bytes the torn write
        clobbered, and stale staging temps are removed.  Returns the number
        of regions restored.

        ``match`` (a predicate on the target file name) scopes recovery to
        one job's files — a live multi-query service retrying a failed job
        must roll back *that job's* stale undos without touching undo
        records of writes other jobs have genuinely in flight.
        """
        for tmp in self.root.glob(f".*{_UNDO_SUFFIX}.tmp"):
            if match is None or match(_parse_undo_name(tmp.name[:-4])[0]):
                tmp.unlink()
        restored = 0
        for undo in self.pending_undos():
            target, offset = _parse_undo_name(undo.name)
            if match is not None and not match(target):
                continue
            path = self.root / target
            if path.exists():
                data = undo.read_bytes()
                with open(path, "r+b") as fh:
                    fh.seek(offset)
                    fh.write(data)
                    fh.flush()
                    if self.fsync:
                        os.fsync(fh.fileno())
                restored += 1
            undo.unlink()
        return restored

    def close(self) -> None:
        for f in self._files.values():
            f.close()
        self._files.clear()
        self._closed = True

    def __enter__(self) -> "SimulatedDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SimulatedDisk({self.root}, {self.stats!r})"


def _undo_name(target: str, offset: int) -> str:
    return f".{target}@{offset}{_UNDO_SUFFIX}"


def _parse_undo_name(name: str) -> tuple[str, int]:
    stem = name[1:-len(_UNDO_SUFFIX)]  # strip leading "." and suffix
    target, _, offset = stem.rpartition("@")
    return target, int(offset)


class DiskFile:
    """One file on the simulated disk; positional reads/writes, counted.

    Counted operations pass through the disk's fault injector (if any) and
    its retry policy; uncounted (metadata) operations are always clean.
    """

    def __init__(self, disk: SimulatedDisk, path: Path):
        self.disk = disk
        self.path = path
        # "r+b" honours seek positions on write ("a+b" would append always);
        # create the file first if it does not exist yet.
        if not path.exists():
            path.touch()
        self._fh = open(path, "r+b")
        # Positional I/O is a seek-then-transfer pair on one shared handle;
        # concurrent executors reading different blocks of the same store
        # must not interleave the pairs.  Held only around file-handle
        # operations — never across retry backoff sleeps.
        self._lock = threading.Lock()

    def read_at(self, offset: int, size: int, count: bool = True) -> bytes:
        if offset < 0 or size < 0:
            raise StorageError(f"bad read range offset={offset} size={size}")
        injector = self.disk.fault_injector if count else None
        attempt = 0
        while True:
            fault = injector.on_read(self.path.name, offset, size) \
                if injector else None
            if fault is not None and fault[0] == "transient":
                attempt += 1
                err = TransientIOError(
                    f"{self.path.name}: injected transient read fault at "
                    f"{offset} (attempt {attempt})")
                if attempt > self.disk.retry.max_retries:
                    raise StorageError(
                        f"{self.path.name}: read at {offset} failed after "
                        f"{attempt} attempts (transient I/O errors)") from err
                self.disk.stats.add(retries=1)
                tracer = obs_trace.CURRENT
                if tracer is not None:
                    tracer.instant("disk.retry", "storage", op="read",
                                   file=self.path.name, offset=offset,
                                   attempt=attempt)
                self.disk.retry.sleep(attempt)
                continue
            with self._lock:
                self._fh.seek(offset)
                data = self._fh.read(size)
            if len(data) != size:
                raise StorageError(
                    f"{self.path.name}: short read at {offset} "
                    f"({len(data)}/{size} bytes)")
            if fault is not None and fault[0] == "corrupt":
                data = FaultInjector.corrupt(data, fault[1])
            if count:
                self.disk.stats.add(read_bytes=size, read_ops=1)
                if self.disk._hist_read is not None:
                    self.disk._hist_read.observe(size)
                tracer = obs_trace.CURRENT
                if tracer is not None:
                    tracer.instant("disk.read", "storage",
                                   file=self.path.name, offset=offset,
                                   bytes=size)
                self.disk.pace_sleep(read_bytes=size)
            return data

    def write_at(self, offset: int, data: bytes, count: bool = True,
                 atomic: bool | None = None) -> None:
        """Positional write; ``atomic`` defaults to the disk policy for
        counted writes (metadata writes are in-place, as before)."""
        if offset < 0:
            raise StorageError(f"bad write offset {offset}")
        if atomic is None:
            atomic = self.disk.atomic_writes and count
        undo = self._stage_undo(offset, len(data)) if atomic else None
        # On failure the undo record deliberately survives for recover().
        self._write_retried(offset, data, count)
        if undo is not None:
            undo.unlink(missing_ok=True)
        if count:
            self.disk.stats.add(write_bytes=len(data), write_ops=1)
            if self.disk._hist_write is not None:
                self.disk._hist_write.observe(len(data))
            tracer = obs_trace.CURRENT
            if tracer is not None:
                tracer.instant("disk.write", "storage", file=self.path.name,
                               offset=offset, bytes=len(data))
            self.disk.pace_sleep(write_bytes=len(data))

    def _stage_undo(self, offset: int, size: int) -> Path | None:
        """Publish the pre-write image of ``[offset, offset+size)``.

        Temp-file write then ``os.rename`` — the rename is atomic on POSIX,
        so a crash leaves either no record or a complete one.  Returns
        ``None`` for writes extending the file (nothing to preserve).
        """
        current = self.size()
        if offset >= current:
            return None
        keep = min(size, current - offset)
        with self._lock:
            self._fh.seek(offset)
            old = self._fh.read(keep)
        undo = self.path.parent / _undo_name(self.path.name, offset)
        tmp = undo.parent / (undo.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(old)
            fh.flush()
            if self.disk.fsync:
                os.fsync(fh.fileno())
        os.rename(tmp, undo)
        return undo

    def _write_retried(self, offset: int, data: bytes, count: bool) -> None:
        injector = self.disk.fault_injector if count else None
        attempt = 0
        while True:
            fault = injector.on_write(self.path.name, offset, len(data)) \
                if injector else None
            if fault is not None:
                kind, detail = fault
                if kind == "torn":
                    # A strict prefix lands before the op dies.
                    with self._lock:
                        self._fh.seek(offset)
                        self._fh.write(data[:detail])
                        self._fh.flush()
                attempt += 1
                err = TransientIOError(
                    f"{self.path.name}: injected {kind} write fault at "
                    f"{offset} (attempt {attempt})")
                if attempt > self.disk.retry.max_retries:
                    raise StorageError(
                        f"{self.path.name}: write at {offset} failed after "
                        f"{attempt} attempts ({kind} I/O errors)") from err
                self.disk.stats.add(retries=1)
                tracer = obs_trace.CURRENT
                if tracer is not None:
                    tracer.instant("disk.retry", "storage", op="write",
                                   kind=kind, file=self.path.name,
                                   offset=offset, attempt=attempt)
                self.disk.retry.sleep(attempt)
                continue
            with self._lock:
                self._fh.seek(offset)
                self._fh.write(data)
                if self.disk.fsync:
                    self._fh.flush()
                    os.fsync(self._fh.fileno())
            return

    def size(self) -> int:
        with self._lock:
            self._fh.seek(0, os.SEEK_END)
            return self._fh.tell()

    def truncate(self, size: int) -> None:
        self._fh.truncate(size)

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()
