"""Plan verification utilities.

Independent checks of what the optimizer promises (used by the test suite,
and available to downstream users who want to audit a plan before running
it on real data):

* :func:`check_legality` — every dependence pair executes in order under
  the plan's schedule (Definition 2's requirement on legal schedules);
* :func:`check_realization` — every realized sharing pair is scheduled the
  way Table 1 demands (same time up to the constant dimension for non-self
  pairs; consecutive at the last depth for self pairs);
* :func:`check_injectivity` — distinct statement instances get distinct
  times (the dimensionality constraint of Section 5.2);
* :func:`verify_plan` — all of the above.

All checks are concrete (for bound parameters) and raise
:class:`~repro.exceptions.ScheduleError` with a precise counterexample.
"""

from __future__ import annotations

from typing import Mapping

from .analysis import ProgramAnalysis
from .exceptions import ScheduleError
from .ir import Program, lex_less
from .optimizer.plan import Plan

__all__ = ["check_legality", "check_realization", "check_injectivity",
           "verify_plan"]


def check_legality(program: Program, params: Mapping[str, int],
                   plan: Plan, analysis: ProgramAnalysis) -> None:
    """Every dependence pair must execute in order under the plan."""
    for dep in analysis.dependences:
        src_s = dep.co.src.statement
        tgt_s = dep.co.tgt.statement
        for (ps, pt) in dep.co.pairs(params):
            ts = plan.schedule.time_vector(src_s, ps, params)
            tt = plan.schedule.time_vector(tgt_s, pt, params)
            if not lex_less(ts, tt):
                raise ScheduleError(
                    f"plan {plan.index} violates dependence {dep.label}: "
                    f"{src_s.name}@{ps} (t={ts}) !< {tgt_s.name}@{pt} (t={tt})")


def check_realization(program: Program, params: Mapping[str, int],
                      plan: Plan) -> None:
    """Realized pairs must be adjacent per Table 1."""
    for opp in plan.realized:
        src_s = opp.co.src.statement
        tgt_s = opp.co.tgt.statement
        for (ps, pt) in opp.co.pairs(params):
            ts = plan.schedule.time_vector(src_s, ps, params)
            tt = plan.schedule.time_vector(tgt_s, pt, params)
            if opp.is_self:
                if ts[:-2] != tt[:-2] or abs(ts[-2] - tt[-2]) != 1:
                    raise ScheduleError(
                        f"plan {plan.index}: self opportunity {opp.label} "
                        f"pair {ps}->{pt} not consecutive ({ts} vs {tt})")
            else:
                if ts[:-1] != tt[:-1] or ts[-1] == tt[-1]:
                    raise ScheduleError(
                        f"plan {plan.index}: opportunity {opp.label} pair "
                        f"{ps}->{pt} not co-scheduled ({ts} vs {tt})")


def check_injectivity(program: Program, params: Mapping[str, int],
                      plan: Plan) -> None:
    """Distinct statement instances must map to distinct times."""
    seen: dict[tuple, tuple] = {}
    for stmt in program.statements:
        for point in stmt.instances(params):
            t = plan.schedule.time_vector(stmt, point, params)
            key = tuple(t)
            if key in seen and seen[key] != (stmt.name, point):
                other = seen[key]
                raise ScheduleError(
                    f"plan {plan.index}: time {key} assigned to both "
                    f"{other[0]}@{other[1]} and {stmt.name}@{point}")
            seen[key] = (stmt.name, point)


def verify_plan(program: Program, params: Mapping[str, int], plan: Plan,
                analysis: ProgramAnalysis) -> None:
    """Run every check; raises on the first violation."""
    check_injectivity(program, params, plan)
    check_legality(program, params, plan, analysis)
    check_realization(program, params, plan)
