"""Cost-model validation: the plan's predicted I/O vs traced actuals.

The paper's argument (Section 5.4, Figures 3(b)-6(b)) is that a linear I/O
model over exactly counted block transfers predicts real execution.  This
module turns that claim into a machine-checkable audit: join the
prediction embedded in an :class:`~repro.codegen.exec_plan.ExecutablePlan`
(the same annotated trace the cost evaluator used) against the ``exec.io``
events the engine emitted while running it, per statement and per array,
and pass/fail each row under a configurable byte tolerance.

The module is deliberately duck-typed — it needs only ``exec_plan.trace``
(with ``ScheduledEvent``-shaped entries) and an iterable of trace events
(:class:`~repro.obs.trace.TraceEvent` objects or their dicts), so it
imports nothing from the rest of the package and stays dependency-free.

On a fault-free plan-exact run every row is byte-exact (tolerance 0).
Fault-absorbing runs read extra bytes healing checksum failures; the
report carries ``retries`` / ``checksum_failures`` so those runs reconcile
too (see ``report.predicted_vs_actual_csv``).
"""

from __future__ import annotations

import io
from typing import Iterable, Mapping

__all__ = ["ValidationRow", "CostValidation", "validate_cost",
           "predicted_io_by_group", "actual_io_from_events"]

#: Statement label the engine uses for resume re-warm reads — real I/O that
#: no plan prediction covers, so it is reported but excluded from pass/fail.
RESUME_STMT = "<resume>"


class ValidationRow:
    """Predicted vs actual bytes for one scope (statement x array)."""

    __slots__ = ("statement", "array", "predicted_read", "actual_read",
                 "predicted_write", "actual_write")

    def __init__(self, statement: str | None, array: str | None,
                 predicted_read: int, actual_read: int,
                 predicted_write: int, actual_write: int):
        self.statement = statement      # None = aggregated over statements
        self.array = array              # None = aggregated over arrays
        self.predicted_read = predicted_read
        self.actual_read = actual_read
        self.predicted_write = predicted_write
        self.actual_write = actual_write

    @property
    def scope(self) -> str:
        if self.statement is None and self.array is None:
            return "total"
        if self.statement is None:
            return f"array {self.array}"
        return f"{self.statement} x {self.array}"

    def ok(self, tolerance: float) -> bool:
        return (_within(self.predicted_read, self.actual_read, tolerance)
                and _within(self.predicted_write, self.actual_write,
                            tolerance))

    def __repr__(self) -> str:
        return (f"ValidationRow({self.scope}: "
                f"read {self.predicted_read}/{self.actual_read}, "
                f"write {self.predicted_write}/{self.actual_write})")


def _within(predicted: int, actual: int, tolerance: float) -> bool:
    return abs(actual - predicted) <= tolerance * max(predicted, 1)


class CostValidation:
    """The full audit: per-scope rows, a verdict, and the durability story."""

    __slots__ = ("rows", "extra_rows", "tolerance", "passed",
                 "predicted_io_seconds", "actual_io_seconds",
                 "retries", "checksum_failures", "note")

    def __init__(self, rows: list[ValidationRow],
                 extra_rows: list[ValidationRow], tolerance: float,
                 predicted_io_seconds: float | None,
                 actual_io_seconds: float | None,
                 retries: int = 0, checksum_failures: int = 0,
                 note: str = ""):
        self.rows = rows                # audited (statement/array/total)
        self.extra_rows = extra_rows    # shown, not audited (resume re-warms)
        self.tolerance = tolerance
        self.passed = all(r.ok(tolerance) for r in rows)
        self.predicted_io_seconds = predicted_io_seconds
        self.actual_io_seconds = actual_io_seconds
        self.retries = retries
        self.checksum_failures = checksum_failures
        self.note = note

    def failures(self) -> list[ValidationRow]:
        return [r for r in self.rows if not r.ok(self.tolerance)]

    @property
    def total(self) -> ValidationRow:
        return next(r for r in self.rows
                    if r.statement is None and r.array is None)

    def to_csv(self) -> str:
        out = io.StringIO()
        out.write("scope,predicted_read_bytes,actual_read_bytes,"
                  "predicted_write_bytes,actual_write_bytes,ok\n")
        for r in self.rows + self.extra_rows:
            audited = r in self.rows
            ok = r.ok(self.tolerance) if audited else ""
            out.write(f"\"{r.scope}\",{r.predicted_read},{r.actual_read},"
                      f"{r.predicted_write},{r.actual_write},{ok}\n")
        return out.getvalue()

    def to_text(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"cost-model validation: {verdict} "
                 f"(byte tolerance {self.tolerance:.1%})"]
        if self.predicted_io_seconds is not None:
            lines.append(f"  predicted I/O {self.predicted_io_seconds:.3f}s, "
                         f"traced actual {self.actual_io_seconds:.3f}s "
                         f"(linear model over audited bytes)")
        if self.retries or self.checksum_failures:
            lines.append(f"  durability: {self.retries} transient retries, "
                         f"{self.checksum_failures} checksum failures healed "
                         f"(healing re-reads explain read-byte excess)")
        if self.note:
            lines.append(f"  note: {self.note}")
        header = (f"  {'scope':<24} {'pred read':>12} {'act read':>12} "
                  f"{'pred write':>12} {'act write':>12}  ok")
        lines.append(header)
        for r in self.rows:
            lines.append(f"  {r.scope:<24} {r.predicted_read:>12} "
                         f"{r.actual_read:>12} {r.predicted_write:>12} "
                         f"{r.actual_write:>12}  "
                         f"{'yes' if r.ok(self.tolerance) else 'NO'}")
        for r in self.extra_rows:
            lines.append(f"  {r.scope:<24} {r.predicted_read:>12} "
                         f"{r.actual_read:>12} {r.predicted_write:>12} "
                         f"{r.actual_write:>12}  (not audited)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"CostValidation({'PASS' if self.passed else 'FAIL'}, "
                f"{len(self.rows)} rows, tol={self.tolerance})")


def predicted_io_by_group(exec_plan) -> dict[tuple[str, str], list[int]]:
    """Predicted counted bytes per (statement, array) from the plan's own
    annotated trace — exactly what ``evaluate_plan`` charges at run scale."""
    groups: dict[tuple[str, str], list[int]] = {}
    for ev in exec_plan.trace.events:
        key = (ev.access.statement.name, ev.access.array.name)
        rw = groups.setdefault(key, [0, 0])
        if ev.is_write:
            if not (ev.saved or ev.elided):
                rw[1] += ev.bytes
        elif not ev.saved:
            rw[0] += ev.bytes
    return groups


def actual_io_from_events(events: Iterable) -> dict[tuple[str, str], list[int]]:
    """Traced counted bytes per (statement, array) from ``exec.io`` events."""
    groups: dict[tuple[str, str], list[int]] = {}
    for ev in events:
        if isinstance(ev, Mapping):
            name, args = ev.get("name"), ev.get("args") or {}
        else:
            name, args = ev.name, ev.args or {}
        if name != "exec.io" or not args.get("bytes"):
            continue
        key = (args["stmt"], args["array"])
        rw = groups.setdefault(key, [0, 0])
        rw[0 if args["op"] == "read" else 1] += args["bytes"]
    return groups


def validate_cost(exec_plan, events: Iterable, io_model=None,
                  tolerance: float = 0.0, retries: int = 0,
                  checksum_failures: int = 0, note: str = "") -> CostValidation:
    """Join plan prediction against traced actuals; audit every scope.

    ``events`` is any iterable of trace events (live
    :class:`~repro.obs.trace.TraceEvent` objects or dicts loaded from a
    JSONL file); only ``exec.io`` events participate.  ``io_model`` (any
    object with ``seconds(read_bytes, write_bytes)``) converts audited byte
    totals to the headline predicted/actual seconds.
    """
    predicted = predicted_io_by_group(exec_plan)
    actual = actual_io_from_events(events)

    extra_rows: list[ValidationRow] = []
    for key in sorted(set(actual) - set(predicted)):
        if key[0] == RESUME_STMT:
            a = actual.pop(key)
            extra_rows.append(ValidationRow(key[0], key[1], 0, a[0], 0, a[1]))

    rows: list[ValidationRow] = []
    per_array: dict[str, list[int]] = {}
    tot_p = [0, 0]
    tot_a = [0, 0]
    for key in sorted(set(predicted) | set(actual)):
        p = predicted.get(key, [0, 0])
        a = actual.get(key, [0, 0])
        rows.append(ValidationRow(key[0], key[1], p[0], a[0], p[1], a[1]))
        arr = per_array.setdefault(key[1], [0, 0, 0, 0])
        arr[0] += p[0]
        arr[1] += a[0]
        arr[2] += p[1]
        arr[3] += a[1]
        tot_p[0] += p[0]
        tot_p[1] += p[1]
        tot_a[0] += a[0]
        tot_a[1] += a[1]
    array_rows = [ValidationRow(None, name, *vals)
                  for name, vals in sorted(per_array.items())]
    total_row = ValidationRow(None, None, tot_p[0], tot_a[0], tot_p[1],
                              tot_a[1])

    pred_s = act_s = None
    if io_model is not None:
        pred_s = io_model.seconds(tot_p[0], tot_p[1])
        act_s = io_model.seconds(tot_a[0], tot_a[1])
    return CostValidation([total_row] + array_rows + rows, extra_rows,
                          tolerance, pred_s, act_s, retries,
                          checksum_failures, note)
