"""repro.obs — zero-dependency observability: tracing, metrics, validation.

Three planes, all off by default and near-free when disabled (every
instrumentation site guards on a module-global ``is None`` check):

* :mod:`repro.obs.trace` — a structured trace bus with nested spans, a
  JSONL sink, and a Chrome-trace / Perfetto exporter.  Install a
  :class:`Tracer` (globally via :func:`enable` / ``trace.use``) and the
  optimizer, engine, and storage layers emit typed events: Apriori levels,
  schedule solves, plan costings, per-instance executor spans, buffer-pool
  hit/miss/eviction/pin traffic, disk reads/writes/retries/checksum
  failures, and fault-injector firings.
* :mod:`repro.obs.metrics` — a registry of labeled counters, gauges, and
  histograms with Prometheus-style text exposition and snapshot/diff for
  tests.  ``IOStats``, ``BufferPool``, and ``AprioriStats`` keep their
  public fields as thin views over these instruments and self-register
  when a registry is installed.
* :mod:`repro.obs.validate` — joins a plan's predicted I/O against traced
  actuals per statement and per array: the cost-model audit behind
  ``run_program(..., validate=True)`` and ``python -m repro demo
  --validate-cost``.

Typical use::

    from repro import obs

    tracer, registry = obs.enable(trace_path="run.jsonl")
    ... optimize / run_program ...
    obs.disable()                       # closes the JSONL sink
    print(registry.expose_text())
"""

from __future__ import annotations

from . import metrics, trace, validate
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      read_snapshot)
from .trace import (JsonlSink, TraceEvent, Tracer, chrome_trace,
                    jsonl_to_chrome, read_jsonl)
from .validate import CostValidation, ValidationRow, validate_cost

__all__ = [
    "trace", "metrics", "validate",
    "Tracer", "TraceEvent", "JsonlSink", "chrome_trace", "jsonl_to_chrome",
    "read_jsonl",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "read_snapshot",
    "CostValidation", "ValidationRow", "validate_cost",
    "enable", "disable", "enabled",
]


def enabled() -> bool:
    """Is any observability plane currently installed?"""
    return trace.CURRENT is not None or metrics.CURRENT is not None


def enable(tracer: Tracer | None = None, registry: MetricsRegistry | None = None,
           trace_path=None) -> tuple[Tracer, MetricsRegistry]:
    """Install a tracer and a metrics registry globally (creating defaults).

    ``trace_path`` adds a JSONL sink to a newly created tracer.  Returns
    the installed ``(tracer, registry)`` pair; pair with :func:`disable`.
    """
    if tracer is None:
        sink = JsonlSink(trace_path) if trace_path is not None else None
        tracer = Tracer(sink=sink)
    if registry is None:
        registry = MetricsRegistry()
    trace.install(tracer)
    metrics.install(registry)
    return tracer, registry


def disable() -> None:
    """Uninstall both planes; closes the active tracer's sink, if any."""
    if trace.CURRENT is not None:
        trace.CURRENT.close()
    trace.uninstall()
    metrics.uninstall()
