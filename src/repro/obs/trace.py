"""Structured trace bus: typed events, nested spans, JSONL + Chrome export.

The bus is a process-global :class:`Tracer` slot (``CURRENT``).  When no
tracer is installed — the default — every instrumentation site in the
optimizer, engine, and storage layers reduces to one module-attribute read
and an ``is None`` test, so observability costs nothing unless asked for.

Event model (deliberately close to the Chrome trace format so the export
is a pure re-labelling):

* ``ph="B"`` / ``ph="E"`` — begin/end of a nested span (depth tracked);
* ``ph="i"`` — an instant event;
* ``ts`` — seconds since the tracer's epoch (export converts to µs);
* ``cat`` — the emitting layer (``optimizer`` / ``engine`` / ``storage`` /
  ``pool`` / ``fault``);
* ``args`` — free-form, JSON-serializable payload.

Sinks: every event is appended to the tracer's in-memory list (unless
``keep=False``) and streamed to an optional :class:`JsonlSink`.  The JSONL
file is the durable artifact; :func:`chrome_trace` / :func:`jsonl_to_chrome`
turn either source into a ``chrome://tracing`` / Perfetto-loadable JSON
document.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Mapping

__all__ = ["SCHEMA_VERSION", "TraceEvent", "Tracer", "JsonlSink",
           "chrome_trace", "jsonl_to_chrome", "read_jsonl", "install",
           "uninstall", "use", "span", "instant", "CURRENT"]

#: Version of the JSONL trace-line schema.  Every serialized event carries
#: it as ``"v"`` so downstream readers (``repro.advisor``, external tools)
#: can tell an old trace from a new one instead of silently misparsing.
#: History: lines without ``"v"`` predate versioning and are read as v0;
#: v1 added the field itself plus the service-job end-args the advisor
#: consumes (params, array name map, per-job I/O totals).
SCHEMA_VERSION = 1

#: The process-global tracer; ``None`` means observability is off and every
#: instrumented call site short-circuits on an ``is None`` check.
CURRENT: "Tracer | None" = None


class TraceEvent:
    """One typed event on the bus."""

    __slots__ = ("name", "cat", "ph", "ts", "tid", "depth", "args")

    def __init__(self, name: str, cat: str, ph: str, ts: float, tid: int,
                 depth: int, args: dict | None):
        self.name = name
        self.cat = cat
        self.ph = ph          # "B" | "E" | "i"  (Chrome phase letters)
        self.ts = ts          # seconds since the tracer's epoch
        self.tid = tid
        self.depth = depth
        self.args = args

    def to_dict(self) -> dict:
        d = {"v": SCHEMA_VERSION, "name": self.name, "cat": self.cat,
             "ph": self.ph, "ts": round(self.ts, 9), "tid": self.tid,
             "depth": self.depth}
        if self.args:
            d["args"] = self.args
        return d

    def __repr__(self) -> str:
        return (f"TraceEvent({self.ph} {self.cat}:{self.name} "
                f"@{self.ts:.6f}s depth={self.depth} {self.args or ''})")


class JsonlSink:
    """Streams events to a JSONL file, one JSON object per line.

    Writes are serialized on an internal lock: concurrent emitters (the
    multi-query service traces from every worker thread) would otherwise
    race the buffered text layer, which is not thread-safe and can flush
    corrupt buffer regions into the file.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self._fh = open(self.path, "w")
        self._lock = threading.Lock()
        self.writes = 0

    def write(self, event: TraceEvent) -> None:
        line = json.dumps(event.to_dict()) + "\n"
        with self._lock:
            self._fh.write(line)
            self.writes += 1

    def flush(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.flush()
                self._fh.close()

    def __repr__(self) -> str:
        return f"JsonlSink({self.path}, {self.writes} events)"


class Tracer:
    """Collects :class:`TraceEvent`\\ s with nested-span support.

    Thread-safe in the cheap sense: span depth is tracked per thread, and
    list appends / file writes are GIL-atomic enough for the engine's
    single-writer usage.
    """

    def __init__(self, sink: JsonlSink | None = None, keep: bool = True):
        self.sink = sink
        self.events: list[TraceEvent] = []
        self._keep = keep
        self._epoch = time.perf_counter()
        self._local = threading.local()

    # -- emission ------------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def emit(self, name: str, cat: str, ph: str,
             args: dict | None = None) -> TraceEvent:
        ev = TraceEvent(name, cat, ph, time.perf_counter() - self._epoch,
                        threading.get_ident() & 0xFFFFFFFF,
                        len(self._stack()), args or None)
        if self._keep:
            self.events.append(ev)
        if self.sink is not None:
            self.sink.write(ev)
        return ev

    def instant(self, name: str, cat: str = "", **args) -> TraceEvent:
        return self.emit(name, cat, "i", args)

    def begin(self, name: str, cat: str = "", **args) -> TraceEvent:
        ev = self.emit(name, cat, "B", args)
        self._stack().append((name, cat))
        return ev

    def end(self, **args) -> TraceEvent | None:
        """Close the innermost open span (no-op on an empty stack)."""
        stack = self._stack()
        if not stack:
            return None
        name, cat = stack.pop()
        return self.emit(name, cat, "E", args)

    @contextmanager
    def span(self, name: str, cat: str = "", **args):
        """Nested span; the yielded dict becomes the end event's args."""
        self.begin(name, cat, **args)
        result: dict = {}
        try:
            yield result
        finally:
            self.end(**result)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def __repr__(self) -> str:
        return f"Tracer({len(self.events)} events, sink={self.sink!r})"


# -- global installation -------------------------------------------------------


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-global bus (instrumentation turns on)."""
    global CURRENT
    CURRENT = tracer
    return tracer


def uninstall() -> None:
    """Turn tracing off (instrumented sites go back to near-free)."""
    global CURRENT
    CURRENT = None


@contextmanager
def use(tracer: Tracer | None):
    """Scoped install: restores the previous tracer (or None) on exit."""
    global CURRENT
    prev = CURRENT
    CURRENT = tracer
    try:
        yield tracer
    finally:
        CURRENT = prev


def span(name: str, cat: str = "", **args):
    """Module-level convenience: a span on the current tracer, or a no-op."""
    if CURRENT is None:
        return _null_span()
    return CURRENT.span(name, cat, **args)


def instant(name: str, cat: str = "", **args) -> None:
    """Module-level convenience: an instant on the current tracer, if any."""
    if CURRENT is not None:
        CURRENT.instant(name, cat, **args)


@contextmanager
def _null_span():
    yield {}


# -- Chrome / Perfetto export --------------------------------------------------


def _chrome_event(d: Mapping, pid: int) -> dict:
    out = {"name": d.get("name", "?"), "cat": d.get("cat") or "repro",
           "ph": d.get("ph", "i"), "ts": round(d.get("ts", 0.0) * 1e6, 3),
           "pid": pid, "tid": d.get("tid", 0)}
    if d.get("ph") == "i":
        out["s"] = "t"  # instant scope: thread
    if d.get("args"):
        out["args"] = d["args"]
    return out


def chrome_trace(events: Iterable[TraceEvent | Mapping],
                 pid: int | None = None) -> str:
    """A ``chrome://tracing`` / Perfetto-loadable JSON document."""
    pid = os.getpid() if pid is None else pid
    dicts = [e.to_dict() if isinstance(e, TraceEvent) else e for e in events]
    doc = {"traceEvents": [_chrome_event(d, pid) for d in dicts],
           "displayTimeUnit": "ms"}
    return json.dumps(doc)


def read_jsonl(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL trace file back into event dicts."""
    out = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def jsonl_to_chrome(jsonl_path: str | os.PathLike,
                    out_path: str | os.PathLike | None = None) -> str:
    """Convert a JSONL trace to Chrome JSON; optionally write it to a file."""
    doc = chrome_trace(read_jsonl(jsonl_path))
    if out_path is not None:
        Path(out_path).write_text(doc)
    return doc
