"""Metrics registry: labeled counters, gauges, and histograms.

Zero-dependency, Prometheus-flavoured.  Instruments are plain objects that
exist whether or not a registry is installed — that is what lets the
engine's statistics classes (:class:`~repro.storage.disk.IOStats`,
:class:`~repro.storage.buffer.BufferPool`,
:class:`~repro.optimizer.apriori.AprioriStats`) keep their public fields as
*thin views* over instruments: the fields are properties reading the same
objects the registry exposes.  Installing a registry
(:func:`install` / :func:`use`) makes newly constructed stat holders
register their instruments, so one :meth:`MetricsRegistry.expose_text`
dump shows every live series.

For tests, :meth:`MetricsRegistry.snapshot` captures every series as a flat
``{"name{label=value}": number}`` dict and
:meth:`MetricsRegistry.diff` reports what changed.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Mapping

__all__ = ["SCHEMA_VERSION", "Counter", "Gauge", "Histogram",
           "MetricsRegistry", "read_snapshot", "install", "uninstall", "use",
           "CURRENT"]

#: Version of the JSON snapshot-document schema written by
#: :meth:`MetricsRegistry.write_snapshot`.  Documents carry it as ``"v"``;
#: a bare flat ``{"series": value}`` object (no ``"v"``) is the pre-version
#: legacy form and is read as v0 by :func:`read_snapshot`.
SCHEMA_VERSION = 1

#: The process-global registry; ``None`` means metrics collection is off.
CURRENT: "MetricsRegistry | None" = None


def _label_key(labels: Mapping[str, str]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(labels.items()))
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing (by convention) numeric series."""

    kind = "counter"

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None,
                 value: float = 0):
        self.name = name
        self.labels = dict(labels or {})
        self.value = value

    def inc(self, n: float = 1) -> None:
        self.value += n

    def merge(self, other: "Counter") -> None:
        """Fold another instrument's total into this one (additive)."""
        self.value += other.value

    def series(self) -> list[tuple[str, dict, float]]:
        return [(self.name, self.labels, self.value)]

    # Slotted classes need explicit state for pickling (worker processes
    # ship their registries back to the parent for merging).
    def __getstate__(self) -> dict:
        return {"name": self.name, "labels": self.labels,
                "value": self.value}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.labels = state["labels"]
        self.value = state["value"]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name}{_render_labels(self.labels)}={self.value})"


class Gauge(Counter):
    """A series that can go up and down (or be set directly)."""

    kind = "gauge"

    __slots__ = ()

    def set(self, v: float) -> None:
        self.value = v

    def dec(self, n: float = 1) -> None:
        self.value -= n


class Histogram:
    """Cumulative-bucket histogram (Prometheus style).

    ``buckets`` are the inclusive upper bounds of the finite buckets; an
    implicit ``+Inf`` bucket always exists.  Exposed series are
    ``name_bucket{le=...}``, ``name_sum`` and ``name_count``.
    """

    kind = "histogram"

    DEFAULT_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0)

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count",
                 "_lock")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None,
                 buckets: tuple[float, ...] | None = None):
        self.name = name
        self.labels = dict(labels or {})
        self.buckets = tuple(sorted(buckets or self.DEFAULT_BUCKETS))
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, v: float) -> None:
        with self._lock:
            self.sum += v
            self.count += 1
            for i, le in enumerate(self.buckets):
                if v <= le:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Requires identical bucket bounds — merging across different
        bucketings would silently misplace observations.
        """
        if other.buckets != self.buckets:
            raise ValueError(
                f"{self.name}: cannot merge histograms with different "
                f"buckets {other.buckets} vs {self.buckets}")
        with self._lock:
            for i, c in enumerate(other.counts):
                self.counts[i] += c
            self.sum += other.sum
            self.count += other.count

    def quantile(self, q: float) -> float | None:
        """Estimate the ``q``-quantile (Prometheus ``histogram_quantile``).

        Linear interpolation inside the bucket holding rank ``q * count``;
        the first finite bucket interpolates from 0, and ranks landing in
        the ``+Inf`` bucket clamp to the largest finite bound (the estimate
        a scrape-side ``histogram_quantile`` would report).  Returns
        ``None`` for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return None
        rank = q * total
        cum = 0
        lower = 0.0
        for le, c in zip(self.buckets, counts):
            prev = cum
            cum += c
            if cum >= rank and c > 0:
                frac = (rank - prev) / c
                return lower + (le - lower) * min(1.0, frac)
            lower = le
        return self.buckets[-1] if self.buckets else float("nan")

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.9, 0.99)
                  ) -> dict[str, float | None]:
        """``{"p50": ..., "p90": ..., "p99": ...}`` estimates per ``qs``."""
        return {f"p{q * 100:g}": self.quantile(q) for q in qs}

    def __getstate__(self) -> dict:
        with self._lock:
            return {"name": self.name, "labels": self.labels,
                    "buckets": self.buckets, "counts": list(self.counts),
                    "sum": self.sum, "count": self.count}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.labels = state["labels"]
        self.buckets = state["buckets"]
        self.counts = state["counts"]
        self.sum = state["sum"]
        self.count = state["count"]
        self._lock = threading.Lock()

    def series(self) -> list[tuple[str, dict, float]]:
        out = []
        cum = 0
        for le, c in zip(self.buckets, self.counts):
            cum += c
            out.append((f"{self.name}_bucket", {**self.labels, "le": repr(le)},
                        cum))
        cum += self.counts[-1]
        out.append((f"{self.name}_bucket", {**self.labels, "le": "+Inf"}, cum))
        out.append((f"{self.name}_sum", self.labels, self.sum))
        out.append((f"{self.name}_count", self.labels, self.count))
        return out

    def __repr__(self) -> str:
        return (f"Histogram({self.name}{_render_labels(self.labels)}, "
                f"count={self.count}, sum={self.sum:.6g})")


class MetricsRegistry:
    """Holds labeled instrument series; get-or-create plus adoption.

    ``counter``/``gauge``/``histogram`` get-or-create a series owned by the
    registry.  ``register`` adopts an externally owned instrument (the
    thin-view pattern): an existing series with the same (name, labels) is
    replaced — "the newest holder owns the series".
    """

    def __init__(self):
        self._series: dict[tuple, Counter | Gauge | Histogram] = {}
        self._seq: dict[str, int] = {}
        # Concurrent executors (repro.service) register stat holders from
        # worker threads; registry mutations are serialized on this lock.
        self._lock = threading.RLock()

    # -- get-or-create -------------------------------------------------------

    def _get(self, cls, name: str, labels: Mapping[str, str], **kw):
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._series.get(key)
            if inst is None or not isinstance(inst, cls):
                inst = self._series[key] = cls(name, labels, **kw)
            return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets: tuple[float, ...] | None = None,
                  **labels) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._series.get(key)
            if not isinstance(inst, Histogram):
                inst = self._series[key] = Histogram(name, labels, buckets)
            return inst

    def register(self, instrument: Counter | Gauge | Histogram
                 ) -> Counter | Gauge | Histogram:
        """Adopt an externally owned instrument (replaces same-keyed series).

        Re-registering the same object under new labels moves it: the old
        key is dropped, so a stat holder re-bound with better labels does
        not leave a stale duplicate series behind.
        """
        key = (instrument.name, _label_key(instrument.labels))
        with self._lock:
            stale = [k for k, v in self._series.items()
                     if v is instrument and k != key]
            for k in stale:
                del self._series[k]
            self._series[key] = instrument
            return instrument

    def seq(self, prefix: str) -> str:
        """A registry-scoped unique label value (``pool1``, ``pool2`` ...)."""
        with self._lock:
            n = self._seq.get(prefix, 0) + 1
            self._seq[prefix] = n
            return f"{prefix}{n}"

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold every series of ``other`` into this registry (additive).

        The scale-out primitive: worker processes pickle their registries
        home and the parent merges them, so multi-process exposition shows
        the same totals a single-process run would have counted.  Matching
        (name, labels) series merge in place — counters and gauges add,
        histograms add per-bucket (identical bounds required); series this
        registry has never seen are copied in.  ``other`` is left untouched.
        """
        with other._lock:
            incoming = list(other._series.items())
        with self._lock:
            for key, inst in incoming:
                mine = self._series.get(key)
                if mine is None:
                    # Copy, never adopt: the two registries must not end up
                    # sharing live mutable instruments across processes.
                    clone = type(inst).__new__(type(inst))
                    clone.__setstate__(inst.__getstate__())
                    self._series[key] = clone
                elif type(mine).kind == type(inst).kind:
                    mine.merge(inst)
                else:
                    raise ValueError(
                        f"series {key[0]}{dict(key[1])}: kind mismatch "
                        f"({mine.kind} vs {inst.kind})")
            for prefix, n in other._seq.items():
                self._seq[prefix] = max(self._seq.get(prefix, 0), n)

    def __getstate__(self) -> dict:
        with self._lock:
            return {"series": dict(self._series), "seq": dict(self._seq)}

    def __setstate__(self, state: dict) -> None:
        self._series = state["series"]
        self._seq = state["seq"]
        self._lock = threading.RLock()

    # -- export --------------------------------------------------------------

    def instruments(self) -> list:
        with self._lock:
            return list(self._series.values())

    def expose_text(self) -> str:
        """Prometheus-style text exposition of every series."""
        with self._lock:
            series = dict(self._series)
        lines = []
        seen_types: set[str] = set()
        for key in sorted(series, key=lambda k: (k[0], k[1])):
            inst = series[key]
            if inst.name not in seen_types:
                lines.append(f"# TYPE {inst.name} {inst.kind}")
                seen_types.add(inst.name)
            for name, labels, value in inst.series():
                if isinstance(value, float) and value.is_integer():
                    value = int(value)
                lines.append(f"{name}{_render_labels(labels)} {value}")
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> dict[str, float]:
        """Flat ``{"name{label=value}": number}`` view of every series."""
        out: dict[str, float] = {}
        for inst in self.instruments():
            for name, labels, value in inst.series():
                out[f"{name}{_render_labels(labels)}"] = value
        return out

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.9, 0.99)
                  ) -> dict[str, dict[str, float | None]]:
        """Per-histogram quantile estimates, keyed like :meth:`snapshot`.

        ``{"name{label=value}": {"p50": ..., "p90": ..., "p99": ...}}`` for
        every non-empty histogram series.
        """
        out: dict[str, dict[str, float | None]] = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram) and inst.count:
                out[f"{inst.name}{_render_labels(inst.labels)}"] = \
                    inst.quantiles(qs)
        return out

    def snapshot_doc(self) -> dict:
        """Versioned JSON-serializable snapshot document.

        The ``series`` member is exactly :meth:`snapshot`; ``"v"`` is
        :data:`SCHEMA_VERSION` so offline readers can detect format drift.
        ``quantiles`` (additive, same schema version — v1 readers ignore
        unknown members) carries p50/p90/p99 estimates per histogram.
        """
        return {"v": SCHEMA_VERSION, "kind": "repro.metrics.snapshot",
                "series": self.snapshot(), "quantiles": self.quantiles()}

    def write_snapshot(self, path: str | os.PathLike) -> None:
        """Write :meth:`snapshot_doc` as JSON; pair with :func:`read_snapshot`."""
        Path(path).write_text(json.dumps(self.snapshot_doc(), indent=2,
                                         sort_keys=True) + "\n")

    def diff(self, before: Mapping[str, float]) -> dict[str, float]:
        """Per-series delta versus an earlier :meth:`snapshot` (zero deltas
        and vanished series omitted; new series count from zero)."""
        now = self.snapshot()
        out = {}
        for key, value in now.items():
            delta = value - before.get(key, 0)
            if delta:
                out[key] = delta
        return out

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._series)} series)"


def read_snapshot(path: str | os.PathLike) -> dict[str, float]:
    """Read a metrics snapshot file back into the flat series dict.

    Tolerant across formats: a versioned :meth:`MetricsRegistry.snapshot_doc`
    document (``"v"`` ≤ :data:`SCHEMA_VERSION`), the legacy flat
    ``{"name{labels}": value}`` JSON object (read as v0), or a
    Prometheus-style text exposition (``expose_text`` output).  A document
    from a *newer* writer raises ``ValueError`` instead of misparsing.
    """
    text = Path(path).read_text()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        return _parse_exposition(text)
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: not a metrics snapshot (JSON {type(doc).__name__})")
    if "series" in doc and isinstance(doc["series"], dict):
        v = doc.get("v", 0)
        if not isinstance(v, int) or v > SCHEMA_VERSION:
            raise ValueError(
                f"{path}: snapshot schema v{v} is newer than this reader "
                f"(supports <= v{SCHEMA_VERSION})")
        return {str(k): float(x) for k, x in doc["series"].items()}
    # Legacy flat form: every value must already be a number.
    if any(not isinstance(x, (int, float)) for x in doc.values()):
        raise ValueError(f"{path}: not a metrics snapshot")
    return {str(k): float(x) for k, x in doc.items()}


def _parse_exposition(text: str) -> dict[str, float]:
    """Parse Prometheus text exposition back into a flat series dict."""
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        if not name:
            raise ValueError(f"exposition line {lineno}: {line!r}")
        try:
            out[name] = float(value)
        except ValueError as err:
            raise ValueError(f"exposition line {lineno}: {line!r}") from err
    return out


# -- global installation -------------------------------------------------------


def install(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Make ``registry`` (or a fresh one) the process-global registry."""
    global CURRENT
    CURRENT = registry if registry is not None else MetricsRegistry()
    return CURRENT


def uninstall() -> None:
    global CURRENT
    CURRENT = None


@contextmanager
def use(registry: MetricsRegistry | None):
    """Scoped install: restores the previous registry (or None) on exit."""
    global CURRENT
    prev = CURRENT
    CURRENT = registry
    try:
        yield registry
    finally:
        CURRENT = prev
