"""Workload configurations for the paper's experiments (Tables 2-4)."""

from .configs import (WorkloadConfig, add_multiply_config, generate_inputs,
                      linreg_config, two_matmul_config)
from .generator import random_program

__all__ = [
    "WorkloadConfig",
    "add_multiply_config",
    "two_matmul_config",
    "linreg_config",
    "generate_inputs",
    "random_program",
]
