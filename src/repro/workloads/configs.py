"""Workload configurations reproducing Tables 2, 3 and 4.

Every configuration carries two block geometries:

* the **paper scale** — the exact block shapes of the tables (used for the
  optimizer's predicted-seconds numbers, computed symbolically-exactly at
  block granularity, so no GB-sized data is ever touched);
* the **run scale** — the same block-count grid with blocks shrunk by
  ``scale`` per dimension (default 100), which the engine actually executes
  against the simulated disk.

Because every plan's I/O volume is linear in the block byte size, plan
ordering and savings ratios are identical at both scales.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..ir import Program
from ..ops import add_multiply_program, linreg_program, two_matmul_program

__all__ = ["WorkloadConfig", "add_multiply_config", "two_matmul_config",
           "linreg_config", "generate_inputs"]


class WorkloadConfig:
    """One experiment configuration: program, sizes, and both geometries."""

    def __init__(self, name: str, program: Program, params: Mapping[str, int],
                 paper_block_bytes: Mapping[str, int],
                 input_names: tuple[str, ...], table: str):
        self.name = name
        self.program = program
        self.params = dict(params)
        self.paper_block_bytes = dict(paper_block_bytes)
        self.input_names = input_names
        self.table = table

    def run_block_bytes(self) -> dict[str, int]:
        return {name: arr.block_bytes for name, arr in self.program.arrays.items()}

    def paper_total_gib(self, array: str) -> float:
        arr = self.program.arrays[array]
        return (arr.total_blocks(self.params) * self.paper_block_bytes[array]) / 2 ** 30

    def __repr__(self) -> str:
        return f"WorkloadConfig({self.name}, {self.table}, params={self.params})"


def _bytes2d(rows: int, cols: int) -> int:
    return rows * cols * 8


def add_multiply_config(scale: int = 100) -> WorkloadConfig:
    """Table 2: A,B,C 6000x4000-element blocks in a 12x12 grid; D 4000x5000
    in 12x1; E 6000x5000 in 12x1 (n3 = 1)."""
    prog = add_multiply_program(block_rows=6000 // scale, block_cols=4000 // scale,
                                d_cols=5000 // scale)
    params = {"n1": 12, "n2": 12, "n3": 1}
    paper = {
        "A": _bytes2d(6000, 4000), "B": _bytes2d(6000, 4000),
        "C": _bytes2d(6000, 4000),
        "D": _bytes2d(4000, 5000), "E": _bytes2d(6000, 5000),
    }
    return WorkloadConfig("add_multiply", prog, params, paper,
                          ("A", "B", "D"), "Table 2")


def two_matmul_config(config: str = "A", scale: int = 100) -> WorkloadConfig:
    """Table 3: two matrix multiplications, configurations A and B."""
    if config == "A":
        # A 8000x7000 blocks, 6x6; B,D 7000x3000, 6x10; C,E 8000x3000, 6x10.
        prog = two_matmul_program(a_shape=(8000 // scale, 7000 // scale),
                                  b_shape=(7000 // scale, 3000 // scale),
                                  d_shape=(7000 // scale, 3000 // scale))
        params = {"n1": 6, "n2": 10, "n3": 6, "n4": 10}
        paper = {"A": _bytes2d(8000, 7000),
                 "B": _bytes2d(7000, 3000), "D": _bytes2d(7000, 3000),
                 "C": _bytes2d(8000, 3000), "E": _bytes2d(8000, 3000)}
    elif config == "B":
        # A 2000x8000, 18x6; B 8000x6000, 6x4; C 2000x6000, 18x4;
        # D 8000x7000, 6x4; E 2000x7000, 18x4.
        prog = two_matmul_program(a_shape=(2000 // scale, 8000 // scale),
                                  b_shape=(8000 // scale, 6000 // scale),
                                  d_shape=(8000 // scale, 7000 // scale))
        params = {"n1": 18, "n2": 4, "n3": 6, "n4": 4}
        paper = {"A": _bytes2d(2000, 8000), "B": _bytes2d(8000, 6000),
                 "C": _bytes2d(2000, 6000), "D": _bytes2d(8000, 7000),
                 "E": _bytes2d(2000, 7000)}
    else:
        raise ValueError(f"unknown two-matmul configuration {config!r}")
    return WorkloadConfig(f"two_matmul_{config}", prog, params, paper,
                          ("A", "B", "D"), "Table 3")


def linreg_config(scale: int = 100) -> WorkloadConfig:
    """Table 4: X 60000x4000 blocks in 25x1; Y & friends 60000x400 in 25x1;
    U,W 4000x4000 single-block; V,Bhat 4000x400 single-block."""
    prog = linreg_program(x_block=(60000 // scale, 4000 // scale),
                          y_cols=400 // scale)
    params = {"n": 25}
    paper = {
        "X": _bytes2d(60000, 4000),
        "Y": _bytes2d(60000, 400), "Yhat": _bytes2d(60000, 400),
        "E": _bytes2d(60000, 400),
        "U": _bytes2d(4000, 4000), "W": _bytes2d(4000, 4000),
        "V": _bytes2d(4000, 400), "Bhat": _bytes2d(4000, 400),
        "R": _bytes2d(1, 400),
    }
    return WorkloadConfig("linreg", prog, params, paper, ("X", "Y"), "Table 4")


def generate_inputs(config: WorkloadConfig, seed: int = 0,
                    rng: np.random.Generator | None = None
                    ) -> dict[str, np.ndarray]:
    """Random dense inputs at run scale for every input array."""
    rng = rng or np.random.default_rng(seed)
    out = {}
    for name in config.input_names:
        arr = config.program.arrays[name]
        out[name] = rng.standard_normal(arr.shape_elems(config.params))
    return out
