"""Random static-control program generator (fuzzing support).

Generates small random programs in the class of Section 4.1 — nested loops
with affine block accesses, optional guards, read-modify-write
accumulations — used by the property-based tests to cross-validate the
symbolic analysis against the brute-force oracle on programs nobody
hand-picked.

Programs are *analyzable* by construction (static control, affine
everything); they are not meant to be executed (kernels are placeholders).
"""

from __future__ import annotations

import random
from typing import Sequence

from ..ir import ArrayKind, Program, ProgramBuilder

__all__ = ["random_program"]

_SUBSCRIPT_PATTERNS = [
    lambda vs: vs[0],                 # i
    lambda vs: f"{vs[0]} + 1",        # shifted
    lambda vs: f"n - 1 - {vs[0]}",    # reversed
    lambda vs: vs[-1],                # innermost
]


def random_program(seed: int, n_statements: int = 2, max_depth: int = 2,
                   n_arrays: int = 3, allow_guards: bool = True) -> Program:
    """A random but well-formed static-control program.

    The single parameter ``n`` bounds every loop; arrays are 1-d or 2-d
    with ``n``-sized block grids.  Each statement writes one array and
    reads one or two, with subscripts drawn from a small affine pattern
    pool.  Determinism: same seed, same program.
    """
    rng = random.Random(seed)
    b = ProgramBuilder(f"fuzz{seed}", params=("n",),
                       param_assumptions=("n - 2",))  # n >= 2
    arrays = []
    for a in range(n_arrays):
        rank = rng.choice([1, 2])
        dims = ("n",) * rank
        kind = ArrayKind.INTERMEDIATE if a else ArrayKind.OUTPUT
        arrays.append(b.array(f"A{a}", dims=dims, block_shape=(2,) * rank,
                              kind=kind))

    def subscripts(ref, loop_vars):
        out = []
        for _ in range(ref.array.rank):
            if loop_vars:
                pattern = rng.choice(_SUBSCRIPT_PATTERNS)
                out.append(pattern(rng.sample(loop_vars, len(loop_vars))))
            else:
                out.append("0")
        return tuple(out)

    for s in range(n_statements):
        depth = rng.randint(1, max_depth)
        loop_vars = [f"v{s}_{d}" for d in range(depth)]

        def emit(level: int):
            if level == depth:
                target = rng.choice(arrays)
                write_subs = subscripts(target, loop_vars)
                reads = []
                for _ in range(rng.randint(1, 2)):
                    src = rng.choice(arrays)
                    ref = src[subscripts(src, loop_vars)]
                    if allow_guards and rng.random() < 0.25:
                        ref = ref.when(f"{rng.choice(loop_vars)} - 1")
                    reads.append(ref)
                if rng.random() < 0.4:  # read-modify-write accumulation
                    guard_var = loop_vars[-1]
                    reads.append(target[write_subs].when(f"{guard_var} - 1"))
                b.statement(f"s{s + 1}", kernel="nop",
                            write=target[write_subs], reads=reads)
                return
            v = loop_vars[level]
            lo = 0
            hi = "n" if rng.random() < 0.8 else "n - 1"
            with b.loop(v, lo, hi):
                emit(level + 1)

        emit(0)
    return b.build()
