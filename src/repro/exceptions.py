"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the optimizer / engine with one handler.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class PolyhedralError(ReproError):
    """Malformed polyhedral object or unsupported operation."""


class SpaceMismatchError(PolyhedralError):
    """Two polyhedral objects live in incompatible variable spaces."""


class EmptyPolyhedronError(PolyhedralError):
    """An operation that requires a nonempty polyhedron received an empty one."""


class UnboundedError(PolyhedralError):
    """Enumeration or optimization over an unbounded polyhedron."""


class ProgramError(ReproError):
    """Malformed program IR (bad access, non-affine expression, ...)."""


class ScheduleError(ReproError):
    """Malformed or illegal schedule."""


class OptimizationError(ReproError):
    """The optimizer could not produce a plan (e.g. no plan fits memory cap)."""


class StorageError(ReproError):
    """Storage-layer failure (bad block id, store closed, ...)."""


class TransientIOError(StorageError):
    """A retriable I/O failure (injected or environmental).

    The simulated disk absorbs these with bounded exponential-backoff
    retries; only exhaustion surfaces as a plain :class:`StorageError`.
    """


class CorruptBlockError(StorageError):
    """A block's payload failed checksum verification after all re-reads."""


class BufferPoolError(StorageError):
    """Buffer manager failure (cap exceeded, unpin without pin, ...)."""


class CircuitOpen(StorageError):
    """A store's circuit breaker is open: recent persistent failures mean
    further I/O against it would only burn retry budget, so calls fail
    fast until the cooldown elapses and a probe succeeds."""


class ExecutionError(ReproError):
    """Plan execution failure (kernel error, verification mismatch, ...)."""


class ServiceError(ReproError):
    """Multi-query array service failure (see :mod:`repro.service`)."""


class ServiceClosed(ServiceError):
    """Job submitted to a service that has been shut down."""


class ServiceQueueFull(ServiceError):
    """The service's bounded job queue is at capacity; resubmit later."""


class AdmissionRejected(ServiceError):
    """The job's plan can never fit the service's global memory budget."""


class AdmissionTimeout(ServiceError):
    """The job waited longer than its admission timeout for memory budget."""


class JobCancelled(ServiceError):
    """The job was cooperatively cancelled before it could complete.

    Raised from the job's future after :meth:`JobHandle.cancel` (or a
    service shutdown with ``cancel_running=True``) is observed at the next
    cancellation checkpoint — never the stdlib ``CancelledError``, so every
    service failure stays a typed :class:`ReproError`.
    """


class DeadlineExceeded(JobCancelled):
    """The job's deadline (``submit(timeout=/deadline=)``) passed before it
    finished; treated as a cancellation observed at the next checkpoint."""


class ServiceOverloaded(ServiceError):
    """The service is shedding load: new submissions are rejected until the
    backlog drains below the degradation policy's high-water mark."""


class AdvisorError(ReproError):
    """Workload-advisor failure: unreadable trace/metrics input, a schema
    newer than this reader, or an unapplicable recommendation
    (see :mod:`repro.advisor`)."""
