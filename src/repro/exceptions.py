"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of the optimizer / engine with one handler.
"""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class PolyhedralError(ReproError):
    """Malformed polyhedral object or unsupported operation."""


class SpaceMismatchError(PolyhedralError):
    """Two polyhedral objects live in incompatible variable spaces."""


class EmptyPolyhedronError(PolyhedralError):
    """An operation that requires a nonempty polyhedron received an empty one."""


class UnboundedError(PolyhedralError):
    """Enumeration or optimization over an unbounded polyhedron."""


class ProgramError(ReproError):
    """Malformed program IR (bad access, non-affine expression, ...)."""


class ScheduleError(ReproError):
    """Malformed or illegal schedule."""


class OptimizationError(ReproError):
    """The optimizer could not produce a plan (e.g. no plan fits memory cap)."""


class StorageError(ReproError):
    """Storage-layer failure (bad block id, store closed, ...)."""


class TransientIOError(StorageError):
    """A retriable I/O failure (injected or environmental).

    The simulated disk absorbs these with bounded exponential-backoff
    retries; only exhaustion surfaces as a plain :class:`StorageError`.
    """


class CorruptBlockError(StorageError):
    """A block's payload failed checksum verification after all re-reads."""


class BufferPoolError(StorageError):
    """Buffer manager failure (cap exceeded, unpin without pin, ...)."""


class ExecutionError(ReproError):
    """Plan execution failure (kernel error, verification mismatch, ...)."""
