"""Comparator systems for the Section 6.1 comparison (substitution #5).

Matlab and SciDB are closed substrates; we model them as *execution
policies* over the same storage engine, which preserves what the comparison
is actually about — who shares I/O and who materializes everything:

* :func:`matlab_like` — operator-at-a-time blocked execution: exactly the
  program's original plan (every intermediate materialized, no cross-
  operator sharing) plus a control/storage overhead factor on total time.
  The paper measured blocked Matlab at 2.65x the best plan.
* :func:`scidb_like` — chunk-at-a-time execution without an optimized BLAS:
  the original plan with a kernel-efficiency multiplier on CPU time and a
  per-chunk management overhead on I/O.  The paper measured 33x; the factor
  here is configurable and defaults far smaller — we reproduce the ordering
  (SciDB >> Matlab > optimized), not the closed-source constant.
* :func:`manual_best` — the paper's hand-written Matlab implementation of
  the optimizer's best plan: same I/O as the best plan, marginally better
  in-memory constant (they measured 6%).

All three run the real engine, so their I/O volumes are measured, not
asserted.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..engine import run_program
from ..ir import Program
from ..optimizer import OptimizationResult

__all__ = ["BaselineReport", "matlab_like", "scidb_like", "manual_best"]


class BaselineReport:
    """Simulated total running time of one comparator."""

    __slots__ = ("name", "io_seconds", "cpu_seconds", "overhead_factor")

    def __init__(self, name: str, io_seconds: float, cpu_seconds: float,
                 overhead_factor: float = 1.0):
        self.name = name
        self.io_seconds = io_seconds
        self.cpu_seconds = cpu_seconds
        self.overhead_factor = overhead_factor

    @property
    def total_seconds(self) -> float:
        return (self.io_seconds + self.cpu_seconds) * self.overhead_factor

    def __repr__(self) -> str:
        return (f"BaselineReport({self.name}: io={self.io_seconds:.2f}s, "
                f"cpu={self.cpu_seconds:.2f}s, x{self.overhead_factor:.2f} "
                f"=> {self.total_seconds:.2f}s)")


def matlab_like(program: Program, params: Mapping[str, int],
                result: OptimizationResult, workdir,
                inputs: Mapping[str, np.ndarray],
                control_overhead: float = 1.35) -> BaselineReport:
    """Blocked, operator-at-a-time execution (the original plan) with a
    control/storage overhead factor."""
    report, _ = run_program(program, params, result.original_plan, workdir,
                            inputs, io_model=result.io_model)
    return BaselineReport("matlab-like", report.simulated_io_seconds,
                          report.cpu_seconds, control_overhead)


def scidb_like(program: Program, params: Mapping[str, int],
               result: OptimizationResult, workdir,
               inputs: Mapping[str, np.ndarray],
               kernel_slowdown: float = 12.0,
               chunk_overhead: float = 1.6) -> BaselineReport:
    """Chunk-at-a-time execution with an unoptimized kernel model.

    ``chunk_overhead`` models per-chunk management I/O (> Matlab's control
    factor, so the ordering SciDB > Matlab holds even when measured CPU time
    is negligible at run scale); ``kernel_slowdown`` models the non-BLAS
    in-memory execution the paper observed."""
    report, _ = run_program(program, params, result.original_plan, workdir,
                            inputs, io_model=result.io_model)
    return BaselineReport("scidb-like",
                          report.simulated_io_seconds * chunk_overhead,
                          report.cpu_seconds * kernel_slowdown, 1.0)


def manual_best(program: Program, params: Mapping[str, int],
                result: OptimizationResult, workdir,
                inputs: Mapping[str, np.ndarray],
                inmemory_advantage: float = 0.94) -> BaselineReport:
    """Hand-implementing the optimizer's best plan in a Matlab-like host."""
    report, _ = run_program(program, params, result.best(), workdir,
                            inputs, io_model=result.io_model)
    return BaselineReport("manual-best", report.simulated_io_seconds,
                          report.cpu_seconds * inmemory_advantage, 1.0)
