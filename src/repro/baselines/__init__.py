"""Comparator executors for the Section 6.1 comparison (Matlab / SciDB /
hand-optimized), modelled as execution policies over the real engine."""

from .comparators import BaselineReport, manual_best, matlab_like, scidb_like

__all__ = ["BaselineReport", "matlab_like", "scidb_like", "manual_best"]
