"""Schedules: affine maps from iteration domains to multidimensional time.

Two flavours appear in the system:

* the **original schedule** of a program, encoded in 2d+1 form — beta
  constants (textual positions) interleaved with the loop variables — which
  pins down the source program's execution order exactly;
* **searched schedules** produced by the optimizer, in the paper's
  (d~+1)-dimensional form with a constant last dimension (Section 4.2).

Both are represented uniformly: per statement, a tuple of affine rows over
the statement's loop variables and the program parameters.  Time vectors are
compared lexicographically; this module also expands the *symbolic*
precedence relation ``Theta_s x < Theta_s' x'`` into polyhedral disjuncts in
a product space, which is how extent polyhedra (Definition 1) get built
without enumerating instances.

Access-granularity ordering appends a *micro* time component (reads at 0,
the write at 1 within one statement instance), which the
no-write-in-between rule requires.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..exceptions import ScheduleError
from ..polyhedral import Space
from .expr import AffineExpr, affine
from .program import Access, Program, Statement

__all__ = ["Schedule", "precedence_disjuncts", "Disjunct"]


class Schedule:
    """A program schedule: per-statement tuples of affine time rows."""

    __slots__ = ("rows", "meta")

    def __init__(self, rows: Mapping[str, Sequence[AffineExpr]], meta: dict | None = None):
        self.rows: dict[str, tuple[AffineExpr, ...]] = {
            name: tuple(affine(r) for r in rs) for name, rs in rows.items()}
        self.meta = meta or {}

    # -- constructors --------------------------------------------------------

    @classmethod
    def original(cls, program: Program) -> "Schedule":
        """The 2d+1-form schedule encoding the program's textual order.

        For a statement with loop variables (l1, ..., ld) at textual position
        (c0, c1, ..., cd), time is (c0, l1, c1, l2, ..., ld, cd).
        """
        rows: dict[str, list[AffineExpr]] = {}
        for s in program.statements:
            if len(s.position) != s.depth + 1:
                raise ScheduleError(
                    f"{s.name}: position length {len(s.position)} != depth+1 = {s.depth + 1}")
            rs: list[AffineExpr] = [AffineExpr.constant(s.position[0])]
            for lvl, var in enumerate(s.loop_vars):
                rs.append(AffineExpr.var(var))
                rs.append(AffineExpr.constant(s.position[lvl + 1]))
            rows[s.name] = rs
        return cls(rows, meta={"form": "original-2d+1"})

    # -- evaluation ------------------------------------------------------------

    def rows_for(self, stmt: Statement) -> tuple[AffineExpr, ...]:
        try:
            return self.rows[stmt.name]
        except KeyError:
            raise ScheduleError(f"schedule has no rows for statement {stmt.name}") from None

    def time_vector(self, stmt: Statement, point: Sequence[int],
                    params: Mapping[str, int]) -> tuple[Fraction, ...]:
        bindings = dict(zip(stmt.loop_vars, point))
        bindings.update(params)
        return tuple(r.evaluate(bindings) for r in self.rows_for(stmt))

    def access_time_vector(self, access: Access, point: Sequence[int],
                           params: Mapping[str, int]) -> tuple[Fraction, ...]:
        """Statement time extended with the access's micro position."""
        stmt = access.statement
        return self.time_vector(stmt, point, params) + (Fraction(access.micro),)

    # -- symbolic rows -----------------------------------------------------------

    def rows_in_space(self, stmt: Statement, space: Space,
                      rename: Mapping[str, str] | None = None,
                      micro: int | None = None) -> list[list[Fraction]]:
        """Schedule rows as coefficient rows over ``space`` (+ constant).

        ``rename`` maps the statement's variable names (loop vars, params) to
        names in ``space`` (used for product spaces, e.g. ``i -> src_i``).
        ``micro`` appends one constant micro-time row.
        """
        rename = rename or {}
        out = []
        for r in self.rows_for(stmt):
            row = [Fraction(0)] * (space.dim + 1)
            for name, coeff in r.coeffs.items():
                row[space.index(rename.get(name, name))] = coeff
            row[-1] = r.const
            out.append(row)
        if micro is not None:
            last = [Fraction(0)] * (space.dim + 1)
            last[-1] = Fraction(micro)
            out.append(last)
        return out

    def __repr__(self) -> str:
        parts = [f"{name}: ({', '.join(str(r) for r in rows)})"
                 for name, rows in sorted(self.rows.items())]
        return "Schedule{" + "; ".join(parts) + "}"


class Disjunct:
    """One depth-r disjunct of a lexicographic comparison: a conjunction of
    equality and inequality rows in some product space."""

    __slots__ = ("eqs", "ineqs", "depth")

    def __init__(self, eqs: list[list[Fraction]], ineqs: list[list[Fraction]], depth: int):
        self.eqs = eqs
        self.ineqs = ineqs
        self.depth = depth


def precedence_disjuncts(rows_src: Sequence[Sequence[Fraction]],
                         rows_tgt: Sequence[Sequence[Fraction]]) -> list[Disjunct] | None:
    """Polyhedral expansion of ``t_src < t_tgt`` (lexicographic, strict).

    Both inputs are rows over one shared product space.  Returns one
    :class:`Disjunct` per viable depth, with constant-only rows folded away
    (trivially-true equalities dropped, trivially-false disjuncts pruned).

    Returns None when the comparison is decided *true* purely by constants at
    some depth whose prefix is all trivially-equal — callers then need no
    constraints at all (the order always holds).  An empty list means the
    order can never hold.
    """
    ndepths = min(len(rows_src), len(rows_tgt))
    disjuncts: list[Disjunct] = []
    prefix_eqs: list[list[Fraction]] = []
    for r in range(ndepths):
        diff = [t - s for s, t in zip(rows_src[r], rows_tgt[r])]
        # Strict at depth r: diff - 1 >= 0 (integer times).
        strict = list(diff)
        strict[-1] -= 1
        if _is_constant_row(diff):
            c = diff[-1]
            if c >= 1 and not prefix_eqs:
                return None  # unconditionally earlier at this depth
            if c >= 1:
                disjuncts.append(Disjunct([list(e) for e in prefix_eqs], [], r))
                # deeper disjuncts would need prefix c==0, impossible
                return disjuncts
            # c <= 0: strict impossible at this depth; equality requires c == 0
            if c != 0:
                return disjuncts  # prefix equality now impossible for deeper r
            continue  # equality trivially holds; no constraint to add
        disjuncts.append(Disjunct([list(e) for e in prefix_eqs], [strict], r))
        prefix_eqs.append(diff)
    return disjuncts


def _is_constant_row(row: Sequence[Fraction]) -> bool:
    return all(v == 0 for v in row[:-1])


def lex_less(a: Sequence[Fraction], b: Sequence[Fraction]) -> bool:
    """Strict lexicographic comparison of concrete time vectors.

    Vectors of different lengths (original 2d+1 schedules of statements at
    different depths) are compared up to the shorter length; an exhausted
    equal prefix is rejected as ambiguous, which cannot happen for
    well-formed beta paths.
    """
    for x, y in zip(a, b):
        if x != y:
            return x < y
    if len(a) == len(b):
        return False
    raise ScheduleError(f"ambiguous time comparison between {a} and {b}")
