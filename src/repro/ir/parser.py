"""Pseudo-code front end (the paper's Clan [3] role).

Parses C-style static-control loop nests — the notation the paper itself
uses for Example 1 — into :class:`Program` IR:

    for (i = 0; i < n1; ++i)
      for (k = 0; k < n2; ++k)
        C[i,k] = A[i,k] + B[i,k];        // s1
    for (i = 0; i < n1; ++i)
      for (j = 0; j < n3; ++j)
        for (k = 0; k < n2; ++k)
          E[i,j] += C[i,k] * D[k,j];     // s2

Supported constructs:

* ``for (v = lo; v < hi; ++v) { ... }`` (also ``v <= hi`` and bodies
  without braces);
* ``if (cond) { ... }`` with affine conditions (``>=``, ``>``, ``<=``,
  ``<``, ``==``) joined by ``&&``;
* assignment statements ``X[e1,e2] = expr;`` and accumulation ``+=``,
  where the RHS references arrays with affine subscripts; the RHS shape
  determines the kernel (``copy``, ``add``, ``sub``, ``gemm_nn`` for a
  two-factor product);
* ``// name`` trailing comments name statements (else ``s1``, ``s2``...).

Accumulations get the paper's footnote-1 semantics automatically: the
self-read exists only beyond the first iteration of the innermost loop(s)
that the write subscript does not cover.

Array declarations are supplied separately (block shapes are storage-level
information pseudo-code does not carry).
"""

from __future__ import annotations

import re
from typing import Mapping, Sequence

from ..exceptions import ProgramError
from .builder import AccessRef, ArrayRef, ProgramBuilder
from .expr import AffineExpr, affine
from .program import Program

__all__ = ["parse_program", "ArraySpec"]


class ArraySpec:
    """Declaration of one array for the parser: geometry + role."""

    __slots__ = ("dims", "block_shape", "kind", "dtype_bytes")

    def __init__(self, dims: Sequence[str | int], block_shape: Sequence[int],
                 kind: str = "input", dtype_bytes: int = 8):
        self.dims = tuple(dims)
        self.block_shape = tuple(block_shape)
        self.kind = kind
        self.dtype_bytes = dtype_bytes


_TOKEN = re.compile(r"""
    \s*(?:
      (?P<comment>//[^\n]*)
    | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<num>\d+)
    | (?P<op><=|>=|==|\+=|-=|\+\+|--|&&|[-+*/%<>=;(){}\[\],])
    )""", re.VERBOSE)


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            if text[pos:].strip():
                raise ProgramError(f"cannot tokenize pseudo-code at: {text[pos:pos + 30]!r}")
            break
        if m.group("comment"):
            tokens.append(m.group("comment"))
        else:
            tokens.append(m.group("word") or m.group("num") or m.group("op"))
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], builder: ProgramBuilder,
                 arrays: dict[str, ArrayRef]):
        self.tokens = tokens
        self.pos = 0
        self.builder = builder
        self.arrays = arrays
        self.stmt_counter = 0

    # -- token helpers -------------------------------------------------------

    def peek(self) -> str | None:
        while self.pos < len(self.tokens) and self.tokens[self.pos].startswith("//"):
            self.pos += 1  # stray comment lines
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ProgramError("unexpected end of pseudo-code")
        self.pos += 1
        return tok

    def expect(self, want: str) -> None:
        got = self.next()
        if got != want:
            raise ProgramError(f"expected {want!r}, got {got!r}")

    def trailing_comment(self) -> str | None:
        if self.pos < len(self.tokens) and self.tokens[self.pos].startswith("//"):
            text = self.tokens[self.pos][2:].strip()
            self.pos += 1
            return text or None
        return None

    # -- grammar ------------------------------------------------------------------

    def parse_block(self) -> None:
        while self.peek() is not None and self.peek() != "}":
            self.parse_item()

    def parse_item(self) -> None:
        tok = self.peek()
        if tok == "for":
            self.parse_for()
        elif tok == "if":
            self.parse_if()
        elif tok == "{":
            self.next()
            self.parse_block()
            self.expect("}")
        else:
            self.parse_statement()

    def parse_for(self) -> None:
        self.expect("for")
        self.expect("(")
        var = self.next()
        self.expect("=")
        lo = self.parse_affine(stop={";"})
        self.expect(";")
        v2 = self.next()
        if v2 != var:
            raise ProgramError(f"for-loop condition tests {v2!r}, expected {var!r}")
        cmp_op = self.next()
        bound = self.parse_affine(stop={";"})
        if cmp_op == "<":
            hi = bound
        elif cmp_op == "<=":
            hi = bound + 1
        else:
            raise ProgramError(f"unsupported loop comparison {cmp_op!r}")
        self.expect(";")
        inc = self.next()
        if inc == "++":
            if self.next() != var:
                raise ProgramError("loop increment must target the loop variable")
        elif inc == var:
            if self.next() != "++":
                raise ProgramError(f"unsupported increment for {var!r}")
        else:
            raise ProgramError(f"unsupported loop increment near {inc!r}")
        self.expect(")")
        with self.builder.loop(var, lo, hi):
            self.parse_body()

    def parse_if(self) -> None:
        self.expect("if")
        self.expect("(")
        conditions = [self.parse_condition()]
        while self.peek() == "&&":
            self.next()
            conditions.append(self.parse_condition())
        self.expect(")")
        with self.builder.guard(*[c for cs in conditions for c in cs]):
            self.parse_body()

    def parse_body(self) -> None:
        if self.peek() == "{":
            self.next()
            self.parse_block()
            self.expect("}")
        else:
            self.parse_item()

    def parse_condition(self) -> list[AffineExpr]:
        """One comparison -> affine expressions required to be >= 0."""
        lhs = self.parse_affine(stop={"<", "<=", ">", ">=", "==", "&&", ")"})
        op = self.next()
        rhs = self.parse_affine(stop={"&&", ")"})
        if op == ">=":
            return [lhs - rhs]
        if op == ">":
            return [lhs - rhs - 1]
        if op == "<=":
            return [rhs - lhs]
        if op == "<":
            return [rhs - lhs - 1]
        if op == "==":
            return [lhs - rhs, rhs - lhs]
        raise ProgramError(f"unsupported comparison {op!r}")

    def parse_statement(self) -> None:
        target_name = self.next()
        if target_name in ("(", ")", ";"):
            raise ProgramError(f"expected a statement, got {target_name!r}")
        target = self.lookup(target_name)
        subs = self.parse_subscripts()
        op = self.next()
        if op not in ("=", "+="):
            raise ProgramError(f"unsupported assignment operator {op!r}")
        reads, kernel = self.parse_rhs()
        self.expect(";")
        name = self.trailing_comment()
        self.stmt_counter += 1
        if name is None:
            name = f"s{self.stmt_counter}"

        write_ref = target[tuple(subs)]
        if op == "+=":
            kernel = _ACCUMULATING.get(kernel, kernel)
            guard = self._first_iteration_guard(subs)
            acc = target[tuple(subs)]
            if guard is not None:
                acc = acc.when(guard)
            reads = reads + [acc]
        self.builder.statement(name, kernel=kernel, write=write_ref, reads=reads)

    def _first_iteration_guard(self, write_subs: list[AffineExpr]) -> AffineExpr | None:
        """Footnote-1 semantics for ``+=``: the self-read does not happen on
        the first iteration of the reduction loops (the enclosing loop
        variables absent from the write subscript)."""
        used = set()
        for s in write_subs:
            used |= s.variables()
        reduction = [f.var for f in self.builder._loops if f.var not in used]
        if not reduction:
            return None
        # First iteration of the innermost reduction loop combination: all
        # reduction vars at their lower bound => guard is "not all at lo",
        # approximated by the innermost reduction var > lo (exact when a
        # single reduction loop exists, the static-control common case).
        frames = [f for f in self.builder._loops if f.var in reduction]
        inner = frames[-1]
        if len(frames) > 1:
            raise ProgramError(
                "+= with multiple reduction loops is ambiguous; split the "
                "statement or provide explicit if-guards")
        return AffineExpr.var(inner.var) - inner.lo - 1

    def parse_rhs(self) -> tuple[list[AccessRef], str]:
        first = self.parse_operand()
        tok = self.peek()
        if tok == ";":
            return [first], "copy"
        op = self.next()
        second = self.parse_operand()
        if self.peek() not in (";",):
            raise ProgramError("only unary and binary right-hand sides are supported")
        kernel = {"+": "add", "-": "sub", "*": "gemm_nn"}.get(op)
        if kernel is None:
            raise ProgramError(f"unsupported operator {op!r} in right-hand side")
        return [first, second], kernel

    def parse_operand(self) -> AccessRef:
        name = self.next()
        ref = self.lookup(name)
        subs = self.parse_subscripts()
        return ref[tuple(subs)]

    def parse_subscripts(self) -> list[AffineExpr]:
        self.expect("[")
        subs = [self.parse_affine(stop={",", "]"})]
        while self.peek() == ",":
            self.next()
            subs.append(self.parse_affine(stop={",", "]"}))
        self.expect("]")
        return subs

    def parse_affine(self, stop: set[str]) -> AffineExpr:
        parts = []
        depth = 0
        while True:
            tok = self.peek()
            if tok is None:
                break
            if depth == 0 and tok in stop:
                break
            if tok == "(":
                depth += 1
            elif tok == ")":
                if depth == 0:
                    break
                depth -= 1
            parts.append(self.next())
        if not parts:
            raise ProgramError("empty affine expression")
        return affine(" ".join(parts))

    def lookup(self, name: str) -> ArrayRef:
        try:
            return self.arrays[name]
        except KeyError:
            raise ProgramError(f"undeclared array {name!r}") from None


_ACCUMULATING = {"gemm_nn": "gemm_nn", "add": "add_acc", "copy": "copy_acc"}


def parse_program(name: str, source: str, params: Sequence[str],
                  arrays: Mapping[str, ArraySpec],
                  param_assumptions: Sequence[str] = ()) -> Program:
    """Parse C-style pseudo-code into a :class:`Program`.

    ``arrays`` declares geometry and role for every referenced array.
    """
    builder = ProgramBuilder(name, params=params,
                             param_assumptions=param_assumptions)
    refs = {aname: builder.array(aname, spec.dims, spec.block_shape,
                                 spec.dtype_bytes, spec.kind)
            for aname, spec in arrays.items()}
    parser = _Parser(_tokenize(source), builder, refs)
    parser.parse_block()
    if parser.peek() is not None:
        raise ProgramError(f"trailing tokens starting at {parser.peek()!r}")
    return builder.build()
