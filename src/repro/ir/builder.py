"""Loop-nest builder DSL: the front end that produces polyhedral IR.

Plays the role the paper assigns to the operator library + Clan-style code
analysis: users (or the :mod:`repro.ops` operator library) describe a
static-control program as nested loops with block-granularity array
accesses, and the builder derives iteration domains, access functions, and
the original 2d+1 schedule.

Example (the paper's Example 1)::

    b = ProgramBuilder("example1", params=("n1", "n2", "n3"))
    A = b.array("A", dims=("n1", "n2"), block_shape=(60, 40))
    ...
    with b.loop("i", 0, "n1"):
        with b.loop("k", 0, "n2"):
            b.statement("s1", kernel="add",
                        write=C["i", "k"], reads=[A["i", "k"], B["i", "k"]])

Loops use C conventions: ``loop(v, lo, hi)`` is ``for (v = lo; v < hi; ++v)``.
"""

from __future__ import annotations

import contextlib
from typing import Iterable, Mapping, Sequence

from ..exceptions import ProgramError
from ..polyhedral import Polyhedron, Space
from .expr import AffineExpr, affine
from .program import Access, AccessType, Array, ArrayKind, Program, Statement

__all__ = ["ProgramBuilder", "ArrayRef", "AccessRef"]


class AccessRef:
    """A pending access: array + subscripts (+ optional guard), not yet typed."""

    __slots__ = ("array", "subscripts", "guard")

    def __init__(self, array: Array, subscripts: tuple[AffineExpr, ...],
                 guard: tuple[AffineExpr, ...] = ()):
        self.array = array
        self.subscripts = subscripts
        self.guard = guard

    def when(self, *conditions: str | AffineExpr) -> "AccessRef":
        """Restrict the access to instances where each condition >= 0 holds.

        ``C["i", "k"].when("k - 1")`` reads C only when k >= 1.
        """
        extra = tuple(affine(c) for c in conditions)
        return AccessRef(self.array, self.subscripts, self.guard + extra)

    def __repr__(self) -> str:
        subs = ",".join(str(s) for s in self.subscripts)
        return f"{self.array.name}[{subs}]"


class ArrayRef:
    """Builder-side array handle; indexing yields an :class:`AccessRef`."""

    __slots__ = ("array",)

    def __init__(self, array: Array):
        self.array = array

    def __getitem__(self, subscripts) -> AccessRef:
        if not isinstance(subscripts, tuple):
            subscripts = (subscripts,)
        return AccessRef(self.array, tuple(affine(s) for s in subscripts))

    @property
    def name(self) -> str:
        return self.array.name

    def __repr__(self) -> str:
        return f"ArrayRef({self.array.name})"


class _LoopFrame:
    __slots__ = ("var", "lo", "hi", "children", "claimed_slot")

    def __init__(self, var: str, lo: AffineExpr, hi: AffineExpr, claimed_slot: int):
        self.var = var
        self.lo = lo
        self.hi = hi
        self.children = 0  # textual slots used in this loop body
        self.claimed_slot = claimed_slot  # this loop's slot in its parent body


class ProgramBuilder:
    """Accumulates loops / guards / statements and builds a :class:`Program`."""

    def __init__(self, name: str, params: Sequence[str] = (),
                 param_assumptions: Sequence[str | AffineExpr] = ()):
        self.name = name
        self.params = tuple(params)
        self._arrays: dict[str, Array] = {}
        self._statements: list[Statement] = []
        self._loops: list[_LoopFrame] = []
        self._guards: list[AffineExpr] = []
        self._top_children = 0
        # Default assumption: every parameter is at least 1 (array sizes).
        space = Space(self.params)
        ineqs = [AffineExpr.var(p).to_row(space) for p in self.params]
        for i, row in enumerate(ineqs):
            row[-1] -= 1  # p - 1 >= 0
        for expr in param_assumptions:
            ineqs.append(affine(expr).to_row(space))
        self._context = Polyhedron(space, ineqs=ineqs)

    # -- declarations -----------------------------------------------------------

    def array(self, name: str, dims: Sequence[str | int | AffineExpr],
              block_shape: Sequence[int], dtype_bytes: int = 8,
              kind: str | ArrayKind = ArrayKind.INPUT) -> ArrayRef:
        if name in self._arrays:
            raise ProgramError(f"array {name!r} declared twice")
        if isinstance(kind, str):
            kind = ArrayKind(kind)
        arr = Array(name, dims, block_shape, dtype_bytes, kind)
        for d in arr.dims:
            loose = d.variables() - set(self.params)
            if loose:
                raise ProgramError(f"array {name}: non-parameter variables {loose} in dims")
        self._arrays[name] = arr
        return ArrayRef(arr)

    # -- structure ----------------------------------------------------------------

    @contextlib.contextmanager
    def loop(self, var: str, lo: str | int | AffineExpr, hi: str | int | AffineExpr):
        """``for (var = lo; var < hi; ++var)``."""
        if any(f.var == var for f in self._loops):
            raise ProgramError(f"loop variable {var!r} shadows an enclosing loop")
        if var in self.params:
            raise ProgramError(f"loop variable {var!r} collides with a parameter")
        slot = self._claim_slot()
        frame = _LoopFrame(var, affine(lo), affine(hi), slot)
        self._loops.append(frame)
        try:
            yield
        finally:
            popped = self._loops.pop()
            assert popped is frame

    @contextlib.contextmanager
    def guard(self, *conditions: str | AffineExpr):
        """Statements inside run only where every condition >= 0."""
        exprs = [affine(c) for c in conditions]
        self._guards.extend(exprs)
        try:
            yield
        finally:
            del self._guards[len(self._guards) - len(exprs):]

    def _claim_slot(self) -> int:
        if self._loops:
            slot = self._loops[-1].children
            self._loops[-1].children += 1
        else:
            slot = self._top_children
            self._top_children += 1
        return slot

    # -- statements ------------------------------------------------------------------

    def statement(self, name: str, kernel: str = "nop",
                  write: AccessRef | None = None,
                  reads: Iterable[AccessRef] = (),
                  kernel_args: dict | None = None) -> Statement:
        slot = self._claim_slot()
        loop_vars = [f.var for f in self._loops]
        space = Space(tuple(loop_vars) + self.params)
        ineqs = []
        for f in self._loops:
            lo_row = (AffineExpr.var(f.var) - f.lo).to_row(space)          # var - lo >= 0
            hi_row = (f.hi - AffineExpr.var(f.var) - 1).to_row(space)      # hi - var - 1 >= 0
            ineqs.extend([lo_row, hi_row])
        for g in self._guards:
            ineqs.append(g.to_row(space))
        domain = Polyhedron(space, ineqs=ineqs)

        accesses = []
        if write is not None:
            accesses.append(Access(write.array, AccessType.WRITE,
                                   write.subscripts, write.guard))
        for r in reads:
            accesses.append(Access(r.array, AccessType.READ, r.subscripts, r.guard))

        position = self._beta_path() + [slot]
        stmt = Statement(name, loop_vars, domain, accesses, kernel,
                         position=position, kernel_args=kernel_args)
        self._statements.append(stmt)
        return stmt

    def _beta_path(self) -> list[int]:
        """Positions of each enclosing loop within *its* parent body."""
        return [f.claimed_slot for f in self._loops]

    # -- finish ----------------------------------------------------------------------

    def build(self) -> Program:
        if self._loops:
            raise ProgramError("build() called with open loops")
        prog = Program(self.name, self.params, self._arrays,
                       self._statements, self._context)
        prog.validate()
        return prog
