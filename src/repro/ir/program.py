"""Program IR: arrays, accesses, statements, programs (Section 4.1).

A *program* is a set of statements, each with

* an iteration domain ``D_s`` — an integer polyhedron over the statement's
  loop variables and the global parameters;
* a list of accesses ``<s, t, A, Phi>`` — at most one write per statement
  (paper's assumption), each mapping the iteration vector to a *block*
  subscript of an array via an affine function Phi;
* a kernel tag telling the execution engine what in-core computation the
  statement performs on the blocks it touches.

Array subscripts address logical *blocks* (the unit of I/O), never single
elements; block shapes and dtypes live on :class:`Array` so the cost model
and the storage engine can turn block counts into bytes.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from ..exceptions import ProgramError
from ..polyhedral import Polyhedron, Space
from .expr import AffineExpr, affine

__all__ = ["AccessType", "Array", "Access", "Statement", "Program", "ArrayKind"]


class AccessType(enum.Enum):
    READ = "R"
    WRITE = "W"

    def __str__(self) -> str:
        return self.value


class ArrayKind(enum.Enum):
    """How an array participates in the program.

    INPUT arrays pre-exist on disk; OUTPUT arrays must be materialized;
    INTERMEDIATE arrays are created by the program and may legally never be
    written to disk if every read of them is served from memory (footnote 8
    of the paper: the optimizer elides C's write when n3 = 1).
    """

    INPUT = "input"
    OUTPUT = "output"
    INTERMEDIATE = "intermediate"


class Array:
    """A blocked array: ``dims`` counts blocks per dimension (affine in the
    program parameters), ``block_shape`` counts elements per block."""

    __slots__ = ("name", "dims", "block_shape", "dtype_bytes", "kind")

    def __init__(self, name: str, dims: Sequence[AffineExpr | int | str],
                 block_shape: Sequence[int], dtype_bytes: int = 8,
                 kind: ArrayKind = ArrayKind.INPUT):
        self.name = name
        self.dims: tuple[AffineExpr, ...] = tuple(affine(d) for d in dims)
        self.block_shape: tuple[int, ...] = tuple(int(b) for b in block_shape)
        if len(self.dims) != len(self.block_shape):
            raise ProgramError(f"array {name}: dims/block_shape rank mismatch")
        if any(b <= 0 for b in self.block_shape):
            raise ProgramError(f"array {name}: nonpositive block shape")
        self.dtype_bytes = int(dtype_bytes)
        self.kind = kind

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def block_elems(self) -> int:
        n = 1
        for b in self.block_shape:
            n *= b
        return n

    @property
    def block_bytes(self) -> int:
        return self.block_elems * self.dtype_bytes

    def num_blocks(self, params: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(int(d.evaluate(params)) for d in self.dims)

    def total_blocks(self, params: Mapping[str, int]) -> int:
        n = 1
        for d in self.num_blocks(params):
            n *= d
        return n

    def total_bytes(self, params: Mapping[str, int]) -> int:
        return self.total_blocks(params) * self.block_bytes

    def shape_elems(self, params: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(nb * bs for nb, bs in zip(self.num_blocks(params), self.block_shape))

    def __repr__(self) -> str:
        dims = "x".join(str(d) for d in self.dims)
        shape = "x".join(str(b) for b in self.block_shape)
        return f"Array({self.name}: {dims} blocks of {shape}, {self.kind.value})"


class Access:
    """One array access ``<s, t, A, Phi>`` (Section 4.1).

    ``subscripts`` is Phi as affine expressions over the owning statement's
    loop variables and parameters.  ``guard`` optionally restricts the
    instances at which the access happens (e.g. the read side of an
    accumulation exists only for k >= 1); it is a list of affine
    inequalities ``expr >= 0``.
    """

    __slots__ = ("array", "type", "subscripts", "guard", "statement", "micro")

    def __init__(self, array: Array, type: AccessType,
                 subscripts: Sequence[AffineExpr | int | str],
                 guard: Sequence[AffineExpr | str] = ()):
        self.array = array
        self.type = type
        self.subscripts: tuple[AffineExpr, ...] = tuple(affine(s) for s in subscripts)
        if len(self.subscripts) != array.rank:
            raise ProgramError(
                f"access to {array.name}: {len(self.subscripts)} subscripts for rank {array.rank}")
        self.guard: tuple[AffineExpr, ...] = tuple(affine(g) for g in guard)
        self.statement: "Statement | None" = None  # set by Statement
        self.micro = 0  # 0 for reads, 1 for the write; set by Statement

    @property
    def is_write(self) -> bool:
        return self.type is AccessType.WRITE

    def key(self) -> tuple:
        """Identity of the access: (statement, type, array, Phi) per §4.1."""
        stmt = self.statement.name if self.statement else None
        return (stmt, self.type, self.array.name, self.subscripts)

    def domain(self, context: Polyhedron | None = None) -> Polyhedron:
        """The instances at which this access actually happens
        (statement domain intersected with the guard)."""
        if self.statement is None:
            raise ProgramError("access not attached to a statement")
        dom = self.statement.domain
        if self.guard:
            dom = dom.add_constraints(
                ineqs=[g.to_row(dom.space) for g in self.guard])
        if context is not None:
            dom = dom.intersect(context.align(dom.space))
        return dom

    def block_at(self, point: Sequence[int], params: Mapping[str, int]) -> tuple[int, ...]:
        """Concrete block subscript touched at iteration ``point``."""
        if self.statement is None:
            raise ProgramError("access not attached to a statement")
        bindings = dict(zip(self.statement.loop_vars, point))
        bindings.update(params)
        out = []
        for s in self.subscripts:
            v = s.evaluate(bindings)
            if v.denominator != 1:
                raise ProgramError(f"non-integer block subscript {v} in {self}")
            out.append(int(v))
        return tuple(out)

    def guard_holds(self, point: Sequence[int], params: Mapping[str, int]) -> bool:
        if self.statement is None:
            raise ProgramError("access not attached to a statement")
        bindings = dict(zip(self.statement.loop_vars, point))
        bindings.update(params)
        return all(g.evaluate(bindings) >= 0 for g in self.guard)

    def __repr__(self) -> str:
        subs = ",".join(str(s) for s in self.subscripts)
        stmt = self.statement.name if self.statement else "?"
        g = f" if {' and '.join(f'{x}>=0' for x in self.guard)}" if self.guard else ""
        return f"{stmt}{self.type}{self.array.name}[{subs}]{g}"


class Statement:
    """A statement with its iteration domain and accesses.

    ``domain`` lives in the space ``loop_vars + params``.  Reads get
    micro-position 0 and the write micro-position 1, capturing that a
    statement instance reads its operands before writing its result — the
    granularity the no-write-in-between rule needs.
    """

    __slots__ = ("name", "loop_vars", "domain", "accesses", "kernel",
                 "kernel_args", "position", "_instances_cache")

    def __init__(self, name: str, loop_vars: Sequence[str], domain: Polyhedron,
                 accesses: Iterable[Access], kernel: str = "nop",
                 position: Sequence[int] = (),
                 kernel_args: Mapping | None = None):
        self.name = name
        self.loop_vars: tuple[str, ...] = tuple(loop_vars)
        self.domain = domain
        self.accesses: tuple[Access, ...] = tuple(accesses)
        self.kernel = kernel
        self.kernel_args: dict = dict(kernel_args or {})
        # Textual position in the original program: one beta constant per
        # nesting level plus the trailing position (see schedule module).
        self.position: tuple[int, ...] = tuple(position)
        self._instances_cache: dict[tuple, list[tuple[int, ...]]] = {}
        writes = [a for a in self.accesses if a.is_write]
        if len(writes) > 1:
            raise ProgramError(f"statement {name} has {len(writes)} writes (max 1)")
        for a in self.accesses:
            a.statement = self
            a.micro = 1 if a.is_write else 0
        for v in self.loop_vars:
            domain.space.index(v)  # must exist in the domain space

    @property
    def depth(self) -> int:
        return len(self.loop_vars)

    @property
    def write(self) -> Access | None:
        for a in self.accesses:
            if a.is_write:
                return a
        return None

    @property
    def reads(self) -> tuple[Access, ...]:
        return tuple(a for a in self.accesses if not a.is_write)

    def instances(self, params: Mapping[str, int]) -> list[tuple[int, ...]]:
        """All concrete iteration points for bound parameters (memoized)."""
        key = tuple(sorted((k, v) for k, v in params.items()
                           if k in self.domain.space))
        if key not in self._instances_cache:
            self._instances_cache[key] = self.domain.bind(params).integer_points()
        return self._instances_cache[key]

    def __repr__(self) -> str:
        return f"Statement({self.name}, vars={self.loop_vars}, kernel={self.kernel})"


class Program:
    """A static-control program: parameters, arrays, ordered statements.

    ``param_context`` carries assumptions about the parameters (e.g.
    ``n >= 1``) used when testing emptiness of symbolic polyhedra.
    """

    __slots__ = ("name", "params", "arrays", "statements", "param_context")

    def __init__(self, name: str, params: Sequence[str],
                 arrays: Mapping[str, Array], statements: Sequence[Statement],
                 param_context: Polyhedron | None = None):
        self.name = name
        self.params: tuple[str, ...] = tuple(params)
        self.arrays: dict[str, Array] = dict(arrays)
        self.statements: tuple[Statement, ...] = tuple(statements)
        names = [s.name for s in self.statements]
        if len(set(names)) != len(names):
            raise ProgramError(f"duplicate statement names in {name}: {names}")
        if param_context is None:
            param_context = Polyhedron.universe(Space(self.params))
        self.param_context = param_context

    def statement(self, name: str) -> Statement:
        for s in self.statements:
            if s.name == name:
                return s
        raise ProgramError(f"no statement named {name!r} in program {self.name}")

    @property
    def max_depth(self) -> int:
        """d~ = max_s d_s (Section 4.2)."""
        return max((s.depth for s in self.statements), default=0)

    def all_accesses(self) -> list[Access]:
        return [a for s in self.statements for a in s.accesses]

    def writes_to(self, array: Array) -> list[Access]:
        return [a for a in self.all_accesses() if a.is_write and a.array is array]

    def validate(self) -> None:
        """Sanity checks: accesses reference known arrays, domains use the
        program's parameters, guards use in-scope variables."""
        for s in self.statements:
            for v in s.domain.space.names:
                if v not in s.loop_vars and v not in self.params:
                    raise ProgramError(
                        f"{s.name}: domain variable {v!r} is neither a loop var nor a parameter")
            for a in s.accesses:
                if self.arrays.get(a.array.name) is not a.array:
                    raise ProgramError(f"{s.name}: access to unregistered array {a.array.name}")
                scope = set(s.loop_vars) | set(self.params)
                for sub in a.subscripts + a.guard:
                    loose = sub.variables() - scope
                    if loose:
                        raise ProgramError(f"{s.name}: out-of-scope variables {loose} in {a}")

    def __repr__(self) -> str:
        return (f"Program({self.name}: {len(self.statements)} statements, "
                f"{len(self.arrays)} arrays, params={self.params})")
