"""Program IR: static-control programs under the polyhedral model (§4.1).

Public surface:

* :class:`AffineExpr` / :func:`affine` — affine expressions and parsing;
* :class:`Array`, :class:`Access`, :class:`Statement`, :class:`Program` —
  the IR proper, at block granularity;
* :class:`ProgramBuilder` — the loop-nest DSL front end;
* :class:`Schedule` — original (2d+1) and searched ((d~+1)-dim) schedules,
  plus the symbolic precedence expansion used to build extent polyhedra.
"""

from .builder import AccessRef, ArrayRef, ProgramBuilder
from .expr import AffineExpr, affine
from .program import Access, AccessType, Array, ArrayKind, Program, Statement
from .schedule import Disjunct, Schedule, lex_less, precedence_disjuncts

__all__ = [
    "AffineExpr",
    "affine",
    "Access",
    "AccessType",
    "Array",
    "ArrayKind",
    "Program",
    "Statement",
    "ProgramBuilder",
    "ArrayRef",
    "AccessRef",
    "Schedule",
    "Disjunct",
    "precedence_disjuncts",
    "lex_less",
]
