"""Integer affine expressions over named variables.

These are the subscripts of array accesses and the bounds of loops in the
static-control programs of Section 4.1: linear combinations of enclosing
loop variables and global parameters, plus a constant.

Expressions can be built programmatically (operators) or parsed from a small
C-like grammar: ``"n1 - 1 - i"``, ``"2*k + 3"``.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Mapping, Sequence

from ..exceptions import ProgramError
from ..polyhedral import Space
from ..polyhedral.matrix import Rational, as_fraction

__all__ = ["AffineExpr", "affine"]

_TOKEN = re.compile(r"\s*(?:(\d+)|([A-Za-z_][A-Za-z_0-9']*)|([()*+-]))")
_MISSING = object()


class AffineExpr:
    """sum(coeff_v * v) + const, with rational coefficients.

    Immutable; arithmetic returns new expressions.  Multiplication is only
    allowed when one side is constant (affine closure).
    """

    __slots__ = ("coeffs", "const", "_intform")

    def __init__(self, coeffs: Mapping[str, Rational] | None = None,
                 const: Rational = 0):
        self.coeffs: dict[str, Fraction] = {}
        for name, val in (coeffs or {}).items():
            f = as_fraction(val)
            if f:
                self.coeffs[name] = f
        self.const: Fraction = as_fraction(const)
        # Lazily compiled pure-int form used by evaluate(); None = not yet
        # compiled, False = the expression has non-integer coefficients.
        self._intform: tuple | None | bool = None

    # -- construction --------------------------------------------------------

    @classmethod
    def var(cls, name: str) -> "AffineExpr":
        return cls({name: 1})

    @classmethod
    def constant(cls, value: Rational) -> "AffineExpr":
        return cls({}, value)

    @classmethod
    def parse(cls, text: str) -> "AffineExpr":
        """Parse ``"2*i - j + n - 1"`` style affine expressions."""
        tokens = _tokenize(text)
        expr, pos = _parse_sum(tokens, 0)
        if pos != len(tokens):
            raise ProgramError(f"trailing tokens in affine expression {text!r}")
        return expr

    # -- arithmetic --------------------------------------------------------------

    def __add__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        other = affine(other)
        coeffs = dict(self.coeffs)
        for name, val in other.coeffs.items():
            coeffs[name] = coeffs.get(name, Fraction(0)) + val
        return AffineExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "AffineExpr":
        return AffineExpr({n: -v for n, v in self.coeffs.items()}, -self.const)

    def __sub__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        return self + (-affine(other))

    def __rsub__(self, other: "AffineExpr | Rational") -> "AffineExpr":
        return affine(other) + (-self)

    def __mul__(self, other: Rational) -> "AffineExpr":
        if isinstance(other, AffineExpr):
            if not other.coeffs:
                other = other.const
            elif not self.coeffs:
                return other * self.const
            else:
                raise ProgramError("product of two non-constant affine expressions")
        f = as_fraction(other)
        return AffineExpr({n: v * f for n, v in self.coeffs.items()}, self.const * f)

    __rmul__ = __mul__

    # -- queries -----------------------------------------------------------------

    def variables(self) -> set[str]:
        return set(self.coeffs)

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, bindings: Mapping[str, Rational]) -> Rational:
        """Value of the expression under ``bindings``.

        Returns a plain ``int`` when the expression and the bound values are
        all integers (``int`` and ``Fraction`` compare and hash identically,
        so callers never see a difference) — the common case by far, since
        schedules are integer affine maps evaluated at integer points.
        """
        form = self._intform
        if form is None:
            form = self._compile_int_form()
        if form is not False:
            total = form[0]
            for name, c in form[1]:
                v = bindings.get(name, _MISSING)
                if type(v) is not int:
                    if v is _MISSING:
                        raise ProgramError(
                            f"unbound variable {name!r} when evaluating {self}")
                    break
                total += c * v
            else:
                return total
        total = self.const
        for name, coeff in self.coeffs.items():
            if name not in bindings:
                raise ProgramError(f"unbound variable {name!r} when evaluating {self}")
            total += coeff * as_fraction(bindings[name])
        return total

    def _compile_int_form(self) -> tuple | bool:
        if self.const.denominator != 1 or any(
                c.denominator != 1 for c in self.coeffs.values()):
            form = False
        else:
            form = (int(self.const),
                    tuple((name, int(c)) for name, c in self.coeffs.items()))
        self._intform = form
        return form

    def substitute(self, bindings: Mapping[str, "AffineExpr | Rational"]) -> "AffineExpr":
        out = AffineExpr({}, self.const)
        for name, coeff in self.coeffs.items():
            if name in bindings:
                out = out + affine(bindings[name]) * coeff
            else:
                out = out + AffineExpr({name: coeff})
        return out

    def to_row(self, space: Space) -> list[Fraction]:
        """Row of length space.dim + 1 (coefficients + constant)."""
        row = [Fraction(0)] * (space.dim + 1)
        for name, coeff in self.coeffs.items():
            row[space.index(name)] = coeff
        row[-1] = self.const
        return row

    # -- protocol -------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AffineExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        return hash((tuple(sorted(self.coeffs.items())), self.const))

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self.coeffs):
            c = self.coeffs[name]
            if c == 1:
                parts.append(f"+{name}")
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{'+' if c > 0 else ''}{c}*{name}")
        if self.const or not parts:
            parts.append(f"{'+' if self.const >= 0 else ''}{self.const}")
        return "".join(parts).lstrip("+")


def affine(value: "AffineExpr | Rational | str") -> AffineExpr:
    """Coerce ints, Fractions, strings and AffineExprs to AffineExpr."""
    if isinstance(value, AffineExpr):
        return value
    if isinstance(value, str):
        return AffineExpr.parse(value)
    return AffineExpr.constant(value)


# -- parser -------------------------------------------------------------------


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN.match(text, pos)
        if not m or m.end() == pos:
            if text[pos:].strip():
                raise ProgramError(f"cannot tokenize affine expression {text!r} at {pos}")
            break
        tokens.append(m.group(1) or m.group(2) or m.group(3))
        pos = m.end()
    return tokens


def _parse_sum(tokens: list[str], pos: int) -> tuple[AffineExpr, int]:
    expr, pos = _parse_term(tokens, pos)
    while pos < len(tokens) and tokens[pos] in "+-":
        op = tokens[pos]
        rhs, pos = _parse_term(tokens, pos + 1)
        expr = expr + rhs if op == "+" else expr - rhs
    return expr, pos


def _parse_term(tokens: list[str], pos: int) -> tuple[AffineExpr, int]:
    expr, pos = _parse_atom(tokens, pos)
    while pos < len(tokens) and tokens[pos] == "*":
        rhs, pos = _parse_atom(tokens, pos + 1)
        expr = expr * rhs
    return expr, pos


def _parse_atom(tokens: list[str], pos: int) -> tuple[AffineExpr, int]:
    if pos >= len(tokens):
        raise ProgramError("unexpected end of affine expression")
    tok = tokens[pos]
    if tok == "-":
        expr, pos = _parse_atom(tokens, pos + 1)
        return -expr, pos
    if tok == "+":
        return _parse_atom(tokens, pos + 1)
    if tok == "(":
        expr, pos = _parse_sum(tokens, pos + 1)
        if pos >= len(tokens) or tokens[pos] != ")":
            raise ProgramError("unbalanced parentheses in affine expression")
        return expr, pos + 1
    if tok.isdigit():
        return AffineExpr.constant(int(tok)), pos + 1
    if tok[0].isalpha() or tok[0] == "_":
        return AffineExpr.var(tok), pos + 1
    raise ProgramError(f"unexpected token {tok!r} in affine expression")
