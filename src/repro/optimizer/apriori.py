"""Apriori-like plan enumeration (Algorithm 2, Lemma 2).

If a set of sharing opportunities cannot be realized simultaneously, neither
can any superset — so candidate sets are grown level-wise, a set of size k
being considered only when all its size-(k-1) subsets were feasible.  Each
feasible candidate yields one legal schedule; the empty set (the original
program order) is always included as Plan 0.

Candidates within one level are mutually independent (level k+1 only needs
level k's feasible sets), which is what the process-pool search in
:mod:`repro.optimizer.parallel` exploits; the sequential walk here and the
parallel one share :func:`generate_level_candidates` so both test the same
candidates in the same deterministic order.
"""

from __future__ import annotations

import itertools
import time
from typing import Iterable, Mapping, Sequence

from ..analysis import ProgramAnalysis, SharingOpportunity
from ..ir import Schedule
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .constraints import ConstraintCache
from .costing import (IOModel, elidable_write_bytes, evaluate_plan,
                      io_lower_bound, opportunity_savings_seconds_bound)
from .find_schedule import find_schedule
from .plan import Plan

__all__ = ["enumerate_feasible_sets", "enumerate_and_cost_pruned",
           "generate_level_candidates", "AprioriStats"]


class AprioriStats:
    """Search accounting: how much of the power set was pruned.

    Besides the aggregate counters, the search records per-level detail
    (``level_candidates``/``level_feasible``/``level_seconds``, keyed by set
    size k) and — when the parallel search layer is used — worker-utilization
    counters: ``workers`` (configured pool size), ``tasks_dispatched`` and
    ``worker_tasks`` (tasks executed per worker pid), so speedup and load
    balance are observable.

    The bound-pruned search (:func:`enumerate_and_cost_pruned`) additionally
    records ``cost_skips`` (feasible sets whose static I/O lower bound proved
    they could not beat the incumbent, so costing was skipped),
    ``bound_exits`` (1 when the search terminated early because the incumbent
    met the global static lower bound) and the ``io_lower_bound`` gauge (the
    global bound itself, in seconds).
    """

    _COUNTERS = ("candidates_tested", "feasible", "total_subsets",
                 "tasks_dispatched", "pool_restarts", "sequential_fallbacks",
                 "cost_skips", "bound_exits")
    _GAUGES = ("seconds", "io_lower_bound")

    __slots__ = tuple("_" + f for f in _COUNTERS + _GAUGES) + (
        "truncated", "level_candidates", "level_feasible",
        "level_seconds", "level_generated", "level_costed",
        "workers", "worker_tasks")

    def __init__(self):
        for f in self._COUNTERS:
            setattr(self, "_" + f, obs_metrics.Counter("repro_apriori_" + f))
        for f in self._GAUGES:
            setattr(self, "_" + f, obs_metrics.Gauge("repro_apriori_" + f))
        self.truncated = False
        self.level_candidates: dict[int, int] = {}
        self.level_feasible: dict[int, int] = {}
        self.level_seconds: dict[int, float] = {}
        # Pre-pruning lattice size vs post-pruning costing work, per level:
        # ``level_generated`` counts downward-closure candidates before any
        # budget/bound cut; ``level_costed`` counts plans actually costed.
        self.level_generated: dict[int, int] = {}
        self.level_costed: dict[int, int] = {}
        self.workers = 1
        self.worker_tasks: dict[int, int] = {}
        registry = obs_metrics.CURRENT
        if registry is not None:
            self.bind(registry, search=registry.seq("search"))
        # pool_restarts / sequential_fallbacks: crash recovery in the
        # parallel layer — pools restarted after a BrokenProcessPool, and
        # levels/costings that fell back to the driver when a restarted
        # pool broke again.

    def bind(self, registry: "obs_metrics.MetricsRegistry", **labels) -> None:
        """Adopt this search's instruments into ``registry`` under ``labels``."""
        for f in self._COUNTERS + self._GAUGES:
            inst = getattr(self, "_" + f)
            inst.labels = dict(labels)
            registry.register(inst)

    @property
    def pruned_fraction(self) -> float:
        """Fraction of the nonempty power set never even tested."""
        if self.total_subsets == 0:
            return 0.0
        return 1.0 - self.candidates_tested / self.total_subsets

    def record_level(self, k: int, candidates: int, feasible: int,
                     seconds: float, generated: int | None = None,
                     costed: int | None = None) -> None:
        self.level_candidates[k] = self.level_candidates.get(k, 0) + candidates
        self.level_feasible[k] = self.level_feasible.get(k, 0) + feasible
        self.level_seconds[k] = self.level_seconds.get(k, 0.0) + seconds
        self.level_generated[k] = self.level_generated.get(k, 0) + (
            candidates if generated is None else generated)
        self.level_costed[k] = self.level_costed.get(k, 0) + (
            feasible if costed is None else costed)

    def record_task(self, worker_id: int) -> None:
        self.tasks_dispatched += 1
        self.worker_tasks[worker_id] = self.worker_tasks.get(worker_id, 0) + 1

    def __repr__(self) -> str:
        par = f", workers={self.workers}" if self.workers > 1 else ""
        return (f"AprioriStats(tested={self.candidates_tested}/{self.total_subsets}, "
                f"feasible={self.feasible}, pruned={self.pruned_fraction:.1%}, "
                f"{self.seconds:.2f}s{par})")


def _stat_view(field: str) -> property:
    attr = "_" + field

    def fget(self):
        return getattr(self, attr).value

    def fset(self, value):
        getattr(self, attr).value = value

    return property(fget, fset)


for _f in AprioriStats._COUNTERS + AprioriStats._GAUGES:
    setattr(AprioriStats, _f, _stat_view(_f))
del _f


def generate_level_candidates(feasible_prev: Iterable[frozenset[int]],
                              usable: Sequence[SharingOpportunity],
                              k: int) -> list[frozenset[int]]:
    """Level-k candidate sets in the search's canonical (sorted) order.

    A size-k set is a candidate iff every size-(k-1) subset was feasible
    (Lemma 2's downward closure).
    """
    feasible_prev = set(feasible_prev)
    candidates: set[frozenset[int]] = set()
    for base in feasible_prev:
        for o in usable:
            if o.index in base:
                continue
            cand = base | {o.index}
            if len(cand) != k or cand in candidates:
                continue
            if all(frozenset(sub) in feasible_prev
                   for sub in itertools.combinations(cand, k - 1)):
                candidates.add(cand)
    return sorted(candidates, key=sorted)


def enumerate_feasible_sets(analysis: ProgramAnalysis,
                            cache: ConstraintCache | None = None,
                            max_set_size: int | None = None,
                            max_candidates: int | None = None,
                            include_greedy_maximal: bool = True
                            ) -> tuple[list[tuple[frozenset[int], Schedule]], AprioriStats]:
    """All feasible sharing-opportunity sets with a schedule for each.

    Opportunities that failed multiplicity reduction are excluded (sound).
    Returns ``([(opportunity-index-set, schedule), ...], stats)``; the empty
    set maps to the program's original schedule.

    ``max_set_size`` / ``max_candidates`` bound the level-wise enumeration
    (programs whose opportunities are almost all mutually compatible have an
    exponentially feasible lattice).  The candidate budget is enforced at
    every level — including level 1 — and **every** budget-bounded exit sets
    ``stats.truncated``.  When the enumeration is truncated and
    ``include_greedy_maximal`` is set, one extra plan is added: a maximal
    feasible set grown greedily — the paper's own suggested remedy of
    combining enumeration with costing to terminate search early.
    """
    program = analysis.program
    if cache is None:
        cache = ConstraintCache(program)
    usable = [o for o in analysis.opportunities if o.reduced]
    by_index = {o.index: o for o in usable}
    stats = AprioriStats()
    stats.total_subsets = 2 ** len(usable) - 1
    t0 = time.perf_counter()

    results: list[tuple[frozenset[int], Schedule]] = [
        (frozenset(), analysis.schedule)]
    feasible_prev: set[frozenset[int]] = set()

    def budget_left() -> bool:
        return max_candidates is None or stats.candidates_tested < max_candidates

    # Level 1.  The budget applies here too: an untested singleton is an
    # untested candidate, so running out must mark the search truncated.
    t_level = time.perf_counter()
    feasible_singletons: list = []
    with obs_trace.span("apriori.level", "optimizer", k=1) as sp:
        for o in usable:
            if not budget_left():
                stats.truncated = True
                break
            stats.candidates_tested += 1
            sched = find_schedule(program, cache, [o], analysis.dependences)
            obs_trace.instant("opt.solve", "optimizer", set=[o.index],
                              feasible=sched is not None)
            if sched is not None:
                key = frozenset([o.index])
                feasible_prev.add(key)
                results.append((key, sched))
                feasible_singletons.append(o)
                stats.feasible += 1
        sp["candidates"] = stats.candidates_tested
        sp["feasible"] = stats.feasible
    stats.record_level(1, stats.candidates_tested, stats.feasible,
                       time.perf_counter() - t_level, generated=len(usable))

    k = 2
    while (feasible_prev and (max_set_size is None or k <= max_set_size)
           and k <= len(usable)):
        candidates = generate_level_candidates(feasible_prev, usable, k)
        if not candidates:
            break
        if not budget_left():
            # Candidates remain but the budget is spent: this exit is a
            # truncation just like the mid-level one below.
            stats.truncated = True
            break
        t_level = time.perf_counter()
        tested_before, feasible_before = stats.candidates_tested, stats.feasible
        feasible_now: set[frozenset[int]] = set()
        with obs_trace.span("apriori.level", "optimizer", k=k,
                            candidates=len(candidates)) as sp:
            for cand in candidates:
                if not budget_left():
                    stats.truncated = True
                    break
                stats.candidates_tested += 1
                opps = [by_index[i] for i in sorted(cand)]
                sched = find_schedule(program, cache, opps, analysis.dependences)
                obs_trace.instant("opt.solve", "optimizer", set=sorted(cand),
                                  feasible=sched is not None)
                if sched is not None:
                    feasible_now.add(cand)
                    results.append((cand, sched))
                    stats.feasible += 1
            sp["tested"] = stats.candidates_tested - tested_before
            sp["feasible"] = stats.feasible - feasible_before
        stats.record_level(k, stats.candidates_tested - tested_before,
                           stats.feasible - feasible_before,
                           time.perf_counter() - t_level,
                           generated=len(candidates))
        feasible_prev = feasible_now
        k += 1
    if feasible_prev and max_set_size is not None and k > max_set_size:
        stats.truncated = stats.truncated or any(
            len(s) == max_set_size for s in feasible_prev)

    if stats.truncated and include_greedy_maximal:
        seen = {key for key, _ in results}
        grown = grow_greedy_maximal(analysis, cache, feasible_singletons, stats)
        if grown is not None and grown[0] not in seen:
            results.append(grown)
            stats.feasible += 1

    stats.seconds = time.perf_counter() - t0
    return results, stats


def enumerate_and_cost_pruned(analysis: ProgramAnalysis,
                              cache: ConstraintCache | None,
                              params: Mapping[str, int],
                              io_model: IOModel,
                              *,
                              memory_cap_bytes: int | None = None,
                              max_set_size: int | None = None,
                              max_candidates: int | None = None,
                              dead_write_elimination: bool = True,
                              block_bytes: Mapping[str, int] | None = None,
                              include_greedy_maximal: bool = True
                              ) -> tuple[list[Plan], AprioriStats]:
    """Bound-pruned Apriori search: enumeration interleaved with costing.

    Russian-Doll style: nested subproblems (smaller candidate sets) are
    solved first — level-wise order guarantees it — and the best *fitting*
    plan found so far (the incumbent) becomes the bound for everything that
    follows.  Two static lower bounds drive the pruning:

    * **per-candidate**: a plan realizing set ``S`` can save at most
      ``sum_{o in S} opportunity_savings_seconds_bound(o)`` over baseline
      (plus every elidable intermediate write), so when that optimistic
      bound cannot beat the incumbent, the candidate's costing is skipped
      (``stats.cost_skips``) — its legality is still tested, because a
      *superset* may save more (bounds shrink as sets grow);
    * **global**: once the incumbent's cost meets the lower bound computed
      with *all* usable opportunities' savings, nothing unexplored can beat
      it and the whole search stops (``stats.bound_exits``).

    Both prunings are exact with respect to the chosen plan: a skipped
    candidate can at best *tie* the incumbent, and
    :meth:`OptimizationResult.best` breaks ties toward the earlier plan
    index, which the incumbent holds.  Hence the returned best plan and its
    cost are bit-identical to the exhaustive search's — but the plan *list*
    only covers candidates that could have been optimal under
    ``memory_cap_bytes``; querying ``best()`` with a different cap is only
    supported on the exhaustive result.
    """
    program = analysis.program
    if cache is None:
        cache = ConstraintCache(program)
    usable = [o for o in analysis.opportunities if o.reduced]
    by_index = {o.index: o for o in analysis.opportunities}
    stats = AprioriStats()
    stats.total_subsets = 2 ** len(usable) - 1
    t0 = time.perf_counter()

    plans: list[Plan] = []
    best: Plan | None = None

    def cost_plan(idx_set: frozenset[int], schedule: Schedule) -> Plan:
        nonlocal best
        realized = [by_index[i] for i in sorted(idx_set)]
        cost = evaluate_plan(program, params, schedule, realized, io_model,
                             dead_write_elimination=dead_write_elimination,
                             block_bytes=block_bytes)
        plan = Plan(len(plans), schedule, realized, cost)
        plans.append(plan)
        obs_trace.instant("opt.plan_cost", "optimizer", plan=plan.index,
                          read_bytes=cost.read_bytes,
                          write_bytes=cost.write_bytes,
                          io_seconds=cost.io_seconds,
                          memory_bytes=cost.memory_bytes)
        if plan.fits(memory_cap_bytes) and (
                best is None or cost.io_seconds < best.cost.io_seconds):
            best = plan
        return plan

    # Plan 0 (original order) doubles as the baseline-byte oracle: its cost
    # carries the un-shared, un-elided baseline read/write volumes.
    p0 = cost_plan(frozenset(), analysis.schedule)
    base_reads = p0.cost.baseline_read_bytes
    base_writes = p0.cost.baseline_write_bytes
    # With dead-write elimination off, no writes can be elided, so the
    # tighter (larger) bound with elidable = 0 is the correct one.
    elidable = (elidable_write_bytes(program, params, block_bytes)
                if dead_write_elimination else 0)
    savings_ub = {o.index: opportunity_savings_seconds_bound(
        o, params, io_model, block_bytes) for o in usable}
    global_lb = io_lower_bound(base_reads, base_writes,
                               sum(savings_ub.values()), elidable, io_model)
    stats.io_lower_bound = global_lb

    def candidate_lb(idx_set: frozenset[int]) -> float:
        return io_lower_bound(base_reads, base_writes,
                              sum(savings_ub[i] for i in idx_set),
                              elidable, io_model)

    def bound_met() -> bool:
        return best is not None and best.cost.io_seconds <= global_lb

    def budget_left() -> bool:
        return max_candidates is None or stats.candidates_tested < max_candidates

    seen_feasible: set[frozenset[int]] = {frozenset()}

    def consider(idx_set: frozenset[int], schedule: Schedule) -> None:
        stats.feasible += 1
        seen_feasible.add(idx_set)
        if best is not None and candidate_lb(idx_set) >= best.cost.io_seconds:
            stats.cost_skips += 1
        else:
            cost_plan(idx_set, schedule)

    feasible_prev: set[frozenset[int]] = set()
    feasible_singletons: list[SharingOpportunity] = []
    done = False

    # Level 1 (same canonical order and budget semantics as the exhaustive
    # walk, plus the two bound checks).
    t_level = time.perf_counter()
    plans_before = len(plans)
    with obs_trace.span("apriori.level", "optimizer", k=1) as sp:
        for o in usable:
            if bound_met():
                stats.bound_exits += 1
                done = True
                break
            if not budget_left():
                stats.truncated = True
                break
            stats.candidates_tested += 1
            sched = find_schedule(program, cache, [o], analysis.dependences)
            obs_trace.instant("opt.solve", "optimizer", set=[o.index],
                              feasible=sched is not None)
            if sched is not None:
                key = frozenset([o.index])
                feasible_prev.add(key)
                feasible_singletons.append(o)
                consider(key, sched)
        sp["candidates"] = stats.candidates_tested
        sp["feasible"] = stats.feasible
    stats.record_level(1, stats.candidates_tested, stats.feasible,
                       time.perf_counter() - t_level, generated=len(usable),
                       costed=len(plans) - plans_before)

    k = 2
    while (not done and feasible_prev
           and (max_set_size is None or k <= max_set_size)
           and k <= len(usable)):
        candidates = generate_level_candidates(feasible_prev, usable, k)
        if not candidates:
            break
        if not budget_left():
            stats.truncated = True
            break
        t_level = time.perf_counter()
        tested_before, feasible_before = stats.candidates_tested, stats.feasible
        plans_before = len(plans)
        feasible_now: set[frozenset[int]] = set()
        with obs_trace.span("apriori.level", "optimizer", k=k,
                            candidates=len(candidates)) as sp:
            for cand in candidates:
                if bound_met():
                    stats.bound_exits += 1
                    done = True
                    break
                if not budget_left():
                    stats.truncated = True
                    break
                stats.candidates_tested += 1
                opps = [by_index[i] for i in sorted(cand)]
                sched = find_schedule(program, cache, opps,
                                      analysis.dependences)
                obs_trace.instant("opt.solve", "optimizer", set=sorted(cand),
                                  feasible=sched is not None)
                if sched is not None:
                    feasible_now.add(cand)
                    consider(cand, sched)
            sp["tested"] = stats.candidates_tested - tested_before
            sp["feasible"] = stats.feasible - feasible_before
        stats.record_level(k, stats.candidates_tested - tested_before,
                           stats.feasible - feasible_before,
                           time.perf_counter() - t_level,
                           generated=len(candidates),
                           costed=len(plans) - plans_before)
        feasible_prev = feasible_now
        k += 1
    if (not done and feasible_prev and max_set_size is not None
            and k > max_set_size):
        stats.truncated = stats.truncated or any(
            len(s) == max_set_size for s in feasible_prev)

    if stats.truncated and include_greedy_maximal and not done:
        # A truncated search may have missed the best set entirely; the
        # greedy-maximal completion is always costed (never bound-skipped)
        # because it also serves as the memory-pressure fallback plan.
        grown = grow_greedy_maximal(analysis, cache, feasible_singletons,
                                    stats)
        if grown is not None and grown[0] not in seen_feasible:
            cost_plan(grown[0], grown[1])
            stats.feasible += 1

    stats.seconds = time.perf_counter() - t0
    return plans, stats


def grow_greedy_maximal(analysis: ProgramAnalysis, cache: ConstraintCache,
                        seeds: Sequence[SharingOpportunity],
                        stats: AprioriStats | None = None
                        ) -> tuple[frozenset[int], Schedule] | None:
    """Grow one maximal feasible set greedily from feasible singletons."""
    program = analysis.program
    current: list[SharingOpportunity] = []
    schedule = None
    for o in seeds:
        trial = current + [o]
        if stats is not None:
            stats.candidates_tested += 1
        sched = find_schedule(program, cache, trial, analysis.dependences)
        if sched is not None:
            current = trial
            schedule = sched
    if schedule is None:
        return None
    return frozenset(o.index for o in current), schedule
