"""RIOTShare's top-level optimizer (Figure 2).

``optimize`` runs the full pipeline for a program and concrete sizes:

1. sharing-opportunity / dependence analysis (Section 4.3, 5.1),
2. Apriori plan enumeration with FindSchedule legality tests (Section 5.3),
3. cost evaluation of every legal plan (Section 5.4),
4. selection of the cheapest plan that fits the memory cap.
"""

from __future__ import annotations

import time
from typing import Mapping, Sequence

from ..analysis import ProgramAnalysis, analyze
from ..exceptions import OptimizationError
from ..ir import Program
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .apriori import (AprioriStats, enumerate_and_cost_pruned,
                      enumerate_feasible_sets)
from .constraints import ConstraintCache
from .costing import IOModel, evaluate_plan
from .plan import Plan

__all__ = ["OptimizationResult", "optimize", "Optimizer"]


class OptimizationResult:
    """All legal plans plus selection helpers.

    ``cache_hit`` marks a result served from a plan cache: ``plans`` then
    holds just the cached best plan and ``stats`` is a fresh
    :class:`AprioriStats` whose ``candidates_tested`` stays zero — the
    search never ran.
    """

    __slots__ = ("program", "params", "analysis", "plans", "stats",
                 "io_model", "seconds", "cache_hit")

    def __init__(self, program: Program, params: Mapping[str, int],
                 analysis: ProgramAnalysis, plans: Sequence[Plan],
                 stats: AprioriStats, io_model: IOModel, seconds: float,
                 cache_hit: bool = False):
        self.program = program
        self.params = dict(params)
        self.analysis = analysis
        self.plans = list(plans)
        self.stats = stats
        self.io_model = io_model
        self.seconds = seconds
        self.cache_hit = cache_hit

    @property
    def original_plan(self) -> Plan:
        return next(p for p in self.plans if p.is_original)

    def best(self, memory_cap_bytes: int | None = None) -> Plan:
        fitting = [p for p in self.plans if p.fits(memory_cap_bytes)]
        if not fitting:
            raise OptimizationError(
                f"no plan fits the memory cap of {memory_cap_bytes} bytes "
                f"(cheapest needs {min(p.cost.memory_bytes for p in self.plans)})")
        return min(fitting, key=lambda p: (p.cost.io_seconds, p.index))

    def plan_for(self, labels: Sequence[str]) -> Plan:
        """The plan realizing exactly the given opportunity labels."""
        want = frozenset(labels)
        for p in self.plans:
            if frozenset(p.realized_labels) == want:
                return p
        raise OptimizationError(f"no plan realizes exactly {sorted(want)}")

    def __repr__(self) -> str:
        return (f"OptimizationResult({self.program.name}: {len(self.plans)} plans, "
                f"{self.stats!r})")


class Optimizer:
    """Reusable optimizer instance (caches Farkas constraint spaces)."""

    def __init__(self, program: Program, io_model: IOModel | None = None,
                 dead_write_elimination: bool = True):
        self.program = program
        self.io_model = io_model or IOModel()
        self.dead_write_elimination = dead_write_elimination

    def optimize(self, params: Mapping[str, int],
                 memory_cap_bytes: int | None = None,
                 max_set_size: int | None = None,
                 max_candidates: int | None = None,
                 block_bytes: Mapping[str, int] | None = None,
                 workers: int | None = None,
                 plan_cache=None,
                 prune: bool = False) -> OptimizationResult:
        """Run the pipeline.

        ``workers`` selects the search execution layer: ``None`` or ``1``
        runs the sequential path; ``N >= 2`` fans the Apriori legality tests
        and the per-plan costing out to a process pool
        (:mod:`repro.optimizer.parallel`).  Both layers return identical
        plans in identical order — parallelism changes wall time only.

        ``prune`` interleaves costing with enumeration and applies static
        I/O lower bounds (:func:`repro.optimizer.apriori
        .enumerate_and_cost_pruned`): feasible sets that provably cannot
        beat the incumbent are never costed, and the search stops outright
        once the incumbent meets the global bound.  ``result.best()`` for
        the *same* ``memory_cap_bytes`` is bit-identical to the exhaustive
        search's, in every execution layer; the full plan list is not
        materialized, so leave ``prune`` off when the result is queried
        with other caps or mined for alternatives.  Pruning does not affect
        the chosen plan, so it is deliberately not part of the plan-cache
        fingerprint: pruned and exhaustive runs share cache entries.

        ``plan_cache`` (any object with the
        :class:`repro.service.PlanCache` ``load``/``store`` protocol) short-
        circuits the search: a cached best plan for this exact
        (program, params, memory cap, knobs) fingerprint is re-costed and
        returned without evaluating a single Apriori candidate
        (``result.cache_hit`` is then true); a miss runs the search and
        stores the winner for next time.
        """
        if workers is not None and workers < 1:
            raise OptimizationError(f"workers must be >= 1, got {workers}")
        t0 = time.perf_counter()
        knobs = dict(max_set_size=max_set_size, max_candidates=max_candidates,
                     dead_write_elimination=self.dead_write_elimination,
                     block_bytes=block_bytes)
        with obs_trace.span("optimize", "optimizer", program=self.program.name,
                            workers=workers or 1) as top:
            with obs_trace.span("optimize.analyze", "optimizer") as sp:
                analysis = analyze(self.program, param_values=params)
                sp["opportunities"] = len(analysis.opportunities)
            if plan_cache is not None:
                cached = plan_cache.load(self.program, params,
                                         memory_cap_bytes, self.io_model,
                                         analysis=analysis, **knobs)
                if cached is not None:
                    top["cache_hit"] = True
                    stats = AprioriStats()
                    registry = obs_metrics.CURRENT
                    if registry is not None:
                        stats.bind(registry, program=self.program.name)
                    seconds = time.perf_counter() - t0
                    return OptimizationResult(
                        self.program, params, analysis, [cached], stats,
                        self.io_model, seconds, cache_hit=True)
            if workers is not None and workers > 1:
                from .parallel import ParallelOptimizerPool
                with ParallelOptimizerPool(
                        analysis, params, self.io_model, workers,
                        dead_write_elimination=self.dead_write_elimination,
                        block_bytes=block_bytes) as pool:
                    if prune:
                        with obs_trace.span("optimize.search", "optimizer"):
                            plans, stats = pool.enumerate_and_cost_pruned(
                                memory_cap_bytes, max_set_size,
                                max_candidates)
                    else:
                        with obs_trace.span("optimize.enumerate", "optimizer"):
                            feasible, stats = pool.enumerate_feasible_sets(
                                max_set_size, max_candidates)
                        with obs_trace.span("optimize.cost", "optimizer"):
                            plans = pool.cost_plans(feasible, stats)
            elif prune:
                cache = ConstraintCache(self.program)
                with obs_trace.span("optimize.search", "optimizer"):
                    plans, stats = enumerate_and_cost_pruned(
                        analysis, cache, params, self.io_model,
                        memory_cap_bytes=memory_cap_bytes,
                        max_set_size=max_set_size,
                        max_candidates=max_candidates,
                        dead_write_elimination=self.dead_write_elimination,
                        block_bytes=block_bytes)
            else:
                cache = ConstraintCache(self.program)
                with obs_trace.span("optimize.enumerate", "optimizer"):
                    feasible, stats = enumerate_feasible_sets(analysis, cache,
                                                              max_set_size,
                                                              max_candidates)
                by_index = {o.index: o for o in analysis.opportunities}
                plans = []
                with obs_trace.span("optimize.cost", "optimizer"):
                    for plan_id, (idx_set, schedule) in enumerate(feasible):
                        realized = [by_index[i] for i in sorted(idx_set)]
                        cost = evaluate_plan(
                            self.program, params, schedule, realized,
                            self.io_model,
                            dead_write_elimination=self.dead_write_elimination,
                            block_bytes=block_bytes)
                        plans.append(Plan(plan_id, schedule, realized, cost))
                        obs_trace.instant(
                            "opt.plan_cost", "optimizer", plan=plan_id,
                            read_bytes=cost.read_bytes,
                            write_bytes=cost.write_bytes,
                            io_seconds=cost.io_seconds,
                            memory_bytes=cost.memory_bytes)
            top["plans"] = len(plans)
            top["tested"] = stats.candidates_tested
        registry = obs_metrics.CURRENT
        if registry is not None:
            stats.bind(registry, program=self.program.name)
        seconds = time.perf_counter() - t0
        result = OptimizationResult(self.program, params, analysis, plans,
                                    stats, self.io_model, seconds)
        if plan_cache is not None:
            try:
                best = result.best(memory_cap_bytes)
            except OptimizationError:
                pass  # nothing fits the cap — nothing worth caching
            else:
                plan_cache.store(self.program, params, best,
                                 memory_cap_bytes, self.io_model, **knobs)
        return result


def optimize(program: Program, params: Mapping[str, int],
             io_model: IOModel | None = None,
             memory_cap_bytes: int | None = None,
             max_set_size: int | None = None,
             max_candidates: int | None = None,
             dead_write_elimination: bool = True,
             block_bytes: Mapping[str, int] | None = None,
             workers: int | None = None,
             plan_cache=None,
             prune: bool = False) -> OptimizationResult:
    """One-shot convenience wrapper around :class:`Optimizer`."""
    opt = Optimizer(program, io_model, dead_write_elimination)
    return opt.optimize(params, memory_cap_bytes, max_set_size, max_candidates,
                        block_bytes, workers, plan_cache, prune=prune)
