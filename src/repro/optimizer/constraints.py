"""Schedule-coefficient constraint spaces (Section 5.2).

One searched schedule row per statement per depth: an affine function of the
statement's loop variables, the parameters, and 1.  The unknowns live in a
shared coefficient space with names ``{stmt}.{var}``, ``{stmt}.{param}`` and
``{stmt}.__c``; constraints on them are derived from dependence / sharing
extents through the affine form of the Farkas lemma:

* weak dependence:      theta_t(x') - theta_s(x) >= 0   on every pair
* strong dependence:    theta_t(x') - theta_s(x) >= 1
* sharing equality:     theta_t(x') - theta_s(x) == delta (0 or +-1)

Each is computed per extent disjunct and intersected (a universally
quantified condition over a union is the conjunction over its members).
Results are memoized per (extent, depth-kind) because the Apriori search
calls FindSchedule on many overlapping candidate sets.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from ..analysis import CoAccess
from ..exceptions import OptimizationError
from ..ir import AccessType, Program, Statement
from ..polyhedral import (Polyhedron, Space, SymbolicForm, farkas_equals_const,
                          farkas_nonneg)

__all__ = ["CoefficientSpace", "ConstraintCache", "coaccess_key"]

CONST_SUFFIX = "__c"


def coaccess_key(co: CoAccess) -> tuple:
    """Stable, picklable identity of a co-access.

    Cache entries must survive a trip through ``pickle`` between optimizer
    worker processes (see :mod:`repro.optimizer.parallel`), so keys cannot
    involve ``id()``.  Two accesses with the same statement, type, array,
    subscripts and guard produce identical extents within one analysis, so
    colliding keys map to identical constraint polyhedra.
    """
    return (co.src.key(), co.src.guard, co.tgt.key(), co.tgt.guard)


class CoefficientSpace:
    """Naming and bookkeeping for one depth's schedule-coefficient space."""

    __slots__ = ("program", "space", "_by_stmt")

    def __init__(self, program: Program):
        self.program = program
        names: list[str] = []
        self._by_stmt: dict[str, list[str]] = {}
        for s in program.statements:
            mine = [f"{s.name}.{v}" for v in s.loop_vars]
            mine += [f"{s.name}.{p}" for p in program.params]
            mine += [f"{s.name}.{CONST_SUFFIX}"]
            self._by_stmt[s.name] = mine
            names.extend(mine)
        self.space = Space(names)

    def stmt_vars(self, stmt: Statement) -> list[str]:
        return self._by_stmt[stmt.name]

    def loop_coeff_names(self, stmt: Statement) -> list[str]:
        return [f"{stmt.name}.{v}" for v in stmt.loop_vars]

    def row_from_point(self, stmt: Statement, point: Mapping[str, Fraction]):
        """Extract (loop coeffs, param coeffs, const) for one statement from a
        sampled coefficient assignment."""
        loop = [point[f"{stmt.name}.{v}"] for v in stmt.loop_vars]
        par = [point[f"{stmt.name}.{p}"] for p in self.program.params]
        const = point[f"{stmt.name}.{CONST_SUFFIX}"]
        return loop, par, const


def _difference_form(co: CoAccess, cspace: CoefficientSpace,
                     y_space: Space) -> SymbolicForm:
    """psi(y) = theta_tgt(x') - theta_src(x) as a symbolic form over the
    coefficient unknowns, in the extent's product space."""
    form = SymbolicForm(y_space)
    src_s = co.src.statement
    tgt_s = co.tgt.statement
    width = y_space.dim + 1

    def unit_row(idx: int | None) -> list[Fraction]:
        row = [Fraction(0)] * width
        if idx is not None:
            row[idx] = Fraction(1)
        return row

    # + theta_tgt(x'): loop vars are t_-prefixed in the product space.
    for v in tgt_s.loop_vars:
        form.add_term(f"{tgt_s.name}.{v}", unit_row(y_space.index("t_" + v)))
    for p in cspace.program.params:
        form.add_term(f"{tgt_s.name}.{p}", unit_row(y_space.index(p)))
    const_row = [Fraction(0)] * width
    const_row[-1] = Fraction(1)
    form.add_term(f"{tgt_s.name}.{CONST_SUFFIX}", const_row)

    # - theta_src(x)
    for v in src_s.loop_vars:
        row = unit_row(y_space.index("s_" + v))
        form.add_term(f"{src_s.name}.{v}", [-x for x in row])
    for p in cspace.program.params:
        row = unit_row(y_space.index(p))
        form.add_term(f"{src_s.name}.{p}", [-x for x in row])
    form.add_term(f"{src_s.name}.{CONST_SUFFIX}",
                  [-x for x in const_row])
    return form


class ConstraintCache:
    """Farkas-derived coefficient polyhedra, memoized across FindSchedule calls.

    Keys are content-based (:func:`coaccess_key`, opportunity indices), so a
    cache entry computed in one process is valid in any other process working
    on the same analysis.  ``export`` / ``merge`` / the delta journal
    implement the worker-cache protocol of :mod:`repro.optimizer.parallel`:
    workers return the entries they computed with their results, the driver
    merges them, and later levels start warm.

    A cache is scoped to one analysis of one program: entry values depend on
    co-access extents, which vary with the parameter context, so do not share
    a cache between calls to :func:`repro.analysis.analyze`.
    """

    def __init__(self, program: Program):
        self.program = program
        self.cspace = CoefficientSpace(program)
        self._cache: dict[tuple, Polyhedron] = {}
        self._journal: list[tuple] = []

    @property
    def space(self) -> Space:
        return self.cspace.space

    _MISSING = object()

    def _store(self, key: tuple, value) -> None:
        self._cache[key] = value
        self._journal.append(key)

    def memo(self, key: tuple, builder):
        """Generic memo slot (used by FindSchedule for shared conjunctions)."""
        value = self._cache.get(key, self._MISSING)
        if value is self._MISSING:
            value = builder()
            self._store(key, value)
        return value

    def weak_dependence(self, co: CoAccess) -> Polyhedron:
        """theta_t(x') - theta_s(x) >= 0 on every extent pair."""
        return self._nonneg(co, margin=0)

    def strong_dependence(self, co: CoAccess) -> Polyhedron:
        """theta_t(x') - theta_s(x) >= 1 on every extent pair."""
        return self._nonneg(co, margin=1)

    def sharing_equality(self, co: CoAccess, delta: int) -> Polyhedron:
        """theta_t(x') - theta_s(x) == delta on every extent pair."""
        key = ("eq", coaccess_key(co), delta)
        if key not in self._cache:
            result = Polyhedron.universe(self.space)
            for disjunct in co.extent.disjuncts:
                form = _difference_form(co, self.cspace, disjunct.space)
                result = result.intersect(
                    farkas_equals_const(disjunct, form, self.space, delta))
                if result.is_rational_empty():
                    break
            self._store(key, result)
        return self._cache[key]

    # -- incremental constraint systems ----------------------------------------

    def dependence_system(self, dependences: Iterable) -> Polyhedron | None:
        """Conjunction of weak-dependence constraints for a dependence set,
        or ``None`` when it is rationally empty.

        Built *incrementally*: the conjunction over every sorted prefix of
        the set is memoized, so each Apriori level — and each candidate
        within a level — extends the longest shared prefix instead of
        rebuilding the whole system from its per-dependence pieces.
        Intersection of canonical polyhedra is order-insensitive, so the
        sort only affects which prefixes get shared, never the result.
        """
        items = sorted(dependences, key=lambda d: repr(coaccess_key(d.co)))
        keys = tuple(coaccess_key(d.co) for d in items)

        def finish():
            poly = self._dependence_prefix(items, keys)
            if poly is None:
                return None
            if poly.n_constraints > 48:
                return poly.remove_redundancy()
            return poly

        return self.memo(("depsys", frozenset(keys)), finish)

    def _dependence_prefix(self, deps: list, keys: tuple) -> Polyhedron | None:
        def build():
            if not deps:
                return Polyhedron.universe(self.space)
            prev = self._dependence_prefix(deps[:-1], keys[:-1])
            if prev is None:
                return None
            nxt = prev.intersect(self.weak_dependence(deps[-1].co))
            return None if nxt.is_rational_empty() else nxt

        return self.memo(("depprefix", keys), build)

    def sharing_system(self, opportunities: Iterable,
                       last: bool) -> Polyhedron | None:
        """Conjunction of the sharing constraints (Table 1) for a candidate
        set at a given depth kind, or ``None`` when rationally empty.

        Prefix-memoized over index order, so Apriori's lattice of candidate
        sets shares all common-prefix work: level k+1 candidates extend the
        systems their level-k subsets already built.  Self R->R at the last
        depth is sign-branched by the searcher and therefore skipped here.
        """
        opps = tuple(sorted(opportunities, key=lambda o: o.index))
        key = ("sharebase", tuple(o.index for o in opps), last)

        def build():
            if not opps:
                return Polyhedron.universe(self.space)
            prev = self.sharing_system(opps[:-1], last)
            if prev is None:
                return None
            o = opps[-1]
            if not o.is_self or not last:
                delta = 0
            elif o.co.src.type is AccessType.WRITE:
                delta = 1
            else:
                return prev  # self R->R at the last depth: handled per sign
            nxt = prev.intersect(self.sharing_equality(o.co, delta))
            return None if nxt.is_rational_empty() else nxt

        return self.memo(key, build)

    def _nonneg(self, co: CoAccess, margin: int) -> Polyhedron:
        key = ("ge", coaccess_key(co), margin)
        if key not in self._cache:
            result = Polyhedron.universe(self.space)
            for disjunct in co.extent.disjuncts:
                form = _difference_form(co, self.cspace, disjunct.space)
                result = result.intersect(
                    farkas_nonneg(disjunct, form.shift(-margin), self.space))
                if result.is_rational_empty():
                    break
            self._store(key, result)
        return self._cache[key]

    # -- worker-cache protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: tuple) -> bool:
        return key in self._cache

    def keys(self):
        return self._cache.keys()

    def export(self, keys: Iterable[tuple] | None = None) -> dict[tuple, Polyhedron]:
        """Picklable snapshot of all (or the selected) entries."""
        if keys is None:
            return dict(self._cache)
        return {k: self._cache[k] for k in keys if k in self._cache}

    def merge(self, entries: Mapping[tuple, Polyhedron]) -> int:
        """Adopt entries computed elsewhere; existing keys win (values for a
        given key are deterministic, so either copy is correct).  Returns the
        number of entries actually added."""
        added = 0
        for key, value in entries.items():
            if key not in self._cache:
                self._store(key, value)
                added += 1
        return added

    def begin_delta(self) -> None:
        """Reset the journal; subsequent stores are collected by
        :meth:`collect_delta`."""
        self._journal = []

    def collect_delta(self) -> dict[tuple, Polyhedron]:
        """Entries stored since the last :meth:`begin_delta`."""
        return {k: self._cache[k] for k in self._journal if k in self._cache}
