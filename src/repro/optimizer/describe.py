"""Human-readable plan explanations.

``describe_plan`` narrates a plan the way the paper's prose does — per
array, how many block I/Os happen and why the rest were saved:

    A: read 144 blocks (once each)
    C: never written to disk - all 144 reads pipelined from s1
    E: written 12 blocks (the final value per block), 132 writes kept
       in memory, all 132 re-reads served from memory

Used by the CLI's ``explain`` command and the examples.
"""

from __future__ import annotations

from typing import Mapping

from ..ir import Program
from .costing import trace_plan
from .plan import Plan

__all__ = ["describe_plan", "per_array_io"]


def per_array_io(program: Program, params: Mapping[str, int],
                 plan: Plan) -> dict[str, dict[str, int]]:
    """Per-array I/O breakdown: counts of performed/saved reads and writes."""
    trace = trace_plan(program, params, plan.schedule, plan.realized)
    stats: dict[str, dict[str, int]] = {
        name: {"reads": 0, "reads_saved": 0, "writes": 0,
               "writes_saved": 0, "writes_elided": 0}
        for name in program.arrays}
    for ev in trace.events:
        s = stats[ev.access.array.name]
        if ev.is_write:
            if ev.saved:
                s["writes_saved"] += 1
            elif ev.elided:
                s["writes_elided"] += 1
            else:
                s["writes"] += 1
        else:
            if ev.saved:
                s["reads_saved"] += 1
            else:
                s["reads"] += 1
    return stats


def describe_plan(program: Program, params: Mapping[str, int],
                  plan: Plan) -> str:
    """A paper-style narration of what the plan does per array."""
    stats = per_array_io(program, params, plan)
    lines = [f"Plan {plan.index}"
             + ("" if plan.realized else " (the original program order)")]
    if plan.realized:
        lines.append("realizes: " + ", ".join(plan.realized_labels))
    lines.append(f"I/O time {plan.cost.io_seconds:.2f} s, "
                 f"memory {plan.cost.memory_bytes / 1e6:.1f} MB")
    for name in sorted(stats):
        s = stats[name]
        parts = []
        if s["reads"] or s["reads_saved"]:
            text = f"read {s['reads']} blocks"
            if s["reads_saved"]:
                text += f", {s['reads_saved']} re-reads served from memory"
            parts.append(text)
        if s["writes"] or s["writes_saved"] or s["writes_elided"]:
            text = f"wrote {s['writes']} blocks"
            extras = []
            if s["writes_saved"]:
                extras.append(f"{s['writes_saved']} overwritten in memory")
            if s["writes_elided"]:
                extras.append(f"{s['writes_elided']} elided (fully pipelined)")
            if extras:
                text += " (" + ", ".join(extras) + ")"
            parts.append(text)
        if s["writes"] == 0 and (s["writes_saved"] or s["writes_elided"]):
            parts.append("never hits disk for writes")
        if not parts:
            parts.append("no I/O")
        lines.append(f"  {name}: " + "; ".join(parts))
    return "\n".join(lines)
