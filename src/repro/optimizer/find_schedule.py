"""FindSchedule (Algorithm 3) and EnumRow (Algorithm 1).

Searches for a legal (d~+1)-dimensional schedule realizing a candidate set
of sharing opportunities:

depth by depth (1..d~):
  1. weakly satisfy every remaining dependence   (Farkas, >= 0)
  2. apply sharing constraints (Table 1): non-self equalities at every
     depth; self equalities before the last depth, +-1 at the last depth
     (R->R self may pick either sign — handled as search branches)
  3. dimensionality constraints via EnumRow: per statement, decide whether
     this row lies in the span of the previous rows (l=0) or orthogonal to
     them (l=1), greedily, preferring the paper's order {0,1}
  4. greedily try to strongly satisfy remaining dependences (>= 1)
  5. sample a small integer coefficient point (rows chosen orthogonal must
     be nonzero in their loop-variable part)

finally, assign the constant last dimension by topological sort over the
statement ordering constraints from unsatisfied dependences and realized
non-self W->R / W->W opportunities.

Returns a :class:`repro.ir.Schedule` or None when the candidate set is
infeasible.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterable, Sequence

from ..analysis import Dependence, SharingOpportunity
from ..ir import AccessType, AffineExpr, Program, Schedule, Statement
from ..polyhedral import Polyhedron, RationalMatrix, Space
from .constraints import CONST_SUFFIX, ConstraintCache, coaccess_key

__all__ = ["find_schedule", "enum_row"]

_SAMPLE_BOXES = (1, 2, 3)


def enum_row(d_tilde: int, row_index: int, d_s: int, k: int) -> list[int]:
    """Algorithm 1: may row ``row_index`` (1-based) be dependent on previous
    rows?  Returns the l-choices to try in order."""
    if d_tilde - (row_index - 1) == d_s - k:
        return [1]
    return [0, 1]


def find_schedule(program: Program, cache: ConstraintCache,
                  opportunities: Sequence[SharingOpportunity],
                  dependences: Sequence[Dependence]) -> Schedule | None:
    """Search for a legal schedule realizing all ``opportunities``."""
    searcher = _Searcher(program, cache, opportunities, dependences)
    return searcher.run()


class _Searcher:
    def __init__(self, program, cache, opportunities, dependences):
        self.program = program
        self.cache = cache
        self.opportunities = list(opportunities)
        self.dependences = list(dependences)
        self.d_tilde = program.max_depth
        self.statements = program.statements

        # Stable (picklable) memo keys: dependences by co-access identity,
        # opportunities by index — valid across optimizer worker processes.
        self._dep_key = {id(d): coaccess_key(d.co) for d in self.dependences}
        self._opps_key = tuple(sorted(o.index for o in self.opportunities))

        self.q_self_w = [o for o in self.opportunities
                         if o.is_self and o.co.src.type is AccessType.WRITE]
        self.q_self_r = [o for o in self.opportunities
                         if o.is_self and o.co.src.type is AccessType.READ]
        self.q_nonself = [o for o in self.opportunities if not o.is_self]

    def run(self) -> Schedule | None:
        state = _State(self.statements, self.dependences)
        result = self._solve_depth(1, state)
        if result is None:
            return None
        return self._finalize(result)

    # -- one depth ----------------------------------------------------------

    def _solve_depth(self, depth: int, state: "_State") -> "_State | None":
        if depth > self.d_tilde:
            return state if self._rank_complete(state) else None

        # The conjunction of weak-dependence and sharing constraints depends
        # only on (remaining deps, Q, last-depth?) — memoize it across the
        # many FindSchedule calls the Apriori search makes.
        last = depth >= self.d_tilde
        memo_key = ("base",
                    frozenset(self._dep_key[id(d)] for d in state.remaining),
                    self._opps_key,
                    last)
        base = self.cache.memo(memo_key, lambda: self._build_base(state, last))
        if base is None or base.is_rational_empty():
            return None
        if last:
            # R->R self may run forward (+1) or reversed (-1): branch.
            sign_choices = list(itertools.product((1, -1), repeat=len(self.q_self_r)))
        else:
            sign_choices = [()]

        for signs in sign_choices:
            poly = base
            ok = True
            for opp, sign in zip(self.q_self_r, signs):
                poly = poly.intersect(self.cache.sharing_equality(opp.co, sign))
                if poly.is_rational_empty():
                    ok = False
                    break
            if not ok:
                continue
            result = self._dimensionality_and_sample(depth, poly, state)
            if result is not None:
                return result
        return None

    def _build_base(self, state: "_State", last: bool) -> Polyhedron | None:
        # Both systems are built incrementally by the cache: every sorted
        # prefix is memoized, so the many overlapping candidate sets (and
        # shrinking remaining-dependence sets) extend shared work.
        deps_base = self.cache.dependence_system(state.remaining)
        if deps_base is None:
            return None
        share = self.cache.sharing_system(self.opportunities, last)
        if share is None:
            return None
        base = deps_base.intersect(share)
        if base.is_rational_empty():
            return None
        return base

    def _dimensionality_and_sample(self, depth: int, poly: Polyhedron,
                                   state: "_State") -> "_State | None":
        # Dimensionality constraints (greedy per statement, Algorithm 3 l.28-38).
        must_be_nonzero: list[Statement] = []
        new_k = dict(state.k)
        for stmt in self.statements:
            choices = enum_row(self.d_tilde, depth, stmt.depth, state.k[stmt.name])
            chosen = None
            for l in choices:
                rows = self._span_constraints(stmt, state, independent=bool(l))
                trial = poly.add_constraints(eqs=rows)
                # With a single choice there is no alternative to fall back
                # to, so skip the feasibility probes (sampling will catch a
                # genuinely empty space) and save two LPs per statement.
                if len(choices) > 1:
                    if trial.is_rational_empty():
                        continue
                    if l == 1 and not self._nonzero_feasible(trial, stmt):
                        continue
                poly = trial
                chosen = l
                break
            if chosen is None:
                return None
            if chosen == 1:
                must_be_nonzero.append(stmt)
                new_k[stmt.name] = state.k[stmt.name] + 1

        # Greedy strong satisfaction of remaining dependences (l.39-43):
        # try them all at once (one LP) before falling back to one-by-one.
        satisfied = []
        if state.remaining:
            all_trial = poly
            for dep in state.remaining:
                all_trial = all_trial.intersect(self.cache.strong_dependence(dep.co))
            if not all_trial.is_rational_empty():
                poly = all_trial
                satisfied = list(state.remaining)
            else:
                for dep in state.remaining:
                    trial = poly.intersect(self.cache.strong_dependence(dep.co))
                    if not trial.is_rational_empty():
                        poly = trial
                        satisfied.append(dep)

        point = self._sample_point(poly, must_be_nonzero)
        if point is None:
            return None

        child = state.child(new_k, satisfied, point, self.cache.cspace)
        deeper = self._solve_depth(depth + 1, child)
        if deeper is not None:
            return deeper
        # Retry without the greedily-satisfied dependences (they may have
        # over-constrained deeper depths is not possible — strong satisfaction
        # only removes future constraints — but a different sample might
        # matter; we accept the greedy choice as the paper does).
        return None

    # -- helpers -------------------------------------------------------------

    def _span_constraints(self, stmt: Statement, state: "_State",
                          independent: bool) -> list[list[Fraction]]:
        """Equality rows on this statement's loop-var coefficients.

        independent: orthogonal to all previous rows (null-space condition);
        dependent: inside their span (orthogonal to the span's complement).
        """
        prev = state.rows_loop_part(stmt)
        space = self.cache.space
        names = self.cache.cspace.loop_coeff_names(stmt)
        out: list[list[Fraction]] = []
        if independent:
            vectors = [r for r in prev if any(r)]
        else:
            if not prev or not any(any(r) for r in prev):
                # span is {0}: the row's loop part must be zero
                vectors = None
                out = []
                for n in names:
                    row = [Fraction(0)] * (space.dim + 1)
                    row[space.index(n)] = Fraction(1)
                    out.append(row)
                return out
            mat = RationalMatrix([r for r in prev])
            vectors = mat.null_space()
        for vec in vectors:
            row = [Fraction(0)] * (space.dim + 1)
            for n, c in zip(names, vec):
                row[space.index(n)] = c
            if any(row):
                out.append(row)
        return out

    def _nonzero_feasible(self, poly: Polyhedron, stmt: Statement) -> bool:
        space = self.cache.space
        for n in self.cache.cspace.loop_coeff_names(stmt):
            for sign in (1, -1):
                row = [Fraction(0)] * (space.dim + 1)
                row[space.index(n)] = Fraction(sign)
                row[-1] = Fraction(-1)
                if not poly.add_constraints(ineqs=[row]).is_rational_empty():
                    return True
        return False

    def _sample_point(self, poly: Polyhedron,
                      nonzero_stmts: list[Statement]) -> dict[str, Fraction] | None:
        space = self.cache.space
        for box in _SAMPLE_BOXES:
            bounds = {n: (-box, box) for n in space.names}
            boxed = poly.intersect(Polyhedron.box(space, bounds))
            point = self._sample_binding(boxed, list(nonzero_stmts))
            if point is not None:
                return {n: Fraction(v) for n, v in zip(space.names, point)}
        return None

    def _sample_binding(self, poly: Polyhedron,
                        todo: list[Statement]) -> tuple[int, ...] | None:
        """Sample a point with nonzero loop rows for ``todo`` statements.

        Statements are processed one at a time: find a point whose row for
        the statement is nonzero (trying sign branches per loop variable),
        then *bind* that statement's coefficients as equalities — the LP
        presolve then eliminates those variables, so each level gets cheaper
        instead of more constrained.
        """
        if not todo:
            if poly.is_rational_empty():
                return None
            return self._witness(poly)
        stmt, rest = todo[0], todo[1:]
        space = self.cache.space
        names = self.cache.cspace.loop_coeff_names(stmt)
        for n in names:
            for sign in (1, -1):
                row = [Fraction(0)] * (space.dim + 1)
                row[space.index(n)] = Fraction(sign)
                row[-1] = Fraction(-1)
                branch = poly.add_constraints(ineqs=[row])
                point = self._witness(branch)
                if point is None:
                    continue
                stmt_vars = self.cache.cspace.stmt_vars(stmt)
                binds = []
                for v in stmt_vars:
                    eq = [Fraction(0)] * (space.dim + 1)
                    eq[space.index(v)] = Fraction(1)
                    eq[-1] = Fraction(-point[space.index(v)])
                    binds.append(eq)
                result = self._sample_binding(poly.add_constraints(eqs=binds), rest)
                if result is not None:
                    return result
        return None

    def _witness(self, poly: Polyhedron) -> tuple[int, ...] | None:
        """Integer witness of ``poly`` (small grid sample, then branch and
        bound).  Keyed by the polyhedron's structural identity in the shared
        constraint cache: overlapping candidate sets re-derive the same
        branch polyhedra, and integer-point search is the dominant cost.
        The key is the raw constraint tuples, not the Polyhedron itself —
        its ``__eq__`` is semantic (a pair of subset LPs), far costlier
        than the lookup it would serve."""
        def build():
            point = poly.sample_small_integer_point()
            return point if point is not None else poly.find_integer_point()
        return self.cache.memo(
            ("witness", poly.space.names, poly.eqs, poly.ineqs), build)

    def _rank_complete(self, state: "_State") -> bool:
        return all(state.k[s.name] == s.depth for s in self.statements)

    # -- constants (last dimension) ------------------------------------------------

    def _finalize(self, state: "_State") -> Schedule | None:
        order = self._statement_constants(state)
        if order is None:
            return None
        rows: dict[str, list[AffineExpr]] = {}
        for stmt in self.statements:
            stmt_rows: list[AffineExpr] = []
            for loop_c, par_c, const in state.rows[stmt.name]:
                e = AffineExpr.constant(const)
                for v, c in zip(stmt.loop_vars, loop_c):
                    e = e + AffineExpr({v: c})
                for p, c in zip(self.program.params, par_c):
                    e = e + AffineExpr({p: c})
                stmt_rows.append(e)
            stmt_rows.append(AffineExpr.constant(order[stmt.name]))
            rows[stmt.name] = stmt_rows
        return Schedule(rows, meta={
            "form": "searched",
            "realized": [o.label for o in self.opportunities],
        })

    def _statement_constants(self, state: "_State") -> dict[str, int] | None:
        """Topological constants: every remaining dependence and realized
        non-self W-type opportunity forces src-statement < tgt-statement."""
        edges: set[tuple[str, str]] = set()
        for dep in state.remaining:
            s, t = dep.co.src.statement.name, dep.co.tgt.statement.name
            if s == t:
                return None  # self dependence unsatisfied after d~ depths
            edges.add((s, t))
        for opp in self.q_nonself:
            if opp.co.src.type is AccessType.WRITE:
                s, t = opp.co.src.statement.name, opp.co.tgt.statement.name
                edges.add((s, t))
        names = [s.name for s in self.statements]
        order: list[str] = []
        pending = set(names)
        while pending:
            free = [n for n in sorted(pending)
                    if not any(e[1] == n and e[0] in pending for e in edges)]
            if not free:
                return None  # cycle
            # Keep original textual order among simultaneously-free statements.
            free.sort(key=names.index)
            order.append(free[0])
            pending.discard(free[0])
        return {name: i for i, name in enumerate(order)}


class _State:
    """Per-depth search state: chosen rows, independence counts, remaining deps."""

    __slots__ = ("k", "remaining", "rows")

    def __init__(self, statements, dependences):
        self.k = {s.name: 0 for s in statements}
        self.remaining = list(dependences)
        self.rows: dict[str, list[tuple[list[Fraction], list[Fraction], Fraction]]] = {
            s.name: [] for s in statements}

    def child(self, new_k, satisfied, point, cspace) -> "_State":
        child = _State.__new__(_State)
        child.k = dict(new_k)
        child.remaining = [d for d in self.remaining if d not in satisfied]
        child.rows = {name: list(rows) for name, rows in self.rows.items()}
        for stmt in cspace.program.statements:
            loop_c, par_c, const = cspace.row_from_point(stmt, point)
            child.rows[stmt.name].append((loop_c, par_c, const))
        return child

    def rows_loop_part(self, stmt) -> list[list[Fraction]]:
        return [loop for (loop, _, __) in self.rows[stmt.name]]
