"""Plan objects: a schedule, the sharing opportunities it realizes, its cost."""

from __future__ import annotations

from typing import Sequence

from ..analysis import SharingOpportunity
from ..ir import Schedule
from .costing import PlanCost

__all__ = ["Plan"]


class Plan:
    """One legal execution plan produced by the optimizer."""

    __slots__ = ("index", "schedule", "realized", "cost")

    def __init__(self, index: int, schedule: Schedule,
                 realized: Sequence[SharingOpportunity], cost: PlanCost):
        self.index = index
        self.schedule = schedule
        self.realized = tuple(realized)
        self.cost = cost

    @property
    def realized_labels(self) -> list[str]:
        return [o.label for o in self.realized]

    @property
    def is_original(self) -> bool:
        return not self.realized

    def fits(self, memory_cap_bytes: int | None) -> bool:
        return memory_cap_bytes is None or self.cost.memory_bytes <= memory_cap_bytes

    def summary(self) -> str:
        shared = ", ".join(self.realized_labels) or "(none)"
        return (f"Plan {self.index}: io={self.cost.io_seconds:.1f}s "
                f"mem={self.cost.memory_bytes / 1e6:.1f}MB shares=[{shared}]")

    def __repr__(self) -> str:
        return f"Plan(#{self.index}, {len(self.realized)} opportunities, {self.cost!r})"
