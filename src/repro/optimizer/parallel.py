"""Process-pool execution layer for the optimizer.

The two hot phases of :meth:`repro.optimizer.Optimizer.optimize` are
embarrassingly parallel *within* their natural barriers:

* **Apriori enumeration** — candidates inside one level are mutually
  independent (level k+1 only needs level k's feasible sets), so each
  level's candidate list is fanned out to worker processes; levels remain a
  barrier.
* **Plan costing** — ``evaluate_plan`` over the feasible plans is a pure
  per-plan computation.

Polyhedral work is shared across workers through the picklable, mergeable
:class:`~repro.optimizer.constraints.ConstraintCache`:

1. each worker holds a process-persistent cache, seeded from the pickled
   analysis at pool start;
2. every legality-test task returns the *delta* of cache entries the worker
   computed (journal-based, see ``begin_delta``/``collect_delta``);
3. the driver merges all deltas into its master cache at the level barrier;
4. the next level's tasks carry the entries the driver has not yet
   broadcast, so every worker starts the level warm with the union of all
   workers' previous work.

Merging is sound because cache keys are content-based and values are
deterministic functions of their key — two processes can only ever compute
identical values for the same key.  Consequently ``workers=N`` returns
bit-identical plans to ``workers=1``: the same candidates are tested in the
same canonical order, ``find_schedule`` is deterministic, and results are
collected in submission order regardless of completion order.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Mapping, Sequence

from ..analysis import ProgramAnalysis
from ..ir import Schedule
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from .apriori import AprioriStats, generate_level_candidates, grow_greedy_maximal
from .constraints import ConstraintCache
from .costing import (IOModel, elidable_write_bytes, evaluate_plan,
                      io_lower_bound, opportunity_savings_seconds_bound)
from .find_schedule import find_schedule
from .plan import Plan

__all__ = ["ParallelOptimizerPool"]

# Tasks per worker per level: >1 so a fast worker can steal work, small
# enough that each task amortizes its IPC (one find_schedule call is orders
# of magnitude costlier than pickling a candidate batch).
_OVERSUBSCRIBE = 2

# -- worker side ---------------------------------------------------------------

_STATE: dict | None = None


def _init_worker(payload: bytes) -> None:
    """Pool initializer: one analysis + one warm-started cache per process."""
    global _STATE
    # Workers forked from an instrumented driver would inherit its tracer /
    # registry globals (and, worse, its open JSONL file descriptor); the
    # driver is the single observer, so observability is off in workers.
    obs_trace.uninstall()
    obs_metrics.uninstall()
    analysis, params, io_model, dwe, block_bytes, seed = pickle.loads(payload)
    cache = ConstraintCache(analysis.program)
    if seed:
        cache.merge(seed)
    _STATE = {
        "analysis": analysis,
        "by_index": {o.index: o for o in analysis.opportunities},
        "params": params,
        "io_model": io_model,
        "dwe": dwe,
        "block_bytes": block_bytes,
        "cache": cache,
    }


def _test_candidates(batch: Sequence[tuple[int, ...]],
                     delta: dict | None):
    """Legality-test a batch of candidate index tuples.

    Returns ``(pid, [(candidate, schedule-or-None), ...], cache_delta)``.
    """
    st = _STATE
    cache: ConstraintCache = st["cache"]
    if delta:
        cache.merge(delta)
    cache.begin_delta()
    analysis: ProgramAnalysis = st["analysis"]
    out = []
    for cand in batch:
        opps = [st["by_index"][i] for i in cand]
        sched = find_schedule(analysis.program, cache, opps,
                              analysis.dependences)
        out.append((cand, sched))
    return os.getpid(), out, cache.collect_delta()


def _cost_plans(batch: Sequence[tuple[int, tuple[int, ...], Schedule]]):
    """Cost a batch of ``(plan_id, candidate, schedule)`` triples.

    Returns ``(pid, [(plan_id, PlanCost), ...])``.
    """
    st = _STATE
    analysis: ProgramAnalysis = st["analysis"]
    out = []
    for plan_id, cand, schedule in batch:
        realized = [st["by_index"][i] for i in cand]
        cost = evaluate_plan(analysis.program, st["params"], schedule,
                             realized, st["io_model"],
                             dead_write_elimination=st["dwe"],
                             block_bytes=st["block_bytes"])
        out.append((plan_id, cost))
    return os.getpid(), out


# -- driver side ---------------------------------------------------------------


class ParallelOptimizerPool:
    """Drives Apriori enumeration and plan costing over a process pool.

    The driver keeps the master :class:`ConstraintCache`; use it (e.g. for
    the greedy-maximal completion) after enumeration — it holds the union of
    every worker's polyhedral work.
    """

    def __init__(self, analysis: ProgramAnalysis, params: Mapping[str, int],
                 io_model: IOModel, workers: int,
                 dead_write_elimination: bool = True,
                 block_bytes: Mapping[str, int] | None = None,
                 seed_cache: ConstraintCache | None = None):
        if workers < 2:
            raise ValueError("ParallelOptimizerPool needs workers >= 2; "
                             "use the sequential path for workers=1")
        self.analysis = analysis
        self.params = dict(params)
        self.workers = workers
        self.cache = ConstraintCache(analysis.program)
        if seed_cache is not None:
            self.cache.merge(seed_cache.export())
        self._io_model = io_model
        self._dwe = dead_write_elimination
        self._block_bytes = block_bytes
        # A crashed worker (BrokenProcessPool) triggers one pool restart; a
        # second crash degrades the search to driver-side sequential
        # evaluation — identical results, just slower.
        self._degraded = False
        self._restarts = 0
        self._sent_keys: set[tuple] = set()
        self._pool = self._spawn_pool()

    def _spawn_pool(self) -> ProcessPoolExecutor:
        """Fresh pool seeded with the master cache's current contents."""
        payload = pickle.dumps((self.analysis, self.params, self._io_model,
                                self._dwe, self._block_bytes,
                                self.cache.export()))
        self._sent_keys = set(self.cache.keys())
        return ProcessPoolExecutor(
            max_workers=self.workers, initializer=_init_worker,
            initargs=(payload,))

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ParallelOptimizerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- helpers ------------------------------------------------------------

    def _batches(self, items: Sequence) -> list[list]:
        """Split ``items`` into contiguous batches, preserving order."""
        n = max(1, -(-len(items) // (self.workers * _OVERSUBSCRIBE)))
        return [list(items[i:i + n]) for i in range(0, len(items), n)]

    def _pending_delta(self) -> dict:
        """Master-cache entries not yet shipped to the pool."""
        fresh = [k for k in self.cache.keys() if k not in self._sent_keys]
        return self.cache.export(fresh)

    def _restart_or_degrade(self, stats: AprioriStats) -> None:
        """React to a BrokenProcessPool: restart once, then go sequential."""
        self.close()
        if self._restarts > 0:
            self._degraded = True
            stats.sequential_fallbacks += 1
            self._pool = None
        else:
            self._restarts += 1
            stats.pool_restarts += 1
            self._pool = self._spawn_pool()

    def _run_level(self, candidates: Sequence[frozenset[int]],
                   stats: AprioriStats) -> list[tuple[frozenset[int], Schedule | None]]:
        """Test one level's candidates; returns results in candidate order.

        A worker crash (BrokenProcessPool) retries the whole level — first
        on a fresh pool, then sequentially on the driver.  Re-running a
        level is sound: legality tests are pure and cache merges are
        idempotent, so results are bit-identical however they are computed.
        """
        ordered = [tuple(sorted(c)) for c in candidates]
        while not self._degraded:
            try:
                return self._run_level_pool(ordered, stats)
            except BrokenProcessPool:
                self._restart_or_degrade(stats)
        return self._run_level_seq(ordered, stats)

    def _run_level_pool(self, candidates: Sequence[tuple[int, ...]],
                        stats: AprioriStats
                        ) -> list[tuple[frozenset[int], Schedule | None]]:
        delta = self._pending_delta()
        self._sent_keys.update(delta)
        futures = [self._pool.submit(_test_candidates, batch, delta)
                   for batch in self._batches(candidates)]
        ordered: list[tuple[frozenset[int], Schedule | None]] = []
        for fut in futures:
            pid, results, worker_delta = fut.result()
            stats.record_task(pid)
            obs_trace.instant("opt.task", "optimizer", kind="legality",
                              pid=pid, candidates=len(results))
            # Merged worker entries are deliberately NOT added to
            # _sent_keys: the *other* workers still lack them, so the next
            # level's broadcast must carry them (re-merging is idempotent).
            self.cache.merge(worker_delta)
            ordered.extend((frozenset(cand), sched) for cand, sched in results)
        return ordered

    def _run_level_seq(self, candidates: Sequence[tuple[int, ...]],
                       stats: AprioriStats
                       ) -> list[tuple[frozenset[int], Schedule | None]]:
        """Driver-side fallback: same candidates, same canonical order,
        against the master cache — identical results to the pool path."""
        by_index = {o.index: o for o in self.analysis.opportunities}
        ordered: list[tuple[frozenset[int], Schedule | None]] = []
        for batch in self._batches(candidates):
            stats.record_task(os.getpid())
            for cand in batch:
                opps = [by_index[i] for i in cand]
                sched = find_schedule(self.analysis.program, self.cache, opps,
                                      self.analysis.dependences)
                ordered.append((frozenset(cand), sched))
        return ordered

    # -- enumeration --------------------------------------------------------

    def enumerate_feasible_sets(self, max_set_size: int | None = None,
                                max_candidates: int | None = None,
                                include_greedy_maximal: bool = True
                                ) -> tuple[list[tuple[frozenset[int], Schedule]], AprioriStats]:
        """Parallel Algorithm 2: identical results (sets, order, stats
        counters) to :func:`repro.optimizer.apriori.enumerate_feasible_sets`."""
        analysis = self.analysis
        usable = [o for o in analysis.opportunities if o.reduced]
        stats = AprioriStats()
        stats.workers = self.workers
        stats.total_subsets = 2 ** len(usable) - 1
        t0 = time.perf_counter()

        results: list[tuple[frozenset[int], Schedule]] = [
            (frozenset(), analysis.schedule)]
        feasible_prev: set[frozenset[int]] = set()

        def budget_room() -> int | None:
            if max_candidates is None:
                return None
            return max_candidates - stats.candidates_tested

        def take_budget(candidates: list) -> list:
            """Budget-bounded prefix, flagging truncation like the
            sequential walk does."""
            room = budget_room()
            if room is None or len(candidates) <= room:
                return candidates
            stats.truncated = True
            return candidates[:room]

        # Level 1: singletons in opportunity-index order (the canonical sort
        # order, since ``usable`` is index-ascending).
        t_level = time.perf_counter()
        feasible_singletons: list = []
        level1 = take_budget([frozenset([o.index]) for o in usable])
        with obs_trace.span("apriori.level", "optimizer", k=1,
                            candidates=len(level1)) as sp:
            for cand, sched in self._run_level(level1, stats):
                stats.candidates_tested += 1
                obs_trace.instant("opt.solve", "optimizer", set=sorted(cand),
                                  feasible=sched is not None)
                if sched is not None:
                    feasible_prev.add(cand)
                    results.append((cand, sched))
                    feasible_singletons.append(
                        next(o for o in usable if o.index in cand))
                    stats.feasible += 1
            sp["feasible"] = stats.feasible
        stats.record_level(1, stats.candidates_tested, stats.feasible,
                           time.perf_counter() - t_level,
                           generated=len(usable))

        k = 2
        while (feasible_prev and (max_set_size is None or k <= max_set_size)
               and k <= len(usable)):
            candidates = generate_level_candidates(feasible_prev, usable, k)
            if not candidates:
                break
            room = budget_room()
            if room is not None and room <= 0:
                stats.truncated = True
                break
            generated = len(candidates)
            candidates = take_budget(candidates)
            t_level = time.perf_counter()
            tested_before = stats.candidates_tested
            feasible_before = stats.feasible
            feasible_now: set[frozenset[int]] = set()
            with obs_trace.span("apriori.level", "optimizer", k=k,
                                candidates=len(candidates)) as sp:
                for cand, sched in self._run_level(candidates, stats):
                    stats.candidates_tested += 1
                    obs_trace.instant("opt.solve", "optimizer",
                                      set=sorted(cand),
                                      feasible=sched is not None)
                    if sched is not None:
                        feasible_now.add(cand)
                        results.append((cand, sched))
                        stats.feasible += 1
                sp["feasible"] = stats.feasible - feasible_before
            stats.record_level(k, stats.candidates_tested - tested_before,
                               stats.feasible - feasible_before,
                               time.perf_counter() - t_level,
                               generated=generated)
            feasible_prev = feasible_now
            k += 1
        if feasible_prev and max_set_size is not None and k > max_set_size:
            stats.truncated = stats.truncated or any(
                len(s) == max_set_size for s in feasible_prev)

        if stats.truncated and include_greedy_maximal:
            # Runs on the driver against the merged master cache, so it is
            # warm with every worker's polyhedral work.
            seen = {key for key, _ in results}
            grown = grow_greedy_maximal(analysis, self.cache,
                                        feasible_singletons, stats)
            if grown is not None and grown[0] not in seen:
                results.append(grown)
                stats.feasible += 1

        stats.seconds = time.perf_counter() - t0
        return results, stats

    # -- pruned enumeration + costing ---------------------------------------

    def enumerate_and_cost_pruned(self, memory_cap_bytes: int | None = None,
                                  max_set_size: int | None = None,
                                  max_candidates: int | None = None,
                                  include_greedy_maximal: bool = True
                                  ) -> tuple[list[Plan], AprioriStats]:
        """Parallel bound-pruned search (see
        :func:`repro.optimizer.apriori.enumerate_and_cost_pruned`).

        Levels stay the barrier: a level's candidates are legality-tested in
        parallel, the survivors whose static lower bound could still beat
        the incumbent are costed in parallel, and the incumbent/bound checks
        run at the barrier.  The incumbent therefore lags the sequential
        pruned walk by at most one level — it prunes less (``cost_skips`` /
        ``bound_exits`` counters may differ) but never differently: the
        returned best plan and cost are bit-identical to both the sequential
        pruned and the exhaustive searches.
        """
        analysis = self.analysis
        usable = [o for o in analysis.opportunities if o.reduced]
        by_index = {o.index: o for o in analysis.opportunities}
        stats = AprioriStats()
        stats.workers = self.workers
        stats.total_subsets = 2 ** len(usable) - 1
        t0 = time.perf_counter()

        plans: list[Plan] = []
        best: Plan | None = None

        def add_plan(idx_set: frozenset[int], schedule: Schedule,
                     cost) -> Plan:
            nonlocal best
            realized = [by_index[i] for i in sorted(idx_set)]
            plan = Plan(len(plans), schedule, realized, cost)
            plans.append(plan)
            obs_trace.instant("opt.plan_cost", "optimizer", plan=plan.index,
                              read_bytes=cost.read_bytes,
                              write_bytes=cost.write_bytes,
                              io_seconds=cost.io_seconds,
                              memory_bytes=cost.memory_bytes)
            if plan.fits(memory_cap_bytes) and (
                    best is None or cost.io_seconds < best.cost.io_seconds):
                best = plan
            return plan

        # Plan 0 on the driver: one evaluation, and its cost carries the
        # baseline byte volumes the bounds are computed from.
        p0_cost = evaluate_plan(analysis.program, self.params,
                                analysis.schedule, [], self._io_model,
                                dead_write_elimination=self._dwe,
                                block_bytes=self._block_bytes)
        add_plan(frozenset(), analysis.schedule, p0_cost)
        base_reads = p0_cost.baseline_read_bytes
        base_writes = p0_cost.baseline_write_bytes
        elidable = (elidable_write_bytes(analysis.program, self.params,
                                         self._block_bytes)
                    if self._dwe else 0)
        savings_ub = {o.index: opportunity_savings_seconds_bound(
            o, self.params, self._io_model, self._block_bytes)
            for o in usable}
        global_lb = io_lower_bound(base_reads, base_writes,
                                   sum(savings_ub.values()), elidable,
                                   self._io_model)
        stats.io_lower_bound = global_lb

        def candidate_lb(idx_set: frozenset[int]) -> float:
            return io_lower_bound(base_reads, base_writes,
                                  sum(savings_ub[i] for i in idx_set),
                                  elidable, self._io_model)

        def bound_met() -> bool:
            return best is not None and best.cost.io_seconds <= global_lb

        def budget_room() -> int | None:
            if max_candidates is None:
                return None
            return max_candidates - stats.candidates_tested

        def take_budget(candidates: list) -> list:
            room = budget_room()
            if room is None or len(candidates) <= room:
                return candidates
            stats.truncated = True
            return candidates[:room]

        seen_feasible: set[frozenset[int]] = {frozenset()}
        feasible_prev: set[frozenset[int]] = set()
        feasible_singletons: list = []
        done = False

        def run_pruned_level(k: int, candidates: list,
                             generated: int) -> set[frozenset[int]]:
            """Test + cost one level at the barrier; returns its feasible
            sets.  Survivor costing is filtered by the incumbent *entering*
            the level (the bound lags by one barrier, see docstring)."""
            nonlocal done
            t_level = time.perf_counter()
            tested_before = stats.candidates_tested
            feasible_before = stats.feasible
            feasible_now: set[frozenset[int]] = set()
            to_cost: list[tuple[frozenset[int], Schedule]] = []
            with obs_trace.span("apriori.level", "optimizer", k=k,
                                candidates=len(candidates)) as sp:
                for cand, sched in self._run_level(candidates, stats):
                    stats.candidates_tested += 1
                    obs_trace.instant("opt.solve", "optimizer",
                                      set=sorted(cand),
                                      feasible=sched is not None)
                    if sched is None:
                        continue
                    feasible_now.add(cand)
                    seen_feasible.add(cand)
                    stats.feasible += 1
                    if k == 1:
                        feasible_singletons.append(by_index[next(iter(cand))])
                    if best is not None and (candidate_lb(cand)
                                             >= best.cost.io_seconds):
                        stats.cost_skips += 1
                    else:
                        to_cost.append((cand, sched))
                sp["tested"] = stats.candidates_tested - tested_before
                sp["feasible"] = stats.feasible - feasible_before
            items = [(i, tuple(sorted(idx_set)), schedule)
                     for i, (idx_set, schedule) in enumerate(to_cost)]
            costs = self._cost_items(items, stats)
            for i, (idx_set, schedule) in enumerate(to_cost):
                add_plan(idx_set, schedule, costs[i])
            stats.record_level(k, stats.candidates_tested - tested_before,
                               stats.feasible - feasible_before,
                               time.perf_counter() - t_level,
                               generated=generated, costed=len(to_cost))
            if bound_met():
                stats.bound_exits += 1
                done = True
            return feasible_now

        if bound_met():
            # The baseline itself already meets the global bound: no sharing
            # can pay off, so no level ever runs.
            stats.bound_exits += 1
            done = True
        else:
            level1 = take_budget([frozenset([o.index]) for o in usable])
            feasible_prev = run_pruned_level(1, level1, len(usable))

        k = 2
        while (not done and feasible_prev
               and (max_set_size is None or k <= max_set_size)
               and k <= len(usable)):
            candidates = generate_level_candidates(feasible_prev, usable, k)
            if not candidates:
                break
            room = budget_room()
            if room is not None and room <= 0:
                stats.truncated = True
                break
            feasible_prev = run_pruned_level(k, take_budget(candidates),
                                             len(candidates))
            k += 1
        if (not done and feasible_prev and max_set_size is not None
                and k > max_set_size):
            stats.truncated = stats.truncated or any(
                len(s) == max_set_size for s in feasible_prev)

        if stats.truncated and include_greedy_maximal and not done:
            grown = grow_greedy_maximal(analysis, self.cache,
                                        feasible_singletons, stats)
            if grown is not None and grown[0] not in seen_feasible:
                cost = evaluate_plan(analysis.program, self.params, grown[1],
                                     [by_index[i] for i in sorted(grown[0])],
                                     self._io_model,
                                     dead_write_elimination=self._dwe,
                                     block_bytes=self._block_bytes)
                add_plan(grown[0], grown[1], cost)
                stats.feasible += 1

        stats.seconds = time.perf_counter() - t0
        return plans, stats

    # -- costing ------------------------------------------------------------

    def cost_plans(self, feasible: Sequence[tuple[frozenset[int], Schedule]],
                   stats: AprioriStats | None = None) -> list[Plan]:
        """Fan ``evaluate_plan`` out over the feasible plans (order kept).

        Same crash discipline as enumeration: one pool restart, then a
        sequential fallback on the driver.
        """
        items = [(plan_id, tuple(sorted(idx_set)), schedule)
                 for plan_id, (idx_set, schedule) in enumerate(feasible)]
        costs = self._cost_items(items, stats)
        by_index = {o.index: o for o in self.analysis.opportunities}
        plans: list[Plan] = []
        for plan_id, (idx_set, schedule) in enumerate(feasible):
            realized = [by_index[i] for i in sorted(idx_set)]
            cost = costs[plan_id]
            plans.append(Plan(plan_id, schedule, realized, cost))
            obs_trace.instant("opt.plan_cost", "optimizer", plan=plan_id,
                              read_bytes=cost.read_bytes,
                              write_bytes=cost.write_bytes,
                              io_seconds=cost.io_seconds,
                              memory_bytes=cost.memory_bytes)
        return plans

    def _cost_items(self, items, stats) -> dict[int, object]:
        """Cost ``(plan_id, candidate, schedule)`` triples with the usual
        crash discipline: one pool restart, then the driver-side fallback."""
        costs: dict[int, object] = {}
        while not self._degraded:
            try:
                costs = self._cost_plans_pool(items, stats)
                break
            except BrokenProcessPool:
                self._restart_or_degrade(stats or AprioriStats())
        if self._degraded and not costs:
            costs = self._cost_plans_seq(items, stats)
        return costs

    def _cost_plans_pool(self, items, stats) -> dict[int, object]:
        futures = [self._pool.submit(_cost_plans, batch)
                   for batch in self._batches(items)]
        costs: dict[int, object] = {}
        for fut in futures:
            pid, results = fut.result()
            if stats is not None:
                stats.record_task(pid)
            costs.update(results)
        return costs

    def _cost_plans_seq(self, items, stats) -> dict[int, object]:
        by_index = {o.index: o for o in self.analysis.opportunities}
        costs: dict[int, object] = {}
        for batch in self._batches(items):
            if stats is not None:
                stats.record_task(os.getpid())
            for plan_id, cand, schedule in batch:
                realized = [by_index[i] for i in cand]
                costs[plan_id] = evaluate_plan(
                    self.analysis.program, self.params, schedule, realized,
                    self._io_model, dead_write_elimination=self._dwe,
                    block_bytes=self._block_bytes)
        return costs
