"""The RIOTShare I/O-sharing optimizer (Section 5).

Public surface:

* :func:`optimize` / :class:`Optimizer` — full pipeline: analysis, Apriori
  enumeration (Algorithm 2), FindSchedule (Algorithm 3), cost evaluation,
  plan selection under a memory cap;
* :class:`OptimizationResult`, :class:`Plan`, :class:`PlanCost`,
  :class:`IOModel`;
* :func:`find_schedule`, :func:`enumerate_feasible_sets` — the algorithmic
  pieces, usable on their own;
* :class:`ConstraintCache` — memoized Farkas constraint spaces.
"""

from .apriori import (AprioriStats, enumerate_feasible_sets,
                      generate_level_candidates)
from .constraints import CoefficientSpace, ConstraintCache, coaccess_key
from .costing import (IOModel, PlanCost, PlanTrace, collect_events,
                      evaluate_plan, trace_plan)
from .find_schedule import enum_row, find_schedule
from .describe import describe_plan, per_array_io
from .optimizer import OptimizationResult, Optimizer, optimize
from .parallel import ParallelOptimizerPool
from .plan import Plan
from .symbolic import (access_count_formula, opportunity_pair_formula,
                       symbolic_io_report)

__all__ = [
    "optimize",
    "Optimizer",
    "OptimizationResult",
    "Plan",
    "PlanCost",
    "PlanTrace",
    "IOModel",
    "evaluate_plan",
    "trace_plan",
    "collect_events",
    "find_schedule",
    "enum_row",
    "enumerate_feasible_sets",
    "generate_level_candidates",
    "AprioriStats",
    "ConstraintCache",
    "CoefficientSpace",
    "coaccess_key",
    "ParallelOptimizerPool",
    "symbolic_io_report",
    "access_count_formula",
    "opportunity_pair_formula",
    "describe_plan",
    "per_array_io",
]
