"""Parametric cost formulas (the Remark of Section 5.4).

The paper evaluates schedules symbolically: "a schedule's memory requirement
and I/O cost are represented as polynomials ... in the global parameters",
so changing array sizes means plugging new values in, not re-optimizing.
This module provides that view for the quantities that drive plan costs:

* per-access baseline I/O volume — ``(block count formula) x block bytes``;
* per-opportunity saved-I/O pair counts.

Formulas come from :func:`repro.polyhedral.counting.symbolic_count`, which
covers the box/guarded-box/equality-chain domains block-granularity
programs produce; anything outside that class reports ``None`` and callers
fall back to exact enumeration (which the optimizer uses anyway — formulas
are a reporting/what-if tool, never a source of approximation).

Use with an analysis produced *without* parameter bindings
(``analyze(program)``), otherwise the context equalities collapse every
formula to a constant.
"""

from __future__ import annotations

from typing import Mapping

from ..analysis import ProgramAnalysis, SharingOpportunity
from ..ir import Access, Program
from ..polyhedral.counting import CountFormula, symbolic_count

__all__ = ["access_count_formula", "opportunity_pair_formula",
           "symbolic_io_report"]


def access_count_formula(access: Access, program: Program) -> CountFormula | None:
    """Number of I/Os the access performs (baseline), as a parameter formula."""
    domain = access.domain(program.param_context)
    return symbolic_count(domain, tuple(program.params))


def opportunity_pair_formula(opp: SharingOpportunity,
                             program: Program) -> CountFormula | None:
    """Number of realized-savings pairs, as a parameter formula.

    Unions are summed per disjunct; possibly-overlapping disjuncts make the
    sum unsound, so they yield None (reduced one-one extents are disjoint in
    practice)."""
    disjuncts = opp.co.extent.disjuncts
    if not disjuncts:
        return CountFormula([])
    formulas = []
    for i, d in enumerate(disjuncts):
        for other in disjuncts[i + 1:]:
            if not d.intersect(other).is_rational_empty():
                return None
        f = symbolic_count(d, tuple(program.params))
        if f is None:
            return None
        formulas.append(f)
    if len(formulas) == 1:
        return formulas[0]
    return _SumFormula(formulas)


class _SumFormula:
    """Sum of CountFormulas (for multi-disjunct extents)."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        self.parts = list(parts)

    def evaluate(self, params: Mapping[str, int]) -> int:
        return sum(p.evaluate(params) for p in self.parts)

    def __str__(self) -> str:
        return " + ".join(f"({p})" for p in self.parts)


def symbolic_io_report(program: Program, analysis: ProgramAnalysis) -> str:
    """Human-readable parametric I/O report (the paper-style polynomials)."""
    lines = [f"Parametric I/O formulas for {program.name} "
             f"(block I/Os; multiply by block bytes for volume)", ""]
    lines.append("baseline accesses:")
    for stmt in program.statements:
        for access in stmt.accesses:
            f = access_count_formula(access, program)
            shown = str(f) if f is not None else "(enumerated)"
            lines.append(f"  {access!r:40s} {shown}")
    lines.append("")
    lines.append("sharing-opportunity pair counts (saved I/Os when realized):")
    for opp in analysis.opportunities:
        f = opportunity_pair_formula(opp, program)
        shown = str(f) if f is not None else "(enumerated)"
        lines.append(f"  {opp.label:24s} {shown}")
    return "\n".join(lines)
