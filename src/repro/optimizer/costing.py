"""Plan cost evaluation (Section 5.4): I/O cost and memory requirement.

Costs are computed exactly, at block granularity, for bound parameters:

* **I/O cost** — every access instance is one block I/O unless saved by a
  realized sharing opportunity (W->R / R->R save the later read of the pair;
  W->W saves the earlier write) or elided by dead-write elimination
  (footnote 8: a write to an intermediate array whose every following read
  — up to the next overwrite — is served from memory need not hit disk).
  Byte volumes are converted to time by a linear model with separate read
  and write bandwidths (the paper measured 96 MB/s and 60 MB/s).

* **Memory requirement** — at every scheduled time, the blocks the current
  instance touches, plus every block held between the two ends of a
  realized W->R / R->R pair spanning that time; the plan's requirement is
  the maximum over time.

The paper evaluates these as piecewise quasipolynomials in the parameters;
we count integer points instead (exact, and cheap at block granularity) —
see DESIGN.md substitution #6.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..analysis import SharingOpportunity
from ..ir import Access, AccessType, ArrayKind, Program, Schedule

__all__ = ["IOModel", "PlanCost", "PlanTrace", "evaluate_plan", "trace_plan",
           "collect_events", "ScheduledEvent"]

MB = 1_000_000


class IOModel:
    """Linear I/O time model: time = reads/read_bw + writes/write_bw."""

    __slots__ = ("read_bw", "write_bw")

    def __init__(self, read_bw: float = 96 * MB, write_bw: float = 60 * MB):
        if read_bw <= 0 or write_bw <= 0:
            raise ValueError("bandwidths must be positive")
        self.read_bw = float(read_bw)
        self.write_bw = float(write_bw)

    def seconds(self, read_bytes: int, write_bytes: int) -> float:
        return read_bytes / self.read_bw + write_bytes / self.write_bw

    def __repr__(self) -> str:
        return f"IOModel(read={self.read_bw / MB:.0f}MB/s, write={self.write_bw / MB:.0f}MB/s)"


class PlanCost:
    """Evaluated cost of one plan."""

    __slots__ = ("read_bytes", "write_bytes", "io_seconds", "memory_bytes",
                 "saved_read_bytes", "saved_write_bytes", "elided_write_bytes",
                 "baseline_read_bytes", "baseline_write_bytes")

    def __init__(self, read_bytes: int, write_bytes: int, io_seconds: float,
                 memory_bytes: int, saved_read_bytes: int, saved_write_bytes: int,
                 elided_write_bytes: int, baseline_read_bytes: int,
                 baseline_write_bytes: int):
        self.read_bytes = read_bytes
        self.write_bytes = write_bytes
        self.io_seconds = io_seconds
        self.memory_bytes = memory_bytes
        self.saved_read_bytes = saved_read_bytes
        self.saved_write_bytes = saved_write_bytes
        self.elided_write_bytes = elided_write_bytes
        self.baseline_read_bytes = baseline_read_bytes
        self.baseline_write_bytes = baseline_write_bytes

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    def __repr__(self) -> str:
        return (f"PlanCost(io={self.io_seconds:.1f}s, "
                f"read={self.read_bytes / 1e9:.2f}GB, write={self.write_bytes / 1e9:.2f}GB, "
                f"mem={self.memory_bytes / 1e6:.0f}MB)")


class ScheduledEvent:
    """One access instance with its time under the evaluated schedule."""

    __slots__ = ("access", "point", "block", "time", "bytes", "saved", "elided")

    def __init__(self, access: Access, point: tuple[int, ...],
                 block: tuple[int, ...], time: tuple[Fraction, ...], nbytes: int):
        self.access = access
        self.point = point
        self.block = block
        self.time = time
        self.bytes = nbytes
        self.saved = False
        self.elided = False

    @property
    def block_key(self) -> tuple:
        return (self.access.array.name, self.block)

    @property
    def is_write(self) -> bool:
        return self.access.is_write


def collect_events(program: Program, params: Mapping[str, int],
                   schedule: Schedule,
                   block_bytes: Mapping[str, int] | None = None
                   ) -> list[ScheduledEvent]:
    """All access events ordered by the given schedule (reads before the
    write within one instance)."""
    events: list[ScheduledEvent] = []
    for stmt in program.statements:
        for point in stmt.instances(params):
            base_time = schedule.time_vector(stmt, point, params)
            for access in stmt.accesses:
                if not access.guard_holds(point, params):
                    continue
                nbytes = (block_bytes or {}).get(access.array.name,
                                                 access.array.block_bytes)
                events.append(ScheduledEvent(
                    access, tuple(point), access.block_at(point, params),
                    base_time + (access.micro,), nbytes))
    events.sort(key=lambda e: e.time)
    return events


class PlanTrace:
    """Annotated execution trace of one plan: ordered events with their
    saved/elided verdicts, plus the residency intervals of shared blocks.

    Both the cost evaluator and the code generator are built on this, so the
    engine executes exactly what the optimizer costed.
    """

    __slots__ = ("events", "held")

    def __init__(self, events: list[ScheduledEvent],
                 held: list[tuple]):
        self.events = events
        self.held = held


def trace_plan(program: Program, params: Mapping[str, int],
               schedule: Schedule,
               realized: Sequence[SharingOpportunity],
               dead_write_elimination: bool = True,
               block_bytes: Mapping[str, int] | None = None) -> PlanTrace:
    """Annotate every access event with the plan's sharing decisions."""
    events = collect_events(program, params, schedule, block_bytes)
    index = {(ev.access.key(), ev.point): ev for ev in events}

    held: list[tuple] = []
    for opp in realized:
        src, tgt = opp.co.src, opp.co.tgt
        for (ps, pt) in opp.co.pairs(params):
            es = index.get((src.key(), ps))
            et = index.get((tgt.key(), pt))
            if es is None or et is None:
                continue
            kind = (src.type, tgt.type)
            if kind == (AccessType.WRITE, AccessType.WRITE):
                es.saved = True
                continue
            early, late = (es, et) if es.time <= et.time else (et, es)
            late.saved = True
            held.append((early.time, late.time, es.block_key, es.bytes))

    _downgrade_unsound_write_saves(events)
    if dead_write_elimination:
        _elide_dead_writes(events)
    return PlanTrace(events, held)


def _downgrade_unsound_write_saves(events: list[ScheduledEvent]) -> None:
    """Skipping a write is only sound if no later read needs the disk copy.

    A W->W pair lets the earlier write stay in memory *provided* every read
    of the block before the overwrite is itself served from memory (realized
    W->R / R->R).  The paper's plans always pair W->W with the corresponding
    W->R; for candidate sets that realize W->W alone we must keep the write,
    sacrificing that saving rather than correctness.
    """
    by_block: dict[tuple, list[ScheduledEvent]] = {}
    for ev in sorted(events, key=lambda e: e.time):
        by_block.setdefault(ev.block_key, []).append(ev)
    for chain in by_block.values():
        for i, ev in enumerate(chain):
            if not (ev.is_write and ev.saved):
                continue
            for later in chain[i + 1:]:
                if later.is_write:
                    break
                if not later.saved:  # a disk read depends on this write
                    ev.saved = False
                    break


def evaluate_plan(program: Program, params: Mapping[str, int],
                  schedule: Schedule,
                  realized: Sequence[SharingOpportunity],
                  io_model: IOModel | None = None,
                  dead_write_elimination: bool = True,
                  block_bytes: Mapping[str, int] | None = None) -> PlanCost:
    """Cost one plan: a schedule plus the sharing opportunities it realizes."""
    io_model = io_model or IOModel()
    trace = trace_plan(program, params, schedule, realized,
                       dead_write_elimination, block_bytes)
    events, held = trace.events, trace.held

    baseline_reads = sum(e.bytes for e in events if not e.is_write)
    baseline_writes = sum(e.bytes for e in events if e.is_write)

    read_bytes = sum(e.bytes for e in events if not e.is_write and not e.saved)
    write_bytes = sum(e.bytes for e in events
                      if e.is_write and not e.saved and not e.elided)
    saved_reads = baseline_reads - read_bytes
    saved_writes = baseline_writes - write_bytes
    elided = sum(e.bytes for e in events if e.is_write and e.elided and not e.saved)

    memory = _memory_requirement(events, held)
    return PlanCost(read_bytes, write_bytes,
                    io_model.seconds(read_bytes, write_bytes), memory,
                    saved_reads, saved_writes, elided,
                    baseline_reads, baseline_writes)


def _elide_dead_writes(events: list[ScheduledEvent]) -> None:
    """Mark writes to intermediate arrays whose data never needs to reach disk.

    A write can be elided when every read of its block before the next write
    (in the plan's order) is served from memory, and the array is not a
    program output.  Works backward so chains of fully-shared writes elide
    together.
    """
    by_block: dict[tuple, list[ScheduledEvent]] = {}
    for ev in events:
        by_block.setdefault(ev.block_key, []).append(ev)
    for chain in by_block.values():
        if chain[0].access.array.kind is not ArrayKind.INTERMEDIATE:
            continue
        for i, ev in enumerate(chain):
            if not ev.is_write or ev.saved:
                continue
            dependent_reads = []
            for later in chain[i + 1:]:
                if later.is_write:
                    break
                dependent_reads.append(later)
            if all(r.saved for r in dependent_reads):
                ev.elided = True


def _memory_requirement(events: list[ScheduledEvent],
                        held: list[tuple]) -> int:
    """Max over scheduled times of touched-blocks + held-blocks bytes.

    Implemented as an interval sweep: residency intervals are merged per
    block (a block counts once no matter how many realized pairs keep it
    resident) and activated/retired with two pointers as the sweep visits
    instance times in schedule order.  O((E + H) log H) instead of the
    naive O(T * H) scan, which dominated plan costing.
    """
    # Group events by statement-instance time prefix (drop the micro digit):
    # an instance needs all its operand blocks simultaneously.
    by_instance: dict[tuple, dict[tuple, int]] = {}
    for ev in events:
        key = ev.time[:-1]
        by_instance.setdefault(key, {})[ev.block_key] = ev.bytes
    if not by_instance:
        return 0

    # Per-block merged residency intervals over instance-time prefixes.
    per_key: dict[tuple, tuple[int, list]] = {}
    for (lo, hi, block_key, nbytes) in held:
        per_key.setdefault(block_key, (nbytes, ()))
        nb, ivs = per_key[block_key]
        per_key[block_key] = (nb, list(ivs) + [(lo[:-1], hi[:-1])])
    starts: list[tuple] = []   # (time, block_key): block becomes resident
    ends: list[tuple] = []     # (time, block_key): residency expires after
    key_bytes: dict[tuple, int] = {}
    for block_key, (nbytes, ivs) in per_key.items():
        key_bytes[block_key] = nbytes
        ivs.sort()
        merged: list[list] = []
        for lo, hi in ivs:
            if merged and lo <= merged[-1][1]:
                if hi > merged[-1][1]:
                    merged[-1][1] = hi
            else:
                merged.append([lo, hi])
        for lo, hi in merged:
            starts.append((lo, block_key))
            ends.append((hi, block_key))
    starts.sort(key=lambda s: s[0])
    ends.sort(key=lambda s: s[0])

    # Events arrive schedule-sorted, so instance prefixes are already in
    # sweep order.
    times = list(by_instance)
    active: dict[tuple, int] = {}  # block_key -> open interval count (0/1)
    active_total = 0
    si = ei = 0
    peak = 0
    for t in times:
        while si < len(starts) and starts[si][0] <= t:
            k = starts[si][1]
            n = active.get(k, 0)
            if n == 0:
                active_total += key_bytes[k]
            active[k] = n + 1
            si += 1
        while ei < len(ends) and ends[ei][0] < t:
            k = ends[ei][1]
            n = active[k] - 1
            if n == 0:
                active_total -= key_bytes[k]
            active[k] = n
            ei += 1
        touched = by_instance[t]
        total = sum(touched.values()) + active_total
        for k in touched:
            if active.get(k, 0):
                total -= key_bytes[k]  # held block the instance also touches
        if total > peak:
            peak = total
    return peak


# -- static I/O lower bounds (bound-pruned search support) -------------------


def opportunity_savings_seconds_bound(opp: SharingOpportunity,
                                      params: Mapping[str, int],
                                      io_model: IOModel,
                                      block_bytes: Mapping[str, int] | None = None
                                      ) -> float:
    """Upper bound on the I/O seconds realizing ``opp`` can possibly save.

    Each co-access pair saves at most one block transfer of the shared
    array; whether the saved transfer is a read or a write depends on the
    schedule, so the bound charges the slower bandwidth.  Overcounting
    (duplicate pairs, pairs whose instances a schedule never co-locates)
    only makes the resulting lower bound looser, never unsound.
    """
    tgt = opp.co.tgt
    nbytes = (block_bytes or {}).get(tgt.array.name, tgt.array.block_bytes)
    npairs = len(opp.co.pairs(params))
    return npairs * nbytes / min(io_model.read_bw, io_model.write_bw)


def elidable_write_bytes(program: Program, params: Mapping[str, int],
                         block_bytes: Mapping[str, int] | None = None) -> int:
    """Upper bound on write bytes dead-write elimination could ever elide:
    every write to an intermediate array (footnote 8 only applies there)."""
    total = 0
    for stmt in program.statements:
        for access in stmt.accesses:
            if not access.is_write or access.array.kind is not ArrayKind.INTERMEDIATE:
                continue
            nbytes = (block_bytes or {}).get(access.array.name,
                                             access.array.block_bytes)
            count = sum(1 for p in stmt.instances(params)
                        if access.guard_holds(p, params))
            total += count * nbytes
    return total


def io_lower_bound(baseline_read_bytes: int, baseline_write_bytes: int,
                   savings_seconds_bound: float, elidable_bytes: int,
                   io_model: IOModel) -> float:
    """Lower bound on the I/O seconds of any plan whose realized set's
    savings bounds sum to ``savings_seconds_bound``.

    Every access instance costs one block transfer unless saved by a
    realized pair (bounded per opportunity) or elided as a dead write
    (bounded by all intermediate writes), so no plan in the subtree can
    beat baseline minus those maxima.
    """
    base = io_model.seconds(baseline_read_bytes, baseline_write_bytes)
    lb = base - savings_seconds_bound - elidable_bytes / io_model.write_bw
    return lb if lb > 0.0 else 0.0
