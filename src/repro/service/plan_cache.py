"""Persistent plan cache: optimization fingerprint -> best saved plan.

The §5.4 Remark observes that the Apriori schedule search "need[s] to be
done only once for a given program template".  The service turns that into
a cache: the first submission of a (program, params, memory-cap, cost-model
knobs) combination pays for the search; every repeat loads the winning
schedule from disk through :mod:`repro.persist` and only re-costs it —
**zero Apriori candidates are evaluated on a hit**.

Keying is structural, not nominal: the fingerprint digests the program's
arrays, statements, iteration domains (normalized polyhedra), accesses, the
concrete parameter binding, the memory cap the best plan was selected
under, the I/O model bandwidths, and the search knobs.  Two programs that
differ in any of these hash apart even if they share a name; a re-built but
identical program hashes together.

Cache files are written atomically (temp + ``os.rename``), so a cache
directory shared by concurrent workers — or concurrent services — never
exposes a torn plan.  Nothing numeric is trusted from the file: loading
re-analyzes the program and re-costs the schedule (see
:func:`repro.persist.load_plan`).
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Mapping

from ..analysis import analyze
from ..exceptions import ReproError
from ..ir import Program
from ..obs import metrics as obs_metrics
from ..optimizer import IOModel
from ..optimizer.plan import Plan
from ..persist import load_plan, save_plan

__all__ = ["PlanCache", "optimization_fingerprint"]


def _program_signature(program: Program) -> dict:
    """Canonical JSON-able structure of everything the optimizer sees."""
    arrays = []
    for name in sorted(program.arrays):
        arr = program.arrays[name]
        arrays.append({
            "name": arr.name,
            "dims": [str(d) for d in arr.dims],
            "block_shape": list(arr.block_shape),
            "dtype_bytes": arr.dtype_bytes,
            "kind": arr.kind.value,
        })
    statements = []
    for stmt in program.statements:
        accesses = []
        for a in stmt.accesses:
            accesses.append({
                "type": a.type.value,
                "array": a.array.name,
                "subscripts": [str(s) for s in a.subscripts],
                "guard": [str(g) for g in a.guard],
            })
        statements.append({
            "name": stmt.name,
            "loop_vars": list(stmt.loop_vars),
            "kernel": stmt.kernel,
            "kernel_args": sorted((str(k), str(v))
                                  for k, v in stmt.kernel_args.items()),
            "position": list(stmt.position),
            # eqs/ineqs are normalized, deduplicated, sorted integer rows —
            # a canonical form of the iteration domain.
            "domain": {
                "space": list(stmt.domain.space.names),
                "eqs": [list(r) for r in stmt.domain.eqs],
                "ineqs": [list(r) for r in stmt.domain.ineqs],
            },
        })
    return {
        "name": program.name,
        "params": list(program.params),
        "arrays": arrays,
        "statements": statements,
    }


def optimization_fingerprint(program: Program, params: Mapping[str, int],
                             memory_cap_bytes: int | None = None,
                             io_model: IOModel | None = None,
                             **knobs) -> str:
    """SHA-256 over everything that determines the optimizer's best plan."""
    model = io_model or IOModel()
    payload = {
        "program": _program_signature(program),
        "bindings": {k: int(v) for k, v in sorted(params.items())},
        "memory_cap_bytes": memory_cap_bytes,
        "io_model": {"read_bw": model.read_bw, "write_bw": model.write_bw},
        "knobs": {k: (sorted(v.items()) if isinstance(v, dict) else v)
                  for k, v in sorted(knobs.items()) if v is not None},
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


class PlanCache:
    """Directory of saved best plans, one ``<fingerprint>.json`` per entry.

    ``hits``/``misses`` are thin views over metrics counters (the service
    exposes them as gauges in its exposition dump); :meth:`bind` adopts
    them into a registry, done automatically when one is installed.
    """

    _COUNTERS = ("hits", "misses", "stores")

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        for f in self._COUNTERS:
            setattr(self, "_" + f, obs_metrics.Counter("repro_plan_cache_" + f))
        self._lock = threading.Lock()
        registry = obs_metrics.CURRENT
        if registry is not None:
            self.bind(registry, cache=registry.seq("plan_cache"))

    def bind(self, registry: obs_metrics.MetricsRegistry, **labels) -> None:
        for f in self._COUNTERS:
            inst = getattr(self, "_" + f)
            inst.labels = dict(labels)
            registry.register(inst)

    # -- lookup ----------------------------------------------------------------

    def path_for(self, fingerprint: str) -> Path:
        return self.root / f"{fingerprint}.json"

    def load(self, program: Program, params: Mapping[str, int],
             memory_cap_bytes: int | None = None,
             io_model: IOModel | None = None, analysis=None,
             **knobs) -> Plan | None:
        """The cached best plan, re-analyzed and re-costed — or ``None``.

        A hit skips the Apriori search entirely; only the (cheap) sharing
        analysis and the single-schedule costing run (pass ``analysis`` to
        reuse one already computed).  A cache file that no longer resolves
        against the program (stale directory reused across incompatible
        code versions) counts as a miss and is ignored.
        """
        fp = optimization_fingerprint(program, params, memory_cap_bytes,
                                      io_model, **knobs)
        path = self.path_for(fp)
        if not path.exists():
            with self._lock:
                self._misses.value += 1
            return None
        try:
            if analysis is None:
                analysis = analyze(program, param_values=params)
            plan = load_plan(path, program, analysis, params, io_model)
        except (ReproError, OSError, ValueError, KeyError):
            with self._lock:
                self._misses.value += 1
            return None
        with self._lock:
            self._hits.value += 1
        return plan

    def store(self, program: Program, params: Mapping[str, int], plan: Plan,
              memory_cap_bytes: int | None = None,
              io_model: IOModel | None = None, **knobs) -> Path:
        """Persist ``plan`` as the best for this fingerprint (atomic)."""
        fp = optimization_fingerprint(program, params, memory_cap_bytes,
                                      io_model, **knobs)
        path = self.path_for(fp)
        tmp = path.parent / f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        save_plan(tmp, plan, program)
        os.rename(tmp, path)
        with self._lock:
            self._stores.value += 1
        return path

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        n = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            n += 1
        return n

    def __repr__(self) -> str:
        return (f"PlanCache({self.root}, {len(self)} plans, "
                f"hits={self.hits}, misses={self.misses})")


def _stat_view(field: str) -> property:
    attr = "_" + field

    def fget(self):
        return getattr(self, attr).value

    def fset(self, value):
        getattr(self, attr).value = value

    return property(fget, fset)


for _f in PlanCache._COUNTERS:
    setattr(PlanCache, _f, _stat_view(_f))
del _f
