"""Chaos harness: seeded failure storms against a live :class:`ArrayService`.

The service's resilience claims are only credible if they survive *mixed*
adversity — faults tearing writes while deadlines expire while the
admission queue is saturated.  This module drives exactly that: a seeded
scenario generator submits a randomized blend of

* clean jobs (plan-exact, so their per-job I/O attribution has an exact
  isolated-run baseline to match byte-for-byte),
* doomed jobs whose private files suffer transient write faults beyond the
  disk's own retry budget (exercising job-level retry-with-resume),
* deadline-storm jobs with timeouts far below their runtime,
* caller cancellations fired from a separate thread mid-flight, and
* an overload burst sized past the admission queue's shed watermark,

then drains everything and audits the post-mortem invariants that define
"no resource leaked, no failure silent":

1. every future resolves within the drain timeout (no hung jobs);
2. the admission ledger returns to zero and the queue empties;
3. the shared pool holds zero pins and zero staged marks;
4. every failure is a typed :class:`~repro.exceptions.ReproError` subclass
   (never a bare ``Exception`` or stdlib ``CancelledError``);
5. the stats ledger conserves: submitted = completed + failed + cancelled
   + deadline_exceeded + rejected;
6. each *first-attempt* completed plan-exact job's I/O attribution is
   byte-identical to its isolated baseline run (retried jobs are excluded
   — resume legitimately re-executes fewer instances).

Every event is appended to a JSONL trace (``chaos_<seed>.jsonl``) so a
failing nightly seed ships a replayable timeline as its artifact.
"""

from __future__ import annotations

import json
import random
import threading
import time
from pathlib import Path

import numpy as np

from ..exceptions import (DeadlineExceeded, JobCancelled, ReproError,
                          ServiceError)
from ..optimizer import optimize
from ..ops.programs import add_multiply_program
from ..storage.faults import FaultInjector, FaultPolicy
from .resilience import DegradePolicy, JobRetryPolicy
from .service import ArrayService

__all__ = ["ChaosReport", "run_chaos"]

_PARAMS = {"n1": 2, "n2": 2, "n3": 1}
_INPUT_SEEDS = (0, 1, 2)


class ChaosReport:
    """Outcome of one seeded chaos run: tallies, violations, trace path."""

    __slots__ = ("seed", "submitted", "completed", "failed", "cancelled",
                 "deadline_exceeded", "rejected", "shed", "retried",
                 "resumed", "violations", "seconds", "trace_path", "records")

    def __init__(self, seed: int):
        self.seed = seed
        self.submitted = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self.deadline_exceeded = 0
        self.rejected = 0
        self.shed = 0
        self.retried = 0
        self.resumed = 0
        self.violations: list[str] = []
        self.seconds = 0.0
        self.trace_path: str | None = None
        self.records: list[dict] = []

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {k: getattr(self, k) for k in self.__slots__
                if k != "records"}

    def __repr__(self) -> str:
        verdict = "OK" if self.ok else f"{len(self.violations)} VIOLATIONS"
        return (f"ChaosReport(seed={self.seed}, {verdict}, "
                f"submitted={self.submitted}, completed={self.completed}, "
                f"failed={self.failed}, cancelled={self.cancelled}, "
                f"deadline={self.deadline_exceeded}, "
                f"rejected={self.rejected}, retried={self.retried}, "
                f"{self.seconds:.2f}s)")


def _inputs(prog, seed: int) -> dict[str, np.ndarray]:
    rng = np.random.default_rng(seed)
    return {n: rng.standard_normal(prog.arrays[n].shape_elems(_PARAMS))
            for n in ("A", "B", "D")}


def _baseline(prog, plan, workdir: Path, cap: int) -> dict[int, tuple]:
    """Isolated-run baselines per input seed: (io attribution, outputs).

    Chaos jobs submitted plan-exact *with the same pinned plan* must match
    the I/O ledger byte-for-byte: the executor charges every plan READ to
    disk in that mode, so concurrent pool sharing and healed faults cannot
    perturb per-job attribution.  Pinning the plan matters — unpinned jobs
    may legitimately be re-planned under degradation and do more I/O.
    """
    out: dict[int, tuple] = {}
    for seed in _INPUT_SEEDS:
        with ArrayService(workdir / f"baseline_{seed}", memory_cap_bytes=cap,
                          workers=1) as svc:
            res = svc.submit(prog, _PARAMS, _inputs(prog, seed), plan=plan,
                             plan_exact=True).result(timeout=120)
        io = res.report.io
        out[seed] = ((io.read_bytes, io.write_bytes, io.read_ops,
                      io.write_ops), res.outputs)
    return out


def run_chaos(workdir, seed: int, jobs: int = 18, workers: int = 4,
              memory_cap_bytes: int = 16 << 20,
              drain_timeout: float = 120.0,
              trace: bool = True) -> ChaosReport:
    """Run one seeded chaos storm; returns the audited :class:`ChaosReport`.

    Determinism: all scenario choices (job mix, cancel delays, timeouts,
    overload burst) derive from ``random.Random(seed)``; the fault injector
    is seeded with the same value.  Wall-clock still varies, so *which*
    cancels land before completion is seed-and-machine dependent — the
    invariants hold regardless, which is the point.
    """
    workdir = Path(workdir)
    rng = random.Random(seed)
    prog = add_multiply_program()
    report = ChaosReport(seed)
    events: list[dict] = []
    t_start = time.monotonic()

    def emit(event: str, **fields) -> None:
        events.append({"t": round(time.monotonic() - t_start, 6),
                       "event": event, **fields})

    plan = optimize(prog, _PARAMS).best(memory_cap_bytes)
    baselines = _baseline(prog, plan, workdir, memory_cap_bytes)
    emit("baselines", seeds=list(baselines), plan=plan.index)

    # Transient write faults against the retry probes' private files, deep
    # enough to exhaust the disk's internal retry budget (max_retries=4 →
    # 5 attempts) at least once, shallow enough that the resumed attempt
    # completes.  A low background transient read rate stresses the disk's
    # own healing on everyone else without failing jobs.
    policies = [
        FaultPolicy(match="probe-*__*", op="write", transient=1.0,
                    after=1, max_faults=6),
        FaultPolicy(match="*.daf", op="read", transient=0.02),
    ]
    injector = FaultInjector(seed=seed, policies=policies)
    retry = JobRetryPolicy(max_attempts=3, backoff_base=0.001)
    degrade = DegradePolicy(shed_backlog=jobs * 3)

    svc = ArrayService(workdir / "chaos", memory_cap_bytes=memory_cap_bytes,
                       workers=workers, faults=injector, degrade=degrade)
    handles: list[tuple[str, str, int, object]] = []  # (kind, name, seed, h)
    cancellers: list[threading.Timer] = []
    try:
        for i in range(jobs):
            in_seed = rng.choice(_INPUT_SEEDS)
            roll = rng.random()
            if roll < 0.15:
                kind, name = "probe", f"probe-{seed}-{i}"
                h = svc.submit(prog, _PARAMS, _inputs(prog, in_seed),
                               name=name, retry=retry, plan=plan,
                               plan_exact=True)
            elif roll < 0.35:
                kind, name = "deadline", f"storm-{seed}-{i}"
                h = svc.submit(prog, _PARAMS, _inputs(prog, in_seed),
                               name=name, plan=plan, plan_exact=True,
                               timeout=rng.uniform(1e-6, 1e-3))
            elif roll < 0.55:
                kind, name = "cancel", f"victim-{seed}-{i}"
                h = svc.submit(prog, _PARAMS, _inputs(prog, in_seed),
                               name=name, plan=plan, plan_exact=True)
                timer = threading.Timer(rng.uniform(0.0, 0.05), h.cancel,
                                        kwargs={"reason": "chaos cancel"})
                timer.start()
                cancellers.append(timer)
            elif roll < 0.70:
                # No pinned plan: under queue pressure these exercise the
                # degraded (plan-cache-only) planner, so they are audited
                # on outputs, not on the byte-identical I/O ledger.
                kind, name = "unpinned", f"free-{seed}-{i}"
                h = svc.submit(prog, _PARAMS, _inputs(prog, in_seed),
                               name=name)
            else:
                kind, name = "clean", f"clean-{seed}-{i}"
                h = svc.submit(prog, _PARAMS, _inputs(prog, in_seed),
                               name=name, plan=plan, plan_exact=True)
            emit("submit", kind=kind, job=name, input_seed=in_seed)
            handles.append((kind, name, in_seed, h))
            if rng.random() < 0.3:
                time.sleep(rng.uniform(0.0, 0.01))

        # Drain: every future must resolve; a hang is itself a violation.
        deadline = time.monotonic() + drain_timeout
        for kind, name, in_seed, h in handles:
            rec: dict = {"job": name, "kind": kind, "input_seed": in_seed}
            budget = max(0.0, deadline - time.monotonic())
            try:
                res = h.result(timeout=budget)
            except DeadlineExceeded as err:
                report.deadline_exceeded += 1
                rec.update(outcome="deadline", error=str(err))
            except JobCancelled as err:
                report.cancelled += 1
                rec.update(outcome="cancelled", error=str(err))
            except TimeoutError:
                report.violations.append(
                    f"hung future: {name} unresolved after "
                    f"{drain_timeout:.0f}s")
                rec.update(outcome="hung")
            except ReproError as err:
                report.failed += 1
                rec.update(outcome="failed", error=type(err).__name__)
            except BaseException as err:  # invariant 4: typed or bust
                report.failed += 1
                report.violations.append(
                    f"untyped failure from {name}: {type(err).__name__}: "
                    f"{err}")
                rec.update(outcome="untyped", error=type(err).__name__)
            else:
                report.completed += 1
                io = res.report.io
                rec.update(outcome="completed", attempts=res.attempts,
                           resumed_from=res.report.resumed_from,
                           io=(io.read_bytes, io.write_bytes, io.read_ops,
                               io.write_ops))
                if res.attempts > 1:
                    report.retried += 1
                if res.report.resumed_from:
                    report.resumed += 1
                base_io, base_out = baselines[in_seed]
                if (kind != "unpinned" and res.attempts == 1
                        and rec["io"] != base_io):
                    report.violations.append(
                        f"I/O attribution drift: {name} {rec['io']} != "
                        f"isolated {base_io}")
                for oname, expected in base_out.items():
                    got = res.outputs.get(oname)
                    same = (np.array_equal(got, expected)
                            if kind != "unpinned"
                            else got is not None
                            and np.allclose(got, expected))
                    if not same:
                        report.violations.append(
                            f"output drift: {name}.{oname} diverged "
                            f"from isolated run")
            emit("result", **rec)
            report.records.append(rec)
        report.submitted = len(handles)

        # Overload burst against a tiny shed watermark: with admission
        # saturated, submissions past the backlog must be rejected *as
        # submit-time exceptions*, never queued forever.
        svc.health.policy = DegradePolicy(shed_backlog=0)
        try:
            svc.submit(prog, _PARAMS, _inputs(prog, 0),
                       name=f"burst-{seed}")
        except ServiceError:
            report.shed += 1
            emit("shed", job=f"burst-{seed}")
        else:
            report.violations.append(
                "overload burst admitted past a zero shed watermark")
        finally:
            svc.health.policy = degrade
    finally:
        for timer in cancellers:
            timer.cancel()
        svc.close()

    # -- post-mortem invariants ------------------------------------------
    if svc.admitted_bytes() != 0:
        report.violations.append(
            f"admission ledger leaked: {svc.admitted_bytes()} bytes "
            f"still admitted after drain")
    if svc.queue_depth() != 0:
        report.violations.append(
            f"admission queue leaked: {svc.queue_depth()} tickets remain")
    pins = svc.pool.total_pins()
    if pins != 0:
        report.violations.append(f"pool leaked {pins} pins after drain")
    staged = svc.pool.staged_marks()
    if staged != 0:
        report.violations.append(
            f"pool leaked {staged} staged marks after drain")
    s = svc.stats
    accounted = (s.jobs_completed + s.jobs_failed + s.jobs_rejected
                 + s.jobs_cancelled + s.jobs_deadline_exceeded)
    if s.jobs_submitted != accounted:
        report.violations.append(
            f"stats ledger does not conserve: submitted="
            f"{s.jobs_submitted} != accounted={accounted}")

    report.seconds = time.monotonic() - t_start
    emit("verdict", ok=report.ok, violations=report.violations,
         stats={k: getattr(s, k) for k in
                ("jobs_submitted", "jobs_completed", "jobs_failed",
                 "jobs_cancelled", "jobs_deadline_exceeded",
                 "jobs_rejected", "jobs_shed", "retries_attempted",
                 "retries_exhausted", "degraded_plans",
                 "prefetch_throttled", "pins_reclaimed")})
    if trace:
        path = workdir / f"chaos_{seed}.jsonl"
        with path.open("w", encoding="utf-8") as fh:
            for ev in events:
                fh.write(json.dumps(ev) + "\n")
        report.trace_path = str(path)
    return report
