"""Process-pool worker backend for :class:`~repro.service.ArrayService`.

The thread backend shares one disk, one buffer pool and the GIL; numpy
releases the GIL inside kernels, but everything around them — block
(de)serialization, pool bookkeeping, plan bookkeeping — is Python, so
numpy-light jobs stop scaling with thread count.  The ``backend="procs"``
path runs each *admitted* job in a worker process instead:

* planning, the plan cache, admission control, deadlines, retry
  classification and all service bookkeeping stay in the parent — the
  worker receives a fully planned, admitted job;
* the job ships as a picklable :class:`WorkerJobSpec` and comes back as a
  picklable :class:`WorkerOutcome`;
* the worker executes against its **own private disk** under the job
  directory (sharded exactly like the service disk) and its own buffer
  pool, then returns outputs, per-job I/O attribution from the same
  :class:`CountingStore` proxies the thread backend uses, a mergeable
  :class:`~repro.storage.IOStats` snapshot of its logical disk traffic,
  and (when the parent has metrics installed) its whole pickled
  :class:`~repro.obs.metrics.MetricsRegistry` — the parent *merges* both,
  so process-backend totals land on the same series the thread backend
  would have counted.

What does NOT carry over from the thread backend, by design: cross-job
content-addressed input sharing and shared-pool block hits.  An isolated
process cannot share another job's resident blocks; per-job attribution
on plan-exact jobs is nevertheless byte-identical, because plan-exact
replay charges every planned READ to disk in both backends.  Cooperative
cancellation is coarser too — a cancel lands after the in-flight worker
attempt finishes (the parent cannot reach into the worker's loop), while
deadlines are enforced *inside* the worker via its own token.
"""

from __future__ import annotations

import shutil
import threading
import time
from pathlib import Path

import numpy as np

from ..cancel import CancelToken
from ..codegen.exec_plan import build_executable_plan
from ..engine.executor import ExecutionReport, execute_plan
from ..engine.journal import ExecutionJournal, plan_fingerprint
from ..exceptions import StorageError
from ..ir import ArrayKind
from ..obs import metrics as obs_metrics
from ..optimizer import IOModel
from ..storage import DAFMatrix, IOStats, LABTree, make_disk

__all__ = ["CountingStore", "WorkerJobSpec", "WorkerOutcome",
           "run_worker_job", "STORE_FACTORIES"]

#: Private-store layouts the service can synthesize, with the on-disk file
#: that marks an existing store of that format (the resume probe).
STORE_FACTORIES = {"daf": (DAFMatrix, ".daf"), "labtree": (LABTree, ".labt")}


class CountingStore:
    """Per-job I/O attribution proxy around one store.

    The shared disk's counters aggregate every concurrent job; this proxy
    counts the *logical* block I/O this job issued (fault-retry and
    checksum-healing re-reads stay global-only).  The job's prefetch
    reader threads and its compute thread both count here, hence the lock.
    Used identically by both backends — that shared implementation is what
    makes their attribution comparable at all.
    """

    __slots__ = ("store", "breaker", "read_bytes", "write_bytes", "read_ops",
                 "write_ops", "_lock")

    def __init__(self, store, breaker=None):
        self.store = store
        # Degradation-mode circuit breaker: N consecutive persistent
        # failures on this store trip it open, and every later access
        # fails fast with CircuitOpen instead of burning retry budget.
        self.breaker = breaker
        self.read_bytes = self.write_bytes = 0
        self.read_ops = self.write_ops = 0
        self._lock = threading.Lock()

    @property
    def layout(self):
        return self.store.layout

    def _guarded(self, fn):
        if self.breaker is None:
            return fn()
        self.breaker.allow()
        try:
            out = fn()
        except StorageError:
            # Only persistent storage failures reach here — the disk's
            # retry policy has already absorbed what it could.
            self.breaker.record_failure()
            raise
        self.breaker.record_success()
        return out

    def read_block(self, coords, count: bool = True):
        block = self._guarded(
            lambda: self.store.read_block(coords, count=count))
        if count:
            with self._lock:
                self.read_bytes += self.store.layout.block_bytes
                self.read_ops += 1
        return block

    def read_block_run(self, start_coords, nblocks: int, count: bool = True):
        blocks, extra = self._guarded(
            lambda: self.store.read_block_run(start_coords, nblocks,
                                              count=count))
        if count:
            with self._lock:
                self.read_bytes += nblocks * self.store.layout.block_bytes
                self.read_ops += nblocks
        return blocks, extra

    def write_block(self, coords, block, count: bool = True) -> None:
        self._guarded(
            lambda: self.store.write_block(coords, block, count=count))
        if count:
            with self._lock:
                self.write_bytes += self.store.layout.block_bytes
                self.write_ops += 1


class WorkerJobSpec:
    """Everything a worker process needs to execute one admitted job.

    Built by the parent *after* planning and admission; every field is
    picklable.  ``deadline_remaining`` carries the job deadline as
    seconds-from-now (absolute ``time.monotonic`` values do not transfer
    across processes).
    """

    __slots__ = ("job", "program", "params", "inputs", "plan", "plan_exact",
                 "jobdir", "store_formats", "shards", "stripe_bytes",
                 "io_model", "pace", "pace_channels", "fault_injector",
                 "retry", "atomic_writes", "checkpoint", "resume",
                 "prefetch_depth", "prefetch_budget_bytes", "pool_cap_bytes",
                 "deadline_remaining", "collect_metrics")

    def __init__(self, **kw):
        for f in self.__slots__:
            setattr(self, f, kw[f])

    def __getstate__(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for f, v in state.items():
            setattr(self, f, v)


class WorkerOutcome:
    """What a worker hands back: outputs plus mergeable accounting."""

    __slots__ = ("outputs", "io", "disk_stats", "shard_read_bytes",
                 "simulated_io_seconds", "cpu_seconds", "wall_seconds",
                 "peak_memory_bytes", "pool_hits", "pool_misses",
                 "instances", "resumed_from", "registry")

    def __init__(self, **kw):
        for f in self.__slots__:
            setattr(self, f, kw[f])

    def __getstate__(self) -> dict:
        return {f: getattr(self, f) for f in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        for f, v in state.items():
            setattr(self, f, v)

    def to_report(self, io_model: IOModel) -> ExecutionReport:
        """Rebuild the parent-side :class:`ExecutionReport`, attribution
        already re-pointed at this job's own counts."""
        io = IOStats()
        io.add(**{f: n for f, n in self.io.items() if n})
        report = ExecutionReport(
            io, io_model.seconds(io.read_bytes, io.write_bytes),
            self.cpu_seconds, self.wall_seconds, self.peak_memory_bytes,
            self.pool_hits, self.pool_misses, self.instances,
            self.resumed_from)
        return report


def _worker_stores(spec: WorkerJobSpec, disk, resuming: bool) -> dict:
    """Open/create the job's stores on its private worker disk.

    Unlike the service's shared namespace there is nothing to collide
    with, so logical array names are used as-is.  INPUT matrices are
    written (uncounted) each time — the price of process isolation; see
    the module docstring.
    """
    stores: dict[str, object] = {}
    for lname, arr in spec.program.arrays.items():
        dtype = {8: np.float64, 4: np.float32}[arr.dtype_bytes]
        grid = arr.num_blocks(spec.params)
        if arr.kind is ArrayKind.INPUT:
            if lname not in spec.inputs:
                raise StorageError(f"missing input matrix {lname!r}")
            if disk.exists(lname + ".daf"):
                store = DAFMatrix.open(disk, lname)
            else:
                store = DAFMatrix.create(disk, lname, grid,
                                         arr.block_shape, dtype)
                store.write_matrix(spec.inputs[lname], count=False)
        else:
            factory, marker = STORE_FACTORIES[spec.store_formats[lname]]
            if resuming and disk.exists(lname + marker):
                store = factory.open(disk, lname)
            else:
                store = factory.create(disk, lname, grid,
                                       arr.block_shape, dtype)
                if factory is DAFMatrix:
                    store.preallocate()
        stores[lname] = store
    return stores


def run_worker_job(spec: WorkerJobSpec) -> WorkerOutcome:
    """Process-pool entry point: execute one admitted job start to finish.

    Runs with a private metrics registry when the parent asked for one
    (``collect_metrics``); the registry rides home inside the outcome and
    the parent merges it, so worker disk/pool series land on the same
    (name, labels) the thread backend increments directly.
    """
    registry = obs_metrics.MetricsRegistry() if spec.collect_metrics else None
    token = CancelToken(
        deadline=(time.monotonic() + spec.deadline_remaining)
        if spec.deadline_remaining is not None else None)
    with obs_metrics.use(registry):
        diskdir = Path(spec.jobdir) / "store"
        disk_kw: dict = {}
        if spec.stripe_bytes is not None:
            disk_kw["stripe_bytes"] = spec.stripe_bytes
        with make_disk(diskdir, spec.shards, io_model=spec.io_model,
                       pace=spec.pace, pace_channels=spec.pace_channels,
                       fault_injector=spec.fault_injector, retry=spec.retry,
                       atomic_writes=spec.atomic_writes, **disk_kw) as disk:
            exec_plan = build_executable_plan(spec.program, spec.params,
                                              spec.plan)
            journal = None
            resuming = False
            if spec.checkpoint or spec.resume:
                jpath = Path(spec.jobdir) / "execution.journal"
                journal = ExecutionJournal(jpath, plan_fingerprint(exec_plan))
                resuming = spec.resume and jpath.exists()
            if resuming and disk.atomic_writes:
                # The previous attempt may have died mid-write.
                disk.recover()
            stores = _worker_stores(spec, disk, resuming)
            counted = {n: CountingStore(s) for n, s in stores.items()}
            try:
                report = execute_plan(
                    exec_plan, counted, disk,
                    memory_cap_bytes=spec.pool_cap_bytes,
                    plan_exact=spec.plan_exact,
                    journal=journal, resume=resuming,
                    prefetch_depth=spec.prefetch_depth,
                    prefetch_budget_bytes=spec.prefetch_budget_bytes,
                    cancel=token)
                outputs = {n: stores[n].read_matrix(count=False)
                           for n, arr in spec.program.arrays.items()
                           if arr.kind is ArrayKind.OUTPUT}
            finally:
                for store in stores.values():
                    try:
                        store.close()
                    except StorageError:
                        pass
            shard_read = [s.read_bytes for s in disk.shard_stats()] \
                if hasattr(disk, "shard_stats") else []
            return WorkerOutcome(
                outputs=outputs,
                io={"read_bytes": sum(c.read_bytes for c in counted.values()),
                    "write_bytes": sum(c.write_bytes
                                       for c in counted.values()),
                    "read_ops": sum(c.read_ops for c in counted.values()),
                    "write_ops": sum(c.write_ops for c in counted.values())},
                disk_stats=disk.stats.snapshot(),
                shard_read_bytes=shard_read,
                simulated_io_seconds=report.simulated_io_seconds,
                cpu_seconds=report.cpu_seconds,
                wall_seconds=report.wall_seconds,
                peak_memory_bytes=report.peak_memory_bytes,
                pool_hits=report.pool_hits, pool_misses=report.pool_misses,
                instances=report.instances, resumed_from=report.resumed_from,
                registry=registry)


def cleanup_jobdir(jobdir: str | Path) -> None:
    """Best-effort removal of a completed job's private worker store.

    Called by the parent after a *successful* proc-backend job: a
    1000-job run must not accumulate 1000 private input copies.  Failed
    checkpointed jobs keep theirs — that store is what resume reopens.
    """
    shutil.rmtree(Path(jobdir) / "store", ignore_errors=True)
