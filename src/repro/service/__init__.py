"""Concurrent multi-query array service (see :mod:`repro.service.service`).

Public surface:

* :class:`ArrayService` — submit jobs (program + params + inputs), get
  futures of :class:`JobResult`; one shared buffer pool, plan caching,
  admission control;
* :class:`PlanCache` / :func:`optimization_fingerprint` — the persistent
  plan cache also usable standalone via ``optimize(plan_cache=...)``;
* :class:`ServiceStats`, :class:`JobPoolView` — accounting and the per-job
  shared-pool facade, exposed for tests and instrumentation.
"""

from .plan_cache import PlanCache, optimization_fingerprint
from .service import ArrayService, JobPoolView, JobResult, ServiceStats

__all__ = [
    "ArrayService",
    "JobResult",
    "JobPoolView",
    "ServiceStats",
    "PlanCache",
    "optimization_fingerprint",
]
