"""Concurrent multi-query array service (see :mod:`repro.service.service`).

Public surface:

* :class:`ArrayService` — submit jobs (program + params + inputs), get
  :class:`JobHandle` futures of :class:`JobResult`; one shared buffer
  pool, plan caching, admission control, deadlines and cancellation;
* :class:`JobRetryPolicy` / :func:`classify_error` — automatic
  retry-with-resume for transiently-failed jobs;
* :class:`DegradePolicy` / :class:`HealthController` /
  :class:`CircuitBreaker` — overload-aware graceful degradation;
* :func:`run_chaos` / :class:`ChaosReport` — the seeded chaos harness
  auditing the service's resilience invariants;
* :class:`PlanCache` / :func:`optimization_fingerprint` — the persistent
  plan cache also usable standalone via ``optimize(plan_cache=...)``;
* :class:`ServiceStats`, :class:`JobPoolView` — accounting and the per-job
  shared-pool facade, exposed for tests and instrumentation.
"""

from .chaos import ChaosReport, run_chaos
from .plan_cache import PlanCache, optimization_fingerprint
from .resilience import (CircuitBreaker, DegradePolicy, HealthController,
                         JobRetryPolicy, classify_error)
from .service import (ArrayService, JobHandle, JobPoolView, JobResult,
                      ServiceStats)
from .workers import (CountingStore, WorkerJobSpec, WorkerOutcome,
                      run_worker_job)

__all__ = [
    "ArrayService",
    "JobHandle",
    "JobResult",
    "JobPoolView",
    "ServiceStats",
    "JobRetryPolicy",
    "classify_error",
    "DegradePolicy",
    "HealthController",
    "CircuitBreaker",
    "ChaosReport",
    "run_chaos",
    "PlanCache",
    "optimization_fingerprint",
    "CountingStore",
    "WorkerJobSpec",
    "WorkerOutcome",
    "run_worker_job",
]
