"""Job- and service-level resilience policies for :class:`ArrayService`.

PR 3 made the *block* layer durable (checksums, bounded retry, atomic
writes, checkpoint journals); this module lifts that machinery to where
users feel it:

* :class:`JobRetryPolicy` — automatic retry-with-resume for failed jobs.
  :func:`classify_error` splits failures into *transient* storage trouble
  (checksum exhaustion, retry-budget exhaustion, torn writes — worth
  another attempt through the checkpoint journal) and *permanent* errors
  (planner/kernel/plan bugs, open circuit breakers — retrying cannot
  help);
* :class:`CircuitBreaker` — per-store failure isolation: after
  ``threshold`` *consecutive* persistent failures the breaker opens and
  every access fails fast with :class:`~repro.exceptions.CircuitOpen`
  until a cooldown elapses and a half-open probe succeeds, so a dying
  "disk" costs one typed error instead of a full retry budget per access;
* :class:`DegradePolicy` / :class:`HealthController` — the overload
  ladder.  The controller samples admission-queue depth, in-flight
  backlog, memory pressure and the shared disk's fault rate, and the
  service degrades in order of increasing violence: serve plans from the
  cache only (skip cold Apriori searches), throttle prefetch depth toward
  zero, and finally shed *new* submissions with
  :class:`~repro.exceptions.ServiceOverloaded` — running jobs are never
  cancelled by the controller (reject-new before cancel-running).
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..exceptions import (CircuitOpen, CorruptBlockError, ExecutionError,
                          OptimizationError, ProgramError, ScheduleError,
                          ServiceError, StorageError, TransientIOError)

__all__ = ["JobRetryPolicy", "classify_error", "CircuitBreaker",
           "DegradePolicy", "HealthController"]

TRANSIENT = "transient"
PERMANENT = "permanent"


def classify_error(err: BaseException) -> str:
    """``"transient"`` (worth a retry-with-resume) or ``"permanent"``.

    Transient: persistent checksum failures (:class:`CorruptBlockError` —
    random corruption usually re-reads clean on the next attempt),
    exhausted retry budgets and torn writes (a plain :class:`StorageError`
    whose cause chain carries a :class:`TransientIOError`).  Permanent:
    planner / program / kernel errors, service errors, and
    :class:`CircuitOpen` — the breaker exists precisely to *stop* retries
    against a store that keeps failing.
    """
    if isinstance(err, CircuitOpen):
        return PERMANENT
    if isinstance(err, (CorruptBlockError, TransientIOError)):
        return TRANSIENT
    if isinstance(err, (OptimizationError, ProgramError, ScheduleError,
                        ExecutionError, ServiceError)):
        return PERMANENT
    if isinstance(err, StorageError):
        # Retry exhaustion and torn-write aborts surface as StorageError
        # raised ``from TransientIOError``; walk the cause chain.
        cause = err.__cause__
        while cause is not None:
            if isinstance(cause, TransientIOError):
                return TRANSIENT
            cause = cause.__cause__
        return PERMANENT
    return PERMANENT


class JobRetryPolicy:
    """Automatic retry of failed jobs through the checkpoint journal.

    ``max_attempts`` counts the first execution: 3 means one run plus up
    to two retries.  ``classify`` maps the failure to ``"transient"`` /
    ``"permanent"``; only transient failures are retried.  Attaching a
    policy forces ``checkpoint=True`` on the job, so every retry resumes
    from the journal and re-executes only unfinished instances.
    """

    __slots__ = ("max_attempts", "backoff_base", "backoff_cap", "classify")

    def __init__(self, max_attempts: int = 3, backoff_base: float = 0.01,
                 backoff_cap: float = 0.25, classify=classify_error):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.classify = classify

    def delay(self, attempt: int) -> float:
        """Backoff before the retry following failed attempt ``attempt``."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * (2 ** (attempt - 1)))

    def __repr__(self) -> str:
        return (f"JobRetryPolicy(max_attempts={self.max_attempts}, "
                f"base={self.backoff_base}, cap={self.backoff_cap})")


class CircuitBreaker:
    """Per-store consecutive-failure trip switch.

    States: *closed* (normal), *open* (every :meth:`allow` raises
    :class:`CircuitOpen` until ``cooldown`` elapses), *half-open* (one
    probe call passes; its outcome closes or re-opens the breaker).
    Only *persistent* failures count — the disk's retry policy has already
    absorbed what it could by the time an error reaches the breaker.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, name: str, threshold: int = 3, cooldown: float = 1.0,
                 clock=time.monotonic, on_trip=None, on_fastfail=None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._on_trip = on_trip
        self._on_fastfail = on_fastfail
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0          # consecutive, reset on success
        self._opened_at = 0.0
        self._probing = False       # half-open: one probe in flight
        self.trips = 0
        self.fastfails = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> None:
        """Gate one store access; raises :class:`CircuitOpen` when open."""
        fastfail = False
        with self._lock:
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    self._state = self.HALF_OPEN
                    self._probing = True
                else:
                    fastfail = True
            elif self._state == self.HALF_OPEN:
                if self._probing:
                    fastfail = True     # one probe at a time
                else:
                    self._probing = True
            if fastfail:
                self.fastfails += 1
        if fastfail:
            if self._on_fastfail is not None:
                self._on_fastfail()
            raise CircuitOpen(
                f"circuit breaker for store {self.name!r} is "
                f"{self._state}: {self._failures} consecutive persistent "
                f"failures (threshold {self.threshold})")

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._probing = False
            self._state = self.CLOSED

    def record_failure(self) -> None:
        tripped = False
        with self._lock:
            self._failures += 1
            self._probing = False
            if self._state == self.HALF_OPEN or \
                    self._failures >= self.threshold:
                if self._state != self.OPEN:
                    tripped = True
                    self.trips += 1
                self._state = self.OPEN
                self._opened_at = self._clock()
        if tripped and self._on_trip is not None:
            self._on_trip()

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, {self._state}, "
                f"failures={self._failures}/{self.threshold}, "
                f"trips={self.trips})")


class DegradePolicy:
    """Thresholds for the overload ladder (see :class:`HealthController`).

    * ``planner_queue_depth`` — admission queue depth (or in-flight backlog
      beyond the worker count) at which planning goes plan-cache-only;
    * ``memory_pressure`` — admitted/cap fraction above which prefetch
      depth is throttled toward 0 (linearly; 0 at the watermark);
    * ``fault_rate`` / ``fault_window`` — absorbed faults per second
      (sliding window) above which the service reports *degraded* health;
    * ``shed_backlog`` — in-flight jobs (submitted, unfinished) at which
      new submissions are shed with ``ServiceOverloaded``;
    * ``breaker_threshold`` / ``breaker_cooldown`` — per-store circuit
      breaker parameters.
    """

    __slots__ = ("planner_queue_depth", "memory_pressure", "fault_rate",
                 "fault_window", "shed_backlog", "breaker_threshold",
                 "breaker_cooldown")

    def __init__(self, planner_queue_depth: int = 4,
                 memory_pressure: float = 0.85,
                 fault_rate: float = 50.0,
                 fault_window: float = 5.0,
                 shed_backlog: int | None = 64,
                 breaker_threshold: int = 3,
                 breaker_cooldown: float = 1.0):
        self.planner_queue_depth = planner_queue_depth
        self.memory_pressure = memory_pressure
        self.fault_rate = fault_rate
        self.fault_window = fault_window
        self.shed_backlog = shed_backlog
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown

    def __repr__(self) -> str:
        return (f"DegradePolicy(planner_q={self.planner_queue_depth}, "
                f"mem={self.memory_pressure}, shed={self.shed_backlog}, "
                f"breaker={self.breaker_threshold}x)")


class HealthController:
    """Samples service vitals and answers the degradation questions.

    With ``policy=None`` every question answers "healthy" and no breakers
    exist — the controller is always present so call sites stay branch-free.
    """

    LEVELS = ("ok", "degraded", "overloaded")

    def __init__(self, service, policy: DegradePolicy | None):
        self.service = service
        self.policy = policy
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        # (timestamp, cumulative fault count) samples for the rate window.
        self._fault_samples: deque = deque()

    # -- signals ------------------------------------------------------------

    def memory_pressure(self) -> float:
        return self.service.admitted_bytes() / self.service.memory_cap_bytes

    def backlog(self) -> int:
        """Jobs submitted but unfinished (planning, queued, or running)."""
        with self.service._lock:
            return self.service._pending

    def fault_rate(self) -> float:
        """Absorbed faults (retries + checksum failures) per second over
        the policy's sliding window."""
        stats = self.service.disk.stats
        total = stats.retries + stats.checksum_failures
        now = time.monotonic()
        window = self.policy.fault_window if self.policy else 5.0
        with self._lock:
            self._fault_samples.append((now, total))
            while self._fault_samples and \
                    self._fault_samples[0][0] < now - window:
                self._fault_samples.popleft()
            t0, f0 = self._fault_samples[0]
            span = now - t0
            if span <= 0:
                return 0.0
            return (total - f0) / span

    # -- decisions ----------------------------------------------------------

    def should_shed(self) -> bool:
        """Reject-new before cancel-running: shed incoming submissions once
        the in-flight backlog passes the high-water mark."""
        p = self.policy
        if p is None or p.shed_backlog is None:
            return False
        return self.backlog() >= p.shed_backlog

    def plan_cache_only(self) -> bool:
        """Skip cold Apriori searches while the queue is deep."""
        p = self.policy
        if p is None:
            return False
        workers = self.service._executor._max_workers
        pressure = max(self.service.queue_depth(),
                       self.backlog() - workers)
        return pressure >= p.planner_queue_depth

    def effective_prefetch_depth(self, requested: int) -> int:
        """Throttle prefetch toward 0 as memory pressure approaches the
        watermark (staging is pure optimization — the first thing to go)."""
        p = self.policy
        if p is None or not requested:
            return requested
        pressure = self.memory_pressure()
        if pressure >= p.memory_pressure:
            return 0
        return int(requested * (p.memory_pressure - pressure)
                   / p.memory_pressure)

    def breaker_for(self, store_name: str) -> CircuitBreaker | None:
        if self.policy is None:
            return None
        with self._lock:
            br = self._breakers.get(store_name)
            if br is None:
                stats = self.service.stats

                def trip():
                    stats.breaker_trips += 1

                def fastfail():
                    stats.breaker_fastfails += 1

                br = CircuitBreaker(store_name,
                                    threshold=self.policy.breaker_threshold,
                                    cooldown=self.policy.breaker_cooldown,
                                    on_trip=trip, on_fastfail=fastfail)
                self._breakers[store_name] = br
            return br

    def level(self) -> str:
        if self.should_shed():
            return "overloaded"
        p = self.policy
        if p is not None and (
                self.plan_cache_only()
                or self.memory_pressure() >= p.memory_pressure
                or self.fault_rate() >= p.fault_rate):
            return "degraded"
        return "ok"

    def snapshot(self) -> dict:
        open_breakers = [n for n, b in list(self._breakers.items())
                         if b.state != CircuitBreaker.CLOSED]
        return {
            "level": self.level(),
            "queue_depth": self.service.queue_depth(),
            "backlog": self.backlog(),
            "memory_pressure": round(self.memory_pressure(), 4),
            "fault_rate": round(self.fault_rate(), 3),
            "open_breakers": open_breakers,
        }
