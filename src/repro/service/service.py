"""In-process multi-query array service.

The paper's §7 outlook — many analytics queries contending for one machine's
memory and disk — realized over the existing single-query stack:

* a front end (:class:`ArrayService`) accepts *jobs* (program + parameter
  binding + input matrices) and runs them on a thread-pool of workers;
* planning goes through the persistent :class:`~repro.service.PlanCache`,
  so repeat submissions of a program template skip the Apriori search;
* every job executes against one **shared**
  :class:`~repro.storage.SharedBufferPool` and one shared
  :class:`~repro.storage.SimulatedDisk` — inputs are content-addressed, so
  two queries over the same base array share buffered blocks (and a block
  being read by one query satisfies a concurrent fetch of it without a
  second disk read);
* **admission control** partitions the global memory budget: a job enters
  execution only when its plan's memory high-water mark fits what is left,
  otherwise it waits in a bounded FIFO queue (per-job timeout); a job that
  can never fit is rejected immediately with a typed error.

Key namespacing — how many queries coexist in one pool:

* INPUT arrays are stored once per *content* under ``ds_<digest>`` names
  (digest over bytes, dtype, shape and block geometry), so identical inputs
  of different jobs collide deliberately into shared buffer keys;
* every other array is private under ``<job>__<name>``, so two jobs running
  the same program template never alias their intermediates.

Jobs run in **opportunistic** (LRU) buffer mode by default: plan-exact
replay charges every planned READ to disk by design (that is its point —
matching the cost model byte for byte), which would ignore blocks a
concurrent query already buffered.  Opportunistic mode turns those into
hits, which is exactly the inter-query sharing this service exists for.

Fault tolerance composes: the shared disk can carry a fault injector and
atomic-write protection, and each job may checkpoint to its own journal
(``<workdir>/jobs/<job>/execution.journal``) and later be resubmitted with
``resume=True`` under the *same job name*.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import Hashable, Mapping

import numpy as np

from ..codegen.exec_plan import build_executable_plan
from ..engine.executor import ExecutionReport, execute_plan
from ..engine.journal import ExecutionJournal, plan_fingerprint
from ..exceptions import (AdmissionRejected, AdmissionTimeout,
                          OptimizationError, ServiceClosed, ServiceError,
                          ServiceQueueFull)
from ..ir import ArrayKind, Program
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..optimizer import IOModel, Optimizer
from ..optimizer.plan import Plan
from ..storage import (DAFMatrix, FaultInjector, IOStats, RetryPolicy,
                       SharedBufferPool, SimulatedDisk)
from .plan_cache import PlanCache

__all__ = ["ArrayService", "JobResult", "ServiceStats", "JobPoolView"]

_UNSET = object()


class ServiceStats:
    """Service-level accounting, thin views over metrics instruments."""

    _COUNTERS = ("jobs_submitted", "jobs_completed", "jobs_failed",
                 "jobs_rejected", "pins_reclaimed")
    _GAUGES = ("queue_depth", "admitted_bytes", "active_jobs")

    __slots__ = tuple("_" + f for f in _COUNTERS + _GAUGES)

    def __init__(self):
        for f in self._COUNTERS:
            setattr(self, "_" + f, obs_metrics.Counter("repro_service_" + f))
        for f in self._GAUGES:
            setattr(self, "_" + f, obs_metrics.Gauge("repro_service_" + f))
        registry = obs_metrics.CURRENT
        if registry is not None:
            self.bind(registry, service=registry.seq("service"))

    def bind(self, registry: obs_metrics.MetricsRegistry, **labels) -> None:
        for f in self._COUNTERS + self._GAUGES:
            inst = getattr(self, "_" + f)
            inst.labels = dict(labels)
            registry.register(inst)

    def __repr__(self) -> str:
        return (f"ServiceStats(submitted={self.jobs_submitted}, "
                f"completed={self.jobs_completed}, failed={self.jobs_failed}, "
                f"rejected={self.jobs_rejected})")


def _stat_view(field: str) -> property:
    attr = "_" + field

    def fget(self):
        return getattr(self, attr).value

    def fset(self, value):
        getattr(self, attr).value = value

    return property(fget, fset)


for _f in ServiceStats._COUNTERS + ServiceStats._GAUGES:
    setattr(ServiceStats, _f, _stat_view(_f))
del _f


class JobPoolView:
    """One job's window onto the shared buffer pool.

    Translates the engine's ``(array name, block)`` keys into the service's
    global namespace, tags every pin with the job as *owner* (so crashed
    jobs can be swept with
    :meth:`~repro.storage.SharedBufferPool.release_owner`), and keeps
    per-job hit/miss counters: a fetch satisfied without invoking *this
    job's* loader — whether the block was resident or another query's
    in-flight read was joined — counts as a hit, because this job issued no
    disk read for it.  ``peak_bytes`` is the shared pool's aggregate peak.
    """

    # The shared pool underneath serializes everything, so the engine's
    # prefetch pipeline can use a view directly (no LockedPool wrapper).
    thread_safe = True

    __slots__ = ("pool", "names", "owner", "hits", "misses")

    def __init__(self, pool: SharedBufferPool, names: Mapping[str, str],
                 owner: Hashable):
        self.pool = pool
        self.names = dict(names)
        self.owner = owner
        self.hits = 0
        self.misses = 0

    def _k(self, key: tuple) -> tuple:
        name, block = key
        return (self.names[name], block)

    def contains(self, key: tuple) -> bool:
        return self.pool.contains(self._k(key))

    def fetch(self, key: tuple, loader, pin: int = 0):
        invoked = []

        def counted_loader():
            invoked.append(True)
            return loader()

        blk = self.pool.fetch(self._k(key), counted_loader, pin=pin,
                              owner=self.owner)
        if invoked:
            self.misses += 1
        else:
            self.hits += 1
        return blk

    def put(self, key: tuple, data, dirty: bool = False, pin: int = 0,
            force: bool = False):
        return self.pool.put(self._k(key), data, dirty, pin=pin,
                             owner=self.owner, force=force)

    def stage(self, key: tuple, data):
        return self.pool.stage(self._k(key), data, owner=self.owner)

    def consume_staged(self, key: tuple, pin: int = 1):
        return self.pool.consume_staged(self._k(key), pin=pin,
                                        owner=self.owner)

    def discard_staged(self, key: tuple) -> bool:
        return self.pool.discard_staged(self._k(key), owner=self.owner)

    def pin(self, key: tuple) -> None:
        self.pool.pin(self._k(key), owner=self.owner)

    def unpin(self, key: tuple) -> None:
        self.pool.unpin(self._k(key), owner=self.owner)

    def release(self, key: tuple, force: bool = False) -> None:
        self.pool.release(self._k(key), force)

    def release_if_unpinned(self, key: tuple, force: bool = False) -> bool:
        return self.pool.release_if_unpinned(self._k(key), force)

    def pin_count(self, key: tuple) -> int:
        return self.pool.pin_count(self._k(key))

    def mark_clean(self, key: tuple) -> None:
        self.pool.mark_clean(self._k(key))

    @property
    def peak_bytes(self) -> int:
        return self.pool.peak_bytes


class _CountingStore:
    """Per-job I/O attribution proxy around one store.

    The shared disk's counters aggregate every concurrent job; this proxy
    counts the *logical* block I/O this job issued (fault-retry and
    checksum-healing re-reads stay global-only).  The job's prefetch
    reader threads and its compute thread both count here, hence the lock.
    """

    __slots__ = ("store", "read_bytes", "write_bytes", "read_ops",
                 "write_ops", "_lock")

    def __init__(self, store):
        self.store = store
        self.read_bytes = self.write_bytes = 0
        self.read_ops = self.write_ops = 0
        self._lock = threading.Lock()

    @property
    def layout(self):
        return self.store.layout

    def read_block(self, coords, count: bool = True):
        block = self.store.read_block(coords, count=count)
        if count:
            with self._lock:
                self.read_bytes += self.store.layout.block_bytes
                self.read_ops += 1
        return block

    def read_block_run(self, start_coords, nblocks: int, count: bool = True):
        blocks, extra = self.store.read_block_run(start_coords, nblocks,
                                                  count=count)
        if count:
            with self._lock:
                self.read_bytes += nblocks * self.store.layout.block_bytes
                self.read_ops += nblocks
        return blocks, extra

    def write_block(self, coords, block, count: bool = True) -> None:
        self.store.write_block(coords, block, count=count)
        if count:
            with self._lock:
                self.write_bytes += self.store.layout.block_bytes
                self.write_ops += 1


class _Job:
    """Everything one submission carries through the pipeline."""

    __slots__ = ("key", "program", "params", "inputs", "memory_cap_bytes",
                 "plan", "plan_exact", "checkpoint", "resume",
                 "admission_timeout", "workers", "prefetch_depth")

    def __init__(self, **kw):
        for f in self.__slots__:
            setattr(self, f, kw[f])


class JobResult:
    """What a completed job hands back through its future."""

    __slots__ = ("job", "outputs", "report", "plan", "cache_hit",
                 "optimize_seconds", "admission_wait_seconds")

    def __init__(self, job: str, outputs: dict, report: ExecutionReport,
                 plan: Plan, cache_hit: bool, optimize_seconds: float,
                 admission_wait_seconds: float):
        self.job = job
        self.outputs = outputs
        self.report = report
        self.plan = plan
        self.cache_hit = cache_hit
        self.optimize_seconds = optimize_seconds
        self.admission_wait_seconds = admission_wait_seconds

    def __repr__(self) -> str:
        return (f"JobResult({self.job}, plan #{self.plan.index}, "
                f"cache_hit={self.cache_hit}, "
                f"read={self.report.io.read_bytes}B, "
                f"waited {self.admission_wait_seconds:.3f}s)")


class _Ticket:
    __slots__ = ("need",)

    def __init__(self, need: int):
        self.need = need


class ArrayService:
    """Concurrent multi-query front end over one disk and one buffer pool.

    ``memory_cap_bytes`` is the *global* budget: it caps the shared buffer
    pool and is the pie admission control slices.  ``workers`` bounds
    execution concurrency; ``max_pending`` (when set) bounds how many jobs
    may be in flight — submitted but unfinished — before :meth:`submit`
    raises :class:`~repro.exceptions.ServiceQueueFull`.

    Use as a context manager, or call :meth:`shutdown`.
    """

    def __init__(self, workdir, memory_cap_bytes: int,
                 workers: int = 4,
                 io_model: IOModel | None = None,
                 plan_cache: "PlanCache | str | Path | None" = None,
                 max_pending: int | None = None,
                 admission_timeout: float | None = None,
                 faults: "FaultInjector | int | None" = None,
                 retry: RetryPolicy | None = None,
                 atomic_writes: bool | None = None,
                 max_set_size: int | None = None,
                 max_candidates: int | None = None,
                 prefetch_depth: int = 0):
        if memory_cap_bytes <= 0:
            raise ServiceError("memory_cap_bytes must be positive")
        if workers < 1:
            raise ServiceError("workers must be >= 1")
        if prefetch_depth < 0:
            raise ServiceError("prefetch_depth must be >= 0")
        self.workdir = Path(workdir)
        self.memory_cap_bytes = int(memory_cap_bytes)
        self.io_model = io_model or IOModel()
        injector = FaultInjector.transient(seed=faults) \
            if isinstance(faults, int) else faults
        if atomic_writes is None:
            atomic_writes = injector is not None
        self.disk = SimulatedDisk(self.workdir, self.io_model,
                                  fault_injector=injector, retry=retry,
                                  atomic_writes=atomic_writes)
        if atomic_writes:
            # A previous service process may have died mid-write; roll torn
            # regions back before any job opens a store.
            self.disk.recover()
        self.pool = SharedBufferPool(self.memory_cap_bytes)
        if isinstance(plan_cache, (str, Path)):
            plan_cache = PlanCache(plan_cache)
        self.plan_cache = plan_cache
        self.max_pending = max_pending
        self.admission_timeout = admission_timeout
        self.max_set_size = max_set_size
        self.max_candidates = max_candidates
        self.prefetch_depth = int(prefetch_depth)
        self.stats = ServiceStats()

        self._executor = ThreadPoolExecutor(workers,
                                            thread_name_prefix="repro-svc")
        self._adm = threading.Condition()
        self._adm_queue: deque[_Ticket] = deque()
        self._admitted = 0
        self._pending = 0
        self._lock = threading.Lock()  # job naming + dataset catalog
        self._job_seq = 0
        self._active: set[str] = set()
        self._datasets: dict[str, DAFMatrix] = {}
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ArrayService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for in-flight ones.

        Jobs parked in the admission queue are woken and fail with
        :class:`~repro.exceptions.ServiceClosed` — shutdown never hangs on
        a queue that can no longer drain.
        """
        with self._adm:
            self._closed = True
            self._adm.notify_all()
        self._executor.shutdown(wait=wait)
        for store in self._datasets.values():
            store.close()
        self.disk.close()

    # -- submission ---------------------------------------------------------

    def submit(self, program: Program, params: Mapping[str, int],
               inputs: Mapping[str, np.ndarray], *,
               name: str | None = None,
               memory_cap_bytes: int | None = None,
               plan: Plan | None = None,
               plan_exact: bool = False,
               checkpoint: bool = False,
               resume: bool = False,
               admission_timeout: "float | None" = _UNSET,
               workers: int | None = None,
               prefetch_depth: int | None = None) -> "Future[JobResult]":
        """Queue one job; returns a future resolving to a :class:`JobResult`.

        ``memory_cap_bytes`` caps *plan selection* for this job (default:
        the service's global cap); admission always checks the chosen
        plan's high-water mark against the global budget.  ``plan`` skips
        planning entirely.  ``name`` must be unique among in-flight jobs
        and is required stable for ``checkpoint``/``resume`` pairs.
        ``workers`` parallelizes this job's Apriori search (process pool).
        ``prefetch_depth`` overrides the service default; a job's staging
        budget (``depth`` × its largest block) is charged to admission on
        top of the plan's memory high-water mark, so staged bytes never
        eat into what other jobs were promised.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            if self.max_pending is not None and \
                    self._pending >= self.max_pending:
                raise ServiceQueueFull(
                    f"{self._pending} jobs already pending "
                    f"(max_pending={self.max_pending})")
            if name is None:
                self._job_seq += 1
                name = f"j{self._job_seq}"
            if name in self._active:
                raise ServiceError(f"job name {name!r} already in flight")
            self._active.add(name)
            self._pending += 1
        self.stats.jobs_submitted += 1
        timeout = self.admission_timeout if admission_timeout is _UNSET \
            else admission_timeout
        depth = self.prefetch_depth if prefetch_depth is None \
            else int(prefetch_depth)
        job = _Job(key=name, program=program, params=dict(params),
                   inputs=dict(inputs), memory_cap_bytes=memory_cap_bytes,
                   plan=plan, plan_exact=plan_exact, checkpoint=checkpoint,
                   resume=resume, admission_timeout=timeout, workers=workers,
                   prefetch_depth=depth)
        try:
            return self._executor.submit(self._run_job, job)
        except BaseException as err:
            with self._lock:
                self._active.discard(name)
                self._pending -= 1
            if isinstance(err, RuntimeError):  # pool already shut down
                raise ServiceClosed("service is shut down") from err
            raise

    def run(self, program: Program, params: Mapping[str, int],
            inputs: Mapping[str, np.ndarray], **kw) -> JobResult:
        """Submit one job and wait for its result."""
        return self.submit(program, params, inputs, **kw).result()

    # -- admission control --------------------------------------------------

    def _admit(self, need: int, timeout: float | None) -> None:
        """Block until ``need`` bytes of the global budget are ours (FIFO)."""
        if need > self.memory_cap_bytes:
            raise AdmissionRejected(
                f"plan needs {need} bytes of buffer memory; the service "
                f"budget is {self.memory_cap_bytes} — this job can never "
                f"be admitted")
        ticket = _Ticket(need)
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._adm:
            self._adm_queue.append(ticket)
            self.stats.queue_depth = len(self._adm_queue)
            try:
                while True:
                    if self._closed:
                        raise ServiceClosed(
                            "service shut down while awaiting admission")
                    if self._adm_queue[0] is ticket and \
                            self._admitted + need <= self.memory_cap_bytes:
                        self._adm_queue.popleft()
                        self._admitted += need
                        self.stats.queue_depth = len(self._adm_queue)
                        self.stats.admitted_bytes = self._admitted
                        # A successor may fit in what is left.
                        self._adm.notify_all()
                        return
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise AdmissionTimeout(
                                f"no {need} bytes of budget freed within "
                                f"{timeout:.3f}s (admitted: "
                                f"{self._admitted}/{self.memory_cap_bytes})")
                    self._adm.wait(remaining)
            except BaseException:
                self._adm_queue.remove(ticket)
                self.stats.queue_depth = len(self._adm_queue)
                self._adm.notify_all()
                raise

    def _release_admission(self, need: int) -> None:
        with self._adm:
            self._admitted -= need
            self.stats.admitted_bytes = self._admitted
            self._adm.notify_all()

    # -- storage namespace --------------------------------------------------

    @staticmethod
    def _dataset_digest(data: np.ndarray, block_shape: tuple,
                        dtype: np.dtype) -> str:
        canon = np.ascontiguousarray(data, dtype=dtype)
        h = hashlib.sha256()
        h.update(repr((canon.dtype.str, canon.shape,
                       tuple(block_shape))).encode())
        h.update(canon.tobytes())
        return h.hexdigest()[:16]

    def _setup_stores(self, job: _Job, resuming: bool
                      ) -> tuple[dict[str, DAFMatrix], dict[str, str]]:
        """Open/create every array's store; returns (stores, name map).

        INPUT arrays land in the content-addressed shared catalog — one
        store per distinct (content, geometry), written once, never per
        job.  Everything else is private under ``<job>__<array>``.
        """
        stores: dict[str, DAFMatrix] = {}
        names: dict[str, str] = {}
        for lname, arr in job.program.arrays.items():
            dtype = {8: np.float64, 4: np.float32}[arr.dtype_bytes]
            grid = arr.num_blocks(job.params)
            if arr.kind is ArrayKind.INPUT:
                if lname not in job.inputs:
                    raise ServiceError(f"missing input matrix {lname!r}")
                digest = self._dataset_digest(job.inputs[lname],
                                              arr.block_shape, dtype)
                gname = f"ds_{digest}"
                with self._lock:
                    store = self._datasets.get(gname)
                    if store is None:
                        if self.disk.exists(gname + ".daf"):
                            store = DAFMatrix.open(self.disk, gname)
                        else:
                            store = DAFMatrix.create(self.disk, gname, grid,
                                                     arr.block_shape, dtype)
                            store.write_matrix(job.inputs[lname], count=False)
                        self._datasets[gname] = store
            else:
                gname = f"{job.key}__{lname}"
                if resuming and self.disk.exists(gname + ".daf"):
                    store = DAFMatrix.open(self.disk, gname)
                else:
                    store = DAFMatrix.create(self.disk, gname, grid,
                                             arr.block_shape, dtype)
                    store.preallocate()
            stores[lname] = store
            names[lname] = gname
        return stores, names

    # -- the job pipeline ---------------------------------------------------

    def _plan_job(self, job: _Job) -> tuple[Plan, bool, float]:
        if job.plan is not None:
            return job.plan, False, 0.0
        cap = job.memory_cap_bytes if job.memory_cap_bytes is not None \
            else self.memory_cap_bytes
        opt = Optimizer(job.program, self.io_model)
        result = opt.optimize(job.params, memory_cap_bytes=cap,
                              max_set_size=self.max_set_size,
                              max_candidates=self.max_candidates,
                              workers=job.workers,
                              plan_cache=self.plan_cache)
        try:
            plan = result.best(cap)
        except OptimizationError as err:
            raise AdmissionRejected(
                f"no plan for {job.program.name} fits {cap} bytes") from err
        return plan, result.cache_hit, result.seconds

    def _run_job(self, job: _Job) -> JobResult:
        try:
            with obs_trace.span("service.job", "service", job=job.key,
                                program=job.program.name) as sp:
                result = self._execute_admitted(job, sp)
            self.stats.jobs_completed += 1
            return result
        except (AdmissionRejected, AdmissionTimeout):
            self.stats.jobs_rejected += 1
            raise
        except ServiceClosed:
            raise
        except BaseException:
            self.stats.jobs_failed += 1
            raise
        finally:
            with self._lock:
                self._active.discard(job.key)
                self._pending -= 1

    def _execute_admitted(self, job: _Job, sp) -> JobResult:
        with obs_trace.span("service.plan", "service", job=job.key):
            plan, cache_hit, opt_seconds = self._plan_job(job)
        # The prefetch staging budget is real memory the job will occupy in
        # the shared pool, so admission charges for it alongside the plan's
        # high-water mark — staged blocks never eat other jobs' promises.
        prefetch_budget = 0
        if job.prefetch_depth:
            prefetch_budget = job.prefetch_depth * max(
                arr.block_bytes for arr in job.program.arrays.values())
        need = plan.cost.memory_bytes + prefetch_budget
        sp["plan"] = plan.index
        sp["cache_hit"] = cache_hit
        sp["need_bytes"] = need

        t0 = time.monotonic()
        with obs_trace.span("service.admission", "service", job=job.key,
                            need_bytes=need):
            self._admit(need, job.admission_timeout)
        wait = time.monotonic() - t0
        self.stats.active_jobs += 1
        private_prefix = f"{job.key}__"
        try:
            exec_plan = build_executable_plan(job.program, job.params, plan)
            jobdir = self.workdir / "jobs" / job.key
            journal = None
            resuming = False
            if job.checkpoint or job.resume:
                jobdir.mkdir(parents=True, exist_ok=True)
                jpath = jobdir / "execution.journal"
                journal = ExecutionJournal(jpath, plan_fingerprint(exec_plan))
                resuming = job.resume and jpath.exists()
            stores, names = self._setup_stores(job, resuming)
            counted = {n: _CountingStore(s) for n, s in stores.items()}
            view = JobPoolView(self.pool, names, owner=job.key)

            with obs_trace.span("service.execute", "service", job=job.key):
                report = execute_plan(exec_plan, counted, self.disk,
                                      plan_exact=job.plan_exact,
                                      journal=journal, resume=resuming,
                                      pool=view,
                                      prefetch_depth=job.prefetch_depth,
                                      prefetch_budget_bytes=prefetch_budget
                                      if job.prefetch_depth else None)
            outputs = {n: stores[n].read_matrix(count=False)
                       for n, arr in job.program.arrays.items()
                       if arr.kind is ArrayKind.OUTPUT}

            # The in-executor report drew on the *shared* disk counters —
            # polluted by whatever ran concurrently.  Re-attribute from the
            # per-job proxies (assignable slots on the report).
            io = IOStats()
            io.add(read_bytes=sum(c.read_bytes for c in counted.values()),
                   write_bytes=sum(c.write_bytes for c in counted.values()),
                   read_ops=sum(c.read_ops for c in counted.values()),
                   write_ops=sum(c.write_ops for c in counted.values()))
            report.io = io
            report.simulated_io_seconds = self.io_model.seconds(
                io.read_bytes, io.write_bytes)
            return JobResult(job.key, outputs, report, plan, cache_hit,
                             opt_seconds, wait)
        finally:
            # Crash-or-finish sweep: drop any pins the job still holds,
            # then evict its private blocks so the budget it vacates is
            # actually reusable.  Shared dataset blocks stay — they are the
            # inter-query sharing capital.
            leaked = self.pool.release_owner(job.key)
            if leaked:
                self.stats.pins_reclaimed += leaked
                obs_trace.instant("service.pins_reclaimed", "service",
                                  job=job.key, pins=leaked)
            self.pool.drop_matching(
                lambda k: isinstance(k[0], str)
                and k[0].startswith(private_prefix), force=True)
            self.stats.active_jobs -= 1
            self._release_admission(need)

    # -- introspection ------------------------------------------------------

    def queue_depth(self) -> int:
        with self._adm:
            return len(self._adm_queue)

    def admitted_bytes(self) -> int:
        with self._adm:
            return self._admitted

    def __repr__(self) -> str:
        return (f"ArrayService({self.workdir}, "
                f"cap={self.memory_cap_bytes}B, {self.stats!r})")
