"""In-process multi-query array service.

The paper's §7 outlook — many analytics queries contending for one machine's
memory and disk — realized over the existing single-query stack:

* a front end (:class:`ArrayService`) accepts *jobs* (program + parameter
  binding + input matrices) and runs them on a thread-pool of workers;
* planning goes through the persistent :class:`~repro.service.PlanCache`,
  so repeat submissions of a program template skip the Apriori search;
* every job executes against one **shared**
  :class:`~repro.storage.SharedBufferPool` and one shared
  :class:`~repro.storage.SimulatedDisk` — inputs are content-addressed, so
  two queries over the same base array share buffered blocks (and a block
  being read by one query satisfies a concurrent fetch of it without a
  second disk read);
* **admission control** partitions the global memory budget: a job enters
  execution only when its plan's memory high-water mark fits what is left,
  otherwise it waits in a bounded FIFO queue (per-job timeout); a job that
  can never fit is rejected immediately with a typed error.

Key namespacing — how many queries coexist in one pool:

* INPUT arrays are stored once per *content* under ``ds_<digest>`` names
  (digest over bytes, dtype, shape and block geometry), so identical inputs
  of different jobs collide deliberately into shared buffer keys;
* every other array is private under ``<job>__<name>``, so two jobs running
  the same program template never alias their intermediates.

Jobs run in **opportunistic** (LRU) buffer mode by default: plan-exact
replay charges every planned READ to disk by design (that is its point —
matching the cost model byte for byte), which would ignore blocks a
concurrent query already buffered.  Opportunistic mode turns those into
hits, which is exactly the inter-query sharing this service exists for.

Fault tolerance composes: the shared disk can carry a fault injector and
atomic-write protection, and each job may checkpoint to its own journal
(``<workdir>/jobs/<job>/execution.journal``) and later be resubmitted with
``resume=True`` under the *same job name*.

Resilience (see :mod:`repro.service.resilience` and docs/service.md):

* ``submit(timeout=/deadline=)`` attaches a deadline; the returned
  :class:`JobHandle` supports cooperative :meth:`JobHandle.cancel` — both
  surface as typed :class:`~repro.exceptions.DeadlineExceeded` /
  :class:`~repro.exceptions.JobCancelled` at the job's next checkpoint
  (admission wait, instance boundary, prefetch claim, retry backoff);
* ``submit(retry=...)`` retries transient storage failures through the
  checkpoint journal, re-executing only unfinished instances;
* ``ArrayService(degrade=...)`` arms the overload ladder: plan-cache-only
  planning, prefetch throttling, load shedding, per-store circuit
  breakers.
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from concurrent.futures import (BrokenExecutor, Future, ProcessPoolExecutor,
                                ThreadPoolExecutor)
from pathlib import Path
from typing import Hashable, Mapping

import numpy as np

from ..cancel import CancelToken
from ..codegen.exec_plan import build_executable_plan
from ..engine.executor import ExecutionReport, execute_plan
from ..engine.journal import ExecutionJournal, plan_fingerprint
from ..exceptions import (AdmissionRejected, AdmissionTimeout,
                          DeadlineExceeded, JobCancelled, OptimizationError,
                          ServiceClosed, ServiceError, ServiceOverloaded,
                          ServiceQueueFull, StorageError)
from ..ir import ArrayKind, Program
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..optimizer import IOModel, Optimizer
from ..optimizer.plan import Plan
from ..storage import (DAFMatrix, FaultInjector, IOStats, RetryPolicy,
                       SharedBufferPool, make_disk)
from .plan_cache import PlanCache, optimization_fingerprint
from .resilience import (TRANSIENT, CircuitBreaker, DegradePolicy,
                         HealthController, JobRetryPolicy)
from .workers import (STORE_FACTORIES, CountingStore, WorkerJobSpec,
                      cleanup_jobdir, run_worker_job)

__all__ = ["ArrayService", "JobHandle", "JobResult", "ServiceStats",
           "JobPoolView"]

_UNSET = object()

#: Compatibility aliases — the implementations moved to
#: :mod:`repro.service.workers` so both backends share them.
_STORE_FACTORIES = STORE_FACTORIES
_CountingStore = CountingStore


class ServiceStats:
    """Service-level accounting, thin views over metrics instruments."""

    _COUNTERS = ("jobs_submitted", "jobs_completed", "jobs_failed",
                 "jobs_rejected", "jobs_cancelled", "jobs_deadline_exceeded",
                 "jobs_shed", "retries_attempted", "retries_exhausted",
                 "degraded_plans", "prefetch_throttled", "breaker_trips",
                 "breaker_fastfails", "pins_reclaimed")
    _GAUGES = ("queue_depth", "admitted_bytes", "active_jobs")

    #: Whole-job latency buckets (seconds): submit → result, covering
    #: planning + admission wait + every execution attempt.  p50/p99 SLO
    #: reporting reads these via ``Histogram.quantiles``.
    _LATENCY_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
                        10.0, 30.0, 60.0, 120.0, 300.0, 600.0)

    __slots__ = tuple("_" + f for f in _COUNTERS + _GAUGES) + ("job_seconds",)

    def __init__(self):
        for f in self._COUNTERS:
            setattr(self, "_" + f, obs_metrics.Counter("repro_service_" + f))
        for f in self._GAUGES:
            setattr(self, "_" + f, obs_metrics.Gauge("repro_service_" + f))
        self.job_seconds = obs_metrics.Histogram(
            "repro_service_job_seconds", buckets=self._LATENCY_BUCKETS)
        registry = obs_metrics.CURRENT
        if registry is not None:
            self.bind(registry, service=registry.seq("service"))

    def bind(self, registry: obs_metrics.MetricsRegistry, **labels) -> None:
        for f in self._COUNTERS + self._GAUGES:
            inst = getattr(self, "_" + f)
            inst.labels = dict(labels)
            registry.register(inst)
        self.job_seconds.labels = dict(labels)
        registry.register(self.job_seconds)

    def __repr__(self) -> str:
        return (f"ServiceStats(submitted={self.jobs_submitted}, "
                f"completed={self.jobs_completed}, failed={self.jobs_failed}, "
                f"rejected={self.jobs_rejected})")


def _stat_view(field: str) -> property:
    attr = "_" + field

    def fget(self):
        return getattr(self, attr).value

    def fset(self, value):
        getattr(self, attr).value = value

    return property(fget, fset)


for _f in ServiceStats._COUNTERS + ServiceStats._GAUGES:
    setattr(ServiceStats, _f, _stat_view(_f))
del _f


class JobPoolView:
    """One job's window onto the shared buffer pool.

    Translates the engine's ``(array name, block)`` keys into the service's
    global namespace, tags every pin with the job as *owner* (so crashed
    jobs can be swept with
    :meth:`~repro.storage.SharedBufferPool.release_owner`), and keeps
    per-job hit/miss counters: a fetch satisfied without invoking *this
    job's* loader — whether the block was resident or another query's
    in-flight read was joined — counts as a hit, because this job issued no
    disk read for it.  ``peak_bytes`` is the shared pool's aggregate peak.
    """

    # The shared pool underneath serializes everything, so the engine's
    # prefetch pipeline can use a view directly (no LockedPool wrapper).
    thread_safe = True

    __slots__ = ("pool", "names", "owner", "hits", "misses")

    def __init__(self, pool: SharedBufferPool, names: Mapping[str, str],
                 owner: Hashable):
        self.pool = pool
        self.names = dict(names)
        self.owner = owner
        self.hits = 0
        self.misses = 0

    def _k(self, key: tuple) -> tuple:
        name, block = key
        return (self.names[name], block)

    def contains(self, key: tuple) -> bool:
        return self.pool.contains(self._k(key))

    def fetch(self, key: tuple, loader, pin: int = 0):
        invoked = []

        def counted_loader():
            invoked.append(True)
            return loader()

        blk = self.pool.fetch(self._k(key), counted_loader, pin=pin,
                              owner=self.owner)
        if invoked:
            self.misses += 1
        else:
            self.hits += 1
        return blk

    def put(self, key: tuple, data, dirty: bool = False, pin: int = 0,
            force: bool = False):
        return self.pool.put(self._k(key), data, dirty, pin=pin,
                             owner=self.owner, force=force)

    def stage(self, key: tuple, data):
        return self.pool.stage(self._k(key), data, owner=self.owner)

    def consume_staged(self, key: tuple, pin: int = 1):
        return self.pool.consume_staged(self._k(key), pin=pin,
                                        owner=self.owner)

    def discard_staged(self, key: tuple) -> bool:
        return self.pool.discard_staged(self._k(key), owner=self.owner)

    def pin(self, key: tuple) -> None:
        self.pool.pin(self._k(key), owner=self.owner)

    def unpin(self, key: tuple) -> None:
        self.pool.unpin(self._k(key), owner=self.owner)

    def release(self, key: tuple, force: bool = False) -> None:
        self.pool.release(self._k(key), force)

    def release_if_unpinned(self, key: tuple, force: bool = False) -> bool:
        return self.pool.release_if_unpinned(self._k(key), force)

    def pin_count(self, key: tuple) -> int:
        return self.pool.pin_count(self._k(key))

    def mark_clean(self, key: tuple) -> None:
        self.pool.mark_clean(self._k(key))

    @property
    def peak_bytes(self) -> int:
        return self.pool.peak_bytes


class _Job:
    """Everything one submission carries through the pipeline."""

    __slots__ = ("key", "program", "params", "inputs", "memory_cap_bytes",
                 "plan", "plan_exact", "checkpoint", "resume",
                 "admission_timeout", "workers", "prefetch_depth",
                 "token", "retry", "t_submit")

    def __init__(self, **kw):
        for f in self.__slots__:
            setattr(self, f, kw[f])


class JobResult:
    """What a completed job hands back through its future."""

    __slots__ = ("job", "outputs", "report", "plan", "cache_hit",
                 "optimize_seconds", "admission_wait_seconds", "attempts")

    def __init__(self, job: str, outputs: dict, report: ExecutionReport,
                 plan: Plan, cache_hit: bool, optimize_seconds: float,
                 admission_wait_seconds: float, attempts: int = 1):
        self.job = job
        self.outputs = outputs
        self.report = report
        self.plan = plan
        self.cache_hit = cache_hit
        self.optimize_seconds = optimize_seconds
        self.admission_wait_seconds = admission_wait_seconds
        # Execution attempts this result took (1 = no retries needed).
        self.attempts = attempts

    def __repr__(self) -> str:
        return (f"JobResult({self.job}, plan #{self.plan.index}, "
                f"cache_hit={self.cache_hit}, "
                f"read={self.report.io.read_bytes}B, "
                f"attempts={self.attempts}, "
                f"waited {self.admission_wait_seconds:.3f}s)")


class JobHandle(Future):
    """The future :meth:`ArrayService.submit` returns, plus cancellation.

    :meth:`cancel` is *cooperative*: it flags the job's
    :class:`~repro.cancel.CancelToken` and returns — the job observes the
    flag at its next checkpoint and the future then resolves with a typed
    :class:`~repro.exceptions.JobCancelled`.  The stdlib CANCELLED state
    is never used, so ``result()`` always yields either a
    :class:`JobResult` or a :class:`~repro.exceptions.ReproError` —
    chaos-harness invariant: every failure is typed.
    """

    def __init__(self, token: CancelToken):
        super().__init__()
        self.token = token

    def cancel(self, reason: str = "cancelled by caller") -> bool:
        """Request cooperative cancellation; False if already finished."""
        if self.done():
            return False
        self.token.cancel(reason)
        return True


class _Ticket:
    __slots__ = ("need",)

    def __init__(self, need: int):
        self.need = need


class ArrayService:
    """Concurrent multi-query front end over one disk and one buffer pool.

    ``memory_cap_bytes`` is the *global* budget: it caps the shared buffer
    pool and is the pie admission control slices.  ``workers`` bounds
    execution concurrency; ``max_pending`` (when set) bounds how many jobs
    may be in flight — submitted but unfinished — before :meth:`submit`
    raises :class:`~repro.exceptions.ServiceQueueFull`.

    Use as a context manager, or call :meth:`shutdown`.
    """

    def __init__(self, workdir, memory_cap_bytes: int,
                 workers: int = 4,
                 io_model: IOModel | None = None,
                 plan_cache: "PlanCache | str | Path | None" = None,
                 max_pending: int | None = None,
                 admission_timeout: float | None = None,
                 faults: "FaultInjector | int | None" = None,
                 retry: RetryPolicy | None = None,
                 atomic_writes: bool | None = None,
                 max_set_size: int | None = None,
                 max_candidates: int | None = None,
                 prefetch_depth: int = 0,
                 degrade: "DegradePolicy | bool | None" = None,
                 job_timeout: float | None = None,
                 job_retry: "JobRetryPolicy | int | None" = None,
                 store_format: "str | Mapping[str, str]" = "daf",
                 shards: int = 1,
                 stripe_bytes: int | None = None,
                 io_pace: float = 0.0,
                 pace_channels: int | None = None,
                 backend: str = "threads"):
        """Scale-out knobs (see docs/service.md "Scaling out"):

        * ``shards`` — stripe the service disk across N independent
          :class:`~repro.storage.sharding.ShardedDisk` shards (1 keeps the
          plain single disk); ``stripe_bytes`` sets the stripe unit;
        * ``io_pace`` / ``pace_channels`` — wall-clock pacing of counted
          I/O and the per-disk cap on concurrent paced transfers (1 models
          one device channel per shard, which is what makes shard counts
          show up in throughput);
        * ``backend`` — ``"threads"`` (shared pool + disk, the default) or
          ``"procs"`` (each admitted job executes in a worker process with
          a private sharded disk; see :mod:`repro.service.workers`).
        """
        if memory_cap_bytes <= 0:
            raise ServiceError("memory_cap_bytes must be positive")
        if workers < 1:
            raise ServiceError("workers must be >= 1")
        if prefetch_depth < 0:
            raise ServiceError("prefetch_depth must be >= 0")
        if backend not in ("threads", "procs"):
            raise ServiceError(
                f"unknown backend {backend!r} (known: threads, procs)")
        if shards < 1:
            raise ServiceError("shards must be >= 1")
        self.workdir = Path(workdir)
        self.memory_cap_bytes = int(memory_cap_bytes)
        self.io_model = io_model or IOModel()
        self.backend = backend
        self.shards = int(shards)
        self.stripe_bytes = stripe_bytes
        self.io_pace = float(io_pace)
        self.pace_channels = pace_channels
        injector = FaultInjector.transient(seed=faults) \
            if isinstance(faults, int) else faults
        self._fault_injector = injector
        self._retry = retry
        if atomic_writes is None:
            atomic_writes = injector is not None
        disk_kw: dict = {}
        if stripe_bytes is not None:
            disk_kw["stripe_bytes"] = stripe_bytes
        self.disk = make_disk(self.workdir, self.shards,
                              io_model=self.io_model, pace=io_pace,
                              pace_channels=pace_channels,
                              fault_injector=injector, retry=retry,
                              atomic_writes=atomic_writes, **disk_kw)
        if atomic_writes:
            # A previous service process may have died mid-write; roll torn
            # regions back before any job opens a store.
            self.disk.recover()
        self.pool = SharedBufferPool(self.memory_cap_bytes)
        if isinstance(plan_cache, (str, Path)):
            plan_cache = PlanCache(plan_cache)
        self.plan_cache = plan_cache
        self.max_pending = max_pending
        self.admission_timeout = admission_timeout
        self.max_set_size = max_set_size
        self.max_candidates = max_candidates
        self.prefetch_depth = int(prefetch_depth)
        self.job_timeout = job_timeout
        if isinstance(job_retry, int):
            job_retry = JobRetryPolicy(max_attempts=job_retry)
        self.job_retry = job_retry
        # Private (intermediate/output) store layout: "daf" or "labtree",
        # either service-wide or per logical array name ({"C": "labtree"},
        # with an optional "default" fallback key).  INPUT datasets stay DAF:
        # the content-addressed catalog is shared across formats and its
        # dense run-batched reads are what prefetch banks on.
        if isinstance(store_format, str):
            store_format = {"default": store_format}
        self.store_format = {str(k): str(v) for k, v in store_format.items()}
        for fmt in self.store_format.values():
            if fmt not in _STORE_FACTORIES:
                raise ServiceError(f"unknown store format {fmt!r} "
                                   f"(known: {sorted(_STORE_FACTORIES)})")
        self.stats = ServiceStats()

        self._executor = ThreadPoolExecutor(workers,
                                            thread_name_prefix="repro-svc")
        # Process backend: driver threads above still run the full pipeline
        # (plan, admit, retry, accounting); only the admitted execution is
        # dispatched here.  Sized with the thread pool so every driver can
        # have a worker.
        self._workers = ProcessPoolExecutor(max_workers=workers) \
            if backend == "procs" else None
        self._adm = threading.Condition()
        self._adm_queue: deque[_Ticket] = deque()
        self._admitted = 0
        self._pending = 0
        self._lock = threading.Lock()  # job naming + dataset catalog
        self._job_seq = 0
        self._active: set[str] = set()
        self._tokens: dict[str, CancelToken] = {}
        self._datasets: dict[str, DAFMatrix] = {}
        self._closed = False
        if degrade is True:
            degrade = DegradePolicy()
        self.health = HealthController(self, degrade or None)

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "ArrayService":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, wait: bool = True, cancel_running: bool = False) -> None:
        """Stop accepting jobs; optionally wait for in-flight ones.

        Jobs parked in the admission queue are woken *immediately* and
        fail with :class:`~repro.exceptions.ServiceClosed` — shutdown
        never hangs on a queue that can no longer drain, and a waiter
        never sleeps out its ``admission_timeout`` first.

        ``cancel_running=True`` additionally cancels every in-flight job's
        token: running jobs fail with
        :class:`~repro.exceptions.JobCancelled` at their next checkpoint
        (and any retry backoff sleeps are cut short), so shutdown bounds
        on the current instance, not the full remaining plan.
        """
        with self._adm:
            self._closed = True
            self._adm.notify_all()
        if cancel_running:
            with self._lock:
                tokens = list(self._tokens.values())
            for token in tokens:
                token.cancel("service shutting down")
        self._executor.shutdown(wait=wait)
        if self._workers is not None:
            self._workers.shutdown(wait=wait)
        for store in self._datasets.values():
            store.close()
        self.disk.close()

    def close(self, cancel_running: bool = False) -> None:
        """Synonym for ``shutdown(wait=True)``."""
        self.shutdown(wait=True, cancel_running=cancel_running)

    # -- submission ---------------------------------------------------------

    def submit(self, program: Program, params: Mapping[str, int],
               inputs: Mapping[str, np.ndarray], *,
               name: str | None = None,
               memory_cap_bytes: int | None = None,
               plan: Plan | None = None,
               plan_exact: bool = False,
               checkpoint: bool = False,
               resume: bool = False,
               admission_timeout: "float | None" = _UNSET,
               workers: int | None = None,
               prefetch_depth: int | None = None,
               timeout: "float | None" = _UNSET,
               deadline: float | None = None,
               retry: "JobRetryPolicy | int | None" = _UNSET
               ) -> "JobHandle":
        """Queue one job; returns a :class:`JobHandle` (a Future of
        :class:`JobResult`).

        ``memory_cap_bytes`` caps *plan selection* for this job (default:
        the service's global cap); admission always checks the chosen
        plan's high-water mark against the global budget.  ``plan`` skips
        planning entirely.  ``name`` must be unique among in-flight jobs
        and is required stable for ``checkpoint``/``resume`` pairs.
        ``workers`` parallelizes this job's Apriori search (process pool).
        ``prefetch_depth`` overrides the service default; a job's staging
        budget (``depth`` × its largest block) is charged to admission on
        top of the plan's memory high-water mark, so staged bytes never
        eat into what other jobs were promised.

        Resilience knobs:

        * ``timeout`` — whole-job deadline, seconds from now (planning +
          admission wait + every execution attempt); ``deadline`` is the
          absolute :func:`time.monotonic` equivalent (the earlier of the
          two wins).  Expiry surfaces as
          :class:`~repro.exceptions.DeadlineExceeded` from the future.
        * ``retry`` — a :class:`~repro.service.JobRetryPolicy` (or an int,
          shorthand for ``JobRetryPolicy(max_attempts=N)``): transient
          storage failures re-execute through the checkpoint journal,
          resuming from the last consistent instance.  Attaching a policy
          forces ``checkpoint=True``.

        Both default to the service-level ``job_timeout`` / ``job_retry``;
        pass ``None`` explicitly to opt a job out.
        """
        # Overload shedding happens before any state is reserved — and
        # before self._lock, because the health controller reads _pending
        # under that same lock.
        if self.health.should_shed():
            self.stats.jobs_shed += 1
            raise ServiceOverloaded(
                f"service is shedding load: {self.health.backlog()} jobs "
                f"in flight (policy sheds at "
                f"{self.health.policy.shed_backlog})")
        if retry is _UNSET:
            retry = self.job_retry
        elif isinstance(retry, int):
            retry = JobRetryPolicy(max_attempts=retry)
        if timeout is _UNSET:
            timeout = self.job_timeout
        dl = deadline
        if timeout is not None:
            t = time.monotonic() + timeout
            dl = t if dl is None else min(dl, t)
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shut down")
            if self.max_pending is not None and \
                    self._pending >= self.max_pending:
                raise ServiceQueueFull(
                    f"{self._pending} jobs already pending "
                    f"(max_pending={self.max_pending})")
            if name is None:
                self._job_seq += 1
                name = f"j{self._job_seq}"
            if name in self._active:
                raise ServiceError(f"job name {name!r} already in flight")
            self._active.add(name)
            self._pending += 1
            token = CancelToken(deadline=dl)
            self._tokens[name] = token
        self.stats.jobs_submitted += 1
        adm_timeout = self.admission_timeout if admission_timeout is _UNSET \
            else admission_timeout
        depth = self.prefetch_depth if prefetch_depth is None \
            else int(prefetch_depth)
        job = _Job(key=name, program=program, params=dict(params),
                   inputs=dict(inputs), memory_cap_bytes=memory_cap_bytes,
                   plan=plan, plan_exact=plan_exact,
                   # A retry policy needs the journal from attempt one:
                   # that is what makes a retry a *resume*.
                   checkpoint=checkpoint or retry is not None,
                   resume=resume, admission_timeout=adm_timeout,
                   workers=workers, prefetch_depth=depth,
                   token=token, retry=retry, t_submit=time.monotonic())
        handle = JobHandle(token)
        try:
            self._executor.submit(self._drive, job, handle)
        except BaseException as err:
            with self._lock:
                self._active.discard(name)
                self._pending -= 1
                self._tokens.pop(name, None)
            if isinstance(err, RuntimeError):  # pool already shut down
                raise ServiceClosed("service is shut down") from err
            raise
        return handle

    def _drive(self, job: _Job, handle: JobHandle) -> None:
        """Worker-thread entry: run the job, complete its handle."""
        handle.set_running_or_notify_cancel()
        try:
            result = self._run_job(job)
        except BaseException as err:
            handle.set_exception(err)
        else:
            handle.set_result(result)

    def run(self, program: Program, params: Mapping[str, int],
            inputs: Mapping[str, np.ndarray], **kw) -> JobResult:
        """Submit one job and wait for its result."""
        return self.submit(program, params, inputs, **kw).result()

    # -- admission control --------------------------------------------------

    def _wake_admission(self) -> None:
        with self._adm:
            self._adm.notify_all()

    def _admit(self, need: int, timeout: float | None,
               cancel: "CancelToken | None" = None) -> None:
        """Block until ``need`` bytes of the global budget are ours (FIFO).

        A waiter wakes promptly on service close and on cancellation of
        its token — never sleeping out its full ``timeout`` first — and a
        waiter that leaves (timeout, cancel, deadline) removes its ticket
        and notifies, so the budget it was next in line for is re-offered
        to the new queue head immediately.
        """
        if need > self.memory_cap_bytes:
            raise AdmissionRejected(
                f"plan needs {need} bytes of buffer memory; the service "
                f"budget is {self.memory_cap_bytes} — this job can never "
                f"be admitted")
        ticket = _Ticket(need)
        deadline = time.monotonic() + timeout if timeout is not None else None
        if cancel is not None:
            cancel.subscribe(self._wake_admission)
        with self._adm:
            self._adm_queue.append(ticket)
            self.stats.queue_depth = len(self._adm_queue)
            try:
                while True:
                    if self._closed:
                        raise ServiceClosed(
                            "service shut down while awaiting admission")
                    if cancel is not None:
                        cancel.check()
                    if self._adm_queue[0] is ticket and \
                            self._admitted + need <= self.memory_cap_bytes:
                        self._adm_queue.popleft()
                        self._admitted += need
                        self.stats.queue_depth = len(self._adm_queue)
                        self.stats.admitted_bytes = self._admitted
                        # A successor may fit in what is left.
                        self._adm.notify_all()
                        return
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise AdmissionTimeout(
                                f"no {need} bytes of budget freed within "
                                f"{timeout:.3f}s (admitted: "
                                f"{self._admitted}/{self.memory_cap_bytes})")
                    if cancel is not None:
                        # Bound the wait by the job deadline too, so expiry
                        # is noticed the moment it happens.
                        rem = cancel.remaining()
                        if rem is not None:
                            remaining = rem if remaining is None \
                                else min(remaining, rem)
                    self._adm.wait(remaining)
            except BaseException:
                self._adm_queue.remove(ticket)
                self.stats.queue_depth = len(self._adm_queue)
                self._adm.notify_all()
                raise

    def _release_admission(self, need: int) -> None:
        with self._adm:
            self._admitted -= need
            self.stats.admitted_bytes = self._admitted
            self._adm.notify_all()

    # -- storage namespace --------------------------------------------------

    @staticmethod
    def _dataset_digest(data: np.ndarray, block_shape: tuple,
                        dtype: np.dtype) -> str:
        canon = np.ascontiguousarray(data, dtype=dtype)
        h = hashlib.sha256()
        h.update(repr((canon.dtype.str, canon.shape,
                       tuple(block_shape))).encode())
        h.update(canon.tobytes())
        return h.hexdigest()[:16]

    def _format_for(self, lname: str) -> tuple[type, str]:
        fmt = self.store_format.get(lname,
                                    self.store_format.get("default", "daf"))
        return _STORE_FACTORIES[fmt]

    def _setup_stores(self, job: _Job, resuming: bool
                      ) -> tuple[dict[str, DAFMatrix], dict[str, str]]:
        """Open/create every array's store; returns (stores, name map).

        INPUT arrays land in the content-addressed shared catalog — one
        store per distinct (content, geometry), written once, never per
        job.  Everything else is private under ``<job>__<array>`` in the
        layout ``store_format`` picks for that array: DAF preallocates its
        dense extent up front, LAB-tree materializes blocks on first write
        (no setup traffic; unwritten blocks occupy no disk).
        """
        stores: dict[str, DAFMatrix] = {}
        names: dict[str, str] = {}
        for lname, arr in job.program.arrays.items():
            dtype = {8: np.float64, 4: np.float32}[arr.dtype_bytes]
            grid = arr.num_blocks(job.params)
            if arr.kind is ArrayKind.INPUT:
                if lname not in job.inputs:
                    raise ServiceError(f"missing input matrix {lname!r}")
                digest = self._dataset_digest(job.inputs[lname],
                                              arr.block_shape, dtype)
                gname = f"ds_{digest}"
                with self._lock:
                    store = self._datasets.get(gname)
                    if store is None:
                        if self.disk.exists(gname + ".daf"):
                            store = DAFMatrix.open(self.disk, gname)
                        else:
                            store = DAFMatrix.create(self.disk, gname, grid,
                                                     arr.block_shape, dtype)
                            store.write_matrix(job.inputs[lname], count=False)
                        self._datasets[gname] = store
            else:
                factory, marker = self._format_for(lname)
                gname = f"{job.key}__{lname}"
                if resuming and self.disk.exists(gname + marker):
                    store = factory.open(self.disk, gname)
                else:
                    store = factory.create(self.disk, gname, grid,
                                           arr.block_shape, dtype)
                    if factory is DAFMatrix:
                        store.preallocate()
            stores[lname] = store
            names[lname] = gname
        return stores, names

    # -- the job pipeline ---------------------------------------------------

    def _plan_job(self, job: _Job) -> tuple[Plan, bool, float]:
        if job.plan is not None:
            return job.plan, False, 0.0
        cap = job.memory_cap_bytes if job.memory_cap_bytes is not None \
            else self.memory_cap_bytes
        opt = Optimizer(job.program, self.io_model)
        if self.health.plan_cache_only():
            return self._plan_degraded(job, opt, cap)
        result = opt.optimize(job.params, memory_cap_bytes=cap,
                              max_set_size=self.max_set_size,
                              max_candidates=self.max_candidates,
                              workers=job.workers,
                              plan_cache=self.plan_cache)
        try:
            plan = result.best(cap)
        except OptimizationError as err:
            raise AdmissionRejected(
                f"no plan for {job.program.name} fits {cap} bytes") from err
        return plan, result.cache_hit, result.seconds

    def _plan_degraded(self, job: _Job, opt: Optimizer, cap: int
                       ) -> tuple[Plan, bool, float]:
        """Plan-cache-only planning under queue pressure.

        A cache hit serves the previously-won plan as usual; a miss must
        NOT start a cold Apriori search while jobs are stacking up —
        ``max_set_size=0`` costs only the original (share-nothing) plan,
        which is cheap and always legal.  The degraded plan is not stored
        to the cache: the next uncontended submission of this template
        should still pay for (and cache) the real search.
        """
        t0 = time.monotonic()
        self.stats.degraded_plans += 1
        if self.plan_cache is not None:
            cached = self.plan_cache.load(
                job.program, job.params, cap, self.io_model,
                max_set_size=self.max_set_size,
                max_candidates=self.max_candidates,
                dead_write_elimination=opt.dead_write_elimination,
                block_bytes=None)
            if cached is not None and cached.fits(cap):
                obs_trace.instant("service.degraded_plan", "service",
                                  job=job.key, source="cache")
                return cached, True, time.monotonic() - t0
        obs_trace.instant("service.degraded_plan", "service",
                          job=job.key, source="original")
        result = opt.optimize(job.params, memory_cap_bytes=cap,
                              max_set_size=0)
        try:
            plan = result.best(cap)
        except OptimizationError as err:
            raise AdmissionRejected(
                f"no plan for {job.program.name} fits {cap} bytes") from err
        return plan, False, time.monotonic() - t0

    def _run_job(self, job: _Job) -> JobResult:
        try:
            attempt = 1
            while True:
                try:
                    job.token.check()
                    with obs_trace.span("service.job", "service", job=job.key,
                                        program=job.program.name,
                                        attempt=attempt) as sp:
                        result = self._execute_admitted(job, sp)
                    result.attempts = attempt
                    self.stats.jobs_completed += 1
                    # Whole-job latency: submit → result.  p50/p99 SLO
                    # reporting quantile-extracts this histogram.
                    self.stats.job_seconds.observe(
                        time.monotonic() - job.t_submit)
                    return result
                except BaseException as err:
                    if not self._should_retry(job, attempt, err):
                        raise
                    self.stats.retries_attempted += 1
                    obs_trace.instant("service.retry", "service", job=job.key,
                                      attempt=attempt,
                                      error=type(err).__name__)
                    self._retry_backoff(job, attempt)
                    # The failed attempt may have died mid-write: roll this
                    # job's stale undo records back before stores reopen.
                    # Scoped to the job's private files — concurrent jobs
                    # have genuinely in-flight undos of their own.
                    if self.disk.atomic_writes:
                        prefix = f"{job.key}__"
                        self.disk.recover(
                            match=lambda n: n.startswith(prefix))
                    # Re-enter through the journal: only unfinished
                    # instances re-execute.
                    job.resume = True
                    attempt += 1
        except JobCancelled as err:
            if isinstance(err, DeadlineExceeded):
                self.stats.jobs_deadline_exceeded += 1
            else:
                self.stats.jobs_cancelled += 1
            raise
        except (AdmissionRejected, AdmissionTimeout):
            self.stats.jobs_rejected += 1
            raise
        except ServiceClosed:
            raise
        except BaseException:
            self.stats.jobs_failed += 1
            raise
        finally:
            with self._lock:
                self._active.discard(job.key)
                self._pending -= 1
                self._tokens.pop(job.key, None)

    def _should_retry(self, job: _Job, attempt: int,
                      err: BaseException) -> bool:
        if job.retry is None or isinstance(err, ServiceError):
            # ServiceError covers cancellation, deadlines, admission
            # failures and shutdown — none of which retrying can fix.
            return False
        if job.retry.classify(err) != TRANSIENT:
            return False
        if attempt >= job.retry.max_attempts:
            self.stats.retries_exhausted += 1
            return False
        return True

    def _retry_backoff(self, job: _Job, attempt: int) -> None:
        """Inter-attempt backoff, interruptible by cancel and close."""
        delay = job.retry.delay(attempt)
        rem = job.token.remaining()
        if rem is not None:
            delay = min(delay, max(0.0, rem))
        if delay > 0:
            job.token.event.wait(delay)
        job.token.check()
        with self._adm:
            if self._closed:
                raise ServiceClosed("service shut down during retry backoff")

    def _execute_admitted(self, job: _Job, sp) -> JobResult:
        with obs_trace.span("service.plan", "service", job=job.key):
            plan, cache_hit, opt_seconds = self._plan_job(job)
        # Pin the plan on the job so a retry replays the *same* plan: the
        # checkpoint journal is keyed by plan fingerprint, and resume only
        # works if attempt N+1 fingerprints identically to attempt N.
        job.plan = plan
        # Under memory pressure the health controller scales prefetch
        # read-ahead toward zero so staged blocks stop competing with
        # computation for the shared budget.
        depth = self.health.effective_prefetch_depth(job.prefetch_depth)
        if depth != job.prefetch_depth:
            self.stats.prefetch_throttled += 1
            obs_trace.instant("service.prefetch_throttled", "service",
                              job=job.key, requested=job.prefetch_depth,
                              effective=depth)
        # The prefetch staging budget is real memory the job will occupy in
        # the shared pool, so admission charges for it alongside the plan's
        # high-water mark — staged blocks never eat other jobs' promises.
        prefetch_budget = 0
        if depth:
            prefetch_budget = depth * max(
                arr.block_bytes for arr in job.program.arrays.values())
        need = plan.cost.memory_bytes + prefetch_budget
        sp["plan"] = plan.index
        sp["cache_hit"] = cache_hit
        sp["need_bytes"] = need

        t0 = time.monotonic()
        with obs_trace.span("service.admission", "service", job=job.key,
                            need_bytes=need):
            self._admit(need, job.admission_timeout, cancel=job.token)
        wait = time.monotonic() - t0
        self.stats.active_jobs += 1
        if self._workers is not None:
            try:
                return self._execute_in_worker(job, sp, plan, cache_hit,
                                               opt_seconds, wait, depth,
                                               prefetch_budget)
            finally:
                self.stats.active_jobs -= 1
                self._release_admission(need)
        private_prefix = f"{job.key}__"
        try:
            exec_plan = build_executable_plan(job.program, job.params, plan)
            jobdir = self.workdir / "jobs" / job.key
            journal = None
            resuming = False
            if job.checkpoint or job.resume:
                jobdir.mkdir(parents=True, exist_ok=True)
                jpath = jobdir / "execution.journal"
                journal = ExecutionJournal(jpath, plan_fingerprint(exec_plan))
                resuming = job.resume and jpath.exists()
            stores, names = self._setup_stores(job, resuming)
            counted = {n: _CountingStore(s, breaker=self.health.breaker_for(
                           names[n])) for n, s in stores.items()}
            view = JobPoolView(self.pool, names, owner=job.key)

            with obs_trace.span("service.execute", "service", job=job.key):
                report = execute_plan(exec_plan, counted, self.disk,
                                      plan_exact=job.plan_exact,
                                      journal=journal, resume=resuming,
                                      pool=view,
                                      prefetch_depth=depth,
                                      prefetch_budget_bytes=prefetch_budget
                                      if depth else None,
                                      cancel=job.token)
            outputs = {n: stores[n].read_matrix(count=False)
                       for n, arr in job.program.arrays.items()
                       if arr.kind is ArrayKind.OUTPUT}

            # The in-executor report drew on the *shared* disk counters —
            # polluted by whatever ran concurrently.  Re-attribute from the
            # per-job proxies (assignable slots on the report).
            io = IOStats()
            io.add(read_bytes=sum(c.read_bytes for c in counted.values()),
                   write_bytes=sum(c.write_bytes for c in counted.values()),
                   read_ops=sum(c.read_ops for c in counted.values()),
                   write_ops=sum(c.write_ops for c in counted.values()))
            report.io = io
            report.simulated_io_seconds = self.io_model.seconds(
                io.read_bytes, io.write_bytes)
            if obs_trace.CURRENT is not None:
                # Enrich the job span's end event with everything the
                # workload advisor needs to rebuild a profile offline from
                # the JSONL trace alone (repro.advisor.workload).
                cap = job.memory_cap_bytes \
                    if job.memory_cap_bytes is not None \
                    else self.memory_cap_bytes
                sp["fingerprint"] = optimization_fingerprint(
                    job.program, job.params, cap, self.io_model,
                    max_set_size=self.max_set_size,
                    max_candidates=self.max_candidates)
                sp["params"] = dict(job.params)
                sp["arrays"] = dict(names)
                sp["plan_exact"] = job.plan_exact
                sp["prefetch_depth"] = depth
                sp["memory_bytes"] = plan.cost.memory_bytes
                sp["predicted_read_bytes"] = plan.cost.read_bytes
                sp["predicted_write_bytes"] = plan.cost.write_bytes
                sp["read_bytes"] = io.read_bytes
                sp["write_bytes"] = io.write_bytes
                sp["read_ops"] = io.read_ops
                sp["write_ops"] = io.write_ops
                sp["pool_hits"] = report.pool_hits
                sp["pool_misses"] = report.pool_misses
                sp["optimize_seconds"] = opt_seconds
                sp["admission_wait_seconds"] = wait
            return JobResult(job.key, outputs, report, plan, cache_hit,
                             opt_seconds, wait)
        finally:
            # Crash-or-finish sweep: drop any pins the job still holds,
            # then evict its private blocks so the budget it vacates is
            # actually reusable.  Shared dataset blocks stay — they are the
            # inter-query sharing capital.
            leaked = self.pool.release_owner(job.key)
            if leaked:
                self.stats.pins_reclaimed += leaked
                obs_trace.instant("service.pins_reclaimed", "service",
                                  job=job.key, pins=leaked)
            self.pool.drop_matching(
                lambda k: isinstance(k[0], str)
                and k[0].startswith(private_prefix), force=True)
            self.stats.active_jobs -= 1
            self._release_admission(need)

    # -- process-backend execution -------------------------------------------

    def _execute_in_worker(self, job: _Job, sp, plan: Plan, cache_hit: bool,
                           opt_seconds: float, wait: float, depth: int,
                           prefetch_budget: int) -> JobResult:
        """Dispatch one admitted job to the worker process pool.

        The spec carries the pinned plan, so the worker never re-plans; a
        retry attempt re-enters here with ``job.resume=True`` and the
        worker resumes through the journal in the job directory, exactly
        like the thread backend.  Cancellation is coarser than threads: a
        cancel flagged mid-attempt lands only if the attempt fails —
        deadlines, though, are enforced *inside* the worker by its own
        token, so an expired job dies at its next instance boundary.
        """
        job.token.check()
        jobdir = self.workdir / "jobs" / job.key
        jobdir.mkdir(parents=True, exist_ok=True)
        formats = {
            lname: ("daf" if arr.kind is ArrayKind.INPUT
                    else self.store_format.get(
                        lname, self.store_format.get("default", "daf")))
            for lname, arr in job.program.arrays.items()}
        registry = obs_metrics.CURRENT
        spec = WorkerJobSpec(
            job=job.key, program=job.program, params=job.params,
            inputs=job.inputs, plan=plan, plan_exact=job.plan_exact,
            jobdir=str(jobdir), store_formats=formats,
            shards=self.shards, stripe_bytes=self.stripe_bytes,
            io_model=self.io_model, pace=self.io_pace,
            pace_channels=self.pace_channels,
            fault_injector=self._fault_injector, retry=self._retry,
            atomic_writes=self.disk.atomic_writes,
            checkpoint=job.checkpoint, resume=job.resume,
            prefetch_depth=depth,
            prefetch_budget_bytes=prefetch_budget if depth else None,
            # The worker's private pool gets the full service budget the
            # way an isolated run would; admission already charged this
            # job's plan high-water mark against the global pie.
            pool_cap_bytes=self.memory_cap_bytes,
            deadline_remaining=job.token.remaining(),
            collect_metrics=registry is not None)
        with obs_trace.span("service.execute", "service", job=job.key,
                            backend="procs"):
            try:
                outcome = self._workers.submit(run_worker_job, spec).result()
            except BrokenExecutor as err:
                raise ServiceError(
                    f"worker process pool broke while running {job.key!r} "
                    f"(worker crash or OOM)") from err
        report = outcome.to_report(self.io_model)

        # Merge the worker's accounting home.  With metrics installed the
        # whole worker registry merges — its disk/pool series carry the
        # same (name, labels) the thread backend increments directly, so
        # process-backend exposition totals match.  Without metrics, the
        # logical disk traffic still folds into the service disk's stats.
        if outcome.registry is not None and registry is not None:
            registry.merge(outcome.registry)
        else:
            self.disk.stats.merge(outcome.disk_stats)

        if obs_trace.CURRENT is not None:
            cap = job.memory_cap_bytes if job.memory_cap_bytes is not None \
                else self.memory_cap_bytes
            sp["fingerprint"] = optimization_fingerprint(
                job.program, job.params, cap, self.io_model,
                max_set_size=self.max_set_size,
                max_candidates=self.max_candidates)
            sp["params"] = dict(job.params)
            sp["arrays"] = {n: n for n in job.program.arrays}
            sp["plan_exact"] = job.plan_exact
            sp["prefetch_depth"] = depth
            sp["memory_bytes"] = plan.cost.memory_bytes
            sp["predicted_read_bytes"] = plan.cost.read_bytes
            sp["predicted_write_bytes"] = plan.cost.write_bytes
            sp["read_bytes"] = report.io.read_bytes
            sp["write_bytes"] = report.io.write_bytes
            sp["read_ops"] = report.io.read_ops
            sp["write_ops"] = report.io.write_ops
            sp["pool_hits"] = report.pool_hits
            sp["pool_misses"] = report.pool_misses
            sp["optimize_seconds"] = opt_seconds
            sp["admission_wait_seconds"] = wait
            sp["backend"] = "procs"
        # A 1000-job run must not accumulate 1000 private stores; failed
        # attempts keep theirs for resume-retry.
        cleanup_jobdir(jobdir)
        return JobResult(job.key, outcome.outputs, report, plan, cache_hit,
                         opt_seconds, wait)

    # -- introspection ------------------------------------------------------

    def queue_depth(self) -> int:
        with self._adm:
            return len(self._adm_queue)

    def admitted_bytes(self) -> int:
        with self._adm:
            return self._admitted

    def __repr__(self) -> str:
        return (f"ArrayService({self.workdir}, "
                f"cap={self.memory_cap_bytes}B, {self.stats!r})")
