"""Deprecated shim: the block-size advisor moved to
:mod:`repro.advisor.blocksize`.

This module re-exports :class:`BlockSizeAdvisor` / :class:`BlockSizeChoice`
for backward compatibility and emits a :class:`DeprecationWarning` on
import.  New code should use :mod:`repro.advisor` — either the identical
single-program :class:`~repro.advisor.BlockSizeAdvisor`, or the
workload-level :class:`~repro.advisor.BlockGeometryAnalyzer` that
generalizes it (rescaling block geometry at fixed logical size and
validating the prediction with an applied re-run).
"""

from __future__ import annotations

import warnings

from ..advisor.blocksize import BlockSizeAdvisor, BlockSizeChoice

__all__ = ["BlockSizeAdvisor", "BlockSizeChoice"]

warnings.warn(
    "repro.extensions.blocksize moved to repro.advisor.blocksize; "
    "import BlockSizeAdvisor from repro.advisor instead",
    DeprecationWarning, stacklevel=2)
