"""Extensions beyond the paper's evaluated system (its Section 7 roadmap).

The block-size advisor that used to live here grew into the full
:mod:`repro.advisor` subsystem; the re-exports below are kept for
backward compatibility (importing the ``blocksize`` submodule itself
raises a :class:`DeprecationWarning`).
"""

from ..advisor.blocksize import BlockSizeAdvisor, BlockSizeChoice

__all__ = ["BlockSizeAdvisor", "BlockSizeChoice"]
