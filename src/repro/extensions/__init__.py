"""Extensions beyond the paper's evaluated system (its Section 7 roadmap)."""

from .blocksize import BlockSizeAdvisor, BlockSizeChoice

__all__ = ["BlockSizeAdvisor", "BlockSizeChoice"]
