"""Cooperative cancellation and deadlines.

A :class:`CancelToken` travels with one unit of work (a service job, a
``run_program`` call) and is *polled* at well-defined checkpoints — the
executor's instance loop, the prefetch readers' claim loop, admission
waits, retry backoffs.  Nothing is killed preemptively: the holder of the
token raises a typed :class:`~repro.exceptions.JobCancelled` /
:class:`~repro.exceptions.DeadlineExceeded` at its next checkpoint, after
which the normal ``finally`` unwinding releases pins, staged blocks and
admission budget exactly as any other failure would.

Two wake mechanisms compose:

* ``token.event`` is a :class:`threading.Event` set by :meth:`cancel` —
  anything sleeping (retry backoff, inter-attempt backoff) waits on it
  instead of ``time.sleep`` and wakes immediately;
* :meth:`subscribe` registers callbacks run on cancellation — condition
  variables (admission queue, prefetch pipeline) get a ``notify_all`` so
  waiters re-check their predicates promptly.

Deadlines are *passive*: no timer thread fires.  Checkpoints call
:meth:`check`, and anything that blocks bounds its wait with
:meth:`remaining` so it wakes exactly when the deadline passes.

The thread-local *interrupt* channel lets deep storage code —
:meth:`RetryPolicy.sleep <repro.storage.faults.RetryPolicy.sleep>` inside
``DiskFile`` retry loops — observe cancellation without threading a token
through every signature: the executor (and each prefetch reader thread)
installs the current token's event for the duration of the run.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from .exceptions import DeadlineExceeded, JobCancelled

__all__ = ["CancelToken", "current_interrupt", "interrupt_scope"]


class CancelToken:
    """One unit of work's cancellation flag plus optional deadline.

    ``deadline`` is absolute :func:`time.monotonic` seconds (or ``None``).
    Thread-safe; tokens are single-use and never reset.
    """

    __slots__ = ("event", "deadline", "reason", "_subs", "_lock")

    def __init__(self, deadline: float | None = None):
        self.event = threading.Event()
        self.deadline = deadline
        self.reason: str | None = None
        self._subs: list = []
        self._lock = threading.Lock()

    @property
    def cancelled(self) -> bool:
        return self.event.is_set()

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def cancel(self, reason: str = "cancelled") -> bool:
        """Set the flag; returns False if it was already set.

        Subscribers run on the calling thread, outside the token's lock.
        """
        with self._lock:
            if self.event.is_set():
                return False
            self.reason = reason
            self.event.set()
            subs = list(self._subs)
        for cb in subs:
            cb()
        return True

    def subscribe(self, cb) -> None:
        """Run ``cb()`` when (or immediately if) the token is cancelled."""
        with self._lock:
            fired = self.event.is_set()
            if not fired:
                self._subs.append(cb)
        if fired:
            cb()

    def remaining(self) -> float | None:
        """Seconds until the deadline (may be <= 0), or None if unbounded."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check(self) -> None:
        """The checkpoint: raise if cancelled or past the deadline."""
        if self.event.is_set():
            raise JobCancelled(self.reason or "cancelled")
        if self.expired():
            raise DeadlineExceeded(
                f"deadline exceeded by {-self.remaining():.3f}s")

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason!r}" if self.cancelled else "live"
        dl = "" if self.deadline is None else \
            f", deadline in {self.remaining():.3f}s"
        return f"CancelToken({state}{dl})"


_local = threading.local()


def current_interrupt() -> "threading.Event | None":
    """The interrupt event installed on this thread, if any."""
    return getattr(_local, "event", None)


def set_interrupt(event: "threading.Event | None") -> None:
    """Install ``event`` as this thread's interrupt (None clears).

    For threads whose whole lifetime serves one token (prefetch readers);
    longer-lived threads should use :func:`interrupt_scope`.
    """
    _local.event = event


@contextmanager
def interrupt_scope(event: "threading.Event | None"):
    """Install ``event`` as this thread's interrupt for the scope's duration."""
    prev = current_interrupt()
    _local.event = event
    try:
        yield
    finally:
        _local.event = prev
