"""Code generation, part 2: human-readable pseudo-C (the CLooG role).

Scans the concrete scheduled instance sequence and folds runs of
structurally identical iterations back into ``for`` loops, reproducing the
shape of the paper's generated listings (e.g. Figure 1(b)'s split loop
nests: a merged ``j == 0`` nest followed by the ``j >= 1`` nest).  Bodies
are printed with each statement's symbolic accesses plus the I/O action the
plan assigned (read / reuse / write / keep-in-memory).

This is a presentation aid — execution replays the
:class:`~repro.codegen.exec_plan.ExecutablePlan` directly — but it makes
optimizer output auditable the way the paper's listings are.
"""

from __future__ import annotations

from ..codegen.exec_plan import ExecutablePlan, IOAction, PlannedInstance

__all__ = ["render_c"]

_ACTION_COMMENT = {
    IOAction.READ: "read",
    IOAction.REUSE: "reuse (in memory)",
    IOAction.WRITE: "write",
    IOAction.WRITE_SKIP: "keep in memory",
}


def render_c(plan: ExecutablePlan) -> str:
    """Render the executable plan as pseudo-C with I/O annotations."""
    tree = _Tree()
    for inst in plan.instances:
        time = plan.schedule.time_vector(inst.stmt, inst.point, plan.params)
        tree.insert([int(t) for t in time], inst)
    lines: list[str] = [f"// plan for {plan.program.name}",
                        f"// realized: {plan.schedule.meta.get('realized', [])}"]
    _render(tree.root, 0, 0, lines)
    return "\n".join(lines)


class _Node:
    __slots__ = ("children", "leaf")

    def __init__(self):
        self.children: dict[int, _Node] = {}
        self.leaf: PlannedInstance | None = None


class _Tree:
    def __init__(self):
        self.root = _Node()

    def insert(self, time: list[int], inst: PlannedInstance) -> None:
        node = self.root
        for t in time:
            node = node.children.setdefault(t, _Node())
        node.leaf = inst


def _signature(node: _Node):
    if node.leaf is not None:
        inst = node.leaf
        accs = tuple((pa.access.array.name, pa.action.value)
                     for pa in inst.reads + ([inst.write] if inst.write else []))
        return ("leaf", inst.stmt.name, accs)
    return ("node", tuple(_signature(c) for _, c in sorted(node.children.items())))


def _render(node: _Node, depth: int, indent: int, lines: list[str]) -> None:
    pad = "  " * indent
    if node.leaf is not None:
        inst = node.leaf
        write = inst.write
        target = _access_str(write) if write else "(no write)"
        operands = " , ".join(_access_str(pa) for pa in inst.reads)
        lines.append(f"{pad}{target} = {inst.stmt.kernel}({operands}); // {inst.stmt.name}")
        for pa in inst.reads + ([write] if write else []):
            note = _ACTION_COMMENT[pa.action]
            pin = " [hold]" if pa.pin_after else ""
            lines.append(f"{pad}//   {pa.access.array.name}: {note}{pin}")
        return

    items = sorted(node.children.items())
    i = 0
    while i < len(items):
        key, child = items[i]
        sig = _signature(child)
        j = i
        while (j + 1 < len(items) and items[j + 1][0] == items[j][0] + 1
               and _signature(items[j + 1][1]) == sig):
            j += 1
        if j > i:
            lines.append(f"{pad}for (t{depth} = {key}; t{depth} <= {items[j][0]}; ++t{depth}) {{")
            _render(child, depth + 1, indent + 1, lines)
            lines.append(f"{pad}}}")
        else:
            if len(child.children) > 0 or child.leaf is None:
                lines.append(f"{pad}{{ // t{depth} = {key}")
                _render(child, depth + 1, indent + 1, lines)
                lines.append(f"{pad}}}")
            else:
                _render(child, depth + 1, indent, lines)
        i = j + 1


def _access_str(pa) -> str:
    subs = ",".join(str(s) for s in pa.access.subscripts)
    return f"{pa.access.array.name}[{subs}]"
