"""Code generation (Section 5.5): schedules -> executable plans + pseudo-C.

Public surface:

* :func:`build_executable_plan` / :class:`ExecutablePlan` — the I/O-annotated
  instance sequence the engine replays;
* :class:`IOAction` — per-access verdicts (READ / REUSE / WRITE / WRITE_SKIP);
* :func:`render_c` — human-readable loop-nest rendering of a schedule (the
  CLooG-style view used in the paper's listings).
"""

from .exec_plan import (ExecutablePlan, IOAction, PlannedAccess,
                        PlannedInstance, build_executable_plan)
from .source import render_c

__all__ = [
    "build_executable_plan",
    "ExecutablePlan",
    "IOAction",
    "PlannedAccess",
    "PlannedInstance",
    "render_c",
]
