"""Code generation, part 1: schedules -> executable plans (Section 5.5).

The paper converts the chosen schedule to C through CLooG and injects buffer
management code.  Our execution substrate is the Python engine, so code
generation produces an :class:`ExecutablePlan`: the statement instances in
scheduled order, each access annotated with the I/O action the plan's
realized sharing dictates —

* ``READ``        — fetch the block from disk,
* ``REUSE``       — the block is resident (realized W->R / R->R pair),
* ``WRITE``       — write the block through to disk,
* ``WRITE_SKIP``  — keep the block in memory only (overwritten later, or a
                    fully-shared intermediate whose write is elided),

plus pin/unpin directives implementing the residency intervals the cost
model assumed.  The engine replays this plan verbatim, which is what makes
the predicted-vs-actual comparison in the benchmarks meaningful.
"""

from __future__ import annotations

import enum
from typing import Mapping

from ..ir import Access, Program, Schedule
from ..optimizer.costing import PlanTrace, ScheduledEvent, trace_plan
from ..optimizer.plan import Plan

__all__ = ["IOAction", "PlannedAccess", "PlannedInstance", "ExecutablePlan",
           "build_executable_plan"]


class IOAction(enum.Enum):
    READ = "read"
    REUSE = "reuse"
    WRITE = "write"
    WRITE_SKIP = "write_skip"


class PlannedAccess:
    """One access of one instance, with its I/O action and pin directives."""

    __slots__ = ("access", "block", "action", "pin_after", "unpin_before")

    def __init__(self, access: Access, block: tuple[int, ...], action: IOAction):
        self.access = access
        self.block = block
        self.action = action
        # Residency management, filled in by the planner (counts, because
        # one event can open or close several holds):
        self.pin_after = 0      # holds opened by this access
        self.unpin_before = 0   # holds closed at this access

    @property
    def block_key(self) -> tuple:
        return (self.access.array.name, self.block)

    def __repr__(self) -> str:
        flags = "".join([f" +pin{self.pin_after}" if self.pin_after else "",
                         f" -pin{self.unpin_before}" if self.unpin_before else ""])
        return f"{self.action.value}:{self.access.array.name}{self.block}{flags}"


class PlannedInstance:
    """One statement instance in scheduled order."""

    __slots__ = ("stmt", "point", "reads", "write")

    def __init__(self, stmt, point, reads: list[PlannedAccess],
                 write: PlannedAccess | None):
        self.stmt = stmt
        self.point = point
        self.reads = reads
        self.write = write

    def __repr__(self) -> str:
        return f"PlannedInstance({self.stmt.name}@{self.point})"


class ExecutablePlan:
    """The fully ordered, I/O-annotated plan the engine executes."""

    __slots__ = ("program", "params", "schedule", "instances", "trace")

    def __init__(self, program: Program, params: Mapping[str, int],
                 schedule: Schedule, instances: list[PlannedInstance],
                 trace: PlanTrace):
        self.program = program
        self.params = dict(params)
        self.schedule = schedule
        self.instances = instances
        self.trace = trace

    def io_summary(self) -> dict[str, int]:
        counts = {a.value: 0 for a in IOAction}
        for inst in self.instances:
            for pa in inst.reads + ([inst.write] if inst.write else []):
                counts[pa.action.value] += 1
        return counts

    def __repr__(self) -> str:
        return (f"ExecutablePlan({self.program.name}, "
                f"{len(self.instances)} instances, {self.io_summary()})")


def build_executable_plan(program: Program, params: Mapping[str, int],
                          plan: Plan,
                          dead_write_elimination: bool = True) -> ExecutablePlan:
    """Lower an optimizer plan to an executable plan."""
    return _from_trace(program, params, plan.schedule,
                       trace_plan(program, params, plan.schedule, plan.realized,
                                  dead_write_elimination))


def _from_trace(program: Program, params: Mapping[str, int],
                schedule: Schedule, trace: PlanTrace) -> ExecutablePlan:
    # Group events back into statement instances (time without micro digit).
    groups: dict[tuple, list[ScheduledEvent]] = {}
    order: list[tuple] = []
    for ev in trace.events:
        key = (ev.access.statement.name, ev.point)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(ev)

    # Residency: for every held interval, the block must stay pinned from its
    # first to its last use.  Track, per block key, the set of event times
    # that open/close holds.
    hold_open: dict[tuple, list] = {}
    hold_close: dict[tuple, list] = {}
    for (lo, hi, block_key, _nbytes) in trace.held:
        hold_open.setdefault((block_key, lo), []).append(hi)
        hold_close.setdefault((block_key, hi), []).append(lo)

    instances: list[PlannedInstance] = []
    for key in order:
        events = groups[key]
        stmt = events[0].access.statement
        point = events[0].point
        reads: list[PlannedAccess] = []
        write: PlannedAccess | None = None
        for ev in events:
            if ev.is_write:
                action = (IOAction.WRITE_SKIP if (ev.saved or ev.elided)
                          else IOAction.WRITE)
            else:
                action = IOAction.REUSE if ev.saved else IOAction.READ
            pa = PlannedAccess(ev.access, ev.block, action)
            pa.pin_after = len(hold_open.get((ev.block_key, ev.time), ()))
            pa.unpin_before = len(hold_close.get((ev.block_key, ev.time), ()))
            if ev.is_write:
                write = pa
            else:
                reads.append(pa)
        instances.append(PlannedInstance(stmt, point, reads, write))
    return ExecutablePlan(program, params, schedule, instances, trace)
