"""Code generation, part 1: schedules -> executable plans (Section 5.5).

The paper converts the chosen schedule to C through CLooG and injects buffer
management code.  Our execution substrate is the Python engine, so code
generation produces an :class:`ExecutablePlan`: the statement instances in
scheduled order, each access annotated with the I/O action the plan's
realized sharing dictates —

* ``READ``        — fetch the block from disk,
* ``REUSE``       — the block is resident (realized W->R / R->R pair),
* ``WRITE``       — write the block through to disk,
* ``WRITE_SKIP``  — keep the block in memory only (overwritten later, or a
                    fully-shared intermediate whose write is elided),

plus pin/unpin directives implementing the residency intervals the cost
model assumed.  The engine replays this plan verbatim, which is what makes
the predicted-vs-actual comparison in the benchmarks meaningful.
"""

from __future__ import annotations

import enum
from typing import Mapping

from ..ir import Access, Program, Schedule
from ..optimizer.costing import PlanTrace, ScheduledEvent, trace_plan
from ..optimizer.plan import Plan

__all__ = ["IOAction", "PlannedAccess", "PlannedInstance", "ExecutablePlan",
           "PrefetchItem", "build_executable_plan"]


class IOAction(enum.Enum):
    READ = "read"
    REUSE = "reuse"
    WRITE = "write"
    WRITE_SKIP = "write_skip"


class PlannedAccess:
    """One access of one instance, with its I/O action and pin directives."""

    __slots__ = ("access", "block", "action", "pin_after", "unpin_before")

    def __init__(self, access: Access, block: tuple[int, ...], action: IOAction):
        self.access = access
        self.block = block
        self.action = action
        # Residency management, filled in by the planner (counts, because
        # one event can open or close several holds):
        self.pin_after = 0      # holds opened by this access
        self.unpin_before = 0   # holds closed at this access

    @property
    def block_key(self) -> tuple:
        return (self.access.array.name, self.block)

    def __repr__(self) -> str:
        flags = "".join([f" +pin{self.pin_after}" if self.pin_after else "",
                         f" -pin{self.unpin_before}" if self.unpin_before else ""])
        return f"{self.action.value}:{self.access.array.name}{self.block}{flags}"


class PlannedInstance:
    """One statement instance in scheduled order."""

    __slots__ = ("stmt", "point", "reads", "write")

    def __init__(self, stmt, point, reads: list[PlannedAccess],
                 write: PlannedAccess | None):
        self.stmt = stmt
        self.point = point
        self.reads = reads
        self.write = write

    def __repr__(self) -> str:
        return f"PlannedInstance({self.stmt.name}@{self.point})"


class PrefetchItem:
    """One future disk READ in plan order, as seen by the prefetch pipeline.

    ``seq`` is the item's position in the plan's READ sequence (dense,
    0-based), ``instance`` the index of the owning :class:`PlannedInstance`,
    and ``linear`` the block's column-major linear index within its array's
    block grid — consecutive ``linear`` values on the same array form a
    contiguous on-disk run eligible for a batched read.  ``barrier`` is the
    instance index of the last *disk* WRITE of this block that precedes the
    read in plan order (``-1`` if none): the pipeline must not read the
    block from disk before that instance has completed, or it would stage
    stale bytes.
    """

    __slots__ = ("seq", "instance", "access", "barrier", "linear")

    def __init__(self, seq: int, instance: int, access: PlannedAccess,
                 barrier: int, linear: int):
        self.seq = seq
        self.instance = instance
        self.access = access
        self.barrier = barrier
        self.linear = linear

    @property
    def block_key(self) -> tuple:
        return self.access.block_key

    def __repr__(self) -> str:
        return (f"PrefetchItem(#{self.seq} inst={self.instance} "
                f"{self.access.access.array.name}{self.access.block} "
                f"lin={self.linear} barrier={self.barrier})")


class ExecutablePlan:
    """The fully ordered, I/O-annotated plan the engine executes."""

    __slots__ = ("program", "params", "schedule", "instances", "trace")

    def __init__(self, program: Program, params: Mapping[str, int],
                 schedule: Schedule, instances: list[PlannedInstance],
                 trace: PlanTrace):
        self.program = program
        self.params = dict(params)
        self.schedule = schedule
        self.instances = instances
        self.trace = trace

    def read_sequence(self, start: int = 0) -> list[PrefetchItem]:
        """The future disk-READ sequence from instance ``start`` onward.

        Walks every instance (including those before ``start``, which are
        needed to pick up write barriers) and emits one :class:`PrefetchItem`
        per ``READ`` access of instances ``>= start``, in plan order.  Only
        actual disk WRITEs raise a block's barrier — ``WRITE_SKIP`` keeps
        the block memory-resident, so a later READ of it never happens for
        that version and any recorded barrier is conservative but harmless.
        """
        grids: dict[str, tuple[int, ...]] = {
            name: arr.num_blocks(self.params)
            for name, arr in self.program.arrays.items()
        }

        def _linear(coords: tuple[int, ...], grid: tuple[int, ...]) -> int:
            # Column-major, matching BlockLayout.linearize: the *first*
            # coordinate varies fastest on disk.
            idx = 0
            for c, g in zip(reversed(coords), reversed(grid)):
                idx = idx * g + c
            return idx

        items: list[PrefetchItem] = []
        last_write: dict[tuple, int] = {}
        seq = 0
        for index, inst in enumerate(self.instances):
            if index >= start:
                for pa in inst.reads:
                    if pa.action is IOAction.READ:
                        name = pa.access.array.name
                        items.append(PrefetchItem(
                            seq, index, pa,
                            last_write.get(pa.block_key, -1),
                            _linear(pa.block, grids[name])))
                        seq += 1
            if inst.write is not None and inst.write.action is IOAction.WRITE:
                last_write[inst.write.block_key] = index
        return items

    def io_summary(self) -> dict[str, int]:
        counts = {a.value: 0 for a in IOAction}
        for inst in self.instances:
            for pa in inst.reads + ([inst.write] if inst.write else []):
                counts[pa.action.value] += 1
        return counts

    def __repr__(self) -> str:
        return (f"ExecutablePlan({self.program.name}, "
                f"{len(self.instances)} instances, {self.io_summary()})")


def build_executable_plan(program: Program, params: Mapping[str, int],
                          plan: Plan,
                          dead_write_elimination: bool = True) -> ExecutablePlan:
    """Lower an optimizer plan to an executable plan."""
    return _from_trace(program, params, plan.schedule,
                       trace_plan(program, params, plan.schedule, plan.realized,
                                  dead_write_elimination))


def _from_trace(program: Program, params: Mapping[str, int],
                schedule: Schedule, trace: PlanTrace) -> ExecutablePlan:
    # Group events back into statement instances (time without micro digit).
    groups: dict[tuple, list[ScheduledEvent]] = {}
    order: list[tuple] = []
    for ev in trace.events:
        key = (ev.access.statement.name, ev.point)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(ev)

    # Residency: for every held interval, the block must stay pinned from its
    # first to its last use.  Track, per block key, the set of event times
    # that open/close holds.
    hold_open: dict[tuple, list] = {}
    hold_close: dict[tuple, list] = {}
    for (lo, hi, block_key, _nbytes) in trace.held:
        hold_open.setdefault((block_key, lo), []).append(hi)
        hold_close.setdefault((block_key, hi), []).append(lo)

    instances: list[PlannedInstance] = []
    for key in order:
        events = groups[key]
        stmt = events[0].access.statement
        point = events[0].point
        reads: list[PlannedAccess] = []
        write: PlannedAccess | None = None
        for ev in events:
            if ev.is_write:
                action = (IOAction.WRITE_SKIP if (ev.saved or ev.elided)
                          else IOAction.WRITE)
            else:
                action = IOAction.REUSE if ev.saved else IOAction.READ
            pa = PlannedAccess(ev.access, ev.block, action)
            pa.pin_after = len(hold_open.get((ev.block_key, ev.time), ()))
            pa.unpin_before = len(hold_close.get((ev.block_key, ev.time), ()))
            if ev.is_write:
                write = pa
            else:
                reads.append(pa)
        instances.append(PlannedInstance(stmt, point, reads, write))
    return ExecutablePlan(program, params, schedule, instances, trace)
