"""Dependence and I/O-sharing-opportunity analysis (Sections 4.3 and 5.1).

Public surface:

* :func:`analyze` — full pipeline: co-accesses -> dependences + sharing
  opportunities, with no-write-in-between pruning and multiplicity
  reduction;
* :class:`ProgramAnalysis`, :class:`Dependence`, :class:`SharingOpportunity`;
* :class:`CoAccess` / :func:`build_extent` / :func:`enumerate_coaccesses` —
  the raw Definition-1 machinery;
* :class:`ConcreteAnalyzer` — brute-force instance-level oracle used for
  cross-validation and by the cost evaluator.
"""

from .analyzer import (Dependence, ProgramAnalysis, SharingOpportunity, analyze)
from .coaccess import (SRC_PREFIX, TGT_PREFIX, CoAccess, build_extent,
                       enumerate_coaccesses, product_space)
from .concrete import AccessEvent, ConcreteAnalyzer
from .multiplicity import (Multiplicity, classify_multiplicity, is_functional,
                           reduce_to_one_one)
from .pruning import (intervening_write_set, no_write_in_between,
                      no_write_in_between_both)

__all__ = [
    "analyze",
    "ProgramAnalysis",
    "Dependence",
    "SharingOpportunity",
    "CoAccess",
    "build_extent",
    "enumerate_coaccesses",
    "product_space",
    "SRC_PREFIX",
    "TGT_PREFIX",
    "AccessEvent",
    "ConcreteAnalyzer",
    "Multiplicity",
    "classify_multiplicity",
    "is_functional",
    "reduce_to_one_one",
    "intervening_write_set",
    "no_write_in_between",
    "no_write_in_between_both",
]
