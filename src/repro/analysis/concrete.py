"""Concrete instance-level analyzer: the brute-force oracle.

For bound parameters, enumerates every access event of a program in original
execution order and derives co-access pairs, no-write-in-between survivors,
and linear-sharing-model reuse chains by direct inspection.  The symbolic
(polyhedral) analysis is cross-validated against this module in the test
suite; the cost evaluator (Section 5.4) also runs on top of it, since at
block granularity the iteration domains are tiny.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from ..ir import Access, AccessType, Program, Schedule, lex_less

__all__ = ["AccessEvent", "ConcreteAnalyzer"]


class AccessEvent:
    """One access to one block by one statement instance."""

    __slots__ = ("access", "point", "block", "time", "seq")

    def __init__(self, access: Access, point: tuple[int, ...],
                 block: tuple[int, ...], time: tuple[Fraction, ...], seq: int = -1):
        self.access = access
        self.point = point
        self.block = block
        self.time = time
        self.seq = seq  # rank in global execution order (set by the analyzer)

    @property
    def is_write(self) -> bool:
        return self.access.is_write

    @property
    def array(self):
        return self.access.array

    @property
    def block_key(self) -> tuple:
        return (self.access.array.name, self.block)

    def __repr__(self) -> str:
        return f"AccessEvent({self.access!r} @ {self.point} -> block {self.block})"


class ConcreteAnalyzer:
    """Enumerates and orders all access events for bound parameters."""

    def __init__(self, program: Program, params: Mapping[str, int],
                 schedule: Schedule | None = None):
        self.program = program
        self.params = dict(params)
        self.schedule = schedule or Schedule.original(program)
        self.events: list[AccessEvent] = self._enumerate_events()

    # -- enumeration ---------------------------------------------------------

    def _enumerate_events(self) -> list[AccessEvent]:
        events: list[AccessEvent] = []
        for stmt in self.program.statements:
            for point in stmt.instances(self.params):
                for access in stmt.accesses:
                    if not access.guard_holds(point, self.params):
                        continue
                    block = access.block_at(point, self.params)
                    time = self.schedule.access_time_vector(access, point, self.params)
                    events.append(AccessEvent(access, point, block, time))
        events.sort(key=_time_sort_key)
        for seq, ev in enumerate(events):
            ev.seq = seq
        return events

    # -- queries -----------------------------------------------------------------

    def events_for_block(self, array_name: str, block: tuple[int, ...]) -> list[AccessEvent]:
        return [e for e in self.events
                if e.array.name == array_name and e.block == block]

    def coaccess_pairs(self, src: Access, tgt: Access,
                       statement_strict: bool = True
                       ) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
        """All (x, x') with src@x and tgt@x' touching the same block, source
        strictly before target.

        ``statement_strict`` compares statement times (Definition 1); False
        compares access times (micro included).
        """
        srcs = [e for e in self.events if e.access is src]
        tgts = [e for e in self.events if e.access is tgt]
        out = set()
        for es in srcs:
            for et in tgts:
                if es.block_key != et.block_key:
                    continue
                if statement_strict:
                    ts = self.schedule.time_vector(src.statement, es.point, self.params)
                    tt = self.schedule.time_vector(tgt.statement, et.point, self.params)
                else:
                    ts, tt = es.time, et.time
                if _strictly_less(ts, tt):
                    out.add((es.point, et.point))
        return out

    def nwib_pairs(self, src: Access, tgt: Access,
                   statement_strict: bool = True
                   ) -> set[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Co-access pairs surviving the no-write-in-between rule."""
        survivors = set()
        for (ps, pt) in self.coaccess_pairs(src, tgt, statement_strict):
            es_time = self.schedule.access_time_vector(src, ps, self.params)
            et_time = self.schedule.access_time_vector(tgt, pt, self.params)
            block_key = (src.array.name, src.block_at(ps, self.params))
            if not self._write_between(block_key, es_time, et_time):
                survivors.add((ps, pt))
        return survivors

    def _write_between(self, block_key: tuple,
                       lo: tuple[Fraction, ...], hi: tuple[Fraction, ...]) -> bool:
        for ev in self.events:
            if not ev.is_write or ev.block_key != block_key:
                continue
            if _strictly_less(lo, ev.time) and _strictly_less(ev.time, hi):
                return True
        return False

    def reuse_chains(self) -> dict[tuple, list[AccessEvent]]:
        """Per block, the ordered list of its accesses (the linear sharing
        model's timeline: consecutive entries are potential reuses)."""
        chains: dict[tuple, list[AccessEvent]] = {}
        for ev in self.events:
            chains.setdefault(ev.block_key, []).append(ev)
        return chains

    # -- aggregate I/O (baseline, no sharing) -----------------------------------------

    def baseline_io_bytes(self) -> tuple[int, int]:
        """(read_bytes, write_bytes) when every access performs an I/O."""
        reads = writes = 0
        for ev in self.events:
            if ev.is_write:
                writes += ev.array.block_bytes
            else:
                reads += ev.array.block_bytes
        return reads, writes


def _time_sort_key(ev: AccessEvent):
    # Pad to a common length with -inf-like sentinel impossible here: all
    # original-schedule comparisons are decided within the shared prefix, so
    # plain tuple comparison after padding with zeros is safe only if no tie;
    # use the lexicographic helper via a sortable transform instead.
    return _PaddedTime(ev.time)


class _PaddedTime:
    """Sort adapter using the same semantics as ir.schedule.lex_less."""

    __slots__ = ("t",)

    def __init__(self, t: tuple[Fraction, ...]):
        self.t = t

    def __lt__(self, other: "_PaddedTime") -> bool:
        return lex_less(self.t, other.t)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _PaddedTime) and self.t == other.t


def _strictly_less(a: Sequence[Fraction], b: Sequence[Fraction]) -> bool:
    return lex_less(tuple(a), tuple(b))
