"""Multiplicity classification and reduction (Section 5.1 and Remark A.1).

Under the linear sharing model only *consecutive* accesses to a block share
I/O, so a sharing opportunity relating one instance to many others
over-counts.  The optimizer therefore reduces every sharing opportunity to
one-one form before searching:

* many-one / one-many: the "many" side (always a read side) keeps, per
  instance of the "one" side, only the instance closest in execution time —
  realized here by pinning free variables to their tightest bound (lower
  bound for the target side, upper bound for the source side);
* many-many: first aligned rank-preservingly (Figure 7(b): add equalities
  like ``i' = i`` between same-named variables) and then reduced as above.

Every candidate pin is validated by a *coverage check*: the projection of
the extent onto the preserved side must not shrink, which is exactly the
paper's requirement that reduction not reduce the amount of I/O savings.
Runs in O(d_i * d_j) pin attempts per disjunct, as in Remark A.1.
"""

from __future__ import annotations

from fractions import Fraction

from ..exceptions import ReproError
from ..polyhedral import Polyhedron, PolyhedralSet, Space
from .coaccess import SRC_PREFIX, TGT_PREFIX, CoAccess

__all__ = ["Multiplicity", "classify_multiplicity", "reduce_to_one_one",
           "is_functional"]


class Multiplicity:
    """(source_side, target_side) multiplicities, each 'one' or 'many'."""

    __slots__ = ("src", "tgt")

    def __init__(self, src: str, tgt: str):
        self.src = src
        self.tgt = tgt

    @property
    def is_one_one(self) -> bool:
        return self.src == "one" and self.tgt == "one"

    def __repr__(self) -> str:
        return f"{self.src}-{self.tgt}"

    def __eq__(self, other):
        return (isinstance(other, Multiplicity)
                and (self.src, self.tgt) == (other.src, other.tgt))


def _side_vars(co: CoAccess, prefix: str) -> list[str]:
    stmt = co.src.statement if prefix == SRC_PREFIX else co.tgt.statement
    return [prefix + v for v in stmt.loop_vars]


def is_functional(extent: PolyhedralSet, determined: list[str],
                  given: list[str]) -> bool:
    """Does each assignment of ``given`` relate to at most one assignment of
    ``determined`` in the extent?

    Tested by doubling the determined side: the set
    { (g, d, d2) : (g,d) in E, (g,d2) in E, d != d2 } must be empty.
    """
    space = extent.space
    copies = {v: "c2_" + v for v in determined}
    space2 = Space(space.names + tuple(copies[v] for v in determined))
    first = extent.align(space2)
    second = extent.rename(copies).align(space2)
    both = first.intersect(second)
    # d != d2: union over each determined var being > or <.
    for v in determined:
        i1, i2 = space2.index(v), space2.index(copies[v])
        for sign in (1, -1):
            row = [Fraction(0)] * (space2.dim + 1)
            row[i1] = Fraction(sign)
            row[i2] = Fraction(-sign)
            row[-1] = Fraction(-1)  # strict difference
            differs = both.intersect(Polyhedron(space2, ineqs=[row]))
            if not differs.is_empty():
                return False
    return True


def classify_multiplicity(co: CoAccess) -> Multiplicity:
    src_vars = _side_vars(co, SRC_PREFIX)
    tgt_vars = _side_vars(co, TGT_PREFIX)
    tgt_unique = is_functional(co.extent, determined=tgt_vars, given=src_vars)
    src_unique = is_functional(co.extent, determined=src_vars, given=tgt_vars)
    return Multiplicity("one" if src_unique else "many",
                        "one" if tgt_unique else "many")


def reduce_to_one_one(co: CoAccess) -> tuple[CoAccess, bool]:
    """Reduce a sharing opportunity to one-one multiplicity.

    Returns ``(reduced_co_access, success)``.  On failure the original
    co-access is returned with ``success=False`` (the optimizer then skips
    it, which is sound but may lose savings; this does not happen on the
    paper's workloads).
    """
    mult = classify_multiplicity(co)
    if mult.is_one_one:
        return co, True

    src_vars = _side_vars(co, SRC_PREFIX)
    tgt_vars = _side_vars(co, TGT_PREFIX)
    reduced: list[Polyhedron] = []
    for disjunct in co.extent.disjuncts:
        d = _reduce_disjunct(disjunct, src_vars, tgt_vars)
        if d is None:
            return co, False
        reduced.append(d)
    new = co.with_extent(PolyhedralSet(co.extent.space, reduced))
    if not classify_multiplicity(new).is_one_one:
        return co, False
    return new, True


def _reduce_disjunct(poly: Polyhedron, src_vars: list[str],
                     tgt_vars: list[str]) -> Polyhedron | None:
    """One-one reduction of a convex disjunct by iterative pinning."""
    single = PolyhedralSet.from_polyhedron(poly)
    tgt_unique = is_functional(single, determined=tgt_vars, given=src_vars)
    if not tgt_unique:
        poly = _pin_side(poly, pin_vars=tgt_vars, keep_vars=src_vars,
                         bound_sign=+1)
        if poly is None:
            return None
    src_unique = is_functional(PolyhedralSet.from_polyhedron(poly),
                               determined=src_vars, given=tgt_vars)
    if not src_unique:
        poly = _pin_side(poly, pin_vars=src_vars, keep_vars=tgt_vars,
                         bound_sign=-1)
        if poly is None:
            return None
    return poly


def _pin_side(poly: Polyhedron, pin_vars: list[str], keep_vars: list[str],
              bound_sign: int) -> Polyhedron | None:
    """Pin the free variables of one side until it is functionally determined.

    ``bound_sign=+1`` pins to lower bounds (earliest following instance, for
    the target side); ``-1`` pins to upper bounds (latest preceding instance,
    for the source side).  Same-named alignment (Figure 7(b)) is tried first.
    Every pin must preserve the projection onto ``keep_vars`` (+ params).
    """
    keep_proj = _side_projection(poly, keep_vars)
    current = poly
    for v in pin_vars:
        if _determined(current, v, keep_vars):
            continue
        candidates = _pin_candidates(current, v, pin_vars, bound_sign)
        pinned = None
        for eq_row in candidates:
            trial = current.add_constraints(eqs=[eq_row])
            if trial.is_rational_empty():
                continue
            if _side_projection(trial, keep_vars) == keep_proj:
                pinned = trial
                break
        if pinned is None:
            return None
        current = pinned
    return current


def _determined(poly: Polyhedron, var: str, given: list[str]) -> bool:
    """Is ``var`` an affine function of ``given`` + params on the polyhedron?

    True iff the affine hull's equalities determine var from the given side.
    We test by doubling: two points agreeing on ``given`` must agree on var.
    """
    others = [n for n in poly.space.names if n not in given]
    copies = {n: "c2_" + n for n in others}
    space2 = Space(poly.space.names + tuple(copies[n] for n in others))
    first = poly.align(space2)
    second = poly.rename(copies).align(space2)
    both = first.intersect(second)
    i1, i2 = space2.index(var), space2.index(copies[var])
    for sign in (1, -1):
        row = [Fraction(0)] * (space2.dim + 1)
        row[i1] = Fraction(sign)
        row[i2] = Fraction(-sign)
        row[-1] = Fraction(-1)
        if not both.intersect(Polyhedron(space2, ineqs=[row])).is_empty():
            return False
    return True


def _pin_candidates(poly: Polyhedron, var: str, side_vars: list[str],
                    bound_sign: int) -> list[list[Fraction]]:
    """Equality rows that could pin ``var``: same-name alignment first, then
    bound rows of matching sign with unit coefficient on ``var`` and no other
    un-pinned same-side variables."""
    space = poly.space
    idx = space.index(var)
    out: list[list[Fraction]] = []

    # Same-name alignment: s_i <-> t_i (rank-preserving, Figure 7(b)).
    base = var.split("_", 1)[1]
    other_prefix = TGT_PREFIX if var.startswith(SRC_PREFIX) else SRC_PREFIX
    partner = other_prefix + base
    if partner in space:
        row = [Fraction(0)] * (space.dim + 1)
        row[idx] = Fraction(1)
        row[space.index(partner)] = Fraction(-1)
        out.append(row)

    # Bound rows: an inequality c*var + rest >= 0 with c == bound_sign gives
    # the pin  var = -(rest)/c  when tight.
    side_others = [space.index(v) for v in side_vars if v != var]
    for ineq in poly.ineqs:
        if ineq[idx] != bound_sign:
            continue
        if any(ineq[j] != 0 for j in side_others):
            continue
        out.append([Fraction(v) for v in ineq])  # tight: row == 0
    return out


def _side_projection(poly: Polyhedron, keep_vars: list[str]) -> Polyhedron:
    drop = [n for n in poly.space.names
            if n not in keep_vars and (n.startswith(SRC_PREFIX) or n.startswith(TGT_PREFIX))]
    shadow, _ = poly.project_out(drop)
    return shadow.remove_redundancy()
