"""The no-write-in-between rule (Section 5.1).

Given a co-access ``a -> a'``, any pair ``(x, x')`` of its extent is removed
if some write ``w`` to the same block executes strictly between the two
accesses in the original program:

* for *sharing opportunities* the pair can never be consecutive accesses
  under any legal schedule, so it can never be realized;
* for *dependences* the ordering constraint is redundant (implied through
  the intervening write).

"Between" is measured at *access* granularity: a statement instance reads
its operands before writing its result, so e.g. the write of ``E[i,j]`` at
``k`` kills the R->R pair of reads at ``k`` and ``k+1`` even though read and
write share statement instances.  This is captured by extending time vectors
with a micro position (reads 0, write 1).

The intervening-write test existentially quantifies the write's iteration
variables; the Fourier-Motzkin shadow is an over-approximation of the
integer projection in general, so:

* sharing opportunities always subtract the shadow (losing at most some
  sharing — sound);
* dependences subtract it only when the projection is integer-exact
  (keeping at most some redundant constraints — sound).
"""

from __future__ import annotations

from fractions import Fraction

from ..ir import Access, Program, Schedule, precedence_disjuncts
from ..polyhedral import Polyhedron, PolyhedralSet, Space
from .coaccess import (SRC_PREFIX, TGT_PREFIX, CoAccess, side_rename)

__all__ = ["no_write_in_between", "intervening_write_set"]

_WRITE_PREFIX = "w_"


def intervening_write_set(program: Program, schedule: Schedule, co: CoAccess,
                          write: Access,
                          context: Polyhedron | None = None
                          ) -> tuple[PolyhedralSet, bool]:
    """Pairs of ``co``'s product space killed by instances of ``write``.

    Returns ``(killed, exact)``; ``killed`` is the rational shadow of

        { (x, x') : exists w in D_write, Phi_w w = Phi_src x,
                    T(src@x) < T(write@w) < T(tgt@x') }

    and ``exact`` reports whether the projection is integer-exact.
    """
    if context is None:
        context = program.param_context
    pair_space = co.extent.space
    w_vars = [_WRITE_PREFIX + v for v in write.statement.loop_vars]
    triple_space = Space(tuple(n for n in pair_space.names if n not in program.params)
                         + tuple(w_vars) + tuple(program.params))

    w_rename = side_rename(write.statement.loop_vars, _WRITE_PREFIX)
    base = write.domain(context).rename(w_rename).align(triple_space)

    # Same block as the source access.
    s_ren = side_rename(co.src.statement.loop_vars, SRC_PREFIX)
    rows = []
    for s_sub, w_sub in zip(co.src.subscripts, write.subscripts):
        row = [Fraction(0)] * (triple_space.dim + 1)
        for name, coeff in s_sub.coeffs.items():
            row[triple_space.index(s_ren.get(name, name))] += coeff
        row[-1] += s_sub.const
        for name, coeff in w_sub.coeffs.items():
            row[triple_space.index(w_rename.get(name, name))] -= coeff
        row[-1] -= w_sub.const
        rows.append(row)
    base = base.add_constraints(eqs=rows)

    # src@x < write@w < tgt@x', at access (micro) granularity.
    src_rows = schedule.rows_in_space(co.src.statement, triple_space,
                                      side_rename(co.src.statement.loop_vars, SRC_PREFIX),
                                      micro=co.src.micro)
    tgt_rows = schedule.rows_in_space(co.tgt.statement, triple_space,
                                      side_rename(co.tgt.statement.loop_vars, TGT_PREFIX),
                                      micro=co.tgt.micro)
    w_rows = schedule.rows_in_space(write.statement, triple_space, w_rename,
                                    micro=write.micro)

    lower = precedence_disjuncts(src_rows, w_rows)
    upper = precedence_disjuncts(w_rows, tgt_rows)
    if lower == [] or upper == []:
        return PolyhedralSet.empty(pair_space), True

    triples: list[Polyhedron] = []
    lower_list = [None] if lower is None else lower
    upper_list = [None] if upper is None else upper
    for lo in lower_list:
        for hi in upper_list:
            poly = base
            if lo is not None:
                poly = poly.add_constraints(eqs=lo.eqs, ineqs=lo.ineqs)
            if hi is not None:
                poly = poly.add_constraints(eqs=hi.eqs, ineqs=hi.ineqs)
            if not poly.is_rational_empty():
                triples.append(poly)
    if not triples:
        return PolyhedralSet.empty(pair_space), True

    killed, exact = PolyhedralSet(triple_space, triples).project_out(w_vars)
    # Reorder into the pair space (params were moved to the end already).
    killed = killed.align(pair_space) if killed.space != pair_space else killed
    return killed, exact


def no_write_in_between(program: Program, schedule: Schedule, co: CoAccess,
                        context: Polyhedron | None = None,
                        conservative: bool = False) -> CoAccess:
    """Apply the no-write-in-between rule to one co-access.

    ``conservative=True`` (used for dependences) only subtracts kill sets
    whose projection was integer-exact.
    """
    extent = co.extent
    for write in program.writes_to(co.array):
        if extent.is_empty():
            break
        killed, exact = intervening_write_set(program, schedule, co, write, context)
        if killed.is_empty():
            continue
        if conservative and not exact:
            continue
        extent = extent.subtract(killed)
    return co.with_extent(extent.coalesce())


def no_write_in_between_both(program: Program, schedule: Schedule, co: CoAccess,
                             context: Polyhedron | None = None
                             ) -> tuple[CoAccess, CoAccess]:
    """NWIB in both modes at once, sharing the kill-set computation.

    Returns ``(conservative, full)`` — the first only subtracts integer-exact
    kill shadows (dependence use), the second subtracts all of them
    (sharing-opportunity use).
    """
    conservative = full = co.extent
    for write in program.writes_to(co.array):
        if conservative.is_empty() and full.is_empty():
            break
        killed, exact = intervening_write_set(program, schedule, co, write, context)
        if killed.is_empty():
            continue
        full = full.subtract(killed)
        if exact:
            conservative = conservative.subtract(killed)
    return (co.with_extent(conservative.coalesce()),
            co.with_extent(full.coalesce()))
