"""Top-level program analysis: dependences and sharing opportunities.

This is the "Sharing Opportunities Analysis" stage of Figure 2: starting
from a program and its original schedule, it enumerates co-accesses, splits
them into dependences (Definition 2) and sharing opportunities
(Definition 3), applies the no-write-in-between rule to both, and reduces
sharing opportunities to one-one multiplicity (Section 5.1).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir import AccessType, Program, Schedule
from ..polyhedral import Polyhedron
from .coaccess import CoAccess, enumerate_coaccesses
from .multiplicity import reduce_to_one_one
from .pruning import no_write_in_between_both

__all__ = ["Dependence", "SharingOpportunity", "ProgramAnalysis", "analyze"]

_DEP_TYPES = [(AccessType.READ, AccessType.WRITE),
              (AccessType.WRITE, AccessType.READ),
              (AccessType.WRITE, AccessType.WRITE)]
_SHARE_TYPES = [(AccessType.WRITE, AccessType.READ),
                (AccessType.WRITE, AccessType.WRITE),
                (AccessType.READ, AccessType.READ)]


class Dependence:
    """A data dependence: ordering constraint every legal schedule must keep."""

    __slots__ = ("co",)

    def __init__(self, co: CoAccess):
        self.co = co

    @property
    def label(self) -> str:
        return self.co.label()

    def __repr__(self) -> str:
        return f"Dependence({self.co.label()})"


class SharingOpportunity:
    """A one-one (after reduction) data-reuse relationship.

    ``reduced`` records whether multiplicity reduction succeeded; the
    optimizer only considers reduced opportunities.
    """

    __slots__ = ("co", "reduced", "index")

    def __init__(self, co: CoAccess, reduced: bool, index: int):
        self.co = co
        self.reduced = reduced
        self.index = index

    @property
    def label(self) -> str:
        return self.co.label()

    @property
    def type_str(self) -> str:
        return self.co.type_str

    @property
    def is_self(self) -> bool:
        return self.co.is_self

    def savings_pairs(self, params: Mapping[str, int]):
        return self.co.pairs(params)

    def __repr__(self) -> str:
        flag = "" if self.reduced else ", UNREDUCED"
        return f"SharingOpportunity#{self.index}({self.co.label()}, {self.co.type_str}{flag})"


class ProgramAnalysis:
    """Analysis result bundle consumed by the optimizer."""

    __slots__ = ("program", "schedule", "context", "dependences", "opportunities")

    def __init__(self, program: Program, schedule: Schedule, context: Polyhedron,
                 dependences: Sequence[Dependence],
                 opportunities: Sequence[SharingOpportunity]):
        self.program = program
        self.schedule = schedule
        self.context = context
        self.dependences = list(dependences)
        self.opportunities = list(opportunities)

    def opportunity(self, label: str) -> SharingOpportunity:
        """Look up an opportunity by its ``s1WC->s2RC`` style label."""
        matches = [o for o in self.opportunities if o.label == label]
        if len(matches) != 1:
            raise KeyError(f"{len(matches)} opportunities labelled {label!r}")
        return matches[0]

    def __repr__(self) -> str:
        return (f"ProgramAnalysis({self.program.name}: "
                f"{len(self.dependences)} dependences, "
                f"{len(self.opportunities)} sharing opportunities)")


def analyze(program: Program, schedule: Schedule | None = None,
            param_values: Mapping[str, int] | None = None) -> ProgramAnalysis:
    """Run the full analysis pipeline.

    ``param_values`` (when given) narrows the parameter context to concrete
    sizes; existence of dependences/opportunities is then judged for those
    sizes (the paper's experiments do the same, e.g. s2RC->s2RC does not
    exist when n3 = 1).  The polyhedra keep the parameters symbolic.
    """
    if schedule is None:
        schedule = Schedule.original(program)
    context = program.param_context
    if param_values:
        space = context.space
        eqs = []
        for name, value in param_values.items():
            if name in space:
                row = [0] * (space.dim + 1)
                row[space.index(name)] = 1
                row[-1] = -int(value)
                eqs.append(row)
        context = context.add_constraints(eqs=eqs)

    all_types = set(_DEP_TYPES) | set(_SHARE_TYPES)
    dependences: list[Dependence] = []
    opportunities: list[SharingOpportunity] = []
    for co in enumerate_coaccesses(program, schedule, context, types=all_types):
        conservative, full = no_write_in_between_both(program, schedule, co, context)
        if co.type in _DEP_TYPES and not conservative.extent.is_empty():
            dependences.append(Dependence(conservative))
        if co.type in _SHARE_TYPES and not full.extent.is_empty():
            reduced, ok = reduce_to_one_one(full)
            opportunities.append(SharingOpportunity(reduced, ok, len(opportunities)))

    return ProgramAnalysis(program, schedule, context, dependences, opportunities)
