"""Co-accesses and their extent polyhedra (Definition 1).

A co-access ``a -> a'`` pairs two accesses to the same array; its extent
polyhedron lives in the product space of the two statements' iteration
domains and contains exactly the instance pairs ``(x, x')`` such that

* both instances execute (domains, including access guards),
* they touch the same block (``Phi x = Phi' x'``), and
* the source executes strictly before the target in the original schedule
  (``Theta_s x < Theta_s' x'``, expanded into per-depth disjuncts).

Product-space variables are prefixed ``s_``/``t_`` for the source/target
side; parameters keep their names and are shared.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from ..exceptions import ProgramError
from ..ir import Access, AccessType, Program, Schedule, precedence_disjuncts
from ..polyhedral import Polyhedron, PolyhedralSet, Space

__all__ = ["CoAccess", "SRC_PREFIX", "TGT_PREFIX", "build_extent",
           "enumerate_coaccesses", "product_space", "side_rename"]

SRC_PREFIX = "s_"
TGT_PREFIX = "t_"


def side_rename(stmt_vars: Iterable[str], prefix: str) -> dict[str, str]:
    return {v: prefix + v for v in stmt_vars}


def product_space(src: Access, tgt: Access, params: Iterable[str]) -> Space:
    s_vars = [SRC_PREFIX + v for v in src.statement.loop_vars]
    t_vars = [TGT_PREFIX + v for v in tgt.statement.loop_vars]
    return Space(tuple(s_vars) + tuple(t_vars) + tuple(params))


class CoAccess:
    """A co-access pair with its (possibly pruned) extent set."""

    __slots__ = ("src", "tgt", "extent", "_pairs_cache")

    def __init__(self, src: Access, tgt: Access, extent: PolyhedralSet):
        self.src = src
        self.tgt = tgt
        self.extent = extent
        self._pairs_cache: dict[tuple, list] = {}

    @property
    def type(self) -> tuple[AccessType, AccessType]:
        return (self.src.type, self.tgt.type)

    @property
    def type_str(self) -> str:
        return f"{self.src.type}->{self.tgt.type}"

    @property
    def array(self):
        return self.src.array

    @property
    def is_self(self) -> bool:
        """Self co-access: both ends in the same statement (Table 1 sense)."""
        return self.src.statement is self.tgt.statement

    def label(self) -> str:
        """Compact ``s1WC->s2RC`` label used throughout the paper."""
        return (f"{self.src.statement.name}{self.src.type}{self.src.array.name}"
                f"->{self.tgt.statement.name}{self.tgt.type}{self.tgt.array.name}")

    def pair_count(self, params: Mapping[str, int]) -> int:
        """Number of instance pairs for bound parameters."""
        return self.extent.bind(params).count_integer_points()

    def pairs(self, params: Mapping[str, int]) -> list[tuple[tuple[int, ...], tuple[int, ...]]]:
        """Concrete (source point, target point) pairs for bound parameters.

        Memoized per parameter binding (the Apriori search costs many plans
        against the same sizes)."""
        key = tuple(sorted(params.items()))
        if key not in self._pairs_cache:
            sd = self.src.statement.depth
            out = set()
            for pt in self.extent.bind(params).integer_points():
                out.add((pt[:sd], pt[sd:sd + self.tgt.statement.depth]))
            self._pairs_cache[key] = sorted(out)
        return self._pairs_cache[key]

    def with_extent(self, extent: PolyhedralSet) -> "CoAccess":
        return CoAccess(self.src, self.tgt, extent)

    def __repr__(self) -> str:
        return f"CoAccess({self.label()}, {len(self.extent)} disjuncts)"


def access_poly(access: Access, space: Space, prefix: str,
                context: Polyhedron | None = None) -> Polyhedron:
    """The access's domain (incl. guard) renamed into a product space."""
    rename = side_rename(access.statement.loop_vars, prefix)
    return access.domain(context).rename(rename).align(space)


def block_equalities(src: Access, tgt: Access, space: Space) -> list[list[Fraction]]:
    """Rows for Phi_src(s_x) - Phi_tgt(t_x') = 0, one per array dimension."""
    if src.array is not tgt.array:
        raise ProgramError("co-access across different arrays")
    rows = []
    s_ren = side_rename(src.statement.loop_vars, SRC_PREFIX)
    t_ren = side_rename(tgt.statement.loop_vars, TGT_PREFIX)
    for s_sub, t_sub in zip(src.subscripts, tgt.subscripts):
        row = [Fraction(0)] * (space.dim + 1)
        for name, coeff in s_sub.coeffs.items():
            row[space.index(s_ren.get(name, name))] += coeff
        row[-1] += s_sub.const
        for name, coeff in t_sub.coeffs.items():
            row[space.index(t_ren.get(name, name))] -= coeff
        row[-1] -= t_sub.const
        rows.append(row)
    return rows


def build_extent(program: Program, schedule: Schedule, src: Access, tgt: Access,
                 context: Polyhedron | None = None) -> PolyhedralSet:
    """The extent set P(a -> a') of Definition 1 (before any pruning)."""
    if context is None:
        context = program.param_context
    space = product_space(src, tgt, program.params)
    base = (access_poly(src, space, SRC_PREFIX, context)
            .intersect(access_poly(tgt, space, TGT_PREFIX, context))
            .add_constraints(eqs=block_equalities(src, tgt, space)))
    if base.is_rational_empty():
        return PolyhedralSet.empty(space)

    s_rows = schedule.rows_in_space(
        src.statement, space, side_rename(src.statement.loop_vars, SRC_PREFIX))
    t_rows = schedule.rows_in_space(
        tgt.statement, space, side_rename(tgt.statement.loop_vars, TGT_PREFIX))
    disjuncts = precedence_disjuncts(s_rows, t_rows)
    if disjuncts is None:  # unconditionally ordered: the base set is the extent
        return PolyhedralSet(space, [base])
    polys = [base.add_constraints(eqs=d.eqs, ineqs=d.ineqs) for d in disjuncts]
    return PolyhedralSet(space, polys)


def enumerate_coaccesses(program: Program, schedule: Schedule,
                         context: Polyhedron | None = None,
                         types: Iterable[tuple[AccessType, AccessType]] | None = None
                         ) -> list[CoAccess]:
    """All nonempty co-accesses of the program (optionally type-filtered)."""
    wanted = set(types) if types is not None else None
    out: list[CoAccess] = []
    accesses = program.all_accesses()
    for src in accesses:
        for tgt in accesses:
            if src.array is not tgt.array:
                continue
            if wanted is not None and (src.type, tgt.type) not in wanted:
                continue
            extent = build_extent(program, schedule, src, tgt, context)
            if not extent.is_empty():
                out.append(CoAccess(src, tgt, extent))
    return out
