"""Applying recommendations: config rewriting, workload runs, validation.

:class:`AdvisorConfig` bundles everything a re-run needs — the expanded job
list plus the service knobs (memory cap, prefetch depth, per-array store
formats).  :func:`apply_recommendations` is a *pure* rewrite: it folds a
recommendation set's actions into a new config without touching the old
one, so baseline and candidate configs coexist.  Action composition order
is fixed (geometry rescales first, then materialization splits, then
service-knob changes): materialization re-splits the possibly-rescaled
programs at apply time, so a geometry + materialization set composes
correctly regardless of the order the analyzers emitted them.

:func:`run_workload` executes a config on a fresh
:class:`~repro.service.ArrayService` under a scoped tracer + metrics
registry and returns the :class:`~repro.advisor.workload.WorkloadProfile`
of what actually happened.  Materialized intermediates are wired through
job dependencies: producer jobs run first and their dense outputs feed the
consumers' inputs (the service's content-addressed input catalog writes
each shared dataset once, uncounted — exactly the persistent-
materialization story).

:func:`validate_recommendations` closes the loop: measure the baseline,
then re-run once per recommendation (and once for the whole applied set)
and score every prediction via :meth:`Recommendation.check` — within
tolerance or flagged ``mispredicted``, never silently dropped.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..exceptions import AdvisorError
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..optimizer import IOModel
from ..service import ArrayService
from .recommendations import Recommendation
from .workload import (JobSpec, WorkloadProfile, WorkloadSpec, generate_input,
                       materialization_split, rescale_geometry)

__all__ = ["AdvisorConfig", "apply_recommendations", "run_workload",
           "measured_io_bytes", "validate_recommendations"]


class AdvisorConfig:
    """A fully expanded, runnable workload + service configuration."""

    __slots__ = ("jobs", "memory_cap_bytes", "prefetch_depth",
                 "store_format", "io_model", "max_set_size",
                 "max_candidates", "workers", "plan_cache")

    def __init__(self, jobs: Iterable[JobSpec], memory_cap_bytes: int,
                 prefetch_depth: int = 0,
                 store_format: Mapping[str, str] | None = None,
                 io_model: IOModel | None = None,
                 max_set_size: int | None = None,
                 max_candidates: int | None = None, workers: int = 2,
                 plan_cache: str | os.PathLike | None = None):
        self.jobs = list(jobs)
        self.memory_cap_bytes = int(memory_cap_bytes)
        self.prefetch_depth = int(prefetch_depth)
        self.store_format = dict(store_format or {"default": "daf"})
        self.io_model = io_model or IOModel()
        self.max_set_size = max_set_size
        self.max_candidates = max_candidates
        self.workers = int(workers)
        # Optional persistent plan-cache directory shared by every run of
        # this config (and its applied variants): repeat jobs of one
        # template plan once, and verification re-runs skip re-searching
        # unchanged templates — fingerprints keep variants apart.
        self.plan_cache = plan_cache

    @classmethod
    def from_spec(cls, spec: WorkloadSpec, memory_cap_bytes: int,
                  **kw) -> "AdvisorConfig":
        return cls(spec.expanded(), memory_cap_bytes, **kw)

    def replace(self, **kw) -> "AdvisorConfig":
        fields = {f: getattr(self, f) for f in self.__slots__}
        fields.update(kw)
        return AdvisorConfig(**fields)

    def describe(self) -> dict:
        return {"jobs": len(self.jobs),
                "memory_cap_bytes": self.memory_cap_bytes,
                "prefetch_depth": self.prefetch_depth,
                "store_format": dict(self.store_format)}

    def __repr__(self) -> str:
        return (f"AdvisorConfig({len(self.jobs)} jobs, "
                f"cap={self.memory_cap_bytes}, "
                f"prefetch={self.prefetch_depth}, "
                f"formats={self.store_format})")


# -- action application --------------------------------------------------------


def apply_recommendations(config: AdvisorConfig,
                          recs: Sequence[Recommendation]) -> AdvisorConfig:
    """Fold the actions of ``recs`` into a new config (pure; fixed
    composition order — see module docstring)."""
    actions = [a for r in recs for a in r.actions]
    jobs = {j.name: j for j in config.jobs}
    out = config.replace(jobs=list(config.jobs))

    for act in (a for a in actions if a["type"] == "rescale"):
        for name in act["jobs"]:
            job = jobs.get(name)
            if job is None:
                raise AdvisorError(f"rescale names unknown job {name!r}")
            rescaled = rescale_geometry(job, act["axis"], int(act["factor"]))
            if rescaled is None:
                raise AdvisorError(
                    f"rescale {act['axis']}/{act['factor']} is not "
                    f"applicable to job {name!r} (params {job.params})")
            jobs[name] = rescaled

    mat_jobs: list[JobSpec] = []
    for act in (a for a in actions if a["type"] == "materialize"):
        array = act["array"]
        groups: dict[tuple, list[str]] = {}
        for name in act["jobs"]:
            job = jobs.get(name)
            if job is None:
                raise AdvisorError(f"materialize names unknown job {name!r}")
            if job.program_obj is not None or array in job.inputs_from:
                raise AdvisorError(
                    f"job {name!r} was already rewritten; cannot "
                    f"materialize {array!r} in it")
            split = materialization_split(job.build_program(), array)
            if split is None:
                raise AdvisorError(
                    f"{array!r} is not materializable in job {name!r}")
            prefix, residual = split
            # Jobs share one producer iff the prefix would compute the same
            # thing: same template + same seeds for the prefix's inputs.
            prefix_inputs = sorted(
                n for n, a in prefix.arrays.items() if a.kind.value == "input")
            key = job.template_key() + tuple(
                (n, job.seed_for(n)) for n in prefix_inputs)
            groups.setdefault(key, []).append(name)
        for gi, names in enumerate(
                sorted(groups.values(), key=lambda ns: ns[0]), 1):
            first = jobs[names[0]]
            split = materialization_split(first.build_program(), array)
            prefix, residual = split
            producer_name = f"mat_{array}_{gi}"
            mat_jobs.append(first.replace(
                name=producer_name, program_obj=prefix, args={},
                inputs_from={}))
            for name in names:
                job = jobs[name]
                jobs[name] = job.replace(
                    program_obj=residual, args={},
                    inputs_from={**job.inputs_from, array: producer_name})

    for act in (a for a in actions if a["type"] == "store_format"):
        out.store_format = {**out.store_format,
                            act.get("array", "default"): act["format"]}
    for act in (a for a in actions if a["type"] == "memory_cap"):
        out.memory_cap_bytes = int(act["bytes"])
    for act in (a for a in actions if a["type"] == "prefetch_depth"):
        out.prefetch_depth = int(act["depth"])

    # Producers go first so the execution order below never stalls.
    out.jobs = mat_jobs + [jobs[j.name] for j in config.jobs]
    return out


# -- execution -----------------------------------------------------------------


def run_workload(config: AdvisorConfig, workdir: str | os.PathLike,
                 trace_path: str | os.PathLike | None = None,
                 metrics_path: str | os.PathLike | None = None
                 ) -> WorkloadProfile:
    """Execute the config on a fresh service; return the observed profile.

    A scoped tracer + registry capture the run (the previously installed
    globals, if any, are restored afterwards).  ``trace_path`` /
    ``metrics_path`` additionally export the observed workload as the
    JSONL + snapshot files the offline ``advise --trace`` path reads.
    """
    Path(workdir).mkdir(parents=True, exist_ok=True)
    sink = obs_trace.JsonlSink(trace_path) if trace_path is not None else None
    tracer = obs_trace.Tracer(sink=sink)
    registry = obs_metrics.MetricsRegistry()

    producers = [j for j in config.jobs if j.program_obj is not None
                 and not j.inputs_from]
    producer_names = {j.name for j in producers}
    consumers = [j for j in config.jobs if j.name not in producer_names]
    for job in consumers:
        for array, src in job.inputs_from.items():
            if src not in producer_names:
                raise AdvisorError(
                    f"job {job.name!r} wants {array!r} from unknown "
                    f"producer {src!r}")

    with obs_trace.use(tracer), obs_metrics.use(registry):
        with ArrayService(workdir, memory_cap_bytes=config.memory_cap_bytes,
                          workers=config.workers,
                          io_model=config.io_model,
                          plan_cache=config.plan_cache,
                          max_set_size=config.max_set_size,
                          max_candidates=config.max_candidates,
                          prefetch_depth=config.prefetch_depth,
                          store_format=config.store_format) as svc:
            produced: dict[str, dict] = {}
            for job in producers:
                res = _submit(svc, job, {}).result()
                produced[job.name] = res.outputs
            handles = [(_submit(svc, job, produced), job)
                       for job in consumers]
            for handle, job in handles:
                handle.result()
        tracer.close()
    profile = WorkloadProfile.from_run(tracer, registry)
    if metrics_path is not None:
        registry.write_snapshot(metrics_path)
    return profile


def _submit(svc: ArrayService, job: JobSpec, produced: Mapping[str, dict]):
    program = job.build_program()
    inputs = {}
    for name, arr in program.arrays.items():
        if arr.kind.value != "input":
            continue
        src = job.inputs_from.get(name)
        if src is not None:
            try:
                inputs[name] = produced[src][name]
            except KeyError as err:
                raise AdvisorError(
                    f"producer {src!r} did not output {name!r} "
                    f"for job {job.name!r}") from err
        else:
            inputs[name] = generate_input(arr, job.params,
                                          job.seed_for(name), name)
    return svc.submit(program, job.params, inputs, name=job.name,
                      plan_exact=job.plan_exact,
                      memory_cap_bytes=job.memory_cap)


def measured_io_bytes(profile: WorkloadProfile) -> int:
    """The acceptance metric: total per-job attributed I/O bytes."""
    return int(profile.totals.get("read_bytes", 0)
               + profile.totals.get("write_bytes", 0))


# -- validation ----------------------------------------------------------------


def validate_recommendations(config: AdvisorConfig,
                             recs: Sequence[Recommendation],
                             workdir: str | os.PathLike,
                             baseline: WorkloadProfile | None = None,
                             tolerance: float = 0.02
                             ) -> dict:
    """Verify every prediction by re-running the workload.

    One baseline run (skipped when a measured ``baseline`` profile is
    passed in), then one re-run per recommendation with just that
    recommendation applied, then — when more than one recommendation is
    concrete — a final re-run with the whole set applied.  Each
    recommendation is scored via :meth:`Recommendation.check` against
    ``tolerance`` (relative to workload size; documented there).

    Returns a summary dict: baseline/combined measured bytes, the combined
    reduction fraction, and the per-recommendation verdicts.  Metrics
    (``repro_advisor_validation_runs`` / ``repro_advisor_mispredicted`` /
    ``repro_advisor_measured_saved_bytes``) are recorded on the globally
    installed registry, if any.
    """
    workdir = Path(workdir)
    if config.plan_cache is None:
        # Verification runs share one plan cache: unchanged templates are
        # planned once across the baseline + per-recommendation re-runs.
        config = config.replace(plan_cache=str(workdir / "plancache"))
    if baseline is None:
        baseline = run_workload(config, workdir / "baseline")
    before = measured_io_bytes(baseline)

    reg = obs_metrics.CURRENT
    verdicts = []
    for i, rec in enumerate(recs, 1):
        applied = apply_recommendations(config, [rec])
        profile = run_workload(applied, workdir / f"rec{i}")
        after = measured_io_bytes(profile)
        ok = rec.check(before, after, tolerance)
        if reg is not None:
            reg.counter("repro_advisor_validation_runs").inc()
            if not ok:
                reg.counter("repro_advisor_mispredicted",
                            kind=rec.kind).inc()
            reg.counter("repro_advisor_measured_saved_bytes",
                        kind=rec.kind).inc(before - after)
        verdicts.append({"kind": rec.kind, "title": rec.title,
                         "predicted_saved_bytes": rec.predicted_saved_bytes,
                         "measured_saved_bytes": rec.measured_saved_bytes,
                         "error": rec.validation_error,
                         "mispredicted": rec.mispredicted})

    combined_after = None
    if len(recs) > 1:
        applied = apply_recommendations(config, list(recs))
        profile = run_workload(applied, workdir / "combined")
        combined_after = measured_io_bytes(profile)
        if reg is not None:
            reg.counter("repro_advisor_validation_runs").inc()
    elif len(recs) == 1:
        combined_after = recs[0].measured_after_bytes

    reduction = None
    if combined_after is not None and before > 0:
        reduction = (before - combined_after) / before
    return {"baseline_bytes": before, "combined_bytes": combined_after,
            "reduction": reduction, "tolerance": tolerance,
            "recommendations": verdicts}
