"""Workload ingestion for the advisor: specs, profiles, program surgery.

Two complementary views of "a workload" live here:

* :class:`WorkloadSpec` — the *re-runnable* description: a list of
  :class:`JobSpec` entries (program template + builder arguments + parameter
  binding + input seeds).  This is what the apply/validate pipeline needs,
  because observed traces carry neither seeds nor input data.  Specs
  round-trip through the same JSONL shape ``python -m repro serve`` reads.
* :class:`WorkloadProfile` — the *observed* signal: per-job attributed I/O,
  per-array access totals, per-program frequency × optimization
  fingerprint, pool hit rates, admission waits, prefetch stage/wait ratios,
  and per-file sequentiality.  A profile is built from exactly one pair of
  sources — trace events plus a metrics-series snapshot — whether those
  come from a live in-memory :class:`~repro.obs.Tracer` or from exported
  JSONL/snapshot files.  Using one constructor for both paths is what makes
  ``capture(live run) == rebuild(exported files)`` hold field by field.

Also here, because the analyzers and the apply step both need them:

* the per-builder **geometry axes** table and :func:`rescale_geometry` —
  rewriting a job's block geometry at *fixed logical array size* (halve the
  block-count parameter, double the block dimension);
* :func:`materialization_split` — the program surgery behind persistent
  materialization of shared intermediates: split a program into the prefix
  that produces an intermediate (re-kinded OUTPUT) and the residual that
  consumes it (re-kinded INPUT).
"""

from __future__ import annotations

import inspect
import json
import os
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import AdvisorError, ProgramError
from ..ir import ArrayKind, Program
from ..ir.program import Access, Array, Statement
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..ops import add_multiply_program, linreg_program, two_matmul_program

__all__ = ["BUILDERS", "GEOMETRY_AXES", "JobSpec", "WorkloadSpec",
           "WorkloadProfile", "JobProfile", "generate_input",
           "rescale_geometry", "geometry_candidates", "materialization_split",
           "load_trace", "load_metrics"]

#: Program builders a spec may name; the same registry the serve CLI uses.
BUILDERS = {"add_multiply": add_multiply_program,
            "two_matmul": two_matmul_program,
            "linreg": linreg_program}

#: Block-geometry rescaling axes per builder: for each block-count
#: parameter, the builder arguments (and tuple index, None = scalar) that
#: must scale inversely to keep the logical array sizes fixed.
GEOMETRY_AXES = {
    "add_multiply": (
        ("n1", (("block_rows", None),)),
        ("n2", (("block_cols", None),)),
        ("n3", (("d_cols", None),)),
    ),
    "two_matmul": (
        ("n1", (("a_shape", 0),)),
        ("n3", (("a_shape", 1), ("b_shape", 0), ("d_shape", 0))),
        ("n2", (("b_shape", 1),)),
        ("n4", (("d_shape", 1),)),
    ),
    "linreg": (
        ("n", (("x_block", 0),)),
    ),
}


# -- tolerant readers ----------------------------------------------------------


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Read a JSONL trace, tolerating schema drift.

    Lines without a ``"v"`` field predate trace versioning and are accepted
    as v0; lines newer than :data:`repro.obs.trace.SCHEMA_VERSION` raise
    :class:`~repro.exceptions.AdvisorError` instead of being misparsed.
    """
    try:
        events = obs_trace.read_jsonl(path)
    except (OSError, json.JSONDecodeError) as err:
        raise AdvisorError(f"unreadable trace {path}: {err}") from err
    for i, ev in enumerate(events):
        v = ev.get("v", 0)
        if not isinstance(v, int) or v > obs_trace.SCHEMA_VERSION:
            raise AdvisorError(
                f"{path}:{i + 1}: trace line schema v{v} is newer than this "
                f"reader (supports <= v{obs_trace.SCHEMA_VERSION})")
    return events


def load_metrics(path: str | os.PathLike) -> dict[str, float]:
    """Read a metrics snapshot (versioned JSON doc, legacy flat JSON, or
    Prometheus text exposition) into the flat series dict."""
    try:
        return obs_metrics.read_snapshot(path)
    except (OSError, ValueError) as err:
        raise AdvisorError(f"unreadable metrics {path}: {err}") from err


# -- the re-runnable spec ------------------------------------------------------


def _canonical_args(builder_name: str, args) -> dict:
    """Normalize builder arguments (positional list or kwargs dict, JSON
    lists for tuples) into a complete kwargs dict with defaults applied."""
    builder = BUILDERS.get(builder_name)
    if builder is None:
        raise AdvisorError(f"unknown program {builder_name!r} "
                           f"(known: {sorted(BUILDERS)})")
    sig = inspect.signature(builder)
    try:
        if isinstance(args, Mapping):
            bound = sig.bind(**args)
        else:
            bound = sig.bind(*(args or ()))
    except TypeError as err:
        raise AdvisorError(f"{builder_name}: bad builder args {args!r}: "
                           f"{err}") from err
    bound.apply_defaults()
    out = {}
    for k, v in bound.arguments.items():
        out[k] = tuple(int(x) for x in v) if isinstance(v, (list, tuple)) \
            else int(v)
    return out


def generate_input(array, params: Mapping[str, int], seed: int,
                   name: str) -> np.ndarray:
    """Deterministic dense input for one array: the stream is keyed by
    ``(seed, array name)`` so distinct arrays of one job differ while equal
    ``(seed, name, shape)`` pairs across jobs are bit-identical — which is
    what lets the service's content-addressed catalog share them."""
    seq = np.random.SeedSequence([int(seed) & 0xFFFFFFFF, *name.encode()])
    rng = np.random.default_rng(seq)
    return rng.standard_normal(array.shape_elems(params))


class JobSpec:
    """One job of a workload: template + binding + input seeds.

    ``seeds`` optionally overrides the base ``seed`` per input array —
    ``{"D": 7}`` gives every job a distinct D while A and B stay shared.
    ``count`` repeats the job (expanded into distinct job names).

    Two runtime-only fields support applied materialization and are not
    serialized: ``program_obj`` (an explicit :class:`Program` replacing the
    builder output, e.g. a residual program) and ``inputs_from`` (input
    array -> producer job name whose same-named output feeds it).
    """

    __slots__ = ("program", "args", "params", "seed", "seeds", "count",
                 "plan_exact", "memory_cap", "name", "program_obj",
                 "inputs_from")

    def __init__(self, program: str, params: Mapping[str, int],
                 args=None, seed: int = 0,
                 seeds: Mapping[str, int] | None = None, count: int = 1,
                 plan_exact: bool = False, memory_cap: int | None = None,
                 name: str | None = None,
                 program_obj: Program | None = None,
                 inputs_from: Mapping[str, str] | None = None):
        self.program = program
        self.args = _canonical_args(program, args) if program_obj is None \
            else dict(args or {})
        self.params = {k: int(v) for k, v in params.items()}
        self.seed = int(seed)
        self.seeds = {k: int(v) for k, v in (seeds or {}).items()}
        self.count = int(count)
        if self.count < 1:
            raise AdvisorError(f"job count must be >= 1, got {count}")
        self.plan_exact = bool(plan_exact)
        self.memory_cap = memory_cap if memory_cap is None else int(memory_cap)
        self.name = name
        self.program_obj = program_obj
        self.inputs_from = dict(inputs_from or {})

    def build_program(self) -> Program:
        if self.program_obj is not None:
            return self.program_obj
        return BUILDERS[self.program](**self.args)

    def seed_for(self, array_name: str) -> int:
        return self.seeds.get(array_name, self.seed)

    def template_key(self) -> tuple:
        """Groups jobs that share a program template and binding (the unit a
        geometry recommendation rewrites).  Explicit-program jobs key on
        the derived program's name (which embeds its provenance, e.g.
        ``add_multiply__pre_C``) instead of the builder name."""
        if self.program_obj is not None:
            prog = self.program_obj.name
            # The builder args are gone; the geometry they encoded lives on
            # in the arrays' block shapes, which must stay in the key.
            args_sig = json.dumps(
                {n: list(a.block_shape)
                 for n, a in sorted(self.program_obj.arrays.items())},
                sort_keys=True)
        else:
            prog = self.program
            args_sig = json.dumps(self.args, sort_keys=True)
        return (prog, args_sig, json.dumps(self.params, sort_keys=True),
                self.memory_cap, self.plan_exact)

    def replace(self, **kw) -> "JobSpec":
        fields = {f: getattr(self, f) for f in self.__slots__}
        fields.update(kw)
        return JobSpec(**fields)

    def to_dict(self) -> dict:
        if self.program_obj is not None:
            raise AdvisorError(
                f"job {self.name!r} carries an explicit program object and "
                f"cannot be serialized")
        d = {"program": self.program, "args": {
            k: list(v) if isinstance(v, tuple) else v
            for k, v in self.args.items()}, "params": self.params,
            "seed": self.seed}
        if self.seeds:
            d["seeds"] = self.seeds
        if self.count != 1:
            d["count"] = self.count
        if self.plan_exact:
            d["plan_exact"] = True
        if self.memory_cap is not None:
            d["memory_cap"] = self.memory_cap
        if self.name is not None:
            d["name"] = self.name
        return d

    def __repr__(self) -> str:
        return (f"JobSpec({self.program}, params={self.params}, "
                f"seed={self.seed}, count={self.count})")


class WorkloadSpec:
    """An ordered list of :class:`JobSpec`, JSONL round-trippable."""

    __slots__ = ("jobs",)

    def __init__(self, jobs: Iterable[JobSpec]):
        self.jobs = list(jobs)
        if not self.jobs:
            raise AdvisorError("workload spec has no jobs")

    @classmethod
    def from_jsonl(cls, path: str | os.PathLike) -> "WorkloadSpec":
        jobs = []
        with open(path) as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                try:
                    spec = json.loads(line)
                except json.JSONDecodeError as err:
                    raise AdvisorError(f"{path}:{lineno}: bad JSON: {err}") \
                        from err
                if "program" not in spec or "params" not in spec:
                    raise AdvisorError(f"{path}:{lineno}: job needs "
                                       f"\"program\" and \"params\"")
                try:
                    jobs.append(JobSpec(**{k: v for k, v in spec.items()
                                           if k in JobSpec.__slots__}))
                except (AdvisorError, TypeError) as err:
                    raise AdvisorError(f"{path}:{lineno}: {err}") from err
        if not jobs:
            raise AdvisorError(f"{path}: no jobs")
        return cls(jobs)

    def to_jsonl(self, path: str | os.PathLike) -> None:
        lines = [json.dumps(j.to_dict(), sort_keys=True) for j in self.jobs]
        Path(path).write_text("\n".join(lines) + "\n")

    def expanded(self) -> list[JobSpec]:
        """One :class:`JobSpec` per actual job, ``count`` unrolled and every
        job named (``w<i>`` by default, ``<name>_r<k>`` for repeats)."""
        out = []
        for i, job in enumerate(self.jobs):
            base = job.name or f"w{i + 1}"
            for r in range(job.count):
                name = base if job.count == 1 else f"{base}_r{r + 1}"
                out.append(job.replace(count=1, name=name))
        names = [j.name for j in out]
        if len(set(names)) != len(names):
            raise AdvisorError(f"duplicate job names after expansion: "
                               f"{sorted(n for n in names if names.count(n) > 1)}")
        return out

    def __len__(self) -> int:
        return sum(j.count for j in self.jobs)

    def __repr__(self) -> str:
        return f"WorkloadSpec({len(self.jobs)} entries, {len(self)} jobs)"


# -- geometry rescaling --------------------------------------------------------


def rescale_geometry(spec: JobSpec, axis_param: str,
                     factor: int) -> JobSpec | None:
    """Coarsen one geometry axis by an integer factor at fixed logical size:
    ``params[axis] //= factor`` while every tied block dimension grows by
    ``factor``.  Returns None when the factor does not divide the parameter
    (or the spec is not a plain builder template)."""
    if spec.program_obj is not None or spec.program not in GEOMETRY_AXES:
        return None
    axes = dict(GEOMETRY_AXES[spec.program])
    slots = axes.get(axis_param)
    if slots is None or factor < 2:
        return None
    n = spec.params.get(axis_param)
    if n is None or n % factor != 0 or n // factor < 1:
        return None
    params = dict(spec.params)
    params[axis_param] = n // factor
    args = dict(spec.args)
    for arg, idx in slots:
        v = args[arg]
        if idx is None:
            args[arg] = v * factor
        else:
            t = list(v)
            t[idx] = t[idx] * factor
            args[arg] = tuple(t)
    return spec.replace(params=params, args=args)


def geometry_candidates(spec: JobSpec, factors: Sequence[int] = (2, 3, 4, 6, 8)
                        ) -> list[tuple[str, JobSpec]]:
    """Every divisor-compatible single-axis coarsening of a job's geometry,
    labeled ``"<param>/<factor>"``."""
    out = []
    if spec.program_obj is not None or spec.program not in GEOMETRY_AXES:
        return out
    for axis_param, _slots in GEOMETRY_AXES[spec.program]:
        for f in factors:
            cand = rescale_geometry(spec, axis_param, f)
            if cand is not None:
                out.append((f"{axis_param}/{f}", cand))
    return out


# -- materialization surgery ---------------------------------------------------


def _subprogram(program: Program, stmts: Sequence[Statement], name: str,
                kinds: Mapping[str, ArrayKind]) -> Program:
    """Rebuild a program from a statement subset with some arrays re-kinded.

    Fresh :class:`Array` and :class:`Access` objects are constructed (the
    originals are never mutated); domains, subscripts and guards are shared
    structurally — they are immutable.
    """
    referenced: dict[str, Array] = {}
    for s in stmts:
        for a in s.accesses:
            old = a.array
            if old.name not in referenced:
                referenced[old.name] = Array(
                    old.name, old.dims, old.block_shape, old.dtype_bytes,
                    kinds.get(old.name, old.kind))
    new_stmts = []
    for s in stmts:
        accesses = [Access(referenced[a.array.name], a.type, a.subscripts,
                           a.guard) for a in s.accesses]
        new_stmts.append(Statement(s.name, s.loop_vars, s.domain, accesses,
                                   kernel=s.kernel, position=s.position,
                                   kernel_args=s.kernel_args))
    sub = Program(name, program.params, referenced, new_stmts,
                  param_context=program.param_context)
    sub.validate()
    return sub


def materialization_split(program: Program, array: str
                          ) -> tuple[Program, Program] | None:
    """Split ``program`` at intermediate ``array`` into (prefix, residual).

    The prefix contains every statement in the producer closure of the
    array (its writers plus, transitively, the writers of every non-INPUT
    array they read) with the target re-kinded OUTPUT; the residual is the
    rest with the target re-kinded INPUT.  Returns None when the split is
    not well-formed: the target is not an intermediate, either side would
    be empty, the residual would read a non-input produced only in the
    prefix, or an original OUTPUT would migrate into the prefix.
    """
    target = program.arrays.get(array)
    if target is None or target.kind is not ArrayKind.INTERMEDIATE:
        return None
    keep: set[str] = set()
    closure = {array}
    frontier = [array]
    while frontier:
        nm = frontier.pop()
        for s in program.statements:
            w = s.write
            if w is None or w.array.name != nm or s.name in keep:
                continue
            keep.add(s.name)
            for r in s.reads:
                rn = r.array.name
                if program.arrays[rn].kind is not ArrayKind.INPUT \
                        and rn not in closure:
                    closure.add(rn)
                    frontier.append(rn)
    prefix_stmts = [s for s in program.statements if s.name in keep]
    residual_stmts = [s for s in program.statements if s.name not in keep]
    if not prefix_stmts or not residual_stmts:
        return None
    residual_writes = {s.write.array.name for s in residual_stmts
                       if s.write is not None}
    # Every original output must still be produced by the residual, so an
    # applied job's outputs are unchanged.
    for nm, arr in program.arrays.items():
        if arr.kind is ArrayKind.OUTPUT and nm not in residual_writes:
            return None
    # The residual may read only: real inputs, the materialized array, and
    # what it writes itself — anything else is an unmaterialized dependence
    # on the prefix.
    for s in residual_stmts:
        for r in s.reads:
            rn = r.array.name
            if rn == array or rn in residual_writes:
                continue
            if program.arrays[rn].kind is not ArrayKind.INPUT:
                return None
    try:
        prefix = _subprogram(program, prefix_stmts,
                             f"{program.name}__pre_{array}",
                             {array: ArrayKind.OUTPUT})
        residual = _subprogram(program, residual_stmts,
                               f"{program.name}__post_{array}",
                               {array: ArrayKind.INPUT})
    except ProgramError:
        return None
    return prefix, residual


# -- the observed profile ------------------------------------------------------


def _num(x) -> float:
    return float(x)


class JobProfile:
    """Everything one ``service.job`` span (plus its nested events) says."""

    FIELDS = ("name", "program", "fingerprint", "params", "attempts",
              "wall_seconds", "read_bytes", "write_bytes", "read_ops",
              "write_ops", "predicted_read_bytes", "predicted_write_bytes",
              "pool_hits", "pool_misses", "plan_index", "cache_hit",
              "need_bytes", "memory_bytes", "plan_exact", "prefetch_depth",
              "optimize_seconds", "admission_wait_seconds", "arrays",
              "per_array")

    __slots__ = FIELDS

    def __init__(self, name: str):
        self.name = name
        self.program = None
        self.fingerprint = None
        self.params: dict = {}
        self.attempts = 0
        self.wall_seconds = 0.0
        self.read_bytes = self.write_bytes = 0
        self.read_ops = self.write_ops = 0
        self.predicted_read_bytes = self.predicted_write_bytes = 0
        self.pool_hits = self.pool_misses = 0
        self.plan_index = None
        self.cache_hit = False
        self.need_bytes = 0
        self.memory_bytes = 0
        self.plan_exact = False
        self.prefetch_depth = 0
        self.optimize_seconds = 0.0
        self.admission_wait_seconds = 0.0
        self.arrays: dict[str, str] = {}
        self.per_array: dict[str, dict[str, int]] = {}

    def to_dict(self) -> dict:
        return {f: getattr(self, f) for f in self.FIELDS}

    def __eq__(self, other) -> bool:
        return isinstance(other, JobProfile) and \
            self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"JobProfile({self.name}, {self.program}, "
                f"read={self.read_bytes}B, write={self.write_bytes}B)")


class WorkloadProfile:
    """The observed workload, rebuilt identically from a live tracer or
    from exported trace/metrics files (see module docstring)."""

    FIELDS = ("schema_version", "jobs", "programs", "arrays", "pool",
              "plan_cache", "admission", "prefetch", "disk", "files",
              "totals")

    __slots__ = FIELDS

    def __init__(self):
        self.schema_version = 0
        self.jobs: dict[str, JobProfile] = {}
        self.programs: dict[str, dict] = {}
        self.arrays: dict[str, dict] = {}
        self.pool: dict[str, float] = {}
        self.plan_cache: dict[str, float] = {}
        self.admission: dict[str, float] = {}
        self.prefetch: dict[str, float] = {}
        self.disk: dict[str, float] = {}
        self.files: dict[str, dict] = {}
        self.totals: dict[str, float] = {}

    # -- construction --------------------------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Mapping],
                    series: Mapping[str, float] | None = None
                    ) -> "WorkloadProfile":
        """Build from trace-event dicts (and optionally a metrics series
        snapshot).  The single constructor behind both the live and the
        offline paths."""
        p = cls()
        stacks: dict[int, list[dict]] = {}
        jobs = p.jobs
        seq_state: dict[str, int] = {}

        def enclosing_job(tid: int) -> JobProfile | None:
            for entry in reversed(stacks.get(tid, ())):
                if entry["name"] == "service.job":
                    key = entry["args"].get("job")
                    return jobs.get(key) if key is not None else None
            return None

        for ev in events:
            p.schema_version = max(p.schema_version, ev.get("v", 0))
            name, ph = ev.get("name"), ev.get("ph")
            tid = ev.get("tid", 0)
            args = ev.get("args") or {}
            ts = ev.get("ts", 0.0)
            if ph == "B":
                stacks.setdefault(tid, []).append(
                    {"name": name, "ts": ts, "args": args})
                if name == "service.job":
                    key = args.get("job")
                    if key is not None and key not in jobs:
                        jobs[key] = JobProfile(key)
                    if key is not None:
                        jobs[key].program = args.get("program",
                                                     jobs[key].program)
                        jobs[key].attempts = max(jobs[key].attempts,
                                                 int(args.get("attempt", 1)))
                continue
            if ph == "E":
                stack = stacks.get(tid)
                if not stack:
                    continue
                begin = stack.pop()
                dur = ts - begin["ts"]
                bname = begin["name"]
                if bname == "service.job":
                    key = begin["args"].get("job")
                    job = jobs.get(key)
                    if job is not None:
                        job.wall_seconds = dur
                        _merge_job_end(job, args)
                        _roll_program(p, job)
                elif bname == "service.admission":
                    p.admission["waits"] = p.admission.get("waits", 0) + 1
                    p.admission["wait_seconds"] = \
                        p.admission.get("wait_seconds", 0.0) + dur
                elif bname == "prefetch.stage":
                    p.prefetch["stages"] = p.prefetch.get("stages", 0) + 1
                    p.prefetch["stage_seconds"] = \
                        p.prefetch.get("stage_seconds", 0.0) + dur
                elif bname == "prefetch.wait":
                    p.prefetch["waits"] = p.prefetch.get("waits", 0) + 1
                    p.prefetch["wait_seconds"] = \
                        p.prefetch.get("wait_seconds", 0.0) + dur
                continue
            # instants
            if name == "exec.io":
                nbytes = int(args.get("bytes", 0))
                op = args.get("op")
                job = enclosing_job(tid)
                akey = args.get("array", "?")
                if job is not None:
                    rec = job.per_array.setdefault(
                        akey, {"read_bytes": 0, "write_bytes": 0,
                               "read_ops": 0, "write_ops": 0})
                    prog = job.program or "?"
                else:
                    rec = None
                    prog = "?"
                arec = p.arrays.setdefault(
                    f"{prog}:{akey}",
                    {"read_bytes": 0, "write_bytes": 0,
                     "read_ops": 0, "write_ops": 0, "jobs": 0,
                     "_seen": set()})
                field = "read" if op == "read" else "write"
                arec[field + "_bytes"] += nbytes
                arec[field + "_ops"] += 1
                if job is not None and job.name not in arec["_seen"]:
                    arec["_seen"].add(job.name)
                    arec["jobs"] += 1
                if rec is not None:
                    rec[field + "_bytes"] += nbytes
                    rec[field + "_ops"] += 1
            elif name in ("disk.read", "disk.write"):
                fname = args.get("file", "?")
                nbytes = int(args.get("bytes", 0))
                offset = int(args.get("offset", 0))
                op = "read" if name == "disk.read" else "write"
                frec = p.files.setdefault(
                    fname, {"read_ops": 0, "read_bytes": 0,
                            "sequential_reads": 0, "write_ops": 0,
                            "write_bytes": 0, "sequential_writes": 0})
                last_end = seq_state.get(f"{op}:{fname}")
                if last_end is not None and offset == last_end:
                    frec[f"sequential_{op}s"] += 1
                seq_state[f"{op}:{fname}"] = offset + nbytes
                frec[f"{op}_ops"] += 1
                frec[f"{op}_bytes"] += nbytes
                p.disk[f"{op}_bytes"] = p.disk.get(f"{op}_bytes", 0) + nbytes
                p.disk[f"{op}_ops"] = p.disk.get(f"{op}_ops", 0) + 1
            elif name == "disk.retry":
                p.disk["retries"] = p.disk.get("retries", 0) + 1

        for arec in p.arrays.values():
            arec.pop("_seen", None)
        p.totals = {
            "jobs": len(jobs),
            "read_bytes": sum(j.read_bytes for j in jobs.values()),
            "write_bytes": sum(j.write_bytes for j in jobs.values()),
            "optimize_seconds": sum(j.optimize_seconds for j in jobs.values()),
            "admission_wait_seconds": sum(j.admission_wait_seconds
                                          for j in jobs.values()),
        }
        if series:
            p._fold_series(series)
        if p.prefetch:
            staged = p.prefetch.get("stage_seconds", 0.0)
            waited = p.prefetch.get("wait_seconds", 0.0)
            p.prefetch["wait_ratio"] = waited / staged if staged else 0.0
        return p

    @classmethod
    def from_run(cls, tracer: obs_trace.Tracer,
                 registry: obs_metrics.MetricsRegistry | None = None
                 ) -> "WorkloadProfile":
        """Capture a live run: the in-memory tracer's events (converted via
        the same ``to_dict`` serialization the JSONL sink writes) plus the
        registry snapshot."""
        events = [e.to_dict() for e in tracer.events]
        series = registry.snapshot() if registry is not None else None
        return cls.from_events(events, series)

    @classmethod
    def from_files(cls, trace_path: str | os.PathLike,
                   metrics_path: str | os.PathLike | None = None
                   ) -> "WorkloadProfile":
        """Rebuild offline from an exported JSONL trace and (optionally) a
        metrics snapshot file — tolerant readers, see :func:`load_trace`."""
        series = load_metrics(metrics_path) if metrics_path is not None \
            else None
        return cls.from_events(load_trace(trace_path), series)

    def _fold_series(self, series: Mapping[str, float]) -> None:
        def total(prefix: str) -> float:
            return sum(_num(v) for k, v in series.items()
                       if k == prefix or k.startswith(prefix + "{"))

        hits, misses = total("repro_pool_hits"), total("repro_pool_misses")
        self.pool = {"hits": hits, "misses": misses,
                     "evictions": total("repro_pool_evictions"),
                     "peak_bytes": max(
                         [_num(v) for k, v in series.items()
                          if k.startswith("repro_pool_peak_bytes")] or [0.0]),
                     "hit_rate": hits / (hits + misses)
                     if hits + misses else 0.0}
        self.plan_cache = {"hits": total("repro_plan_cache_hits"),
                           "misses": total("repro_plan_cache_misses")}
        for k, v in series.items():
            if k.startswith("repro_service_"):
                self.admission.setdefault("service", {})
        self.admission["peak_admitted_bytes"] = max(
            [_num(v) for k, v in series.items()
             if k.startswith("repro_service_admitted_bytes")] or [0.0])
        self.admission.pop("service", None)

    # -- views ---------------------------------------------------------------

    def to_dict(self) -> dict:
        d = {f: getattr(self, f) for f in self.FIELDS
             if f not in ("jobs",)}
        d["jobs"] = {k: j.to_dict() for k, j in sorted(self.jobs.items())}
        return d

    def __eq__(self, other) -> bool:
        if not isinstance(other, WorkloadProfile):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"WorkloadProfile({len(self.jobs)} jobs, "
                f"{len(self.programs)} programs, "
                f"read={self.totals.get('read_bytes', 0)}B)")


def _merge_job_end(job: JobProfile, args: Mapping) -> None:
    job.fingerprint = args.get("fingerprint", job.fingerprint)
    if "params" in args:
        job.params = {k: int(v) for k, v in args["params"].items()}
    if "arrays" in args:
        job.arrays = dict(args["arrays"])
    for f in ("read_bytes", "write_bytes", "read_ops", "write_ops",
              "predicted_read_bytes", "predicted_write_bytes", "pool_hits",
              "pool_misses", "need_bytes", "memory_bytes", "prefetch_depth"):
        if f in args:
            setattr(job, f, int(args[f]))
    if "plan" in args:
        job.plan_index = int(args["plan"])
    if "cache_hit" in args:
        job.cache_hit = bool(args["cache_hit"])
    if "plan_exact" in args:
        job.plan_exact = bool(args["plan_exact"])
    for f in ("optimize_seconds", "admission_wait_seconds"):
        if f in args:
            setattr(job, f, float(args[f]))


def _roll_program(p: WorkloadProfile, job: JobProfile) -> None:
    """Fold a finished job into the per-program frequency × fingerprint
    rollup (fingerprint falls back to the program name for v0 traces)."""
    key = job.fingerprint or f"name:{job.program}"
    rec = p.programs.setdefault(
        key, {"program": job.program, "fingerprint": job.fingerprint,
              "params": job.params, "count": 0, "read_bytes": 0,
              "write_bytes": 0, "optimize_seconds": 0.0, "cache_hits": 0,
              "admission_wait_seconds": 0.0, "jobs": []})
    rec["count"] += 1
    rec["read_bytes"] += job.read_bytes
    rec["write_bytes"] += job.write_bytes
    rec["optimize_seconds"] += job.optimize_seconds
    rec["admission_wait_seconds"] += job.admission_wait_seconds
    rec["cache_hits"] += 1 if job.cache_hit else 0
    rec["jobs"].append(job.name)
