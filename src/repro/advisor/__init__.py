"""repro.advisor — workload-driven storage advisor.

Turns observed workloads into **costed, applied, verified** storage and
configuration recommendations.  Three stages, mirrored by the submodules:

1. **Ingest** (:mod:`~repro.advisor.workload`): build a
   :class:`WorkloadProfile` from a workload's obs signal — live from a
   traced :class:`~repro.service.ArrayService` run, or offline from an
   exported JSONL trace + metrics snapshot (both schema-versioned; the
   readers are tolerant of older writers and refuse newer ones).  The two
   paths produce field-identical profiles.
2. **Analyze** (:mod:`~repro.advisor.analyzers`): pluggable analyzers emit
   typed :class:`Recommendation` objects — block-geometry rescaling,
   persistent materialization of shared intermediates, DAF vs LAB-tree
   layout, memory-budget sizing, prefetch depth — each carrying predicted
   whole-workload before/after I/O bytes and model seconds plus a
   confidence.
3. **Apply & verify** (:mod:`~repro.advisor.apply`): fold a recommendation
   set into a new :class:`AdvisorConfig` (job rewrites + service knobs),
   re-run the workload, and score every prediction against measurement
   within a documented tolerance — mispredictions are flagged, never
   hidden.

CLI: ``python -m repro advise --jobs workload.jsonl --apply`` (or
``--trace run.jsonl --metrics metrics.json`` for the offline path).

The single-program :class:`BlockSizeAdvisor` (paper §7 / Figure 3(a))
lives on in :mod:`~repro.advisor.blocksize`; its old home
``repro.extensions.blocksize`` is a deprecation shim.
"""

from .analyzers import (ANALYZERS, AdvisorContext, Analyzer,
                        BlockGeometryAnalyzer, LayoutAnalyzer,
                        MaterializationAnalyzer, MemoryBudgetAnalyzer,
                        PrefetchAnalyzer, run_analyzers)
from .apply import (AdvisorConfig, apply_recommendations, measured_io_bytes,
                    run_workload, validate_recommendations)
from .blocksize import BlockSizeAdvisor, BlockSizeChoice
from .recommendations import ACTION_TYPES, Recommendation, rank
from .report import REPORT_VERSION, render_report, report_doc, write_report
from .workload import (BUILDERS, GEOMETRY_AXES, JobProfile, JobSpec,
                       WorkloadProfile, WorkloadSpec, generate_input,
                       geometry_candidates, load_metrics, load_trace,
                       materialization_split, rescale_geometry)

__all__ = [
    # workload
    "BUILDERS", "GEOMETRY_AXES", "JobSpec", "WorkloadSpec", "JobProfile",
    "WorkloadProfile", "generate_input", "rescale_geometry",
    "geometry_candidates", "materialization_split", "load_trace",
    "load_metrics",
    # recommendations
    "Recommendation", "ACTION_TYPES", "rank",
    # analyzers
    "AdvisorContext", "Analyzer", "BlockGeometryAnalyzer",
    "MaterializationAnalyzer", "MemoryBudgetAnalyzer", "LayoutAnalyzer",
    "PrefetchAnalyzer", "ANALYZERS", "run_analyzers",
    # apply
    "AdvisorConfig", "apply_recommendations", "run_workload",
    "measured_io_bytes", "validate_recommendations",
    # report
    "REPORT_VERSION", "render_report", "report_doc", "write_report",
    # single-program advisor (paper §7)
    "BlockSizeAdvisor", "BlockSizeChoice",
]
