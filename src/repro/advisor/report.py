"""Advisor output: ranked human-readable report + machine JSON document."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from .recommendations import Recommendation
from .workload import WorkloadProfile

__all__ = ["REPORT_VERSION", "render_report", "report_doc", "write_report"]

#: Version of the machine-readable report document (its ``"v"`` field).
REPORT_VERSION = 1


def _mb(n: float) -> str:
    return f"{n / 1e6:,.2f} MB"


def render_report(recs: Sequence[Recommendation],
                  profile: WorkloadProfile | None = None,
                  validation: Mapping | None = None,
                  top: int | None = None) -> str:
    """The ranked terminal report (already-ranked input order is kept)."""
    lines = []
    if profile is not None:
        t = profile.totals
        lines.append(
            f"Workload: {int(t.get('jobs', 0))} jobs, "
            f"{_mb(t.get('read_bytes', 0))} read / "
            f"{_mb(t.get('write_bytes', 0))} written "
            f"({len(profile.programs)} program template(s))")
        if profile.pool:
            lines.append(
                f"Buffer pool: {profile.pool.get('hit_rate', 0.0):.0%} hit "
                f"rate ({int(profile.pool.get('hits', 0))} hits / "
                f"{int(profile.pool.get('misses', 0))} misses, "
                f"{int(profile.pool.get('evictions', 0))} evictions)")
        lines.append("")
    shown = recs if top is None else recs[:top]
    if not shown:
        lines.append("No recommendations: the workload already runs at the "
                     "cost model's floor for its configuration.")
        return "\n".join(lines) + "\n"
    lines.append(f"Top {len(shown)} recommendation(s) of {len(recs)}:")
    for i, r in enumerate(shown, 1):
        tag = "advisory" if r.advisory else \
            f"saves {_mb(r.predicted_saved_bytes)} " \
            f"({r.predicted_saved_fraction:.1%}), " \
            f"{r.predicted_saved_seconds:.3f} model-s"
        lines.append(f"{i:2}. [{r.kind}] {r.title}")
        lines.append(f"    {tag}; confidence {r.confidence:.0%}")
        if r.validated:
            verdict = "MISPREDICTED" if r.mispredicted else "validated"
            lines.append(
                f"    {verdict}: measured {_mb(r.measured_saved_bytes)} "
                f"saved (error {r.validation_error:.2%} of workload, "
                f"tolerance {r.validation_tolerance:.2%})")
        for dl in r.detail.splitlines():
            lines.append(f"    {dl}")
    if validation is not None and validation.get("reduction") is not None:
        lines.append("")
        lines.append(
            f"Applied set: {_mb(validation['baseline_bytes'])} → "
            f"{_mb(validation['combined_bytes'])} measured I/O "
            f"({validation['reduction']:.1%} reduction)")
    return "\n".join(lines) + "\n"


def report_doc(recs: Sequence[Recommendation],
               profile: WorkloadProfile | None = None,
               validation: Mapping | None = None,
               config: Mapping | None = None) -> dict:
    """The machine-readable counterpart (versioned, JSON-serializable)."""
    doc = {"v": REPORT_VERSION, "kind": "repro.advisor.report",
           "recommendations": [r.to_dict() for r in recs]}
    if config is not None:
        doc["config"] = dict(config)
    if profile is not None:
        doc["workload"] = {"totals": profile.totals,
                           "programs": {
                               k: {f: v for f, v in rec.items()
                                   if f != "jobs"}
                               for k, rec in profile.programs.items()},
                           "pool": profile.pool}
    if validation is not None:
        doc["validation"] = dict(validation)
    return doc


def write_report(path, recs, profile=None, validation=None,
                 config=None) -> None:
    doc = report_doc(recs, profile, validation, config)
    Path(path).write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
