"""Typed, costed advisor recommendations.

A :class:`Recommendation` is the unit the whole subsystem trades in: each
one names a *kind* (block geometry, materialization, layout, memory
budget, prefetch depth), carries machine-applicable ``actions``, and
states its prediction as **whole-workload** before/after I/O bytes and
model seconds — never a per-job delta, so two recommendations' predictions
are directly comparable and the acceptance check ("applying the top set
cuts measured bytes by ≥ X%") needs no further arithmetic.

Predictions are promises, so they are checked: the apply pipeline
(:mod:`repro.advisor.apply`) re-runs the workload with a recommendation
applied and fills in the ``measured_*`` fields; :meth:`Recommendation.
check` then compares predicted and measured savings within a tolerance
and flags mispredictions rather than hiding them.  *Advisory*
recommendations (layout, prefetch-depth, some memory sizing) predict a
zero byte delta by construction — they target footprint, latency, or
headroom, not traffic — and validate trivially on the byte axis.
"""

from __future__ import annotations

import json
from typing import Mapping, Sequence

__all__ = ["Recommendation", "ACTION_TYPES", "rank"]

#: The closed vocabulary of machine-applicable actions.  ``rescale`` and
#: ``materialize`` rewrite job specs; the rest rewrite the service config.
ACTION_TYPES = ("rescale", "materialize", "store_format", "memory_cap",
                "prefetch_depth")


class Recommendation:
    """One costed recommendation; see module docstring for the contract."""

    FIELDS = ("kind", "title", "detail", "confidence", "advisory",
              "actions", "predicted_before_bytes", "predicted_after_bytes",
              "predicted_before_seconds", "predicted_after_seconds",
              "measured_before_bytes", "measured_after_bytes", "validated",
              "mispredicted", "validation_error", "validation_tolerance")

    __slots__ = FIELDS

    def __init__(self, kind: str, title: str, detail: str,
                 actions: Sequence[Mapping], predicted_before_bytes: int,
                 predicted_after_bytes: int,
                 predicted_before_seconds: float,
                 predicted_after_seconds: float, confidence: float = 0.5,
                 advisory: bool = False):
        self.kind = kind
        self.title = title
        self.detail = detail
        self.actions = [dict(a) for a in actions]
        for a in self.actions:
            if a.get("type") not in ACTION_TYPES:
                raise ValueError(f"unknown action type {a.get('type')!r} "
                                 f"(known: {ACTION_TYPES})")
        self.predicted_before_bytes = int(predicted_before_bytes)
        self.predicted_after_bytes = int(predicted_after_bytes)
        self.predicted_before_seconds = float(predicted_before_seconds)
        self.predicted_after_seconds = float(predicted_after_seconds)
        self.confidence = max(0.0, min(1.0, float(confidence)))
        self.advisory = bool(advisory)
        # Filled by validation (apply.validate_recommendations):
        self.measured_before_bytes: int | None = None
        self.measured_after_bytes: int | None = None
        self.validated = False        # a verification re-run happened
        self.mispredicted = False     # ... and missed the tolerance
        self.validation_error: float | None = None
        self.validation_tolerance: float | None = None

    # -- predicted deltas ----------------------------------------------------

    @property
    def predicted_saved_bytes(self) -> int:
        return self.predicted_before_bytes - self.predicted_after_bytes

    @property
    def predicted_saved_seconds(self) -> float:
        return self.predicted_before_seconds - self.predicted_after_seconds

    @property
    def predicted_saved_fraction(self) -> float:
        if self.predicted_before_bytes <= 0:
            return 0.0
        return self.predicted_saved_bytes / self.predicted_before_bytes

    @property
    def measured_saved_bytes(self) -> int | None:
        if self.measured_before_bytes is None \
                or self.measured_after_bytes is None:
            return None
        return self.measured_before_bytes - self.measured_after_bytes

    # -- validation ----------------------------------------------------------

    def check(self, measured_before: int, measured_after: int,
              tolerance: float) -> bool:
        """Record a verification re-run and judge the prediction.

        The judgment metric is the *relative savings error*
        ``|measured_saved − predicted_saved| / max(measured_before, 1)`` —
        normalizing by workload size, not by the (possibly tiny) delta, so
        a near-zero advisory prediction is not penalized for noise.
        Returns True when within ``tolerance``; on a miss the
        recommendation is flagged ``mispredicted``, never silently
        re-scored.
        """
        self.measured_before_bytes = int(measured_before)
        self.measured_after_bytes = int(measured_after)
        self.validated = True
        self.validation_tolerance = float(tolerance)
        err = abs(self.measured_saved_bytes - self.predicted_saved_bytes) \
            / max(measured_before, 1)
        self.validation_error = err
        self.mispredicted = err > tolerance
        return not self.mispredicted

    # -- views ---------------------------------------------------------------

    def to_dict(self) -> dict:
        d = {f: getattr(self, f) for f in self.FIELDS}
        d["predicted_saved_bytes"] = self.predicted_saved_bytes
        d["predicted_saved_seconds"] = self.predicted_saved_seconds
        d["measured_saved_bytes"] = self.measured_saved_bytes
        return d

    def __repr__(self) -> str:
        flag = " ADVISORY" if self.advisory else ""
        if self.validated:
            flag += " MISPREDICTED" if self.mispredicted else " VALIDATED"
        return (f"Recommendation({self.kind}: {self.title!r}, "
                f"saves {self.predicted_saved_bytes}B "
                f"/ {self.predicted_saved_seconds:.3f}s{flag})")


def rank(recs: Sequence[Recommendation]) -> list[Recommendation]:
    """Most valuable first: by predicted saved model-seconds, then saved
    bytes, then confidence; advisory recommendations sort after concrete
    ones at equal savings.  Deterministic (ties broken on the serialized
    action list)."""
    return sorted(recs, key=lambda r: (
        -r.predicted_saved_seconds, -r.predicted_saved_bytes, r.advisory,
        -r.confidence, r.kind, json.dumps(r.actions, sort_keys=True)))
