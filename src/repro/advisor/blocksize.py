"""Single-program block-size advisor (paper Section 7, Figure 3(a)).

Historically this lived in :mod:`repro.extensions.blocksize`; it is now
part of the advisor subsystem (that module remains as a deprecation shim).
The workload-level generalization is
:class:`repro.advisor.analyzers.BlockGeometryAnalyzer`, which rescales the
block geometry of every job template *at fixed logical array size* and
validates the prediction by re-running.  This class remains the direct,
single-program form of the paper's joint question: the caller supplies a
program factory parameterized by a block-size option, the advisor runs the
full sharing optimizer for every option, and recommends the (option, plan)
pair with the least I/O that fits the memory cap.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping

from ..exceptions import OptimizationError
from ..ir import Program
from ..optimizer import IOModel, OptimizationResult, Plan, optimize

__all__ = ["BlockSizeChoice", "BlockSizeAdvisor"]


class BlockSizeChoice:
    """One evaluated option: the factory argument, its plans, its best plan."""

    __slots__ = ("option", "result", "best")

    def __init__(self, option, result: OptimizationResult, best: Plan | None):
        self.option = option
        self.result = result
        self.best = best

    def __repr__(self) -> str:
        if self.best is None:
            return f"BlockSizeChoice({self.option!r}: no plan fits)"
        return (f"BlockSizeChoice({self.option!r}: io={self.best.cost.io_seconds:.1f}s, "
                f"mem={self.best.cost.memory_bytes / 1e6:.0f}MB)")


class BlockSizeAdvisor:
    """Joint block-size + I/O-sharing optimization."""

    def __init__(self, program_factory: Callable[..., Program],
                 params: Mapping[str, int],
                 io_model: IOModel | None = None,
                 block_bytes_factory: Callable[..., Mapping[str, int]] | None = None):
        self.program_factory = program_factory
        self.params = dict(params)
        self.io_model = io_model or IOModel()
        # Optional: paper-scale byte sizes per option (for predicted seconds).
        self.block_bytes_factory = block_bytes_factory

    def evaluate(self, option, memory_cap_bytes: int | None = None,
                 max_set_size: int | None = None) -> BlockSizeChoice:
        program = self.program_factory(option)
        block_bytes = (self.block_bytes_factory(option)
                       if self.block_bytes_factory else None)
        result = optimize(program, self.params, io_model=self.io_model,
                          max_set_size=max_set_size, block_bytes=block_bytes)
        try:
            best = result.best(memory_cap_bytes)
        except OptimizationError:
            best = None
        return BlockSizeChoice(option, result, best)

    def sweep(self, options: Iterable, memory_cap_bytes: int | None = None,
              max_set_size: int | None = None) -> list[BlockSizeChoice]:
        return [self.evaluate(opt, memory_cap_bytes, max_set_size)
                for opt in options]

    def recommend(self, options: Iterable, memory_cap_bytes: int | None = None,
                  max_set_size: int | None = None) -> BlockSizeChoice:
        """The option whose best fitting plan has the least I/O time."""
        choices = self.sweep(options, memory_cap_bytes, max_set_size)
        fitting = [c for c in choices if c.best is not None]
        if not fitting:
            raise OptimizationError("no block-size option fits the memory cap")
        return min(fitting, key=lambda c: c.best.cost.io_seconds)
