"""The advisor's pluggable analyzers.

Every analyzer looks at one axis of the workload and emits zero or more
:class:`~repro.advisor.recommendations.Recommendation` objects whose
predictions cover the *whole* workload (module contract documented there).
The shared :class:`AdvisorContext` memoizes optimizer runs by template so
an analyzer pass costs one pruned Apriori search per distinct
(program, params, cap) triple, not per job.

Built-in analyzers, in the order they run:

* :class:`BlockGeometryAnalyzer` — re-cost each job template under every
  divisor-compatible block-geometry rescaling at fixed logical size
  (generalizing the old ``repro.extensions.blocksize`` sweep, which varied
  the *problem*, not the blocking); recommend the best one.
* :class:`MaterializationAnalyzer` — split templates at each intermediate
  array; when several jobs would share the producer prefix (same prefix-
  input seeds), recommend persisting it once.
* :class:`MemoryBudgetAnalyzer` — re-cost templates without the cap to
  find plans the budget is pricing out; otherwise right-size the cap to
  observed admission behaviour (advisory).
* :class:`LayoutAnalyzer` — intermediates observed with zero I/O (write-
  elided, §footnote-8 style) still pay DAF preallocation footprint;
  recommend LAB-tree, whose blocks materialize lazily (advisory).
* :class:`PrefetchAnalyzer` — read prefetch stage/wait ratios; deepen or
  introduce staging when jobs are I/O-bound (advisory).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..exceptions import OptimizationError
from ..obs import metrics as obs_metrics
from ..optimizer import Optimizer, Plan
from .apply import AdvisorConfig
from .recommendations import Recommendation, rank
from .workload import JobSpec, WorkloadProfile, geometry_candidates, \
    materialization_split

__all__ = ["AdvisorContext", "Analyzer", "BlockGeometryAnalyzer",
           "MaterializationAnalyzer", "MemoryBudgetAnalyzer",
           "LayoutAnalyzer", "PrefetchAnalyzer", "ANALYZERS",
           "run_analyzers"]


class AdvisorContext:
    """Shared state for one analyzer pass: config, optional observed
    profile, and a plan memo keyed by job template + cap."""

    def __init__(self, config: AdvisorConfig,
                 profile: WorkloadProfile | None = None):
        self.config = config
        self.profile = profile
        self._plans: dict[tuple, Plan | None] = {}

    def cap_for(self, job: JobSpec) -> int:
        return job.memory_cap if job.memory_cap is not None \
            else self.config.memory_cap_bytes

    def best_plan(self, job: JobSpec, cap: int | None = "job"
                  ) -> Plan | None:
        """The cheapest legal plan for a job's template under ``cap``
        (``"job"`` = the job's effective cap; ``None`` = uncapped).
        Memoized; returns None when nothing fits."""
        if cap == "job":
            cap = self.cap_for(job)
        key = job.template_key() + (cap,)
        if key not in self._plans:
            opt = Optimizer(job.build_program(),
                            io_model=self.config.io_model)
            try:
                result = opt.optimize(
                    job.params, memory_cap_bytes=cap,
                    max_set_size=self.config.max_set_size,
                    max_candidates=self.config.max_candidates, prune=True)
                self._plans[key] = result.best(cap)
            except OptimizationError:
                self._plans[key] = None
        return self._plans[key]

    def groups(self) -> list[list[JobSpec]]:
        """Jobs sharing a template (the unit recommendations rewrite);
        explicit-program jobs are excluded — they are advisor products, not
        advisor inputs."""
        by_key: dict[tuple, list[JobSpec]] = {}
        for job in self.config.jobs:
            if job.program_obj is None:
                by_key.setdefault(job.template_key(), []).append(job)
        return list(by_key.values())

    def baseline(self) -> tuple[int, float]:
        """Predicted whole-workload (bytes, model seconds) under the
        current config — the "before" side of every recommendation."""
        total_b, total_s = 0, 0.0
        for job in self.config.jobs:
            plan = self.best_plan(job)
            if plan is not None:
                total_b += plan.cost.read_bytes + plan.cost.write_bytes
                total_s += plan.cost.io_seconds
        return total_b, total_s

    def confidence_for(self, jobs: Sequence[JobSpec]) -> float:
        """Plan-exact jobs execute their plan's I/O byte-for-byte, so
        predictions about them are near-certain; scheduled execution can
        deviate (pool reuse across jobs), so confidence drops."""
        return 0.9 if all(j.plan_exact for j in jobs) else 0.6


def _plan_bytes(plan: Plan) -> int:
    return plan.cost.read_bytes + plan.cost.write_bytes


class Analyzer:
    """Base: subclasses set ``name``/``kind`` and implement analyze()."""

    name = "base"
    kind = "base"

    def analyze(self, ctx: AdvisorContext) -> list[Recommendation]:
        raise NotImplementedError


class BlockGeometryAnalyzer(Analyzer):
    name = "block_geometry"
    kind = "block_geometry"

    #: Bound on optimizer calls per template group.
    max_candidates_per_group = 12

    def analyze(self, ctx: AdvisorContext) -> list[Recommendation]:
        base_b, base_s = ctx.baseline()
        recs = []
        for jobs in ctx.groups():
            rep = jobs[0]
            cur = ctx.best_plan(rep)
            if cur is None:
                continue
            best_label, best_cand, best_plan = None, None, None
            for label, cand in geometry_candidates(
                    rep)[:self.max_candidates_per_group]:
                plan = ctx.best_plan(cand)
                if plan is None:  # coarser blocks can outgrow the cap
                    continue
                if best_plan is None or _plan_bytes(plan) < _plan_bytes(best_plan):
                    best_label, best_cand, best_plan = label, cand, plan
            if best_plan is None or \
                    _plan_bytes(best_plan) >= _plan_bytes(cur):
                continue
            n = len(jobs)
            saved_b = n * (_plan_bytes(cur) - _plan_bytes(best_plan))
            saved_s = n * (cur.cost.io_seconds - best_plan.cost.io_seconds)
            axis, factor = best_label.split("/")
            recs.append(Recommendation(
                kind=self.kind,
                title=f"Rescale {rep.program} blocks: {axis} ÷ {factor}",
                detail=(f"{n} job(s) of template {rep.program}"
                        f"{rep.params}: coarsening axis {axis} by {factor} "
                        f"(block args {best_cand.args}) cuts the best "
                        f"plan's I/O from {_plan_bytes(cur):,} to "
                        f"{_plan_bytes(best_plan):,} bytes per job at "
                        f"fixed logical array sizes."),
                actions=[{"type": "rescale", "jobs": [j.name for j in jobs],
                          "axis": axis, "factor": int(factor)}],
                predicted_before_bytes=base_b,
                predicted_after_bytes=base_b - saved_b,
                predicted_before_seconds=base_s,
                predicted_after_seconds=base_s - saved_s,
                confidence=ctx.confidence_for(jobs)))
        return recs


class MaterializationAnalyzer(Analyzer):
    name = "materialization"
    kind = "materialize"

    def analyze(self, ctx: AdvisorContext) -> list[Recommendation]:
        base_b, base_s = ctx.baseline()
        recs = []
        for jobs in ctx.groups():
            rep = jobs[0]
            if len(jobs) < 2:
                continue  # nothing to share
            cur = ctx.best_plan(rep)
            if cur is None:
                continue
            program = rep.build_program()
            for aname, arr in sorted(program.arrays.items()):
                if arr.kind.value != "intermediate":
                    continue
                split = materialization_split(program, aname)
                if split is None:
                    continue
                prefix, residual = split
                prefix_inputs = sorted(n for n, a in prefix.arrays.items()
                                       if a.kind.value == "input")
                producers = {tuple((n, j.seed_for(n)) for n in prefix_inputs)
                             for j in jobs}
                n, g = len(jobs), len(producers)
                if g >= n:
                    continue  # no sharing → pure overhead
                pre_plan = self._plan(ctx, rep, prefix)
                post_plan = self._plan(ctx, rep, residual)
                if pre_plan is None or post_plan is None:
                    continue
                before = n * _plan_bytes(cur)
                after = g * _plan_bytes(pre_plan) + n * _plan_bytes(post_plan)
                if after >= before:
                    continue
                before_s = n * cur.cost.io_seconds
                after_s = g * pre_plan.cost.io_seconds \
                    + n * post_plan.cost.io_seconds
                recs.append(Recommendation(
                    kind=self.kind,
                    title=f"Materialize {rep.program}.{aname} "
                          f"({g} producer(s) feed {n} jobs)",
                    detail=(f"{n} jobs share the computation of {aname} "
                            f"(inputs {prefix_inputs} agree across "
                            f"{g} distinct seed group(s)); persisting it "
                            f"runs the producer prefix {g}× instead of "
                            f"{n}× — {before:,} → {after:,} bytes for "
                            f"this template."),
                    actions=[{"type": "materialize", "array": aname,
                              "jobs": [j.name for j in jobs]}],
                    predicted_before_bytes=base_b,
                    predicted_after_bytes=base_b - (before - after),
                    predicted_before_seconds=base_s,
                    predicted_after_seconds=base_s - (before_s - after_s),
                    confidence=ctx.confidence_for(jobs)))
        return recs

    @staticmethod
    def _plan(ctx: AdvisorContext, rep: JobSpec, program) -> Plan | None:
        # Memo-keyed by the derived program's name (embeds the split
        # array), so prefix and residual never collide in the plan cache.
        sub = rep.replace(program_obj=program, args={}, name=program.name)
        return ctx.best_plan(sub)


class MemoryBudgetAnalyzer(Analyzer):
    name = "memory_budget"
    kind = "memory_budget"

    def analyze(self, ctx: AdvisorContext) -> list[Recommendation]:
        base_b, base_s = ctx.baseline()
        recs = []
        # Is the cap pricing out cheaper plans?
        saved_b, saved_s, need = 0, 0.0, 0
        for jobs in ctx.groups():
            rep = jobs[0]
            capped = ctx.best_plan(rep)
            free = ctx.best_plan(rep, cap=None)
            if capped is None or free is None:
                continue
            if _plan_bytes(free) < _plan_bytes(capped):
                saved_b += len(jobs) * (_plan_bytes(capped) - _plan_bytes(free))
                saved_s += len(jobs) * (capped.cost.io_seconds
                                        - free.cost.io_seconds)
                need = max(need, free.cost.memory_bytes)
        if saved_b > 0:
            new_cap = max(need, ctx.config.memory_cap_bytes)
            recs.append(Recommendation(
                kind=self.kind,
                title=f"Raise memory cap to {new_cap:,} bytes",
                detail=(f"The {ctx.config.memory_cap_bytes:,}-byte budget "
                        f"prices out cheaper plans; raising it to the "
                        f"largest such plan's high-water mark "
                        f"({need:,} bytes) unlocks {saved_b:,} bytes of "
                        f"predicted I/O savings."),
                actions=[{"type": "memory_cap", "bytes": new_cap}],
                predicted_before_bytes=base_b,
                predicted_after_bytes=base_b - saved_b,
                predicted_before_seconds=base_s,
                predicted_after_seconds=base_s - saved_s,
                confidence=ctx.confidence_for(ctx.config.jobs)))
            return recs
        # Otherwise right-size against observation (advisory).
        prof = ctx.profile
        if prof is None:
            return recs
        peak = prof.admission.get("peak_admitted_bytes", 0.0)
        waits = prof.admission.get("wait_seconds", 0.0)
        cap = ctx.config.memory_cap_bytes
        if waits > 0 and peak >= 0.9 * cap:
            recs.append(Recommendation(
                kind=self.kind, advisory=True,
                title="Admission-bound: consider raising the memory cap",
                detail=(f"Jobs spent {waits:.3f}s waiting for admission "
                        f"with the budget ~fully committed (peak "
                        f"{peak:,.0f} of {cap:,} bytes).  A larger cap "
                        f"admits more concurrent jobs; plan I/O is "
                        f"unchanged."),
                actions=[{"type": "memory_cap", "bytes": int(cap * 2)}],
                predicted_before_bytes=base_b,
                predicted_after_bytes=base_b,
                predicted_before_seconds=base_s,
                predicted_after_seconds=base_s,
                confidence=0.5))
        elif peak > 0 and peak <= 0.5 * cap:
            new_cap = int(peak * 1.25)
            recs.append(Recommendation(
                kind=self.kind, advisory=True,
                title=f"Memory cap oversized: {new_cap:,} bytes suffice",
                detail=(f"Peak admitted memory was {peak:,.0f} of "
                        f"{cap:,} budgeted bytes; a {new_cap:,}-byte cap "
                        f"(25% headroom over peak) frees the rest without "
                        f"changing any plan."),
                actions=[{"type": "memory_cap", "bytes": new_cap}],
                predicted_before_bytes=base_b,
                predicted_after_bytes=base_b,
                predicted_before_seconds=base_s,
                predicted_after_seconds=base_s,
                confidence=0.6))
        return recs


class LayoutAnalyzer(Analyzer):
    name = "layout"
    kind = "layout"

    def analyze(self, ctx: AdvisorContext) -> list[Recommendation]:
        prof = ctx.profile
        if prof is None:
            return []
        base_b, base_s = ctx.baseline()
        # Logical intermediates observed with zero traffic, per template.
        idle: dict[str, tuple[int, int]] = {}
        for jobs in ctx.groups():
            rep = jobs[0]
            program = rep.build_program()
            profiled = [prof.jobs[j.name] for j in jobs
                        if j.name in prof.jobs]
            if not profiled:
                continue
            for aname, arr in program.arrays.items():
                if arr.kind.value != "intermediate":
                    continue
                traffic = sum(
                    jp.per_array.get(aname, {}).get("read_bytes", 0)
                    + jp.per_array.get(aname, {}).get("write_bytes", 0)
                    for jp in profiled)
                if traffic == 0:
                    foot, cnt = idle.get(aname, (0, 0))
                    idle[aname] = (foot + len(jobs)
                                   * arr.total_bytes(rep.params),
                                   cnt + len(jobs))
        recs = []
        for aname, (footprint, njobs) in sorted(idle.items()):
            if ctx.config.store_format.get(
                    aname, ctx.config.store_format.get("default", "daf")) \
                    == "labtree":
                continue  # already lazy
            recs.append(Recommendation(
                kind=self.kind, advisory=True,
                title=f"Store {aname} as a LAB-tree (write-elided)",
                detail=(f"Intermediate {aname} saw zero I/O across "
                        f"{njobs} job(s) — its writes are elided — yet "
                        f"the DAF layout preallocates {footprint:,} bytes "
                        f"of dense file per workload.  LAB-tree blocks "
                        f"materialize on first write, so an untouched "
                        f"array costs no disk; counted I/O is unchanged."),
                actions=[{"type": "store_format", "array": aname,
                          "format": "labtree"}],
                predicted_before_bytes=base_b,
                predicted_after_bytes=base_b,
                predicted_before_seconds=base_s,
                predicted_after_seconds=base_s,
                confidence=0.8))
        return recs


class PrefetchAnalyzer(Analyzer):
    name = "prefetch"
    kind = "prefetch"

    def analyze(self, ctx: AdvisorContext) -> list[Recommendation]:
        prof = ctx.profile
        if prof is None:
            return []
        base_b, base_s = ctx.baseline()
        depth = ctx.config.prefetch_depth
        reads = prof.totals.get("read_bytes", 0)
        recs = []
        if depth == 0 and reads > 0:
            recs.append(Recommendation(
                kind=self.kind, advisory=True,
                title="Enable prefetch (depth 2) to overlap I/O",
                detail=(f"The workload read {reads:,} bytes with "
                        f"prefetch off; a depth-2 pipeline overlaps "
                        f"reads with compute at a staging budget of two "
                        f"blocks per job.  Counted I/O is unchanged."),
                actions=[{"type": "prefetch_depth", "depth": 2}],
                predicted_before_bytes=base_b,
                predicted_after_bytes=base_b,
                predicted_before_seconds=base_s,
                predicted_after_seconds=base_s,
                confidence=0.5))
            return recs
        stages = prof.prefetch.get("stages", 0)
        ratio = prof.prefetch.get("wait_ratio", 0.0)
        if stages > 0 and ratio > 0.5:
            recs.append(Recommendation(
                kind=self.kind, advisory=True,
                title=f"Deepen prefetch: {depth} → {depth + 2}",
                detail=(f"Consumers waited {ratio:.0%} of the time the "
                        f"stager spent staging (depth {depth}); a deeper "
                        f"window hides more of the read latency.  Counted "
                        f"I/O is unchanged."),
                actions=[{"type": "prefetch_depth", "depth": depth + 2}],
                predicted_before_bytes=base_b,
                predicted_after_bytes=base_b,
                predicted_before_seconds=base_s,
                predicted_after_seconds=base_s,
                confidence=0.5))
        return recs


#: Default analyzer battery, in run order.
ANALYZERS: tuple[Analyzer, ...] = (BlockGeometryAnalyzer(),
                                   MaterializationAnalyzer(),
                                   MemoryBudgetAnalyzer(),
                                   LayoutAnalyzer(),
                                   PrefetchAnalyzer())


def run_analyzers(ctx: AdvisorContext,
                  analyzers: Iterable[Analyzer] | None = None
                  ) -> list[Recommendation]:
    """Run the battery and rank the union (most valuable first); counts
    each emitted recommendation on the installed metrics registry as
    ``repro_advisor_recommendations{kind=...}``."""
    recs: list[Recommendation] = []
    for a in (ANALYZERS if analyzers is None else analyzers):
        recs.extend(a.analyze(ctx))
    reg = obs_metrics.CURRENT
    if reg is not None:
        for r in recs:
            reg.counter("repro_advisor_recommendations", kind=r.kind).inc()
            reg.counter("repro_advisor_predicted_saved_bytes",
                        kind=r.kind).inc(r.predicted_saved_bytes)
    return rank(recs)
