"""repro — a reproduction of RIOTShare: "Optimizing I/O for Big Array
Analytics" (Zhang & Yang, PVLDB 5(8), 2012).

The package implements the paper's full stack:

* a pure-Python exact integer-polyhedra library (:mod:`repro.polyhedral`),
* a static-control program IR with a loop-nest builder (:mod:`repro.ir`),
* dependence / I/O-sharing-opportunity analysis (:mod:`repro.analysis`),
* the Apriori + Farkas schedule optimizer (:mod:`repro.optimizer`),
* code generation to executable plans and pseudo-C (:mod:`repro.codegen`),
* RIOTStore-style blocked storage, buffer pool and a byte-accurate
  simulated disk (:mod:`repro.storage`),
* a numpy-kerneled execution engine with verification
  (:mod:`repro.engine`),
* the operator library, paper workloads, comparator baselines, and the
  block-size-advisor extension,
* an opt-in observability subsystem — structured tracing, metrics, and
  predicted-vs-actual cost-model validation (:mod:`repro.obs`),
* a concurrent multi-query service with plan caching, admission
  control, and inter-query I/O sharing (:mod:`repro.service`),
* a workload-driven storage advisor that turns obs traces into costed,
  applied, verified recommendations (:mod:`repro.advisor`).

Quickstart::

    from repro import Pipeline, optimize, run_program

    p = Pipeline("demo", params=("n1", "n2", "n3"))
    a = p.input("A", blocks=("n1", "n2"), block_shape=(60, 40))
    b = p.input("B", blocks=("n1", "n2"), block_shape=(60, 40))
    d = p.input("D", blocks=("n2", "n3"), block_shape=(40, 50))
    e = p.matmul(p.add(a, b, name="C"), d, name="E")
    p.mark_output(e)
    prog = p.build()

    result = optimize(prog, {"n1": 4, "n2": 4, "n3": 1})
    best = result.best(memory_cap_bytes=2 * 1024 ** 2)
"""

from . import advisor, obs
from .advisor import (AdvisorConfig, JobSpec, Recommendation,
                      WorkloadProfile, WorkloadSpec)
from .analysis import analyze
from .codegen import build_executable_plan, render_c
from .engine import reference_outputs, run_program
from .exceptions import ReproError
from .ir import Program, ProgramBuilder, Schedule
from .ops import (Pipeline, add_multiply_program, linreg_program,
                  two_matmul_program)
from .optimizer import IOModel, OptimizationResult, Plan, optimize
from .service import (ArrayService, DegradePolicy, JobHandle, JobResult,
                      JobRetryPolicy, PlanCache)
from .workloads import (add_multiply_config, generate_inputs, linreg_config,
                        two_matmul_config)

__version__ = "1.0.0"

__all__ = [
    "analyze",
    "optimize",
    "run_program",
    "reference_outputs",
    "build_executable_plan",
    "render_c",
    "Pipeline",
    "Program",
    "ProgramBuilder",
    "Schedule",
    "Plan",
    "OptimizationResult",
    "IOModel",
    "ArrayService",
    "JobHandle",
    "JobResult",
    "JobRetryPolicy",
    "DegradePolicy",
    "PlanCache",
    "ReproError",
    "add_multiply_program",
    "two_matmul_program",
    "linreg_program",
    "add_multiply_config",
    "two_matmul_config",
    "linreg_config",
    "generate_inputs",
    "obs",
    "advisor",
    "AdvisorConfig",
    "JobSpec",
    "Recommendation",
    "WorkloadProfile",
    "WorkloadSpec",
    "__version__",
]
