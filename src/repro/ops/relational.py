"""Relational / Pig-style operators at block granularity.

Section 4.1 of the paper lists "table scans and nested loop joins in
traditional databases, FILTER and FOREACH commands in Pig" among the
static-control programs the framework captures; Section 7 proposes mixing
them with array operations.  This module provides those operators on
*blocked tables* — 2-D arrays whose row dimension is chunked into blocks —
so relational pipelines become optimizable programs too:

* :meth:`RelationalPipeline.foreach` — per-row transformation (Pig FOREACH);
* :meth:`RelationalPipeline.filter` — selection: non-qualifying rows are
  zeroed in place, the selection-vector style of block processing;
* :meth:`RelationalPipeline.aggregate` — running column aggregates (a scan);
* :meth:`RelationalPipeline.nested_loop_join` — block NLJ producing a
  (R-blocks x S-blocks) grid of per-block-pair match counts; its loop
  structure is exactly the matmul I/O pattern, so the optimizer shares the
  inner table's scan across outer iterations (the cooperative-scans effect
  of the related-work section, obtained here by plan transformation).

Tables share the optimizer/engine unchanged: a table block is a matrix
block; the relational kernels live in the same registry.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..engine.kernels import _acc, register_kernel
from ..exceptions import ProgramError
from ..ir import ArrayKind, ArrayRef, Program, ProgramBuilder, affine

__all__ = ["RelationalPipeline"]


# -- relational kernels ------------------------------------------------------


@register_kernel("foreach_affine")
def _foreach_affine(reads, out_shape, args):
    """Row-wise affine map: out[:, j] = scale[j] * in[:, j] + shift[j]."""
    (block,) = reads
    scale = np.asarray(args.get("scale", 1.0))
    shift = np.asarray(args.get("shift", 0.0))
    return block * scale + shift


@register_kernel("filter_ge")
def _filter_ge(reads, out_shape, args):
    """Keep rows whose ``column`` value >= ``threshold``; zero the rest."""
    (block,) = reads
    col = int(args.get("column", 0))
    thr = float(args.get("threshold", 0.0))
    mask = block[:, col] >= thr
    return block * mask[:, None]


@register_kernel("colsum_acc")
def _colsum_acc(reads, out_shape, args):
    """Running per-column sums (a table scan with aggregation)."""
    return _acc(reads, 1, out_shape) + reads[0].sum(axis=0, keepdims=True)


@register_kernel("join_count")
def _join_count(reads, out_shape, args):
    """Block nested-loop join: count matching (r, s) pairs on key columns.

    Rows that were zeroed by an upstream filter (all-zero rows) never match.
    """
    r_blk, s_blk = reads[0], reads[1]
    rk = int(args.get("left_key", 0))
    sk = int(args.get("right_key", 0))
    r_live = ~np.all(r_blk == 0, axis=1)
    s_live = ~np.all(s_blk == 0, axis=1)
    r_keys = r_blk[r_live][:, rk]
    s_keys = s_blk[s_live][:, sk]
    count = float(np.sum(r_keys[:, None] == s_keys[None, :]))
    out = np.zeros(out_shape)
    out[0, 0] = count
    return out


# -- pipeline ---------------------------------------------------------------------


class RelationalPipeline:
    """Chains relational operators over blocked tables into one program."""

    def __init__(self, name: str, params=()):
        self._builder = ProgramBuilder(name, params=params)
        self._counter = itertools.count(1)
        self._vars = itertools.count(1)

    def table(self, name: str, row_blocks: str | int, block_rows: int,
              columns: int) -> ArrayRef:
        """Declare an input table of ``row_blocks`` x 1 blocks."""
        return self._builder.array(name, dims=(row_blocks, 1),
                                   block_shape=(block_rows, columns))

    def mark_output(self, ref: ArrayRef) -> None:
        ref.array.kind = ArrayKind.OUTPUT

    def build(self) -> Program:
        return self._builder.build()

    def _fresh(self) -> str:
        return f"r{next(self._vars)}"

    def _out(self, name, src: ArrayRef) -> ArrayRef:
        return self._builder.array(name or f"T{next(self._vars)}",
                                   dims=src.array.dims,
                                   block_shape=src.array.block_shape,
                                   kind=ArrayKind.INTERMEDIATE)

    # -- operators -------------------------------------------------------------

    def foreach(self, src: ArrayRef, scale=1.0, shift=0.0,
                name: str | None = None) -> ArrayRef:
        out = self._out(name, src)
        v = self._fresh()
        with self._builder.loop(v, 0, src.array.dims[0]):
            self._builder.statement(
                f"s{next(self._counter)}", kernel="foreach_affine",
                write=out[v, 0], reads=[src[v, 0]],
                kernel_args={"scale": scale, "shift": shift})
        return out

    def filter(self, src: ArrayRef, column: int, threshold: float,
               name: str | None = None) -> ArrayRef:
        if not 0 <= column < src.array.block_shape[1]:
            raise ProgramError(f"filter column {column} out of range")
        out = self._out(name, src)
        v = self._fresh()
        with self._builder.loop(v, 0, src.array.dims[0]):
            self._builder.statement(
                f"s{next(self._counter)}", kernel="filter_ge",
                write=out[v, 0], reads=[src[v, 0]],
                kernel_args={"column": column, "threshold": threshold})
        return out

    def aggregate(self, src: ArrayRef, name: str | None = None) -> ArrayRef:
        """Per-column sums over the whole table (single-block result)."""
        out = self._builder.array(name or f"T{next(self._vars)}",
                                  dims=(1, 1),
                                  block_shape=(1, src.array.block_shape[1]),
                                  kind=ArrayKind.INTERMEDIATE)
        v = self._fresh()
        with self._builder.loop(v, 0, src.array.dims[0]):
            self._builder.statement(
                f"s{next(self._counter)}", kernel="colsum_acc",
                write=out[0, 0],
                reads=[src[v, 0], out[0, 0].when(f"{v} - 1")])
        return out

    def nested_loop_join(self, left: ArrayRef, right: ArrayRef,
                         left_key: int = 0, right_key: int = 0,
                         name: str | None = None) -> ArrayRef:
        """Block NLJ: J[i, j] = #matches between left block i, right block j."""
        out = self._builder.array(
            name or f"J{next(self._vars)}",
            dims=(left.array.dims[0], right.array.dims[0]),
            block_shape=(1, 1), kind=ArrayKind.INTERMEDIATE)
        vi, vj = self._fresh(), self._fresh()
        with self._builder.loop(vi, 0, left.array.dims[0]):
            with self._builder.loop(vj, 0, right.array.dims[0]):
                self._builder.statement(
                    f"s{next(self._counter)}", kernel="join_count",
                    write=out[vi, vj], reads=[left[vi, 0], right[vj, 0]],
                    kernel_args={"left_key": left_key, "right_key": right_key})
        return out
