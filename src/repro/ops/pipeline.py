"""Operator library (the "Operator Library" box of Figure 2).

High-level matrix operators whose loop-nest implementations are emitted as
polyhedral IR, so the optimizer can "open them up" and co-optimize across
operator boundaries — the paper's core argument against black-box operators.

Example::

    p = Pipeline("example1", params=("n1", "n2", "n3"))
    a = p.input("A", blocks=("n1", "n2"), block_shape=(60, 40))
    b = p.input("B", blocks=("n1", "n2"), block_shape=(60, 40))
    d = p.input("D", blocks=("n2", "n3"), block_shape=(40, 50))
    c = p.add(a, b, name="C")
    e = p.matmul(c, d, name="E")
    p.mark_output(e)
    prog = p.build()

Following BLAS (and the paper's linear-regression setup), transposition is a
*flag* on multiply, not a separate operator.
"""

from __future__ import annotations

import contextlib
import itertools
from typing import Sequence

from ..exceptions import ProgramError
from ..ir import ArrayKind, ArrayRef, Program, ProgramBuilder, affine

__all__ = ["Pipeline"]

_ONE = affine(1)


class Pipeline:
    """Chains matrix operators into one optimizable program."""

    def __init__(self, name: str, params: Sequence[str] = ()):
        self._builder = ProgramBuilder(name, params=params)
        self._counter = itertools.count(1)
        self._var_counter = itertools.count(1)

    # -- declarations -----------------------------------------------------------

    def input(self, name: str, blocks: Sequence[str | int],
              block_shape: Sequence[int], dtype_bytes: int = 8) -> ArrayRef:
        return self._builder.array(name, dims=blocks, block_shape=block_shape,
                                   dtype_bytes=dtype_bytes, kind=ArrayKind.INPUT)

    def mark_output(self, ref: ArrayRef) -> None:
        ref.array.kind = ArrayKind.OUTPUT

    def build(self) -> Program:
        return self._builder.build()

    # -- helpers -------------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        return f"{prefix}{next(self._var_counter)}"

    @contextlib.contextmanager
    def _loops(self, specs):
        """Open loops for the non-trivial extents in ``specs``.

        ``specs`` is a list of (var, extent); extents statically equal to 1
        emit no loop (the paper's linear-regression program is "a sequence of
        7 loop nests", not triply-nested operators).  Yields one subscript
        token per spec: the loop variable, or "0" for skipped dimensions.
        """
        tokens = []
        with contextlib.ExitStack() as stack:
            for var, extent in specs:
                if affine(extent) == _ONE:
                    tokens.append("0")
                else:
                    stack.enter_context(self._builder.loop(var, 0, extent))
                    tokens.append(var)
            yield tokens

    def _stmt_name(self) -> str:
        return f"s{next(self._counter)}"

    def _intermediate(self, name: str | None, blocks, block_shape) -> ArrayRef:
        if name is None:
            name = f"T{next(self._var_counter)}"
        return self._builder.array(name, dims=blocks, block_shape=block_shape,
                                   kind=ArrayKind.INTERMEDIATE)

    @staticmethod
    def _geom(ref: ArrayRef) -> tuple[tuple, tuple[int, ...]]:
        return tuple(ref.array.dims), ref.array.block_shape

    # -- elementwise operators --------------------------------------------------------

    def add(self, a: ArrayRef, b: ArrayRef, name: str | None = None) -> ArrayRef:
        return self._elementwise("add", a, b, name)

    def sub(self, a: ArrayRef, b: ArrayRef, name: str | None = None) -> ArrayRef:
        return self._elementwise("sub", a, b, name)

    def _elementwise(self, kernel: str, a: ArrayRef, b: ArrayRef,
                     name: str | None) -> ArrayRef:
        if self._geom(a) != self._geom(b):
            raise ProgramError(f"{kernel}: geometry mismatch {a.name} vs {b.name}")
        out = self._intermediate(name, a.array.dims, a.array.block_shape)
        iv, kv = self._fresh("i"), self._fresh("k")
        with self._loops([(iv, a.array.dims[0]), (kv, a.array.dims[1])]) as (i, k):
            self._builder.statement(self._stmt_name(), kernel=kernel,
                                    write=out[i, k], reads=[a[i, k], b[i, k]])
        return out

    # -- multiplication (with transpose flags) ---------------------------------------------

    def matmul(self, a: ArrayRef, b: ArrayRef, name: str | None = None,
               transpose_a: bool = False, transpose_b: bool = False) -> ArrayRef:
        """C = op(A) op(B) with op in {identity, transpose}.

        A single-operand self product (``matmul(x, x, transpose_a=True)``)
        emits the SYRK-style kernel that reads the shared block once.
        """
        from ..ir import affine
        if transpose_a and transpose_b:
            raise ProgramError("matmul: double transpose unsupported")
        a_blocks = a.array.dims[::-1] if transpose_a else a.array.dims
        a_shape = a.array.block_shape[::-1] if transpose_a else a.array.block_shape
        b_blocks = b.array.dims[::-1] if transpose_b else b.array.dims
        b_shape = b.array.block_shape[::-1] if transpose_b else b.array.block_shape
        if a_blocks[1] != b_blocks[0] or a_shape[1] != b_shape[0]:
            raise ProgramError(
                f"matmul: inner dimensions disagree "
                f"({a.name}{'^T' if transpose_a else ''}: {a_blocks}/{a_shape}; "
                f"{b.name}{'^T' if transpose_b else ''}: {b_blocks}/{b_shape})")
        out = self._intermediate(name, (a_blocks[0], b_blocks[1]),
                                 (a_shape[0], b_shape[1]))
        iv, jv, kv = self._fresh("i"), self._fresh("j"), self._fresh("k")
        # X'X with a single-block result: both operand subscripts coincide,
        # so the statement makes one read per instance (SYRK-style).
        syrk = (a.array is b.array and transpose_a and not transpose_b
                and out.array.dims[0] == _ONE and out.array.dims[1] == _ONE)

        def a_sub(ii, kk):
            return a[kk, ii] if transpose_a else a[ii, kk]

        def b_sub(kk, jj):
            return b[jj, kk] if transpose_b else b[kk, jj]

        with self._loops([(iv, a_blocks[0]), (jv, b_blocks[1]),
                          (kv, a_blocks[1])]) as (i, j, k):
            accumulates = k != "0"  # a single inner block needs no self-read
            if syrk:
                reads = [a[k, i]]
                if accumulates:
                    reads.append(out[i, j].when(f"{k} - 1"))
                self._builder.statement(self._stmt_name(), kernel="syrk_tn",
                                        write=out[i, j], reads=reads)
            else:
                kernel = {(False, False): "gemm_nn",
                          (True, False): "gemm_tn",
                          (False, True): "gemm_nt"}[(transpose_a, transpose_b)]
                reads = [a_sub(i, k), b_sub(k, j)]
                if accumulates:
                    reads.append(out[i, j].when(f"{k} - 1"))
                self._builder.statement(self._stmt_name(), kernel=kernel,
                                        write=out[i, j], reads=reads)
        return out

    # -- small dense operators -----------------------------------------------------------------

    def inverse(self, a: ArrayRef, name: str | None = None) -> ArrayRef:
        """In-core inverse of a single-block matrix."""
        if any(repr(d) != "1" for d in a.array.dims):
            raise ProgramError("inverse expects a single-block (1x1 grid) matrix")
        out = self._intermediate(name, a.array.dims, a.array.block_shape)
        self._builder.statement(self._stmt_name(), kernel="inverse",
                                write=out[0, 0], reads=[a[0, 0]])
        return out

    def rss(self, a: ArrayRef, name: str | None = None) -> ArrayRef:
        """Residual sum of squares per column: a 1 x k single-block row."""
        if a.array.dims[1] != _ONE:
            raise ProgramError("rss expects a single block column")
        out = self._intermediate(name, (1, 1), (1, a.array.block_shape[1]))
        kv = self._fresh("k")
        with self._loops([(kv, a.array.dims[0])]) as (k,):
            reads = [a[k, 0]]
            if k != "0":
                reads.append(out[0, 0].when(f"{k} - 1"))
            self._builder.statement(self._stmt_name(), kernel="colsumsq_acc",
                                    write=out[0, 0], reads=reads)
        return out
