"""Operator library: high-level matrix ops emitting optimizable polyhedral IR.

Public surface:

* :class:`Pipeline` — chainable operators (add, sub, matmul with transpose
  flags, inverse, rss) building one co-optimizable :class:`Program`;
* canned programs for the paper's experiments:
  :func:`add_multiply_program` (§6.1), :func:`two_matmul_program` (§6.2),
  :func:`linreg_program` (§6.3).
"""

from .compose import concat_programs
from .pipeline import Pipeline
from .programs import add_multiply_program, linreg_program, two_matmul_program
from .relational import RelationalPipeline

__all__ = [
    "Pipeline",
    "RelationalPipeline",
    "concat_programs",
    "add_multiply_program",
    "two_matmul_program",
    "linreg_program",
]
