"""Multi-program composition: co-optimizing independent queries.

The paper's related work (QPipe [16], cooperative scans [27], multi-query
optimization [21, 19]) shares I/O *across concurrent queries* at run time.
RIOTShare's framework does it by construction: concatenate the queries into
one program and the optimizer's cross-statement sharing analysis finds the
common scans like any other opportunity — systematically, at plan time.

``concat_programs`` merges programs into one:

* arrays are merged **by name** — two queries declaring the same input
  array (same geometry) share it, which is exactly what creates the
  cross-query R->R scan-sharing opportunities;
* statement names are prefixed (``q1_s1``, ...) when they collide;
* textual order is preserved: program k's statements follow program k-1's
  (the original schedule runs the queries back to back; the optimizer is
  then free to interleave them).
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import ProgramError
from ..ir import Access, Array, Program, Statement
from ..polyhedral import Polyhedron, Space

__all__ = ["concat_programs"]


def concat_programs(programs: Sequence[Program], name: str = "composed") -> Program:
    """Merge programs into one co-optimizable program (see module docs)."""
    if not programs:
        raise ProgramError("concat_programs needs at least one program")

    # -- merge arrays by name ------------------------------------------------
    merged_arrays: dict[str, Array] = {}
    for prog in programs:
        for aname, arr in prog.arrays.items():
            if aname not in merged_arrays:
                merged_arrays[aname] = Array(aname, arr.dims, arr.block_shape,
                                             arr.dtype_bytes, arr.kind)
                continue
            existing = merged_arrays[aname]
            if (tuple(existing.dims) != tuple(arr.dims)
                    or existing.block_shape != arr.block_shape
                    or existing.dtype_bytes != arr.dtype_bytes):
                raise ProgramError(
                    f"array {aname!r} has conflicting geometry across programs")
            # INPUT + anything stronger keeps the stronger role.
            if arr.kind.value != existing.kind.value:
                from ..ir import ArrayKind
                order = {ArrayKind.INPUT: 0, ArrayKind.INTERMEDIATE: 1,
                         ArrayKind.OUTPUT: 2}
                if order[arr.kind] > order[existing.kind]:
                    existing.kind = arr.kind

    # -- statement name disambiguation ---------------------------------------------
    all_names = [s.name for prog in programs for s in prog.statements]
    collide = len(set(all_names)) != len(all_names)

    params: list[str] = []
    for prog in programs:
        for p in prog.params:
            if p not in params:
                params.append(p)

    statements: list[Statement] = []
    slot_offset = 0
    for qi, prog in enumerate(programs, start=1):
        top_slots = 0
        for stmt in prog.statements:
            top_slots = max(top_slots, stmt.position[0] + 1)
            new_name = f"q{qi}_{stmt.name}" if collide else stmt.name
            accesses = [Access(merged_arrays[a.array.name], a.type,
                               a.subscripts, a.guard)
                        for a in stmt.accesses]
            position = (stmt.position[0] + slot_offset,) + stmt.position[1:]
            statements.append(Statement(new_name, stmt.loop_vars, stmt.domain,
                                        accesses, stmt.kernel,
                                        position=position,
                                        kernel_args=stmt.kernel_args))
        slot_offset += top_slots

    # -- parameter context: intersection over the union space ------------------------
    ctx_space = Space(params)
    context = Polyhedron.universe(ctx_space)
    for prog in programs:
        context = context.intersect(prog.param_context.align(ctx_space))

    composed = Program(name, params, merged_arrays, statements, context)
    composed.validate()
    return composed
