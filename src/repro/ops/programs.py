"""Canned programs for the paper's three experiments (Sections 6.1-6.3).

Each builder returns the :class:`Program` plus the parameter binding for the
block-count geometry of the corresponding table; block shapes default to a
laptop-friendly ~1/100 linear scale of the paper's (see
``repro.workloads.configs`` for both scales).
"""

from __future__ import annotations

from ..ir import Program
from .pipeline import Pipeline

__all__ = ["add_multiply_program", "two_matmul_program", "linreg_program"]


def add_multiply_program(block_rows: int = 60, block_cols: int = 40,
                         d_cols: int = 50) -> Program:
    """Example 1 / Section 6.1: C = A + B; E = C D."""
    p = Pipeline("add_multiply", params=("n1", "n2", "n3"))
    a = p.input("A", blocks=("n1", "n2"), block_shape=(block_rows, block_cols))
    b = p.input("B", blocks=("n1", "n2"), block_shape=(block_rows, block_cols))
    d = p.input("D", blocks=("n2", "n3"), block_shape=(block_cols, d_cols))
    c = p.add(a, b, name="C")
    e = p.matmul(c, d, name="E")
    p.mark_output(e)
    return p.build()


def two_matmul_program(a_shape: tuple[int, int], b_shape: tuple[int, int],
                       d_shape: tuple[int, int]) -> Program:
    """Section 6.2: C = A B; E = A D (block shapes per configuration)."""
    p = Pipeline("two_matmul", params=("n1", "n2", "n3", "n4"))
    a = p.input("A", blocks=("n1", "n3"), block_shape=a_shape)
    b = p.input("B", blocks=("n3", "n2"), block_shape=b_shape)
    d = p.input("D", blocks=("n3", "n4"), block_shape=d_shape)
    c = p.matmul(a, b, name="C")
    e = p.matmul(a, d, name="E")
    p.mark_output(c)
    p.mark_output(e)
    return p.build()


def linreg_program(x_block: tuple[int, int] = (600, 40),
                   y_cols: int = 4) -> Program:
    """Section 6.3: ordinary least squares with residual sum of squares.

    Seven statements, as in the paper:
      U = X'X;  V = X'Y;  W = inv(U);  beta = W V;
      Yhat = X beta;  E = Y - Yhat;  R = RSS(E).

    X is n x 1 blocks of ``x_block``; Y has the same row blocking with
    ``y_cols`` response columns per block.
    """
    p = Pipeline("linreg", params=("n",))
    xr, xc = x_block
    x = p.input("X", blocks=("n", 1), block_shape=(xr, xc))
    y = p.input("Y", blocks=("n", 1), block_shape=(xr, y_cols))
    u = p.matmul(x, x, transpose_a=True, name="U")           # X'X, SYRK
    v = p.matmul(x, y, transpose_a=True, name="V")           # X'Y
    w = p.inverse(u, name="W")
    beta = p.matmul(w, v, name="Bhat")
    yhat = p.matmul(x, beta, name="Yhat")
    e = p.sub(y, yhat, name="E")
    r = p.rss(e, name="R")
    p.mark_output(beta)
    p.mark_output(r)
    return p.build()
