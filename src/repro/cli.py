"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``optimize`` — parse a pseudo-code program (plus a JSON array-declaration
  file), run the optimizer, print the plan space and the best plan;
* ``explain``  — like optimize, but also print the generated pseudo-C for
  the chosen plan;
* ``demo``     — run the built-in Example-1 demo end to end (optimize,
  execute on the simulated disk, verify numerically);
* ``serve``    — batch mode for the multi-query service: run a JSONL job
  file through one :class:`~repro.service.ArrayService` (shared buffer
  pool, plan cache, admission control) and report per-job I/O, cache
  hits, queue statistics and latency percentiles; ``--shards`` stripes
  the service disk, ``--backend procs`` executes jobs in worker
  processes (see docs/service.md "Scaling out");
* ``advise``   — the workload-driven storage advisor: profile a workload
  (live baseline run, or offline from an exported ``--trace``/``--metrics``
  pair), emit ranked costed recommendations (block geometry,
  materialization, layout, memory budget, prefetch), and with ``--apply``
  verify every prediction by re-running the workload.

Example job file (one JSON object per line)::

    {"program": "add_multiply", "params": {"n1": 2, "n2": 2, "n3": 1}, "seed": 0}
    {"program": "add_multiply", "params": {"n1": 2, "n2": 2, "n3": 1}, "seed": 0}

Example array-declaration JSON::

    {
      "params": ["n1", "n2", "n3"],
      "bindings": {"n1": 4, "n2": 4, "n3": 1},
      "arrays": {
        "A": {"dims": ["n1", "n2"], "block_shape": [60, 40], "kind": "input"},
        "C": {"dims": ["n1", "n2"], "block_shape": [60, 40], "kind": "intermediate"},
        ...
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="RIOTShare I/O-sharing optimizer")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("optimize", "explain"):
        cmd = sub.add_parser(name)
        cmd.add_argument("source", help="pseudo-code file (C-style loop nests)")
        cmd.add_argument("decls", help="JSON array/parameter declaration file")
        cmd.add_argument("--memory-cap", type=int, default=None,
                         help="memory cap in bytes")
        cmd.add_argument("--max-set-size", type=int, default=None)
        cmd.add_argument("--max-candidates", type=int, default=None)
        cmd.add_argument("--workers", type=int, default=None,
                         help="process-pool workers for the plan search "
                              "(1 = sequential; N>=2 parallelizes each "
                              "Apriori level and the plan costing)")

    demo = sub.add_parser("demo")
    demo.add_argument("--workload", choices=("add_multiply", "two_matmuls"),
                      default="add_multiply",
                      help="which paper experiment to run end to end: "
                           "Example 1 (Fig. 3) or the two-matmul workload "
                           "(Fig. 4/5, configuration A)")
    demo.add_argument("--blocks", type=int, default=4,
                      help="block grid size for add_multiply (n1 = n2)")
    demo.add_argument("--workers", type=int, default=None,
                      help="process-pool workers for the plan search")
    demo.add_argument("--faults", type=int, default=None, metavar="SEED",
                      help="inject deterministic transient I/O faults "
                           "(5%% of counted ops) with this seed; the "
                           "retry/backoff layer must absorb them")
    demo.add_argument("--workdir", default=None,
                      help="persistent working directory (enables the "
                           "checkpoint journal; default: a temp dir)")
    demo.add_argument("--resume", action="store_true",
                      help="resume an interrupted --workdir run from its "
                           "execution journal")
    demo.add_argument("--trace", default=None, metavar="FILE",
                      help="stream structured trace events to FILE (JSONL); "
                           "a Chrome/Perfetto-loadable FILE.chrome.json "
                           "companion is written alongside")
    demo.add_argument("--metrics", action="store_true",
                      help="print the metrics registry (Prometheus text "
                           "exposition) after the run")
    demo.add_argument("--validate-cost", action="store_true",
                      help="audit the cost model: join predicted I/O "
                           "against traced actuals per statement/array and "
                           "fail (exit 1) on any mismatch")
    demo.add_argument("--tolerance", type=float, default=0.0,
                      help="relative byte tolerance for --validate-cost "
                           "(default 0 = byte-exact)")
    demo.add_argument("--prefetch", type=int, default=0, metavar="DEPTH",
                      help="overlap I/O with compute: stage up to DEPTH "
                           "upcoming READ blocks on background reader "
                           "threads (0 = serial)")

    serve = sub.add_parser("serve")
    serve.add_argument("jobs", help="JSONL job file: one job object per line "
                                    "({\"program\": ..., \"params\": {...}, "
                                    "\"seed\": 0, ...})")
    serve.add_argument("--service-workers", type=int, default=2,
                       help="concurrent executor threads (default 2)")
    serve.add_argument("--memory-cap", type=int, default=8 << 20,
                       help="global buffer-memory budget in bytes the "
                            "service partitions across jobs (default 8 MiB)")
    serve.add_argument("--plan-cache", default=None, metavar="DIR",
                       help="persistent plan-cache directory; repeat "
                            "submissions of a program template skip the "
                            "Apriori search")
    serve.add_argument("--workdir", default=None,
                       help="service working directory holding the shared "
                            "stores (default: a temp dir)")
    serve.add_argument("--admission-timeout", type=float, default=None,
                       help="default seconds a job may wait for memory "
                            "budget before a typed rejection")
    serve.add_argument("--verify", action="store_true",
                       help="check every job's outputs against the "
                            "in-memory reference implementation")
    serve.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the metrics registry (Prometheus text "
                            "exposition) to FILE after the batch")
    serve.add_argument("--prefetch", type=int, default=0, metavar="DEPTH",
                       help="default per-job prefetch depth; each job's "
                            "staging budget (DEPTH x its largest block) is "
                            "charged to admission control")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job deadline; a job past it is "
                            "cooperatively cancelled and fails with "
                            "DeadlineExceeded (jobs may override with "
                            "\"timeout\")")
    serve.add_argument("--job-retries", type=int, default=None, metavar="N",
                       help="retry transiently-failed jobs up to N attempts, "
                            "resuming from the checkpoint journal so only "
                            "unfinished instances re-execute")
    serve.add_argument("--degrade", action="store_true",
                       help="enable overload-aware degradation: shed new "
                            "jobs past the backlog watermark, throttle "
                            "prefetch under memory pressure, skip cold "
                            "plan searches when the queue is deep, and "
                            "trip per-store circuit breakers")
    serve.add_argument("--backend", choices=("threads", "procs"),
                       default="threads",
                       help="job execution backend: \"threads\" shares one "
                            "disk and buffer pool; \"procs\" runs each "
                            "admitted job in a worker process with a "
                            "private (sharded) disk and merges its I/O "
                            "attribution and metrics back (default threads)")
    serve.add_argument("--shards", type=int, default=1,
                       help="stripe the service disk across N independent "
                            "shards with per-shard fault/retry domains "
                            "(default 1 = a plain single disk)")
    serve.add_argument("--stripe-bytes", type=int, default=None,
                       help="stripe unit for --shards > 1 (default 64 KiB)")
    serve.add_argument("--io-pace", type=float, default=0.0,
                       help="wall-clock pacing: sleep this multiple of the "
                            "modeled transfer time per counted I/O "
                            "(default 0 = off)")
    serve.add_argument("--pace-channels", type=int, default=None,
                       help="concurrent paced transfers per disk/shard "
                            "(1 models one device channel, making shard "
                            "count show up in throughput; default "
                            "unbounded)")

    advise = sub.add_parser("advise")
    advise.add_argument("--jobs", required=True, metavar="FILE",
                        help="JSONL workload spec: one job object per line "
                             "({\"program\": ..., \"params\": {...}, "
                             "\"seed\": 0, \"seeds\": {\"D\": 1}, "
                             "\"count\": 4, ...}).  Required — observed "
                             "traces carry neither input seeds nor builder "
                             "geometry, so the spec is the re-runnable "
                             "half of the workload")
    advise.add_argument("--trace", default=None, metavar="FILE",
                        help="offline path: profile the workload from this "
                             "exported JSONL trace instead of running a "
                             "baseline (schema-versioned; older traces are "
                             "read tolerantly, newer ones refused)")
    advise.add_argument("--metrics", default=None, metavar="FILE",
                        help="metrics snapshot accompanying --trace (the "
                             "versioned JSON document, a legacy flat "
                             "snapshot, or Prometheus text exposition)")
    advise.add_argument("--apply", action="store_true",
                        help="verify the recommendations: re-run the "
                             "workload once per recommendation and once "
                             "with the whole set applied, scoring every "
                             "prediction against measurement")
    advise.add_argument("--json", default=None, metavar="FILE",
                        help="write the machine-readable report document "
                             "(versioned JSON) to FILE")
    advise.add_argument("--top", type=int, default=None, metavar="N",
                        help="print only the N highest-ranked "
                             "recommendations (all are validated and "
                             "reported in --json)")
    advise.add_argument("--workdir", default=None,
                        help="working directory for baseline/verification "
                             "runs (default: a temp dir)")
    advise.add_argument("--memory-cap", type=int, default=8 << 20,
                        help="service memory budget in bytes for the "
                             "analyzed configuration (default 8 MiB)")
    advise.add_argument("--prefetch", type=int, default=0, metavar="DEPTH",
                        help="prefetch depth of the analyzed configuration")
    advise.add_argument("--service-workers", type=int, default=2,
                        help="executor threads for workload runs (default 2)")
    advise.add_argument("--tolerance", type=float, default=0.02,
                        help="relative savings-error tolerance for "
                             "prediction validation, as a fraction of "
                             "workload bytes (default 0.02)")
    advise.add_argument("--min-savings", type=float, default=None,
                        metavar="FRAC",
                        help="exit 1 unless the applied recommendation set "
                             "reduces measured I/O bytes by at least FRAC "
                             "(e.g. 0.15); requires --apply")

    args = parser.parse_args(argv)
    if args.command == "demo":
        return _demo(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "advise":
        return _advise(args)
    return _optimize(args, explain=args.command == "explain")


def _load_program(args):
    from .ir.parser import ArraySpec, parse_program

    with open(args.decls) as fh:
        decls = json.load(fh)
    arrays = {name: ArraySpec(tuple(spec["dims"]), tuple(spec["block_shape"]),
                              spec.get("kind", "input"),
                              spec.get("dtype_bytes", 8))
              for name, spec in decls["arrays"].items()}
    with open(args.source) as fh:
        source = fh.read()
    program = parse_program("cli", source, tuple(decls.get("params", ())),
                            arrays)
    bindings = {k: int(v) for k, v in decls.get("bindings", {}).items()}
    if not bindings:
        raise SystemExit("declaration file must bind every parameter "
                         "(\"bindings\": {\"n1\": 4, ...})")
    return program, bindings


def _optimize(args, explain: bool) -> int:
    from .optimizer import optimize

    program, bindings = _load_program(args)
    result = optimize(program, bindings, max_set_size=args.max_set_size,
                      max_candidates=args.max_candidates, workers=args.workers)
    print(f"{len(result.analysis.dependences)} dependences, "
          f"{len(result.analysis.opportunities)} sharing opportunities")
    print(f"search: {result.stats}\n")
    print(f"{'plan':>4} {'I/O(s)':>10} {'mem(MB)':>9}  realized")
    for plan in sorted(result.plans, key=lambda p: p.cost.io_seconds):
        print(f"{plan.index:>4} {plan.cost.io_seconds:>10.2f} "
              f"{plan.cost.memory_bytes / 1e6:>9.2f}  "
              f"{', '.join(plan.realized_labels) or '(original)'}")
    best = result.best(args.memory_cap)
    print(f"\nbest plan under cap: #{best.index} — {best.summary()}")
    if explain:
        from .codegen import build_executable_plan, render_c
        from .optimizer import describe_plan
        print("\n" + describe_plan(program, bindings, best))
        print("\n" + render_c(build_executable_plan(program, bindings, best)))
    return 0


def _demo(args) -> int:
    import numpy as np

    from . import obs
    from .engine import reference_outputs, run_program
    from .ops import add_multiply_program
    from .optimizer import optimize
    from .workloads import generate_inputs, two_matmul_config

    if args.workload == "two_matmuls":
        config = two_matmul_config("A")
        program, params = config.program, config.params
        inputs = generate_inputs(config)
        print(f"optimizing two-matmul workload (config A, "
              f"{params['n1']}x{params['n3']} block grid) ...")
    else:
        program = add_multiply_program()
        params = {"n1": args.blocks, "n2": args.blocks, "n3": 1}
        rng = np.random.default_rng(0)
        inputs = {n: rng.standard_normal(program.arrays[n].shape_elems(params))
                  for n in ("A", "B", "D")}
        print(f"optimizing Example 1 at {args.blocks}x{args.blocks} blocks ...")

    observing = bool(args.trace or args.metrics or args.validate_cost)
    tracer = registry = None
    if observing:
        tracer, registry = obs.enable(trace_path=args.trace)
    try:
        result = optimize(program, params, workers=args.workers)
        best = result.best()
        orig = result.original_plan
        print(f"{len(result.plans)} plans; best saves "
              f"{1 - best.cost.total_bytes / orig.cost.total_bytes:.0%} I/O "
              f"realizing {best.realized_labels}")

        if args.resume and not args.workdir:
            raise SystemExit("--resume requires --workdir")
        validate = args.tolerance if args.validate_cost and args.tolerance \
            else args.validate_cost
        kwargs = dict(faults=args.faults, checkpoint=bool(args.workdir),
                      resume=args.resume, validate=validate,
                      prefetch_depth=args.prefetch)
        if args.workdir:
            report, outputs = run_program(program, params, best, args.workdir,
                                          inputs, **kwargs)
        else:
            with tempfile.TemporaryDirectory() as workdir:
                report, outputs = run_program(program, params, best, workdir,
                                              inputs, **kwargs)
    finally:
        if observing:
            obs.disable()

    expected = reference_outputs(program, params, inputs)
    ok = all(np.allclose(outputs[name], expected[name]) for name in outputs)
    exact = (report.io.read_bytes == best.cost.read_bytes
             and report.io.write_bytes == best.cost.write_bytes)
    print(f"executed: {report.io.read_bytes / 1e6:.1f} MB read, "
          f"{report.io.write_bytes / 1e6:.1f} MB written; "
          f"result correct: {ok}; I/O byte-exact vs prediction: {exact}")
    if args.faults is not None:
        print(f"fault injection (seed {args.faults}): "
              f"{report.io.retries} transient faults absorbed by retry")
    if report.resumed_from:
        print(f"resumed from instance {report.resumed_from}: "
              f"{report.instances} instances re-executed")
    if report.prefetch is not None:
        pf = report.prefetch
        print(f"prefetch (depth {args.prefetch}): {pf.staged_blocks} blocks "
              f"staged ({pf.batched_runs} batched runs), "
              f"{pf.taken_by_main} read inline, "
              f"compute waited {pf.wait_seconds:.3f}s")

    if args.trace:
        chrome_path = args.trace + ".chrome.json"
        from pathlib import Path
        Path(chrome_path).write_text(obs.chrome_trace(tracer.events))
        print(f"trace: {tracer and len(tracer.events)} events -> {args.trace} "
              f"(Chrome/Perfetto: {chrome_path})")
    if args.metrics:
        print("\n" + registry.expose_text(), end="")

    validation_ok = True
    if args.validate_cost:
        print("\n" + report.validation.to_text())
        validation_ok = report.validation.passed

    # A resumed run legitimately differs from the plan's predicted bytes
    # (it skips completed instances and re-warms held blocks).
    return 0 if (ok and (exact or report.resumed_from)
                 and validation_ok) else 1


def _serve_jobs(path):
    """Parse the JSONL job file into (spec dict, line number) pairs."""
    jobs = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                spec = json.loads(line)
            except json.JSONDecodeError as err:
                raise SystemExit(f"{path}:{lineno}: bad JSON: {err}")
            if "program" not in spec or "params" not in spec:
                raise SystemExit(
                    f"{path}:{lineno}: job needs \"program\" and \"params\"")
            jobs.append((spec, lineno))
    if not jobs:
        raise SystemExit(f"{path}: no jobs")
    return jobs


def _serve(args) -> int:
    import numpy as np

    from . import obs
    from .engine import reference_outputs
    from .exceptions import JobCancelled, ReproError, ServiceError
    from .ir import ArrayKind
    from .ops import add_multiply_program, linreg_program, two_matmul_program
    from .service import ArrayService

    builders = {"add_multiply": add_multiply_program,
                "linreg": linreg_program}
    _ = two_matmul_program  # needs shapes; jobs pass them via "args"

    jobs = _serve_jobs(args.jobs)
    observing = bool(args.metrics_out)
    registry = None
    if observing:
        _, registry = obs.enable()

    def run_batch(workdir) -> int:
        failures = 0
        with ArrayService(workdir, memory_cap_bytes=args.memory_cap,
                          workers=args.service_workers,
                          plan_cache=args.plan_cache,
                          admission_timeout=args.admission_timeout,
                          prefetch_depth=args.prefetch,
                          job_timeout=args.deadline,
                          job_retry=args.job_retries,
                          degrade=bool(args.degrade),
                          backend=args.backend, shards=args.shards,
                          stripe_bytes=args.stripe_bytes,
                          io_pace=args.io_pace,
                          pace_channels=args.pace_channels) as svc:
            futures = []
            for spec, lineno in jobs:
                builder = builders.get(spec["program"])
                if builder is None:
                    raise SystemExit(
                        f"{args.jobs}:{lineno}: unknown program "
                        f"{spec['program']!r} (known: {sorted(builders)})")
                program = builder(*spec.get("args", ()))
                params = {k: int(v) for k, v in spec["params"].items()}
                rng = np.random.default_rng(spec.get("seed", 0))
                inputs = {n: rng.standard_normal(a.shape_elems(params))
                          for n, a in sorted(program.arrays.items())
                          if a.kind is ArrayKind.INPUT}
                extra = {}
                if "timeout" in spec:
                    extra["timeout"] = float(spec["timeout"])
                if "retries" in spec:
                    extra["retry"] = int(spec["retries"])
                fut = svc.submit(
                    program, params, inputs,
                    name=spec.get("name"),
                    memory_cap_bytes=spec.get("memory_cap"),
                    plan_exact=bool(spec.get("plan_exact", False)),
                    checkpoint=bool(spec.get("checkpoint", False)),
                    resume=bool(spec.get("resume", False)),
                    **extra)
                futures.append((fut, program, params, inputs, lineno))
            for fut, program, params, inputs, lineno in futures:
                try:
                    r = fut.result()
                except JobCancelled as err:
                    failures += 1
                    print(f"job @{lineno}: CANCELLED "
                          f"({type(err).__name__}: {err})")
                    continue
                except ServiceError as err:
                    failures += 1
                    print(f"job @{lineno}: REJECTED "
                          f"({type(err).__name__}: {err})")
                    continue
                except ReproError as err:
                    failures += 1
                    print(f"job @{lineno}: FAILED "
                          f"({type(err).__name__}: {err})")
                    continue
                line = (f"job {r.job}: plan #{r.plan.index} "
                        f"{'(cached) ' if r.cache_hit else ''}"
                        f"read {r.report.io.read_bytes / 1e6:.2f} MB, "
                        f"wrote {r.report.io.write_bytes / 1e6:.2f} MB, "
                        f"pool {r.report.pool_hits}h/"
                        f"{r.report.pool_misses}m, "
                        f"waited {r.admission_wait_seconds:.3f}s")
                if args.verify:
                    expected = reference_outputs(program, params, inputs)
                    ok = all(np.allclose(r.outputs[n], expected[n])
                             for n in r.outputs)
                    line += f", verified: {ok}"
                    if not ok:
                        failures += 1
                print(line)
            s = svc.stats
            print(f"\n{s.jobs_completed}/{s.jobs_submitted} jobs completed, "
                  f"{s.jobs_rejected} rejected, {s.jobs_failed} failed; "
                  f"disk totals: {svc.disk.stats!r}")
            if s.jobs_completed:
                q = s.job_seconds.quantiles()
                print("job latency (submit -> result): "
                      + ", ".join(f"{k}={v:.3f}s" for k, v in q.items()
                                  if v is not None))
            if args.shards > 1:
                per = ", ".join(
                    f"shard{i}: {st.read_bytes / 1e6:.2f}/"
                    f"{st.write_bytes / 1e6:.2f} MB r/w"
                    for i, st in enumerate(svc.disk.shard_stats()))
                print(f"shard traffic: {per}")
            resilience = (s.jobs_cancelled + s.jobs_deadline_exceeded
                          + s.jobs_shed + s.retries_attempted
                          + s.degraded_plans + s.breaker_trips)
            if resilience:
                print(f"resilience: {s.jobs_cancelled} cancelled, "
                      f"{s.jobs_deadline_exceeded} past deadline, "
                      f"{s.jobs_shed} shed, "
                      f"{s.retries_attempted} retries "
                      f"({s.retries_exhausted} exhausted), "
                      f"{s.degraded_plans} degraded plans, "
                      f"{s.breaker_trips} breaker trips")
            if svc.plan_cache is not None:
                pc = svc.plan_cache
                print(f"plan cache: {pc.hits} hits, {pc.misses} misses, "
                      f"{len(pc)} plans stored")
        return failures

    try:
        if args.workdir:
            failures = run_batch(args.workdir)
        else:
            with tempfile.TemporaryDirectory() as workdir:
                failures = run_batch(workdir)
    finally:
        if observing:
            from pathlib import Path
            text = registry.expose_text()
            quantiles = registry.quantiles()
            if quantiles:
                lines = ["# Histogram quantile estimates (linear "
                         "interpolation within buckets):"]
                for series, qs in sorted(quantiles.items()):
                    est = ", ".join(f"{k}={v:.6g}" for k, v in qs.items()
                                    if v is not None)
                    lines.append(f"# quantiles {series} {est}")
                text += "\n".join(lines) + "\n"
            Path(args.metrics_out).write_text(text)
            print(f"metrics exposition -> {args.metrics_out}")
            obs.disable()
    return 1 if failures else 0


def _advise(args) -> int:
    from .advisor import (AdvisorConfig, AdvisorContext, WorkloadProfile,
                          WorkloadSpec, measured_io_bytes, render_report,
                          run_analyzers, run_workload,
                          validate_recommendations, write_report)
    from .exceptions import AdvisorError

    if args.min_savings is not None and not args.apply:
        raise SystemExit("--min-savings requires --apply (it judges "
                         "*measured* bytes, not predictions)")
    try:
        spec = WorkloadSpec.from_jsonl(args.jobs)
    except AdvisorError as err:
        raise SystemExit(str(err))
    config = AdvisorConfig.from_spec(spec, memory_cap_bytes=args.memory_cap,
                                     prefetch_depth=args.prefetch,
                                     workers=args.service_workers)

    def advise_in(workdir) -> int:
        from pathlib import Path
        workdir = Path(workdir)
        try:
            if args.trace:
                profile = WorkloadProfile.from_files(args.trace, args.metrics)
                print(f"profiled {int(profile.totals.get('jobs', 0))} jobs "
                      f"offline from {args.trace}"
                      + (f" + {args.metrics}" if args.metrics else ""))
            else:
                print(f"running baseline: {len(config.jobs)} jobs ...")
                profile = run_workload(config, workdir / "baseline")
                print(f"baseline measured I/O: "
                      f"{measured_io_bytes(profile) / 1e6:.2f} MB")
        except AdvisorError as err:
            raise SystemExit(str(err))

        recs = run_analyzers(AdvisorContext(config, profile))
        validation = None
        if args.apply and recs:
            print(f"verifying {len(recs)} recommendation(s) by re-running "
                  f"the workload ...")
            validation = validate_recommendations(
                config, recs, workdir / "verify", tolerance=args.tolerance,
                baseline=None if args.trace else profile)
        print()
        print(render_report(recs, profile, validation, top=args.top), end="")
        if args.json:
            write_report(args.json, recs, profile, validation,
                         config=config.describe())
            print(f"\nreport document -> {args.json}")
        mispredicted = sum(1 for r in recs if r.mispredicted)
        if mispredicted:
            print(f"\nWARNING: {mispredicted} recommendation(s) "
                  f"mispredicted beyond tolerance {args.tolerance:.2%}")
        if args.min_savings is not None:
            reduction = (validation or {}).get("reduction") or 0.0
            if reduction < args.min_savings:
                print(f"\nFAIL: applied set reduced measured I/O by "
                      f"{reduction:.1%} < required {args.min_savings:.1%}")
                return 1
            print(f"\nOK: applied set reduced measured I/O by "
                  f"{reduction:.1%} (required {args.min_savings:.1%})")
        return 0

    if args.workdir:
        return advise_in(args.workdir)
    with tempfile.TemporaryDirectory() as workdir:
        return advise_in(workdir)


if __name__ == "__main__":
    sys.exit(main())
