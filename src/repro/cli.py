"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``optimize`` — parse a pseudo-code program (plus a JSON array-declaration
  file), run the optimizer, print the plan space and the best plan;
* ``explain``  — like optimize, but also print the generated pseudo-C for
  the chosen plan;
* ``demo``     — run the built-in Example-1 demo end to end (optimize,
  execute on the simulated disk, verify numerically).

Example array-declaration JSON::

    {
      "params": ["n1", "n2", "n3"],
      "bindings": {"n1": 4, "n2": 4, "n3": 1},
      "arrays": {
        "A": {"dims": ["n1", "n2"], "block_shape": [60, 40], "kind": "input"},
        "C": {"dims": ["n1", "n2"], "block_shape": [60, 40], "kind": "intermediate"},
        ...
      }
    }
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="RIOTShare I/O-sharing optimizer")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("optimize", "explain"):
        cmd = sub.add_parser(name)
        cmd.add_argument("source", help="pseudo-code file (C-style loop nests)")
        cmd.add_argument("decls", help="JSON array/parameter declaration file")
        cmd.add_argument("--memory-cap", type=int, default=None,
                         help="memory cap in bytes")
        cmd.add_argument("--max-set-size", type=int, default=None)
        cmd.add_argument("--max-candidates", type=int, default=None)
        cmd.add_argument("--workers", type=int, default=None,
                         help="process-pool workers for the plan search "
                              "(1 = sequential; N>=2 parallelizes each "
                              "Apriori level and the plan costing)")

    demo = sub.add_parser("demo")
    demo.add_argument("--blocks", type=int, default=4,
                      help="block grid size (n1 = n2 = blocks)")
    demo.add_argument("--faults", type=int, default=None, metavar="SEED",
                      help="inject deterministic transient I/O faults "
                           "(5%% of counted ops) with this seed; the "
                           "retry/backoff layer must absorb them")
    demo.add_argument("--workdir", default=None,
                      help="persistent working directory (enables the "
                           "checkpoint journal; default: a temp dir)")
    demo.add_argument("--resume", action="store_true",
                      help="resume an interrupted --workdir run from its "
                           "execution journal")

    args = parser.parse_args(argv)
    if args.command == "demo":
        return _demo(args)
    return _optimize(args, explain=args.command == "explain")


def _load_program(args):
    from .ir.parser import ArraySpec, parse_program

    with open(args.decls) as fh:
        decls = json.load(fh)
    arrays = {name: ArraySpec(tuple(spec["dims"]), tuple(spec["block_shape"]),
                              spec.get("kind", "input"),
                              spec.get("dtype_bytes", 8))
              for name, spec in decls["arrays"].items()}
    with open(args.source) as fh:
        source = fh.read()
    program = parse_program("cli", source, tuple(decls.get("params", ())),
                            arrays)
    bindings = {k: int(v) for k, v in decls.get("bindings", {}).items()}
    if not bindings:
        raise SystemExit("declaration file must bind every parameter "
                         "(\"bindings\": {\"n1\": 4, ...})")
    return program, bindings


def _optimize(args, explain: bool) -> int:
    from .optimizer import optimize

    program, bindings = _load_program(args)
    result = optimize(program, bindings, max_set_size=args.max_set_size,
                      max_candidates=args.max_candidates, workers=args.workers)
    print(f"{len(result.analysis.dependences)} dependences, "
          f"{len(result.analysis.opportunities)} sharing opportunities")
    print(f"search: {result.stats}\n")
    print(f"{'plan':>4} {'I/O(s)':>10} {'mem(MB)':>9}  realized")
    for plan in sorted(result.plans, key=lambda p: p.cost.io_seconds):
        print(f"{plan.index:>4} {plan.cost.io_seconds:>10.2f} "
              f"{plan.cost.memory_bytes / 1e6:>9.2f}  "
              f"{', '.join(plan.realized_labels) or '(original)'}")
    best = result.best(args.memory_cap)
    print(f"\nbest plan under cap: #{best.index} — {best.summary()}")
    if explain:
        from .codegen import build_executable_plan, render_c
        from .optimizer import describe_plan
        print("\n" + describe_plan(program, bindings, best))
        print("\n" + render_c(build_executable_plan(program, bindings, best)))
    return 0


def _demo(args) -> int:
    import numpy as np

    from .engine import run_program
    from .ops import add_multiply_program
    from .optimizer import optimize

    program = add_multiply_program()
    params = {"n1": args.blocks, "n2": args.blocks, "n3": 1}
    print(f"optimizing Example 1 at {args.blocks}x{args.blocks} blocks ...")
    result = optimize(program, params)
    best = result.best()
    orig = result.original_plan
    print(f"{len(result.plans)} plans; best saves "
          f"{1 - best.cost.total_bytes / orig.cost.total_bytes:.0%} I/O "
          f"realizing {best.realized_labels}")

    rng = np.random.default_rng(0)
    inputs = {n: rng.standard_normal(program.arrays[n].shape_elems(params))
              for n in ("A", "B", "D")}
    if args.resume and not args.workdir:
        raise SystemExit("--resume requires --workdir")
    kwargs = dict(faults=args.faults, checkpoint=bool(args.workdir),
                  resume=args.resume)
    if args.workdir:
        report, outputs = run_program(program, params, best, args.workdir,
                                      inputs, **kwargs)
    else:
        with tempfile.TemporaryDirectory() as workdir:
            report, outputs = run_program(program, params, best, workdir,
                                          inputs, **kwargs)
    ok = np.allclose(outputs["E"], (inputs["A"] + inputs["B"]) @ inputs["D"])
    exact = (report.io.read_bytes == best.cost.read_bytes
             and report.io.write_bytes == best.cost.write_bytes)
    print(f"executed: {report.io.read_bytes / 1e6:.1f} MB read, "
          f"{report.io.write_bytes / 1e6:.1f} MB written; "
          f"result correct: {ok}; I/O byte-exact vs prediction: {exact}")
    if args.faults is not None:
        print(f"fault injection (seed {args.faults}): "
              f"{report.io.retries} transient faults absorbed by retry")
    if report.resumed_from:
        print(f"resumed from instance {report.resumed_from}: "
              f"{report.instances} instances re-executed")
    # A resumed run legitimately differs from the plan's predicted bytes
    # (it skips completed instances and re-warms held blocks).
    return 0 if ok and (exact or report.resumed_from) else 1


if __name__ == "__main__":
    sys.exit(main())
