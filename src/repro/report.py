"""Reporting helpers: plan-space figures as CSV and ASCII scatter plots.

The paper's Figures 3(a)-6(a) are memory-vs-I/O scatter plots of the plan
space.  ``plan_space_csv`` emits the underlying series for external
plotting; ``plan_space_ascii`` renders a quick terminal view used by the
benchmarks and examples.
"""

from __future__ import annotations

import io
from typing import Sequence

from .optimizer import OptimizationResult, Plan

__all__ = ["plan_space_csv", "plan_space_ascii", "predicted_vs_actual_csv"]


def plan_space_csv(result: OptimizationResult) -> str:
    """CSV: plan, memory_bytes, io_seconds, n_opportunities, realized."""
    out = io.StringIO()
    out.write("plan,memory_bytes,io_seconds,n_opportunities,realized\n")
    for plan in sorted(result.plans, key=lambda p: p.index):
        labels = ";".join(plan.realized_labels)
        out.write(f"{plan.index},{plan.cost.memory_bytes},"
                  f"{plan.cost.io_seconds:.6f},{len(plan.realized)},"
                  f"\"{labels}\"\n")
    return out.getvalue()


def plan_space_ascii(result: OptimizationResult, width: int = 64,
                     height: int = 16) -> str:
    """Terminal scatter plot of the plan space (memory vs I/O time)."""
    plans = result.plans
    mems = [p.cost.memory_bytes for p in plans]
    ios = [p.cost.io_seconds for p in plans]
    lo_m, hi_m = min(mems), max(mems)
    lo_t, hi_t = min(ios), max(ios)

    def col(m):
        if hi_m == lo_m:
            return width // 2
        return round((m - lo_m) / (hi_m - lo_m) * (width - 1))

    def row(t):
        if hi_t == lo_t:
            return height // 2
        return round((t - lo_t) / (hi_t - lo_t) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    best = result.best()
    for p in plans:
        r, c = row(p.cost.io_seconds), col(p.cost.memory_bytes)
        grid[r][c] = "*" if p.index == best.index else ("0" if p.is_original else "o")
    lines = [f"I/O time (s): {lo_t:.1f} (top) .. {hi_t:.1f} (bottom); "
             f"memory: {lo_m / 1e6:.1f} .. {hi_m / 1e6:.1f} MB",
             "legend: 0 = original plan, * = best plan, o = other plans",
             "+" + "-" * width + "+"]
    for r in grid:
        lines.append("|" + "".join(r) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def predicted_vs_actual_csv(rows: Sequence[tuple]) -> str:
    """CSV for the (b)-figures: plan, predicted/actual I/O s, CPU s.

    ``rows`` is a sequence of (label, predicted_io_s, actual_io_s, cpu_s).
    """
    out = io.StringIO()
    out.write("plan,predicted_io_seconds,actual_io_seconds,cpu_seconds\n")
    for label, pred, actual, cpu in rows:
        out.write(f"\"{label}\",{pred:.6f},{actual:.6f},{cpu:.6f}\n")
    return out.getvalue()
