"""Reporting helpers: plan-space figures as CSV and ASCII scatter plots.

The paper's Figures 3(a)-6(a) are memory-vs-I/O scatter plots of the plan
space.  ``plan_space_csv`` emits the underlying series for external
plotting; ``plan_space_ascii`` renders a quick terminal view used by the
benchmarks and examples.
"""

from __future__ import annotations

import io
from typing import Sequence

from .optimizer import OptimizationResult, Plan

__all__ = ["plan_space_csv", "plan_space_ascii", "predicted_vs_actual_csv"]


def plan_space_csv(result: OptimizationResult) -> str:
    """CSV: plan, memory_bytes, io_seconds, n_opportunities, realized."""
    out = io.StringIO()
    out.write("plan,memory_bytes,io_seconds,n_opportunities,realized\n")
    for plan in sorted(result.plans, key=lambda p: p.index):
        labels = ";".join(plan.realized_labels)
        out.write(f"{plan.index},{plan.cost.memory_bytes},"
                  f"{plan.cost.io_seconds:.6f},{len(plan.realized)},"
                  f"\"{labels}\"\n")
    return out.getvalue()


def plan_space_ascii(result: OptimizationResult, width: int = 64,
                     height: int = 16) -> str:
    """Terminal scatter plot of the plan space (memory vs I/O time)."""
    plans = result.plans
    mems = [p.cost.memory_bytes for p in plans]
    ios = [p.cost.io_seconds for p in plans]
    lo_m, hi_m = min(mems), max(mems)
    lo_t, hi_t = min(ios), max(ios)

    # An axis with zero spread cannot be scaled; points are centered on it
    # and an explicit note says so, instead of letting a silently collapsed
    # axis read as "all plans coincide at the midpoint of a real range".
    degenerate: list[str] = []
    if len(plans) == 1:
        degenerate.append("note: single plan — both axes degenerate")
    else:
        if hi_m == lo_m:
            degenerate.append(f"note: degenerate memory axis — every plan "
                              f"needs {lo_m / 1e6:.1f} MB")
        if hi_t == lo_t:
            degenerate.append(f"note: degenerate I/O axis — every plan "
                              f"costs {lo_t:.2f} s")

    def col(m):
        if hi_m == lo_m:
            return width // 2
        return round((m - lo_m) / (hi_m - lo_m) * (width - 1))

    def row(t):
        if hi_t == lo_t:
            return height // 2
        return round((t - lo_t) / (hi_t - lo_t) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    best = result.best()
    for p in plans:
        r, c = row(p.cost.io_seconds), col(p.cost.memory_bytes)
        grid[r][c] = "*" if p.index == best.index else ("0" if p.is_original else "o")
    lines = [f"I/O time (s): {lo_t:.1f} (top) .. {hi_t:.1f} (bottom); "
             f"memory: {lo_m / 1e6:.1f} .. {hi_m / 1e6:.1f} MB",
             "legend: 0 = original plan, * = best plan, o = other plans"]
    lines += degenerate
    lines.append("+" + "-" * width + "+")
    for r in grid:
        lines.append("|" + "".join(r) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def predicted_vs_actual_csv(rows: Sequence[tuple]) -> str:
    """CSV for the (b)-figures: plan, predicted/actual I/O s, CPU s, and the
    durability counters that reconcile fault-absorbing runs.

    ``rows`` is a sequence of ``(label, predicted_io_s, actual_io_s, cpu_s)``
    or ``(label, predicted_io_s, actual_io_s, cpu_s, retries,
    checksum_failures)``.  The durability columns are always emitted
    (defaulting to 0): a run that absorbed transient faults keeps actual ==
    predicted, while each healed checksum failure re-reads one block, so
    ``actual = predicted + checksum_failures * block_io`` — the counters make
    the report reconcile byte-exactly instead of showing unexplained excess.
    """
    out = io.StringIO()
    out.write("plan,predicted_io_seconds,actual_io_seconds,cpu_seconds,"
              "retries,checksum_failures\n")
    for row in rows:
        label, pred, actual, cpu = row[:4]
        retries = row[4] if len(row) > 4 else 0
        checksum_failures = row[5] if len(row) > 5 else 0
        out.write(f"\"{label}\",{pred:.6f},{actual:.6f},{cpu:.6f},"
                  f"{retries},{checksum_failures}\n")
    return out.getvalue()
