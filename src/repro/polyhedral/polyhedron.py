"""Integer polyhedra: the core object of the RIOTShare framework.

A :class:`Polyhedron` is a conjunction of affine constraints over a named
:class:`Space` of integer variables.  Rows follow one convention everywhere:

    ``(a_1, ..., a_n, c)``  encodes  ``a . x + c >= 0``  (inequality)
                            or       ``a . x + c  = 0``  (equality)

This mirrors the matrix form in Section 4.1 of the paper.  The module
provides the operations the analysis and the optimizer need:

* intersection, renaming, space alignment, cartesian product;
* emptiness (rational via exact simplex, integer via gcd tests and
  branch-and-bound);
* Fourier-Motzkin projection (with an integer-exactness flag);
* variable bounds, integer point sampling / enumeration, lexicographic
  minima;
* parameter binding (substituting concrete sizes) and redundancy removal.

Everything is exact rational arithmetic; constraint rows are kept as
primitive integer tuples.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from ..exceptions import (EmptyPolyhedronError, PolyhedralError,
                          SpaceMismatchError, UnboundedError)
from .matrix import Rational, as_fraction, normalize_integer_row, row_gcd
from .simplex import LPStatus, solve_lp

__all__ = ["Space", "Polyhedron"]

_BRANCH_DEPTH_LIMIT = 200


class Space:
    """An ordered tuple of distinct variable names."""

    __slots__ = ("names", "_index")

    def __init__(self, names: Iterable[str]):
        self.names: tuple[str, ...] = tuple(names)
        if len(set(self.names)) != len(self.names):
            raise PolyhedralError(f"duplicate variable names in space: {self.names}")
        self._index = {name: i for i, name in enumerate(self.names)}

    @property
    def dim(self) -> int:
        return len(self.names)

    def index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise PolyhedralError(f"variable {name!r} not in space {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Space) and self.names == other.names

    def __hash__(self) -> int:
        return hash(self.names)

    def __repr__(self) -> str:
        return f"Space{self.names}"

    def extended(self, extra: Iterable[str]) -> "Space":
        return Space(self.names + tuple(extra))


class Polyhedron:
    """An integer polyhedron over a :class:`Space`.

    Instances are immutable; all operations return new polyhedra.
    """

    __slots__ = ("space", "eqs", "ineqs", "_trivially_empty", "_rat_empty")

    def __init__(self, space: Space,
                 eqs: Iterable[Sequence[Rational]] = (),
                 ineqs: Iterable[Sequence[Rational]] = ()):
        self.space = space
        width = space.dim + 1
        norm_eqs: set[tuple[int, ...]] = set()
        norm_ineqs: set[tuple[int, ...]] = set()
        trivially_empty = False
        for row in eqs:
            r = self._check_row(row, width)
            if not any(r[:-1]):
                if r[-1] != 0:
                    trivially_empty = True
                continue
            # Canonical sign for equalities: first nonzero coefficient positive.
            lead = next(v for v in r[:-1] if v)
            if lead < 0:
                r = tuple(-v for v in r)
            # GCD integrality test: g | coeffs must divide the constant.
            g = row_gcd(r[:-1])
            if g > 1 and r[-1] % g != 0:
                trivially_empty = True
            norm_eqs.add(r)
        for row in ineqs:
            r = self._check_row(row, width)
            if not any(r[:-1]):
                if r[-1] < 0:
                    trivially_empty = True
                continue
            # Tighten: a.x + c >= 0 with g = gcd(a) implies a.x + g*floor(c/g) >= 0.
            g = row_gcd(r[:-1])
            if g > 1:
                coeffs = tuple(v // g for v in r[:-1])
                const = _floor_div(r[-1], g)
                r = coeffs + (const,)
            norm_ineqs.add(r)
        # Among inequalities sharing a coefficient vector, only the tightest
        # (smallest constant) matters: a.x + c1 >= 0 implies a.x + c2 >= 0
        # for c2 >= c1.
        tightest: dict[tuple[int, ...], int] = {}
        for r in norm_ineqs:
            coeffs = r[:-1]
            if coeffs not in tightest or r[-1] < tightest[coeffs]:
                tightest[coeffs] = r[-1]
        self.eqs: tuple[tuple[int, ...], ...] = tuple(sorted(norm_eqs))
        self.ineqs: tuple[tuple[int, ...], ...] = tuple(
            sorted(coeffs + (c,) for coeffs, c in tightest.items()))
        self._trivially_empty = trivially_empty
        self._rat_empty: bool | None = None  # cached is_rational_empty()

    @staticmethod
    def _check_row(row: Sequence[Rational], width: int) -> tuple[int, ...]:
        if len(row) != width:
            raise PolyhedralError(f"constraint width {len(row)} != space dim + 1 = {width}")
        return normalize_integer_row(row)

    # -- constructors --------------------------------------------------------

    @classmethod
    def universe(cls, space: Space) -> "Polyhedron":
        return cls(space)

    @classmethod
    def empty(cls, space: Space) -> "Polyhedron":
        zero = (0,) * space.dim
        return cls(space, ineqs=[zero + (-1,)])

    @classmethod
    def from_terms(cls, space: Space,
                   eq_terms: Iterable[tuple[Mapping[str, Rational], Rational]] = (),
                   ineq_terms: Iterable[tuple[Mapping[str, Rational], Rational]] = ()) -> "Polyhedron":
        """Build from (coeff-dict, const) pairs; missing vars get coefficient 0."""
        def expand(term):
            coeffs, const = term
            row = [Fraction(0)] * space.dim
            for name, val in coeffs.items():
                row[space.index(name)] = as_fraction(val)
            row.append(as_fraction(const))
            return row
        return cls(space, eqs=[expand(t) for t in eq_terms],
                   ineqs=[expand(t) for t in ineq_terms])

    @classmethod
    def box(cls, space: Space, bounds: Mapping[str, tuple[int, int]]) -> "Polyhedron":
        """{x : lo_i <= x_i <= hi_i for each (lo_i, hi_i) in bounds}."""
        ineqs = []
        for name, (lo, hi) in bounds.items():
            i = space.index(name)
            row_lo = [0] * (space.dim + 1)
            row_lo[i] = 1
            row_lo[-1] = -lo
            row_hi = [0] * (space.dim + 1)
            row_hi[i] = -1
            row_hi[-1] = hi
            ineqs.extend([row_lo, row_hi])
        return cls(space, ineqs=ineqs)

    # -- protocol -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polyhedron) or self.space != other.space:
            return False
        return self.is_subset(other) and other.is_subset(self)

    def __hash__(self) -> int:  # structural hash (not canonical); fine for caching
        return hash((self.space, self.eqs, self.ineqs))

    def __repr__(self) -> str:
        parts = [self._row_str(r, "=") for r in self.eqs]
        parts += [self._row_str(r, ">=") for r in self.ineqs]
        body = " and ".join(parts) if parts else "true"
        return f"{{ {', '.join(self.space.names)} : {body} }}"

    def _row_str(self, row: tuple[int, ...], op: str) -> str:
        terms = []
        for name, coeff in zip(self.space.names, row[:-1]):
            if coeff == 0:
                continue
            if coeff == 1:
                terms.append(f"+{name}")
            elif coeff == -1:
                terms.append(f"-{name}")
            else:
                terms.append(f"{'+' if coeff > 0 else ''}{coeff}{name}")
        if row[-1] != 0 or not terms:
            terms.append(f"{'+' if row[-1] >= 0 else ''}{row[-1]}")
        return "".join(terms).lstrip("+") + f" {op} 0"

    @property
    def n_constraints(self) -> int:
        return len(self.eqs) + len(self.ineqs)

    # -- set operations --------------------------------------------------------

    @classmethod
    def _from_canonical(cls, space: Space,
                        eqs: tuple[tuple[int, ...], ...],
                        ineqs: tuple[tuple[int, ...], ...],
                        trivially_empty: bool,
                        rat_empty: bool | None = None) -> "Polyhedron":
        """Assemble from rows already in constructor-canonical form.

        Callers must guarantee the invariants the constructor establishes:
        primitive integer rows with a nonzero coefficient part, sign-canonical
        equalities, gcd-tightened inequalities with a unique (tightest)
        constant per coefficient vector, both families sorted.
        """
        poly = cls.__new__(cls)
        poly.space = space
        poly.eqs = eqs
        poly.ineqs = ineqs
        poly._trivially_empty = trivially_empty
        poly._rat_empty = rat_empty
        return poly

    def intersect(self, other: "Polyhedron") -> "Polyhedron":
        if self.space != other.space:
            raise SpaceMismatchError(f"{self.space} vs {other.space}")
        # Both operands are canonical, so their conjunction is a set union of
        # equalities plus a tightest-constant merge of inequalities — no row
        # needs renormalizing.  This is the optimizer's hottest polyhedron
        # operation (every Farkas system is an intersection chain).
        if self.eqs == other.eqs:
            eqs = self.eqs
        else:
            eqs = tuple(sorted(set(self.eqs) | set(other.eqs)))
        tightest: dict[tuple[int, ...], int] = {r[:-1]: r[-1] for r in self.ineqs}
        for r in other.ineqs:
            coeffs = r[:-1]
            c = tightest.get(coeffs)
            if c is None or r[-1] < c:
                tightest[coeffs] = r[-1]
        ineqs = tuple(sorted(coeffs + (c,) for coeffs, c in tightest.items()))
        # A known-empty operand makes the intersection empty; otherwise the
        # cached emptiness of either side says nothing about the conjunction.
        rat_empty = True if (self._rat_empty or other._rat_empty) else None
        return Polyhedron._from_canonical(
            self.space, eqs, ineqs,
            self._trivially_empty or other._trivially_empty, rat_empty)

    def add_constraints(self, eqs: Iterable[Sequence[Rational]] = (),
                        ineqs: Iterable[Sequence[Rational]] = ()) -> "Polyhedron":
        # Normalize only the new rows, then canonical-merge.
        return self.intersect(Polyhedron(self.space, eqs, ineqs))

    def rename(self, mapping: Mapping[str, str]) -> "Polyhedron":
        new_names = [mapping.get(n, n) for n in self.space.names]
        poly = Polyhedron.__new__(Polyhedron)
        poly.space = Space(new_names)
        poly.eqs = self.eqs
        poly.ineqs = self.ineqs
        poly._trivially_empty = self._trivially_empty
        poly._rat_empty = self._rat_empty
        return poly

    def align(self, space: Space) -> "Polyhedron":
        """Embed into a superspace (extra variables unconstrained)."""
        for name in self.space.names:
            if name not in space:
                raise SpaceMismatchError(f"variable {name} missing from target space")
        perm = [space.index(n) for n in self.space.names]

        def widen(row: tuple[int, ...]) -> list[int]:
            out = [0] * (space.dim + 1)
            for src, dst in enumerate(perm):
                out[dst] = row[src]
            out[-1] = row[-1]
            return out

        return Polyhedron(space, eqs=[widen(r) for r in self.eqs],
                          ineqs=[widen(r) for r in self.ineqs])

    def product(self, other: "Polyhedron") -> "Polyhedron":
        """Cartesian product; variable names must be disjoint."""
        overlap = set(self.space.names) & set(other.space.names)
        if overlap:
            raise SpaceMismatchError(f"product spaces overlap on {sorted(overlap)}")
        space = Space(self.space.names + other.space.names)
        return self.align(space).intersect(other.align(space))

    # -- feasibility ------------------------------------------------------------

    def is_rational_empty(self) -> bool:
        if self._trivially_empty:
            return True
        if self._rat_empty is None:
            result = solve_lp(self.eqs, self.ineqs, self.space.dim)
            self._rat_empty = result.status is LPStatus.INFEASIBLE
        return self._rat_empty

    def is_empty(self) -> bool:
        """Integer emptiness.

        Exact when an integer point is found or the rational relaxation is
        empty; if branch-and-bound exhausts its budget the polyhedron is
        conservatively reported nonempty (the safe direction for both
        dependences and sharing opportunities — see DESIGN.md).
        """
        if self.is_rational_empty():
            return True
        found, proved = _branch_and_bound(list(self.eqs), list(self.ineqs), self.space.dim)
        if found is not None:
            return False
        return proved

    def sample_rational_point(self) -> tuple[Fraction, ...]:
        result = solve_lp(self.eqs, self.ineqs, self.space.dim)
        if result.status is not LPStatus.OPTIMAL:
            raise EmptyPolyhedronError("cannot sample from an empty polyhedron")
        return result.point

    def find_integer_point(self) -> tuple[int, ...] | None:
        """An integer point, or None (branch-and-bound on the exact LP relaxation)."""
        found, _ = _branch_and_bound(list(self.eqs), list(self.ineqs), self.space.dim)
        if found is not None:
            return tuple(found)
        return None

    def sample_small_integer_point(self, grid_cap: int = 300_000
                                   ) -> tuple[int, ...] | None:
        """An integer point with small coordinates, found without B&B.

        Strategy: substitute away +-1-pivot equality variables (exactly
        integer-preserving), grid-enumerate the remaining free variables
        within their bounds preferring points close to the origin, and
        back-substitute.  Returns None when the reduced grid is unbounded or
        too large — callers then fall back to :meth:`find_integer_point`.

        Intended for schedule-coefficient polyhedra, which are mostly
        equalities plus a small coefficient box.
        """
        import numpy as np
        n = self.space.dim
        eqs = [list(r) for r in self.eqs]
        ineqs = [list(r) for r in self.ineqs]
        elim: list[tuple[int, list[int]]] = []
        eliminated: set[int] = set()
        while True:
            pivot = next(((j, r) for r in eqs for j in range(n)
                          if j not in eliminated and abs(r[j]) == 1), None)
            if pivot is None:
                break
            j, prow = pivot
            eqs = [_int_substitute(r, j, prow) for r in eqs if r is not prow]
            ineqs = [_int_substitute(r, j, prow) for r in ineqs]
            eliminated.add(j)
            elim.append((j, prow))
        for r in eqs:
            if not any(r[k] for k in range(n)) and r[-1] != 0:
                return None  # inconsistent
        for r in ineqs:
            if not any(r[k] for k in range(n)) and r[-1] < 0:
                return None

        free = [j for j in range(n) if j not in eliminated]
        if len(free) > 12:
            return None  # grid would be hopeless; let the caller use B&B
        red_eqs = [[r[j] for j in free] + [r[-1]] for r in eqs]
        red_ineqs = [[r[j] for j in free] + [r[-1]] for r in ineqs]
        # Cheap syntactic bounds: unit rows only (the coefficient box the
        # optimizer samples under provides them).  Loose bounds are fine —
        # the grid filter below applies every constraint exactly.
        bounds = []
        volume = 1
        for col in range(len(free)):
            lo = hi = None
            for r in red_ineqs:
                if r[col] == 0 or any(r[k] for k in range(len(free)) if k != col):
                    continue
                if r[col] > 0:
                    cand = _ceil_frac(Fraction(-r[-1], r[col]))
                    lo = cand if lo is None else max(lo, cand)
                else:
                    cand = _floor_frac(Fraction(r[-1], -r[col]))
                    hi = cand if hi is None else min(hi, cand)
            for r in red_eqs:
                if r[col] != 0 and not any(r[k] for k in range(len(free)) if k != col):
                    v = Fraction(-r[-1], r[col])
                    if v.denominator != 1:
                        return None
                    lo = hi = int(v)
            if lo is None or hi is None:
                return None
            if hi < lo:
                return None
            bounds.append((lo, hi))
            volume *= hi - lo + 1
            if volume > grid_cap:
                return None
        reduced = Polyhedron(Space([self.space.names[j] for j in free]),
                             red_eqs, red_ineqs)
        axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in bounds]
        if axes:
            mesh = np.meshgrid(*axes, indexing="ij")
            pts = np.stack([m.ravel() for m in mesh], axis=1)
        else:
            pts = np.zeros((1, 0), dtype=np.int64)
        mask = np.ones(len(pts), dtype=bool)
        for row in reduced.eqs:
            mask &= pts @ np.asarray(row[:-1], dtype=np.int64) + row[-1] == 0
        for row in reduced.ineqs:
            mask &= pts @ np.asarray(row[:-1], dtype=np.int64) + row[-1] >= 0
        kept = pts[mask]
        if len(kept) == 0:
            return None
        l1 = np.abs(kept).sum(axis=1)
        minimal = kept[l1 == l1.min()]
        # Tie-break toward nonnegative coefficients (nicer generated code).
        best = minimal[np.argmax(minimal.sum(axis=1))]
        full = [0] * n
        for j, v in zip(free, best):
            full[j] = int(v)
        for j, prow in reversed(elim):
            total = prow[-1]
            for k in range(n):
                if k != j and prow[k]:
                    total += prow[k] * full[k]
            full[j] = -total * prow[j]  # prow[j] in {1, -1}: 1/p == p
        if not self.contains_point(full):
            return None
        return tuple(full)

    # -- bounds and enumeration ---------------------------------------------------

    def var_bounds(self, name: str) -> tuple[int | None, int | None]:
        """Integer (floor/ceil of rational) min and max of a variable; None = unbounded."""
        i = self.space.index(name)
        obj = [0] * self.space.dim
        obj[i] = 1
        lo_res = solve_lp(self.eqs, self.ineqs, self.space.dim, objective=obj)
        if lo_res.status is LPStatus.INFEASIBLE:
            raise EmptyPolyhedronError("bounds of an empty polyhedron")
        hi_res = solve_lp(self.eqs, self.ineqs, self.space.dim, objective=obj, maximize=True)
        lo = None if lo_res.status is LPStatus.UNBOUNDED else _ceil_frac(lo_res.value)
        hi = None if hi_res.status is LPStatus.UNBOUNDED else _floor_frac(hi_res.value)
        return lo, hi

    def is_bounded(self) -> bool:
        if self.is_rational_empty():
            return True
        for name in self.space.names:
            lo, hi = self.var_bounds(name)
            if lo is None or hi is None:
                return False
        return True

    def integer_points(self, limit: int = 2_000_000) -> list[tuple[int, ...]]:
        """Enumerate all integer points (requires a bounded polyhedron).

        Fast path: when the bounding box is modest, generate the whole grid
        with numpy and filter by the constraint matrix (exact in int64 for
        the small coefficients our programs produce); otherwise fall back to
        recursive LP-guided enumeration.
        """
        if self.is_rational_empty():
            return []
        grid = self._numpy_grid_points(limit)
        if grid is not None:
            return grid
        points: list[tuple[int, ...]] = []
        self._enumerate(list(self.eqs), list(self.ineqs), [], limit, points)
        return points

    def _numpy_grid_points(self, limit: int,
                           volume_cap: int = 4_000_000) -> list[tuple[int, ...]] | None:
        import numpy as np
        for row in self.eqs + self.ineqs:
            if any(abs(v) > 1 << 20 for v in row):
                return None  # int64 overflow risk: use exact enumeration
        bounds = []
        volume = 1
        for name in self.space.names:
            lo, hi = self.var_bounds(name)
            if lo is None or hi is None:
                raise UnboundedError(f"variable {name} unbounded during enumeration")
            if hi < lo:
                return []
            bounds.append((lo, hi))
            volume *= hi - lo + 1
            if volume > volume_cap:
                return None  # grid too large; recursive enumeration prunes better
        if volume == 0:
            return []
        axes = [np.arange(lo, hi + 1, dtype=np.int64) for lo, hi in bounds]
        mesh = np.meshgrid(*axes, indexing="ij") if axes else []
        pts = (np.stack([m.ravel() for m in mesh], axis=1)
               if mesh else np.zeros((1, 0), dtype=np.int64))
        mask = np.ones(len(pts), dtype=bool)
        for row in self.eqs:
            vals = pts @ np.asarray(row[:-1], dtype=np.int64) + row[-1]
            mask &= vals == 0
        for row in self.ineqs:
            vals = pts @ np.asarray(row[:-1], dtype=np.int64) + row[-1]
            mask &= vals >= 0
        kept = pts[mask]
        if len(kept) > limit:
            raise UnboundedError(f"integer point enumeration exceeded limit {limit}")
        return [tuple(int(v) for v in p) for p in kept]

    def _enumerate(self, eqs, ineqs, prefix: list[int], limit: int,
                   out: list[tuple[int, ...]]) -> None:
        n = self.space.dim
        k = len(prefix)
        if k == n:
            out.append(tuple(prefix))
            if len(out) > limit:
                raise UnboundedError(f"integer point enumeration exceeded limit {limit}")
            return
        # Bounds of variable k given the prefix already fixed.
        obj = [0] * n
        obj[k] = 1
        fixed_eqs = list(eqs)
        for j, val in enumerate(prefix):
            row = [0] * (n + 1)
            row[j] = 1
            row[-1] = -val
            fixed_eqs.append(tuple(row))
        lo_res = solve_lp(fixed_eqs, ineqs, n, objective=obj)
        if lo_res.status is LPStatus.INFEASIBLE:
            return
        hi_res = solve_lp(fixed_eqs, ineqs, n, objective=obj, maximize=True)
        if lo_res.status is LPStatus.UNBOUNDED or hi_res.status is LPStatus.UNBOUNDED:
            raise UnboundedError(f"variable {self.space.names[k]} unbounded during enumeration")
        lo = _ceil_frac(lo_res.value)
        hi = _floor_frac(hi_res.value)
        for v in range(lo, hi + 1):
            self._enumerate(eqs, ineqs, prefix + [v], limit, out)

    def count_integer_points(self, limit: int = 2_000_000) -> int:
        return len(self.integer_points(limit))

    def lexmin(self) -> tuple[int, ...] | None:
        """Lexicographic minimum integer point w.r.t. the space's variable order."""
        return self._lex_extreme(maximize=False)

    def lexmax(self) -> tuple[int, ...] | None:
        return self._lex_extreme(maximize=True)

    def _lex_extreme(self, maximize: bool) -> tuple[int, ...] | None:
        if self.is_empty():
            return None
        n = self.space.dim
        eqs = list(self.eqs)
        prefix: list[int] = []
        for k in range(n):
            obj = [0] * n
            obj[k] = 1
            best: int | None = None
            # Integer optimum of x_k subject to prefix fixed: B&B on bound.
            res = solve_lp(eqs, self.ineqs, n, objective=obj, maximize=maximize)
            if res.status is LPStatus.UNBOUNDED:
                raise UnboundedError(f"lexmin/lexmax unbounded in {self.space.names[k]}")
            bound = _floor_frac(res.value) if maximize else _ceil_frac(res.value)
            # March the candidate bound toward feasibility (integer).
            step = -1 if maximize else 1
            candidate = bound
            for _ in range(_BRANCH_DEPTH_LIMIT):
                row = [0] * (n + 1)
                row[k] = 1
                row[-1] = -candidate
                trial_eqs = eqs + [tuple(row)]
                found, proved = _branch_and_bound(trial_eqs, list(self.ineqs), n)
                if found is not None:
                    best = candidate
                    break
                if not proved:
                    raise PolyhedralError("lexmin: branch-and-bound budget exhausted")
                candidate += step
                # Check candidate still rationally feasible.
                row2 = [0] * (n + 1)
                row2[k] = 1
                row2[-1] = -candidate
                if solve_lp(eqs + [tuple(row2)], self.ineqs, n).status is LPStatus.INFEASIBLE:
                    return None
            if best is None:
                return None
            row = [0] * (n + 1)
            row[k] = 1
            row[-1] = -best
            eqs.append(tuple(row))
            prefix.append(best)
        return tuple(prefix)

    # -- projection ---------------------------------------------------------------

    def project_out(self, names: Iterable[str]) -> tuple["Polyhedron", bool]:
        """Fourier-Motzkin projection eliminating ``names``.

        Returns ``(shadow, exact)`` where ``exact`` is True when the result
        is integer-exact (every elimination step used a +-1 coefficient or an
        equality substitution with a unit pivot).

        Victims are eliminated greedily — equality pivots first, then the
        variable with the smallest lower*upper product — and the system is
        renormalized (and LP-pruned when it grows) after every step, which
        keeps the classic FM blowup in check for the Farkas systems the
        optimizer generates.
        """
        victims = set(names)
        for v in victims:
            self.space.index(v)
        current = self
        exact = True
        while victims:
            victim = _pick_fm_victim(current, victims)
            idx = current.space.index(victim)
            eqs, ineqs, step_exact = _fm_eliminate(
                [list(r) for r in current.eqs], [list(r) for r in current.ineqs], idx)
            exact = exact and step_exact
            order = [n for n in current.space.names if n != victim]
            current = Polyhedron(Space(order), eqs, ineqs)
            victims.discard(victim)
            if len(current.ineqs) > 28:
                current = current.remove_redundancy()
            if current._trivially_empty or current.is_rational_empty():
                return Polyhedron.empty(current.bind({v: 0 for v in victims}).space
                                        if victims else current.space), exact
        return current, exact

    def exists(self, names: Iterable[str]) -> "Polyhedron":
        """Projection ignoring the exactness flag (rational shadow)."""
        shadow, _ = self.project_out(names)
        return shadow

    # -- parameter binding -----------------------------------------------------------

    def bind(self, values: Mapping[str, Rational]) -> "Polyhedron":
        """Substitute concrete values for some variables, dropping them."""
        keep = [n for n in self.space.names if n not in values]
        keep_idx = [self.space.index(n) for n in keep]
        bound_idx = [(self.space.index(n), as_fraction(v)) for n, v in values.items()
                     if n in self.space]

        def narrow(row: tuple[int, ...]) -> list[Fraction]:
            const = as_fraction(row[-1])
            for i, v in bound_idx:
                const += row[i] * v
            return [as_fraction(row[i]) for i in keep_idx] + [const]

        return Polyhedron(Space(keep), eqs=[narrow(r) for r in self.eqs],
                          ineqs=[narrow(r) for r in self.ineqs])

    # -- simplification -----------------------------------------------------------------

    def remove_redundancy(self) -> "Polyhedron":
        """Drop inequalities implied by the rest (exact LP test)."""
        if self.is_rational_empty():
            return Polyhedron.empty(self.space)
        kept: list[tuple[int, ...]] = []
        remaining = list(self.ineqs)
        for i, row in enumerate(self.ineqs):
            others = kept + remaining[i + 1:]
            obj = list(row[:-1])
            res = solve_lp(self.eqs, others, self.space.dim, objective=obj)
            if res.status is LPStatus.OPTIMAL and res.value + row[-1] >= 0:
                continue  # implied by the others
            kept.append(row)
        return Polyhedron(self.space, self.eqs, kept)

    def affine_hull_eqs(self) -> tuple[tuple[int, ...], ...]:
        """Equalities of the affine hull: stated eqs plus implied ones."""
        implied = []
        for row in self.ineqs:
            # a.x + c >= 0 is an implicit equality iff max(-(a.x + c)) = 0,
            # i.e. min(a.x + c) = 0 over the polyhedron.
            res = solve_lp(self.eqs, self.ineqs, self.space.dim, objective=list(row[:-1]))
            if res.status is LPStatus.OPTIMAL and res.value + row[-1] == 0:
                implied.append(row)
        return self.eqs + tuple(implied)

    # -- containment ----------------------------------------------------------------------

    def contains_point(self, point: Sequence[Rational]) -> bool:
        vals = [as_fraction(v) for v in point]
        if len(vals) != self.space.dim:
            raise PolyhedralError("point dimension mismatch")
        for row in self.eqs:
            if _eval_row(row, vals) != 0:
                return False
        for row in self.ineqs:
            if _eval_row(row, vals) < 0:
                return False
        return True

    def is_subset(self, other: "Polyhedron") -> bool:
        """self ⊆ other (rational test; exact for our use on integer-dense sets)."""
        if self.space != other.space:
            raise SpaceMismatchError(f"{self.space} vs {other.space}")
        if self.is_rational_empty():
            return True
        for row in other.eqs:
            for sense in (list(row), [-v for v in row]):
                if not self._implies_ineq(sense):
                    return False
        for row in other.ineqs:
            if not self._implies_ineq(list(row)):
                return False
        return True

    def _implies_ineq(self, row: Sequence[Rational]) -> bool:
        obj = [as_fraction(v) for v in row[:-1]]
        res = solve_lp(self.eqs, self.ineqs, self.space.dim, objective=obj)
        if res.status is LPStatus.UNBOUNDED:
            return False
        return res.value + as_fraction(row[-1]) >= 0


# -- helpers ---------------------------------------------------------------------


def _eval_row(row: Sequence[int], vals: Sequence[Fraction]) -> Fraction:
    total = as_fraction(row[-1])
    for a, v in zip(row[:-1], vals):
        if a:
            total += a * v
    return total


def _floor_div(a: int, b: int) -> int:
    return a // b


def _floor_frac(f: Fraction) -> int:
    return f.numerator // f.denominator


def _ceil_frac(f: Fraction) -> int:
    return -((-f.numerator) // f.denominator)


def _pick_fm_victim(poly: "Polyhedron", victims: set) -> str:
    """Greedy elimination order: equality pivots first (cheapest), otherwise
    the victim minimizing the lower-bound x upper-bound product."""
    best = None
    best_cost = None
    for name in victims:
        idx = poly.space.index(name)
        if any(r[idx] != 0 for r in poly.eqs):
            return name  # substitution: no growth at all
        lower = sum(1 for r in poly.ineqs if r[idx] > 0)
        upper = sum(1 for r in poly.ineqs if r[idx] < 0)
        cost = lower * upper - (lower + upper)
        if best_cost is None or cost < best_cost:
            best, best_cost = name, cost
    return best


def _fm_eliminate(eqs: list[list[int]], ineqs: list[list[int]], idx: int):
    """Eliminate the variable at column ``idx``; returns (eqs, ineqs, exact)."""
    exact = True
    # Prefer an equality pivot.
    pivot_row = None
    for row in eqs:
        if row[idx] != 0:
            if pivot_row is None or abs(row[idx]) < abs(pivot_row[idx]):
                pivot_row = row
    if pivot_row is not None:
        p = pivot_row[idx]
        if abs(p) != 1:
            exact = False
        new_eqs, new_ineqs = [], []
        for row in eqs:
            if row is pivot_row:
                continue
            new_eqs.append(_combine(row, pivot_row, idx))
        for row in ineqs:
            new_ineqs.append(_combine_ineq(row, pivot_row, idx))
        return ([_drop(r, idx) for r in new_eqs],
                [_drop(r, idx) for r in new_ineqs], exact)

    # Pure Fourier-Motzkin on inequalities.
    lower = [r for r in ineqs if r[idx] > 0]   # a > 0: gives lower bound on x
    upper = [r for r in ineqs if r[idx] < 0]   # a < 0: gives upper bound on x
    neutral = [r for r in ineqs if r[idx] == 0]
    for r in lower + upper:
        if abs(r[idx]) != 1:
            exact = False
    out = [list(r) for r in neutral]
    for lo in lower:
        for hi in upper:
            # lo: a.x + ... >= 0 (a>0), hi: b.x + ... >= 0 (b<0)
            a, b = lo[idx], -hi[idx]
            combined = [b * lv + a * hv for lv, hv in zip(lo, hi)]
            out.append(combined)
    return ([_drop(list(r), idx) for r in eqs],  # eqs don't mention idx here
            [_drop(r, idx) for r in out], exact)


def _combine(row: list[int], pivot: list[int], idx: int) -> list[int]:
    """Eliminate row[idx] using equality pivot (for equality rows)."""
    if row[idx] == 0:
        return list(row)
    p = pivot[idx]
    return [p * rv - row[idx] * pv for rv, pv in zip(row, pivot)]


def _combine_ineq(row: list[int], pivot: list[int], idx: int) -> list[int]:
    """Eliminate row[idx] from an inequality using an equality pivot.

    Multiplies the inequality by |p| (positive) to stay sign-correct.
    """
    if row[idx] == 0:
        return list(row)
    p = pivot[idx]
    sign = 1 if p > 0 else -1
    # row * |p| - sign*row[idx] * pivot  has zero at idx
    return [abs(p) * rv - sign * row[idx] * pv for rv, pv in zip(row, pivot)]


def _drop(row: list[int], idx: int) -> list[int]:
    return row[:idx] + row[idx + 1:]


def _int_substitute(row: list[int], j: int, pivot: list[int]) -> list[int]:
    """Eliminate column j from an integer row using a +-1-pivot equality.

    pivot[j] in {1, -1}; substitution keeps integer coefficients and, for
    inequalities, multiplies by +1 only (sign-safe).
    """
    c = row[j]
    if c == 0:
        return list(row)
    f = c * pivot[j]  # == c / pivot[j] since pivot[j] is +-1
    return [a - f * b for a, b in zip(row, pivot)]


def _branch_and_bound(eqs: list, ineqs: list, n: int,
                      depth: int = 0) -> tuple[list[int] | None, bool]:
    """Find an integer point; returns (point | None, proved_empty_if_none)."""
    res = solve_lp(eqs, ineqs, n)
    if res.status is LPStatus.INFEASIBLE:
        return None, True
    point = res.point
    frac_idx = next((i for i, v in enumerate(point) if v.denominator != 1), None)
    if frac_idx is None:
        return [int(v) for v in point], True
    if depth >= _BRANCH_DEPTH_LIMIT:
        return None, False
    v = point[frac_idx]
    lo_branch = [0] * (n + 1)
    lo_branch[frac_idx] = -1
    lo_branch[-1] = _floor_frac(v)          # x <= floor(v)
    hi_branch = [0] * (n + 1)
    hi_branch[frac_idx] = 1
    hi_branch[-1] = -_ceil_frac(v)          # x >= ceil(v)
    found, proved1 = _branch_and_bound(eqs, ineqs + [tuple(lo_branch)], n, depth + 1)
    if found is not None:
        return found, True
    found, proved2 = _branch_and_bound(eqs, ineqs + [tuple(hi_branch)], n, depth + 1)
    if found is not None:
        return found, True
    return None, proved1 and proved2
