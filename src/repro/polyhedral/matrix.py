"""Exact rational linear algebra over :class:`fractions.Fraction`.

This module is the arithmetic bedrock of the polyhedral library.  Everything
is exact: no floating point appears anywhere in the analysis or the
optimizer, which is what lets the optimizer make *precise* legality and cost
claims (the paper's central argument for optimizing at the memory level
rather than the cache level).

Matrices are small (schedule rows, iteration-domain constraints), so the
implementation favours clarity over asymptotic cleverness: plain
fraction-free-ish Gaussian elimination, O(n^3).
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd as _math_gcd
from typing import Iterable, Sequence

Rational = int | Fraction

__all__ = [
    "Rational",
    "as_fraction",
    "normalize_integer_row",
    "normalize_integer_row_exact",
    "row_gcd",
    "RationalMatrix",
]

# Hash-consed small rationals: the polyhedral layer overwhelmingly handles
# coefficients in {-1, 0, 1} plus a handful of small block counts, so one
# shared Fraction per small integer kills most allocation in the hot paths.
_INTERN_RANGE = 64
_INTERN = {i: Fraction(i) for i in range(-_INTERN_RANGE, _INTERN_RANGE + 1)}


def as_fraction(value: Rational) -> Fraction:
    """Coerce an int or Fraction to Fraction (small ints are interned)."""
    if type(value) is int:
        interned = _INTERN.get(value)
        return interned if interned is not None else Fraction(value)
    if isinstance(value, Fraction):
        return value
    return Fraction(value)


def row_gcd(row: Sequence[int]) -> int:
    """Greatest common divisor of the absolute values in ``row`` (0 if all zero)."""
    g = 0
    for v in row:
        g = _math_gcd(g, int(v))
        if g == 1:
            return 1
    return g


def _gcd(a: int, b: int) -> int:
    return _math_gcd(a, b)


def normalize_integer_row_exact(row: Sequence[Rational]) -> tuple[int, ...]:
    """Reference implementation of :func:`normalize_integer_row` over
    :class:`~fractions.Fraction` — the exact path the integer fast path is
    differentially tested against."""
    fracs = [as_fraction(v) for v in row]
    denom = 1
    for f in fracs:
        denom = denom * f.denominator // _math_gcd(denom, f.denominator)
    ints = [int(f * denom) for f in fracs]
    g = row_gcd(ints)
    if g > 1:
        ints = [v // g for v in ints]
    return tuple(ints)


def normalize_integer_row(row: Sequence[Rational]) -> tuple[int, ...]:
    """Scale a rational row to a primitive integer row (cleared denominators,
    divided by the gcd).  The zero row maps to itself.

    Fast path: rows that are already pure ``int`` (the overwhelmingly common
    case — every stored constraint row is one) skip Fraction arithmetic
    entirely; anything else takes the exact rational path.
    """
    g = 0
    for v in row:
        if type(v) is not int:
            return normalize_integer_row_exact(row)
        if g != 1:
            g = _math_gcd(g, v)
    if g > 1:
        return tuple(v // g for v in row)
    return tuple(row)


class RationalMatrix:
    """A dense matrix of Fractions with exact elimination routines.

    Rows are tuples of Fractions; the matrix is immutable from the outside
    (operations return new matrices) which keeps reasoning simple in the
    optimizer where matrices are shared across search branches.
    """

    __slots__ = ("rows", "ncols")

    def __init__(self, rows: Iterable[Sequence[Rational]], ncols: int | None = None):
        materialized = [tuple(as_fraction(v) for v in row) for row in rows]
        if materialized:
            widths = {len(r) for r in materialized}
            if len(widths) != 1:
                raise ValueError(f"ragged rows: widths {sorted(widths)}")
            inferred = widths.pop()
            if ncols is not None and ncols != inferred:
                raise ValueError(f"ncols {ncols} != row width {inferred}")
            self.ncols = inferred
        else:
            if ncols is None:
                raise ValueError("empty matrix requires explicit ncols")
            self.ncols = ncols
        self.rows: tuple[tuple[Fraction, ...], ...] = tuple(materialized)

    # -- basic protocol ----------------------------------------------------

    @property
    def nrows(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def __getitem__(self, idx: int) -> tuple[Fraction, ...]:
        return self.rows[idx]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RationalMatrix) and self.rows == other.rows and self.ncols == other.ncols

    def __hash__(self) -> int:
        return hash((self.rows, self.ncols))

    def __repr__(self) -> str:
        body = "; ".join(" ".join(str(v) for v in row) for row in self.rows)
        return f"RationalMatrix({self.nrows}x{self.ncols}: {body})"

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "RationalMatrix":
        return cls([[Fraction(int(i == j)) for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, nrows: int, ncols: int) -> "RationalMatrix":
        return cls([[Fraction(0)] * ncols for _ in range(nrows)], ncols=ncols)

    # -- arithmetic --------------------------------------------------------

    def transpose(self) -> "RationalMatrix":
        return RationalMatrix(
            [[self.rows[r][c] for r in range(self.nrows)] for c in range(self.ncols)],
            ncols=self.nrows,
        )

    def matmul(self, other: "RationalMatrix") -> "RationalMatrix":
        if self.ncols != other.nrows:
            raise ValueError(f"shape mismatch {self.nrows}x{self.ncols} @ {other.nrows}x{other.ncols}")
        ot = other.transpose()
        return RationalMatrix(
            [[_dot(row, col) for col in ot.rows] for row in self.rows],
            ncols=other.ncols,
        )

    def matvec(self, vec: Sequence[Rational]) -> tuple[Fraction, ...]:
        v = tuple(as_fraction(x) for x in vec)
        if len(v) != self.ncols:
            raise ValueError(f"vector length {len(v)} != ncols {self.ncols}")
        return tuple(_dot(row, v) for row in self.rows)

    def stack(self, other: "RationalMatrix") -> "RationalMatrix":
        if self.ncols != other.ncols:
            raise ValueError("column mismatch in stack")
        return RationalMatrix(self.rows + other.rows, ncols=self.ncols)

    # -- elimination -------------------------------------------------------

    def rref(self) -> tuple["RationalMatrix", list[int]]:
        """Reduced row echelon form and the list of pivot column indices."""
        rows = [list(r) for r in self.rows]
        pivots: list[int] = []
        r = 0
        for c in range(self.ncols):
            pivot_row = next((i for i in range(r, len(rows)) if rows[i][c] != 0), None)
            if pivot_row is None:
                continue
            rows[r], rows[pivot_row] = rows[pivot_row], rows[r]
            inv = 1 / rows[r][c]
            rows[r] = [v * inv for v in rows[r]]
            for i in range(len(rows)):
                if i != r and rows[i][c] != 0:
                    factor = rows[i][c]
                    rows[i] = [a - factor * b for a, b in zip(rows[i], rows[r])]
            pivots.append(c)
            r += 1
            if r == len(rows):
                break
        return RationalMatrix(rows, ncols=self.ncols), pivots

    def rank(self) -> int:
        _, pivots = self.rref()
        return len(pivots)

    def null_space(self) -> list[tuple[Fraction, ...]]:
        """A basis (list of vectors) of the right null space {x : M x = 0}."""
        rref, pivots = self.rref()
        free_cols = [c for c in range(self.ncols) if c not in pivots]
        basis = []
        for fc in free_cols:
            vec = [Fraction(0)] * self.ncols
            vec[fc] = Fraction(1)
            for r, pc in enumerate(pivots):
                vec[pc] = -rref.rows[r][fc]
            basis.append(tuple(vec))
        return basis

    def row_space_basis(self) -> list[tuple[Fraction, ...]]:
        """A basis of the row space (nonzero rows of the RREF)."""
        rref, pivots = self.rref()
        return [rref.rows[i] for i in range(len(pivots))]

    def solve(self, rhs: Sequence[Rational]) -> tuple[Fraction, ...] | None:
        """One solution x of ``M x = rhs``, or None if inconsistent.

        Free variables are set to zero.
        """
        b = [as_fraction(v) for v in rhs]
        if len(b) != self.nrows:
            raise ValueError("rhs length mismatch")
        aug = RationalMatrix(
            [tuple(row) + (b[i],) for i, row in enumerate(self.rows)],
            ncols=self.ncols + 1,
        )
        rref, pivots = aug.rref()
        if self.ncols in pivots:  # pivot in the augmented column => inconsistent
            return None
        x = [Fraction(0)] * self.ncols
        for r, pc in enumerate(pivots):
            x[pc] = rref.rows[r][self.ncols]
        return tuple(x)

    def in_row_space(self, vec: Sequence[Rational]) -> bool:
        """Is ``vec`` a linear combination of this matrix's rows?"""
        v = tuple(as_fraction(x) for x in vec)
        if len(v) != self.ncols:
            raise ValueError("vector length mismatch")
        return self.stack(RationalMatrix([v])).rank() == self.rank()

    def inverse(self) -> "RationalMatrix":
        if self.nrows != self.ncols:
            raise ValueError("inverse of non-square matrix")
        n = self.nrows
        aug = RationalMatrix(
            [tuple(self.rows[i]) + tuple(RationalMatrix.identity(n).rows[i]) for i in range(n)],
            ncols=2 * n,
        )
        rref, pivots = aug.rref()
        if pivots != list(range(n)):
            raise ValueError("matrix is singular")
        return RationalMatrix([row[n:] for row in rref.rows], ncols=n)


def _dot(a: Sequence[Fraction], b: Sequence[Fraction]) -> Fraction:
    total = Fraction(0)
    for x, y in zip(a, b):
        if x and y:
            total += x * y
    return total
