"""Tiny symbolic terms for the counting module: affine polynomials over
parameters and max(0, .) guards.

Kept separate from :mod:`repro.ir.expr` (which carries program semantics):
these are pure arithmetic carriers for :mod:`repro.polyhedral.counting`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

__all__ = ["AffinePoly", "Max0"]


class AffinePoly:
    """sum(coeff_p * p) + const over parameter names."""

    __slots__ = ("coeffs", "const")

    def __init__(self, coeffs: Mapping[str, Fraction], const: Fraction):
        self.coeffs = {k: Fraction(v) for k, v in coeffs.items() if v}
        self.const = Fraction(const)

    @classmethod
    def from_row(cls, row: Sequence, names: Sequence[str],
                 constant_shift: int = 0) -> "AffinePoly":
        coeffs = {}
        for name, c in zip(names, row[:-1]):
            if c:
                coeffs[name] = Fraction(c)
        return cls(coeffs, Fraction(row[-1]) + constant_shift)

    def evaluate(self, params: Mapping[str, int]) -> Fraction:
        total = self.const
        for name, c in self.coeffs.items():
            if name not in params:
                raise KeyError(f"unbound parameter {name!r}")
            total += c * params[name]
        return total

    def __str__(self) -> str:
        parts = []
        for name in sorted(self.coeffs):
            c = self.coeffs[name]
            if c == 1:
                parts.append(f"+{name}")
            elif c == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{'+' if c > 0 else ''}{c}*{name}")
        if self.const or not parts:
            parts.append(f"{'+' if self.const >= 0 else ''}{self.const}")
        return "".join(parts).lstrip("+")


class Max0:
    """max(0, inner) — the width factor of a possibly-empty range."""

    __slots__ = ("inner",)

    def __init__(self, inner: AffinePoly):
        self.inner = inner

    def evaluate(self, params: Mapping[str, int]) -> Fraction:
        return max(Fraction(0), self.inner.evaluate(params))

    def __str__(self) -> str:
        text = str(self.inner)
        if self.inner.coeffs:
            return f"max(0, {text})"
        return text if self.inner.const >= 0 else "0"
