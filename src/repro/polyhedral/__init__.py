"""Pure-Python exact integer polyhedra library (the paper's isl [23] role).

Public surface:

* :class:`Space`, :class:`Polyhedron` — convex integer polyhedra with exact
  rational arithmetic, Fourier-Motzkin projection, integer feasibility,
  enumeration, and lexicographic extrema.
* :class:`PolyhedralSet` — finite unions with subtraction (needed by the
  no-write-in-between rule).
* :class:`SymbolicForm`, :func:`farkas_nonneg`, :func:`farkas_equals_const`
  — the affine form of the Farkas lemma used to linearize schedule
  constraints (Lemma 1).
* :class:`RationalMatrix` — exact linear algebra (rank / null space / span
  tests behind the dimensionality constraints of Algorithm 1).
* :func:`solve_lp` — exact two-phase simplex.
"""

from .counting import CountFormula, symbolic_count
from .farkas import SymbolicForm, farkas_equals_const, farkas_nonneg
from .matrix import RationalMatrix, normalize_integer_row
from .polyhedron import Polyhedron, Space
from .sets import PolyhedralSet
from .simplex import LPStatus, solve_lp

__all__ = [
    "Space",
    "Polyhedron",
    "PolyhedralSet",
    "SymbolicForm",
    "farkas_nonneg",
    "farkas_equals_const",
    "RationalMatrix",
    "normalize_integer_row",
    "LPStatus",
    "solve_lp",
    "CountFormula",
    "symbolic_count",
]
