"""Affine form of the Farkas lemma (Lemma 1 in the paper).

Given a nonempty polyhedron ``P`` over variables ``y`` and a *symbolic*
affine form

    psi(y) = sum_u  u * t_u(y)  +  t_0(y)

whose unknowns ``u`` are schedule coefficients and whose ``t_u`` are known
affine functions of ``y``, the lemma characterizes exactly the assignments of
``u`` for which ``psi(y) >= 0`` for every ``y`` in ``P``:

    psi(y) === lambda_0 + sum_k lambda_k (a_k . y + b_k),   lambda >= 0

Matching coefficients of ``y`` turns this into linear equalities over
``(u, lambda)``; eliminating the multipliers by Fourier-Motzkin yields a
polyhedron in ``u``-space.  Equality constraints of ``P`` get free (sign-
unrestricted) multipliers, which our polyhedron layer supports natively.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping, Sequence

from ..exceptions import EmptyPolyhedronError, PolyhedralError
from .matrix import Rational, as_fraction
from .polyhedron import Polyhedron, Space

__all__ = ["SymbolicForm", "farkas_nonneg", "farkas_equals_const"]


class SymbolicForm:
    """psi(y) = sum_u u * t_u(y) + t_0(y) over a fixed y-space.

    ``terms[u]`` and ``const`` are rows of length ``y_space.dim + 1``
    (coefficients over y plus a constant), exactly like polyhedron rows.
    """

    __slots__ = ("y_space", "terms", "const")

    def __init__(self, y_space: Space,
                 terms: Mapping[str, Sequence[Rational]] | None = None,
                 const: Sequence[Rational] | None = None):
        self.y_space = y_space
        width = y_space.dim + 1
        self.terms: dict[str, list[Fraction]] = {}
        for u, row in (terms or {}).items():
            if len(row) != width:
                raise PolyhedralError(f"term row for {u} has width {len(row)} != {width}")
            self.terms[u] = [as_fraction(v) for v in row]
        if const is None:
            self.const = [Fraction(0)] * width
        else:
            if len(const) != width:
                raise PolyhedralError(f"const row width {len(const)} != {width}")
            self.const = [as_fraction(v) for v in const]

    def add_term(self, u: str, row: Sequence[Rational]) -> None:
        """Accumulate ``u * row(y)`` into the form."""
        width = self.y_space.dim + 1
        if len(row) != width:
            raise PolyhedralError("term row width mismatch")
        cur = self.terms.setdefault(u, [Fraction(0)] * width)
        for i, v in enumerate(row):
            cur[i] += as_fraction(v)

    def add_const(self, row: Sequence[Rational]) -> None:
        for i, v in enumerate(row):
            self.const[i] += as_fraction(v)

    def shift(self, delta: Rational) -> "SymbolicForm":
        """psi(y) + delta (a new form)."""
        out = SymbolicForm(self.y_space, self.terms, self.const)
        out.const[-1] += as_fraction(delta)
        return out

    def negate(self) -> "SymbolicForm":
        out = SymbolicForm(self.y_space)
        for u, row in self.terms.items():
            out.terms[u] = [-v for v in row]
        out.const = [-v for v in self.const]
        return out

    def evaluate(self, u_values: Mapping[str, Rational],
                 y_values: Sequence[Rational]) -> Fraction:
        """Concrete value of psi given schedule coefficients and a y point."""
        ys = [as_fraction(v) for v in y_values] + [Fraction(1)]
        total = sum((c * y for c, y in zip(self.const, ys)), Fraction(0))
        for u, row in self.terms.items():
            coeff = as_fraction(u_values.get(u, 0))
            if coeff:
                total += coeff * sum((c * y for c, y in zip(row, ys)), Fraction(0))
        return total

    def u_names(self) -> list[str]:
        return sorted(self.terms)


def farkas_nonneg(poly: Polyhedron, form: SymbolicForm, u_space: Space) -> Polyhedron:
    """Constraints on ``u`` such that ``form(y) >= 0`` for all y in ``poly``.

    ``poly`` must be nonempty (the lemma requires it); raises
    :class:`EmptyPolyhedronError` otherwise.  The result lives in
    ``u_space``; unknowns of ``form`` must all belong to ``u_space``.
    """
    if poly.space != form.y_space:
        raise PolyhedralError(f"form space {form.y_space} != polyhedron space {poly.space}")
    for u in form.terms:
        u_space.index(u)  # raises if missing
    if poly.is_rational_empty():
        raise EmptyPolyhedronError("Farkas lemma requires a nonempty polyhedron")
    # Fewer constraints in P means fewer multipliers to eliminate below.
    poly = poly.remove_redundancy()

    ydim = poly.space.dim
    n_ineq = len(poly.ineqs)
    n_eq = len(poly.eqs)
    lam_names = ["__lamc"] + [f"__lam{i}" for i in range(n_ineq)]
    mu_names = [f"__mu{j}" for j in range(n_eq)]
    full = Space(u_space.names + tuple(lam_names) + tuple(mu_names))

    def blank() -> list[Fraction]:
        return [Fraction(0)] * (full.dim + 1)

    eq_rows: list[list[Fraction]] = []
    # One matching equation per y variable (k < ydim) and one for the constant
    # (k == ydim).
    for k in range(ydim + 1):
        row = blank()
        for u, trow in form.terms.items():
            row[full.index(u)] += trow[k]
        # constant contribution of the u-free part goes into the row constant
        row[-1] += form.const[k]
        if k == ydim:
            row[full.index("__lamc")] -= 1
        for i, ineq in enumerate(poly.ineqs):
            row[full.index(f"__lam{i}")] -= ineq[k]
        for j, eq in enumerate(poly.eqs):
            row[full.index(f"__mu{j}")] -= eq[k]
        eq_rows.append(row)

    ineq_rows: list[list[Fraction]] = []
    for name in lam_names:
        row = blank()
        row[full.index(name)] = Fraction(1)
        ineq_rows.append(row)

    system = Polyhedron(full, eqs=eq_rows, ineqs=ineq_rows)
    shadow, _ = system.project_out(lam_names + mu_names)
    # Reorder the shadow into u_space order (project_out preserves order of
    # the surviving names, which is already u_space order by construction).
    if shadow.space != u_space:
        shadow = shadow.align(u_space)
    return shadow


def farkas_equals_const(poly: Polyhedron, form: SymbolicForm, u_space: Space,
                        value: Rational) -> Polyhedron:
    """Constraints on ``u`` such that ``form(y) == value`` for all y in poly."""
    ge = farkas_nonneg(poly, form.shift(-as_fraction(value)), u_space)
    le = farkas_nonneg(poly, form.negate().shift(as_fraction(value)), u_space)
    return ge.intersect(le)
