"""Symbolic integer-point counting for separable parametric polyhedra.

Section 5.4's Remark: costs are "polynomials (piecewise quasipolynomials to
be exact) in the global parameters", so re-optimizing for new sizes is
unnecessary — plug the new values in.  Full quasipolynomial counting needs
Barvinok's machinery; the domains that appear in this system at block
granularity (boxes, guarded boxes, and equality-linked chains) fall in a
much simpler class that this module handles exactly:

1. equalities are substituted away (a determined variable contributes a
   factor of 1);
2. redundant bounds are removed, then variables whose remaining bounds
   involve only parameters are peeled off; the count is the product of
   their ``max(0, hi - lo + 1)`` widths.

``symbolic_count`` returns a :class:`CountFormula` — evaluable, printable,
exactly matching enumeration on its supported class — or None when the
polyhedron is outside the class, e.g. genuinely triangular domains
(callers then fall back to exact enumeration).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Mapping

from ..exceptions import PolyhedralError
from .expr_free import AffinePoly, Max0
from .polyhedron import Polyhedron

__all__ = ["CountFormula", "symbolic_count"]


class CountFormula:
    """A product of max(0, affine) factors and polynomial factors."""

    __slots__ = ("factors",)

    def __init__(self, factors):
        self.factors = list(factors)

    def evaluate(self, params: Mapping[str, int]) -> int:
        total = Fraction(1)
        for f in self.factors:
            total *= f.evaluate(params)
            if total == 0:
                return 0
        if total.denominator != 1:
            raise PolyhedralError(f"non-integer count {total}")
        return int(total)

    def __str__(self) -> str:
        if not self.factors:
            return "1"
        return " * ".join(str(f) for f in self.factors)

    def __repr__(self) -> str:
        return f"CountFormula({self})"


def symbolic_count(poly: Polyhedron, params: tuple[str, ...]) -> CountFormula | None:
    """Count integer points as a formula over ``params``, or None.

    ``params`` names the symbolic dimensions; every other dimension of the
    polyhedron's space is counted.
    """
    poly = poly.remove_redundancy()
    names = list(poly.space.names)
    count_vars = [n for n in names if n not in params]

    eqs = [list(r) for r in poly.eqs]
    ineqs = [list(r) for r in poly.ineqs]
    idx = {n: i for i, n in enumerate(names)}

    # 1. Substitute +-1-pivot equalities on counted variables.
    determined: set[str] = set()
    progress = True
    while progress:
        progress = False
        for r in eqs:
            for v in count_vars:
                if v in determined:
                    continue
                if abs(r[idx[v]]) == 1:
                    pivot = r
                    j = idx[v]
                    eqs = [_subst(q, j, pivot) for q in eqs if q is not pivot]
                    ineqs = [_subst(q, j, pivot) for q in ineqs]
                    determined.add(v)
                    progress = True
                    break
            if progress:
                break
    for r in eqs:
        if any(r[idx[v]] for v in count_vars if v not in determined):
            return None  # equality with non-unit pivot: outside the class
    free = [v for v in count_vars if v not in determined]

    # 2/3. Peel free variables innermost-first; each must have bounds over
    # params only, or over params + exactly one not-yet-peeled variable with
    # coefficient 1 (triangular coupling), which we telescope.
    factors = []
    remaining = list(free)
    while remaining:
        v = _peelable(remaining, ineqs, idx, params)
        if v is None:
            return None
        j = idx[v]
        lows = [r for r in ineqs if r[j] > 0]
        highs = [r for r in ineqs if r[j] < 0]
        neutral = [r for r in ineqs if r[j] == 0]
        if len(lows) != 1 or len(highs) != 1:
            return None
        lo_r, hi_r = lows[0], highs[0]
        if abs(lo_r[j]) != 1 or abs(hi_r[j]) != 1:
            return None
        # lo_r: v + a(p) >= 0  => v >= -a(p);  hi_r: -v + b(p) >= 0 => v <= b(p)
        width_row = [lo_r[k] + hi_r[k] for k in range(len(lo_r))]
        width_row[j] = 0
        if any(width_row[idx[u]] for u in remaining if u != v):
            return None  # width depends on an unpeeled variable
        width = AffinePoly.from_row(width_row, names, constant_shift=1)
        factors.append(Max0(width))
        ineqs = neutral
        remaining.remove(v)

    # Leftover inequalities may only involve parameters.  Those are treated
    # as *preconditions* (they are the program's parameter context, e.g.
    # n >= 1), not folded into the count: the formula is valid whenever the
    # caller evaluates it inside the declared context.
    for r in ineqs:
        if any(r[idx[n]] for n in names if n not in params):
            return None
        if not any(r[idx[p]] for p in params) and r[-1] < 0:
            return None  # constant contradiction: the domain is empty
    return CountFormula(factors)


def _subst(row, j, pivot):
    c = row[j]
    if c == 0:
        return list(row)
    f = c * pivot[j]
    return [a - f * b for a, b in zip(row, pivot)]


def _peelable(remaining, ineqs, idx, params):
    """A variable whose bound rows involve no other unpeeled variable."""
    for v in remaining:
        j = idx[v]
        ok = True
        for r in ineqs:
            if r[j] == 0:
                continue
            for u in remaining:
                if u != v and r[idx[u]] != 0:
                    ok = False
                    break
            if not ok:
                break
        if ok and any(r[j] for r in ineqs):
            return v
    return None
