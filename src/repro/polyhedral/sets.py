"""Finite unions of polyhedra sharing one space.

Extent polyhedra of co-accesses (Definition 1) are naturally *unions*: the
lexicographic order ``Theta_s x < Theta_s' x'`` expands into one disjunct per
depth.  The no-write-in-between rule (Section 5.1) needs set *subtraction*.
This module provides both, plus the usual union/intersection/emptiness
operations, over lists of :class:`Polyhedron` disjuncts.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..exceptions import SpaceMismatchError
from .matrix import Rational
from .polyhedron import Polyhedron, Space

__all__ = ["PolyhedralSet"]


class PolyhedralSet:
    """A union of convex integer polyhedra over a common space."""

    __slots__ = ("space", "disjuncts")

    def __init__(self, space: Space, disjuncts: Iterable[Polyhedron] = ()):
        self.space = space
        kept = []
        for d in disjuncts:
            if d.space != space:
                raise SpaceMismatchError(f"disjunct space {d.space} != {space}")
            if not d.is_rational_empty():
                kept.append(d)
        self.disjuncts: tuple[Polyhedron, ...] = tuple(kept)

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls, space: Space) -> "PolyhedralSet":
        return cls(space, [])

    @classmethod
    def from_polyhedron(cls, poly: Polyhedron) -> "PolyhedralSet":
        return cls(poly.space, [poly])

    @classmethod
    def universe(cls, space: Space) -> "PolyhedralSet":
        return cls(space, [Polyhedron.universe(space)])

    # -- protocol ------------------------------------------------------------

    def __repr__(self) -> str:
        if not self.disjuncts:
            return f"{{ {', '.join(self.space.names)} : false }}"
        return " UNION ".join(repr(d) for d in self.disjuncts)

    def __iter__(self):
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    # -- predicates ------------------------------------------------------------

    def is_empty(self) -> bool:
        return all(d.is_empty() for d in self.disjuncts)

    def contains_point(self, point: Sequence[Rational]) -> bool:
        return any(d.contains_point(point) for d in self.disjuncts)

    def is_subset(self, other: "PolyhedralSet") -> bool:
        """Exact on integer points (uses enumeration-free convex checks where
        possible, falls back to pointwise checks for small sets)."""
        for d in self.disjuncts:
            if any(d.is_subset(o) for o in other.disjuncts):
                continue
            # d may still be covered by the union; do the exact (costlier)
            # check via subtraction.
            if not PolyhedralSet(self.space, [d]).subtract(other).is_empty():
                return False
        return True

    # -- algebra ------------------------------------------------------------------

    def union(self, other: "PolyhedralSet") -> "PolyhedralSet":
        if self.space != other.space:
            raise SpaceMismatchError(f"{self.space} vs {other.space}")
        return PolyhedralSet(self.space, self.disjuncts + other.disjuncts)

    def intersect(self, other: "PolyhedralSet | Polyhedron") -> "PolyhedralSet":
        if isinstance(other, Polyhedron):
            other = PolyhedralSet.from_polyhedron(other)
        if self.space != other.space:
            raise SpaceMismatchError(f"{self.space} vs {other.space}")
        out = []
        for a in self.disjuncts:
            for b in other.disjuncts:
                out.append(a.intersect(b))
        return PolyhedralSet(self.space, out)

    def subtract(self, other: "PolyhedralSet | Polyhedron") -> "PolyhedralSet":
        """Integer set difference self \\ other.

        Complementing one convex polyhedron yields a union of strict
        half-space complements; for integers ``not (a.x + c >= 0)`` is
        ``-a.x - c - 1 >= 0``.
        """
        if isinstance(other, Polyhedron):
            other = PolyhedralSet.from_polyhedron(other)
        if self.space != other.space:
            raise SpaceMismatchError(f"{self.space} vs {other.space}")
        current = list(self.disjuncts)
        for q in other.disjuncts:
            nxt: list[Polyhedron] = []
            for p in current:
                nxt.extend(_subtract_convex(p, q))
            current = nxt
        return PolyhedralSet(self.space, current)

    # -- transformations --------------------------------------------------------------

    def rename(self, mapping: Mapping[str, str]) -> "PolyhedralSet":
        new = [d.rename(mapping) for d in self.disjuncts]
        space = Space([mapping.get(n, n) for n in self.space.names])
        return PolyhedralSet(space, new)

    def align(self, space: Space) -> "PolyhedralSet":
        return PolyhedralSet(space, [d.align(space) for d in self.disjuncts])

    def bind(self, values: Mapping[str, Rational]) -> "PolyhedralSet":
        bound = [d.bind(values) for d in self.disjuncts]
        space = bound[0].space if bound else Space(
            [n for n in self.space.names if n not in values])
        return PolyhedralSet(space, bound)

    def exists(self, names: Iterable[str]) -> "PolyhedralSet":
        names = list(names)
        return PolyhedralSet(Space([n for n in self.space.names if n not in names]),
                             [d.exists(names) for d in self.disjuncts])

    def project_out(self, names: Iterable[str]) -> tuple["PolyhedralSet", bool]:
        names = list(names)
        shadows = []
        exact = True
        for d in self.disjuncts:
            s, e = d.project_out(names)
            shadows.append(s)
            exact = exact and e
        return (PolyhedralSet(Space([n for n in self.space.names if n not in names]),
                              shadows), exact)

    def coalesce(self) -> "PolyhedralSet":
        """Drop disjuncts contained in other disjuncts (cheap convex test)."""
        kept: list[Polyhedron] = []
        for i, d in enumerate(self.disjuncts):
            covered = False
            for j, other in enumerate(self.disjuncts):
                if i != j and d.is_subset(other) and not (j < i and other.is_subset(d)):
                    covered = True
                    break
            if not covered:
                kept.append(d)
        return PolyhedralSet(self.space, kept)

    # -- enumeration -------------------------------------------------------------------

    def integer_points(self, limit: int = 2_000_000) -> list[tuple[int, ...]]:
        """All integer points of the union, deduplicated, sorted."""
        seen: set[tuple[int, ...]] = set()
        for d in self.disjuncts:
            seen.update(d.integer_points(limit))
            if len(seen) > limit:
                break
        return sorted(seen)

    def count_integer_points(self, limit: int = 2_000_000) -> int:
        return len(self.integer_points(limit))


def _subtract_convex(p: Polyhedron, q: Polyhedron) -> list[Polyhedron]:
    """p \\ q for convex p, q: standard constraint-negation decomposition."""
    out: list[Polyhedron] = []
    accumulated = p
    # Treat each equality of q as two inequalities.
    rows: list[tuple[tuple[int, ...], bool]] = []
    for eq in q.eqs:
        rows.append((eq, True))
    for ineq in q.ineqs:
        rows.append((ineq, False))
    for row, is_eq in rows:
        if is_eq:
            # not (a.x + c = 0) splits into a.x + c >= 1 or -a.x - c >= 1
            pos = tuple(row[:-1]) + (row[-1] - 1,)
            neg = tuple(-v for v in row[:-1]) + (-row[-1] - 1,)
            out.append(accumulated.add_constraints(ineqs=[pos]))
            out.append(accumulated.add_constraints(ineqs=[neg]))
            accumulated = accumulated.add_constraints(eqs=[row])
        else:
            # not (a.x + c >= 0)  is  -a.x - c - 1 >= 0
            negated = tuple(-v for v in row[:-1]) + (-row[-1] - 1,)
            out.append(accumulated.add_constraints(ineqs=[negated]))
            accumulated = accumulated.add_constraints(ineqs=[row])
    return [d for d in out if not d.is_rational_empty()]
