"""Exact two-phase simplex over rationals.

Solves linear programs whose constraints come from polyhedra in our
convention: a row ``(a_1, ..., a_n, c)`` encodes ``a.x + c >= 0`` (inequality)
or ``a.x + c = 0`` (equality), with *free* (sign-unrestricted) variables.

The solver is used by the polyhedron layer for

* rational feasibility / emptiness tests,
* redundancy removal after Fourier-Motzkin projection,
* variable bound computation (min/max of x_i over the polyhedron), which
  drives integer branch-and-bound and point enumeration.

Bland's rule is used throughout, so the solver cannot cycle.  Everything is
exact: a presolve pass substitutes away +-1-pivot equalities, and the
tableau itself is kept in integer form (one denominator per row) so a pivot
costs a single gcd pass per row instead of per-element Fraction overhead.

Arithmetic backends
-------------------

Constraint rows arriving from :class:`~repro.polyhedral.polyhedron.Polyhedron`
are pure-integer tuples; for those the whole pipeline (presolve, standard
form, tableau) runs on machine integers.  Tableau rows whose magnitudes fit
comfortably in int64 are stored as numpy arrays and updated with vectorized
kernels; every vectorized update is preceded by an exact magnitude bound
(``|ca|*max|a| + |cb|*max|b| < 2**63``) and rows that might overflow fall
back to Python big-int lists, which are exact at any size.  Inputs that are
not integral (or the ``exact`` backend selected via :func:`set_fast_path`)
take the original Fraction-based path.  Both backends are deterministic and
produce bit-identical results — the property suite in
``tests/polyhedral/test_rational_kernels.py`` fuzzes one against the other,
including forced-overflow inputs.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from math import gcd as _gcd_int
from typing import Sequence

import numpy as np

from .matrix import Rational, as_fraction

__all__ = ["LPStatus", "LPResult", "solve_lp", "is_feasible", "set_fast_path",
           "KERNEL_STATS"]

# Vectorized-kernel policy.  `_NUMPY_ENABLED` is the test hook: disabling it
# forces every row onto the exact Python big-int representation.
_NUMPY_ENABLED = True
_NP_MIN_LEN = 12          # short rows: plain lists beat ndarray overhead
_NP_SAFE = 1 << 62        # operand magnitude bound for safe int64 products

#: Observability for the arithmetic backends: how many tableau rows took the
#: vectorized representation and how many updates fell back to exact big-int
#: arithmetic because the int64 bound would have been violated.
KERNEL_STATS = {"numpy_rows": 0, "overflow_fallbacks": 0}


def set_fast_path(enabled: bool) -> bool:
    """Enable/disable the numpy-int64 kernels (returns the previous value).

    With the fast path off, every tableau row uses exact Python integers —
    the reference backend the property tests compare against.
    """
    global _NUMPY_ENABLED
    previous = _NUMPY_ENABLED
    _NUMPY_ENABLED = bool(enabled)
    return previous


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


class LPResult:
    """Outcome of an LP solve: status, optimal value, and a witness point."""

    __slots__ = ("status", "value", "point")

    def __init__(self, status: LPStatus, value: Fraction | None = None,
                 point: tuple[Fraction, ...] | None = None):
        self.status = status
        self.value = value
        self.point = point

    def __repr__(self) -> str:
        return f"LPResult({self.status.value}, value={self.value}, point={self.point})"


def is_feasible(eqs: Sequence[Sequence[Rational]],
                ineqs: Sequence[Sequence[Rational]],
                nvars: int) -> bool:
    """Rational feasibility of {x : eqs(x) = 0, ineqs(x) >= 0}."""
    result = solve_lp(eqs, ineqs, nvars, objective=None)
    return result.status is LPStatus.OPTIMAL


def _all_int_rows(rows) -> bool:
    for row in rows:
        for v in row:
            if type(v) is not int:
                return False
    return True


def solve_lp(eqs: Sequence[Sequence[Rational]],
             ineqs: Sequence[Sequence[Rational]],
             nvars: int,
             objective: Sequence[Rational] | None = None,
             maximize: bool = False) -> LPResult:
    """Optimize ``objective . x`` over {x : eqs = 0, ineqs >= 0}.

    ``objective`` has length ``nvars`` (no constant term); ``None`` means a
    pure feasibility check (any feasible point is returned).  Variables are
    free; internally each x_i is split as x_i = u_i - v_i with u, v >= 0.

    A presolve pass substitutes away equality rows with a +-1 pivot (exact,
    and the dominant case in polyhedra produced by dependence analysis),
    which typically shrinks the tableau by an order of magnitude.
    """
    for row in list(eqs) + list(ineqs):
        if len(row) != nvars + 1:
            raise ValueError(f"constraint row width {len(row)} != nvars+1 = {nvars + 1}")
    int_mode = (_all_int_rows(eqs) and _all_int_rows(ineqs)
                and (objective is None or _all_int_rows([objective])))
    if int_mode:
        return _presolved_lp_int(eqs, ineqs, nvars, objective, maximize)
    return _presolved_lp(eqs, ineqs, nvars, objective, maximize)


# -- integer pipeline --------------------------------------------------------


def _presolved_lp_int(eqs, ineqs, nvars, objective, maximize) -> LPResult:
    """Presolve + solve for pure-integer inputs: no Fraction touches the
    constraint system until the witness point is reconstructed."""
    reduced_eqs, reduced_ineqs, keep, elim, feasible = \
        _presolve_int(eqs, ineqs, nvars)
    if not feasible:
        return LPResult(LPStatus.INFEASIBLE)

    if objective is None:
        red_obj = None
    else:
        obj_row = [int(v) for v in objective] + [0]
        for var, prow in elim:
            c = obj_row[var]
            if c:
                f = c * prow[var]  # prow[var] is +-1: c/p == c*p
                obj_row = [a - f * b for a, b in zip(obj_row, prow)]
        red_obj = [obj_row[j] for j in keep]

    result = _raw_lp([_project_row(r, keep) for r in reduced_eqs],
                     [_project_row(r, keep) for r in reduced_ineqs],
                     len(keep), red_obj, maximize, int_mode=True)
    if result.status is not LPStatus.OPTIMAL:
        return result
    return _reconstruct(result, nvars, keep, elim, objective)


def _presolve_int(eqs, ineqs, nvars):
    """Integer twin of :func:`_presolve`: +-1-pivot substitution is exact on
    machine integers and needs no row rescaling (sign-safe for inequalities).
    """
    cur_eqs = [list(r) for r in eqs]
    cur_ineqs = [list(r) for r in ineqs]
    eliminated: set[int] = set()
    elim: list[tuple[int, list[int]]] = []
    while True:
        pivot_row = None
        pivot_var = None
        for r in cur_eqs:
            for j in range(nvars):
                if j not in eliminated and (r[j] == 1 or r[j] == -1):
                    pivot_row, pivot_var = r, j
                    break
            if pivot_row is not None:
                break
        if pivot_row is None:
            break
        pv = pivot_row[pivot_var]
        cur_eqs = [_substitute_int(r, pivot_var, pivot_row, pv)
                   for r in cur_eqs if r is not pivot_row]
        cur_ineqs = [_substitute_int(r, pivot_var, pivot_row, pv)
                     for r in cur_ineqs]
        eliminated.add(pivot_var)
        elim.append((pivot_var, pivot_row))

    kept_eqs, kept_ineqs = [], []
    for r in cur_eqs:
        if any(r[:-1]):
            kept_eqs.append(r)
        elif r[-1] != 0:
            return [], [], [], [], False
    for r in cur_ineqs:
        if any(r[:-1]):
            kept_ineqs.append(r)
        elif r[-1] < 0:
            return [], [], [], [], False
    keep = [j for j in range(nvars) if j not in eliminated]
    return kept_eqs, kept_ineqs, keep, elim, True


def _substitute_int(row: list[int], var: int, pivot: list[int],
                    pv: int) -> list[int]:
    """Eliminate ``var`` from an integer ``row`` using a +-1-pivot equality."""
    c = row[var]
    if not c:
        return row
    f = c * pv  # == c / pv since pv in {1, -1}
    return [a - f * b for a, b in zip(row, pivot)]


def _reconstruct(result: LPResult, nvars, keep, elim, objective) -> LPResult:
    """Back-substitute eliminated variables into the full witness point."""
    full = [Fraction(0)] * nvars
    for j, v in zip(keep, result.point):
        full[j] = v
    for var, row in reversed(elim):
        # row: var appears with coefficient +-1 (int path) or a +-1 Fraction
        # (exact path); row . x + c = 0.
        total = row[-1] + sum(c * full[k] for k, c in enumerate(row[:-1])
                              if k != var and c)
        pv = row[var]
        full[var] = -total * pv if abs(pv) == 1 else -total / pv
        if type(full[var]) is int:
            full[var] = Fraction(full[var])
    value = result.value
    if objective is not None:
        value = sum((as_fraction(o) * x for o, x in zip(objective, full)),
                    Fraction(0))
    return LPResult(LPStatus.OPTIMAL, value, tuple(full))


# -- exact Fraction pipeline -------------------------------------------------


def _presolved_lp(eqs, ineqs, nvars, objective, maximize) -> LPResult:
    reduced_eqs, reduced_ineqs, keep, elim, feasible = _presolve(eqs, ineqs, nvars)
    if not feasible:
        return LPResult(LPStatus.INFEASIBLE)

    if objective is None:
        red_obj = None
    else:
        # Rewrite the objective over the kept variables by substituting the
        # eliminated ones.
        obj_row = [as_fraction(v) for v in objective] + [Fraction(0)]
        for var, row in elim:
            obj_row = _substitute(obj_row, var, row)
        red_obj = [obj_row[j] for j in keep]

    result = _raw_lp([_project_row(r, keep) for r in reduced_eqs],
                     [_project_row(r, keep) for r in reduced_ineqs],
                     len(keep), red_obj, maximize, int_mode=False)
    if result.status is not LPStatus.OPTIMAL:
        return result
    return _reconstruct(result, nvars, keep, elim, objective)


def _substitute(row: list[Fraction], var: int, pivot: list[Fraction]) -> list[Fraction]:
    """Eliminate ``var`` from ``row`` using pivot (pivot[var] is +-1)."""
    c = row[var]
    if not c:
        return row
    f = c / pivot[var]
    return [a - f * b for a, b in zip(row, pivot)]


def _presolve(eqs, ineqs, nvars):
    """Substitute away +-1-pivot equality variables.

    Returns (eqs', ineqs', keep_indices, elim_list, feasible) where rows stay
    in the original full-width coordinate system (eliminated columns zeroed).
    """
    cur_eqs = [[as_fraction(v) for v in r] for r in eqs]
    cur_ineqs = [[as_fraction(v) for v in r] for r in ineqs]
    eliminated: set[int] = set()
    elim: list[tuple[int, list[Fraction]]] = []
    while True:
        pivot_row = None
        pivot_var = None
        for r in cur_eqs:
            for j in range(nvars):
                if j not in eliminated and abs(r[j]) == 1:
                    pivot_row, pivot_var = r, j
                    break
            if pivot_row is not None:
                break
        if pivot_row is None:
            break
        cur_eqs = [_substitute(r, pivot_var, pivot_row)
                   for r in cur_eqs if r is not pivot_row]
        cur_ineqs = [_substitute(r, pivot_var, pivot_row) for r in cur_ineqs]
        eliminated.add(pivot_var)
        elim.append((pivot_var, pivot_row))

    # Constant rows: contradictions mean infeasible, tautologies are dropped.
    kept_eqs, kept_ineqs = [], []
    for r in cur_eqs:
        if any(r[:-1]):
            kept_eqs.append(r)
        elif r[-1] != 0:
            return [], [], [], [], False
    for r in cur_ineqs:
        if any(r[:-1]):
            kept_ineqs.append(r)
        elif r[-1] < 0:
            return [], [], [], [], False
    keep = [j for j in range(nvars) if j not in eliminated]
    return kept_eqs, kept_ineqs, keep, elim, True


def _project_row(row, keep: list[int]):
    return [row[j] for j in keep] + [row[-1]]


# -- shared tableau core -----------------------------------------------------


def _raw_lp(eqs, ineqs, nvars,
            objective=None, maximize: bool = False,
            int_mode: bool = False) -> LPResult:
    """The unpresolved exact simplex (standard-form construction).

    ``int_mode`` marks inputs known to be machine integers, in which case
    the standard form is built without any Fraction.
    """
    zero = 0 if int_mode else Fraction(0)

    # Standard form: columns are u_0..u_{n-1}, v_0..v_{n-1}, slacks.
    # Each constraint a.x + c (>=|=) 0 becomes a.u - a.v - s = -c  (s >= 0, ineq)
    # or a.u - a.v = -c (eq).  We then make every RHS nonnegative.
    ncols = 2 * nvars + len(ineqs)
    rows: list[list] = []
    rhs: list = []
    for k, row in enumerate(list(eqs) + list(ineqs)):
        if int_mode:
            coeffs = list(row[:nvars])
            const = row[nvars]
        else:
            coeffs = [as_fraction(v) for v in row[:nvars]]
            const = as_fraction(row[nvars])
        body = coeffs + [-c for c in coeffs] + [zero] * len(ineqs)
        if k >= len(eqs):  # inequality: subtract slack
            body[2 * nvars + (k - len(eqs))] = -1 if int_mode else Fraction(-1)
        b = -const
        if b < 0:
            body = [-v for v in body]
            b = -b
        rows.append(body)
        rhs.append(b)

    tableau, basis = _phase_one(rows, rhs, ncols)
    if tableau is None:
        return LPResult(LPStatus.INFEASIBLE)

    if objective is None:
        point = _extract_point(tableau, basis, nvars, ncols)
        return LPResult(LPStatus.OPTIMAL, Fraction(0), point)

    obj = list(objective) if int_mode else [as_fraction(v) for v in objective]
    if len(obj) != nvars:
        raise ValueError("objective length mismatch")
    if maximize:
        obj = [-v for v in obj]
    # cost vector over u, v, slacks: c.u - c.v
    cost = obj + [-v for v in obj] + [zero] * (ncols - 2 * nvars)
    if not tableau:
        # No constraints at all: feasible, and any nonzero objective is unbounded.
        if any(v != 0 for v in obj):
            return LPResult(LPStatus.UNBOUNDED)
        return LPResult(LPStatus.OPTIMAL, Fraction(0), tuple(Fraction(0) for _ in range(nvars)))
    status = _phase_two(tableau, basis, cost)
    if status is LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED)
    point = _extract_point(tableau, basis, nvars, ncols)
    value = sum((as_fraction(o) * x for o, x in zip(objective, point)), Fraction(0))
    return LPResult(LPStatus.OPTIMAL, value, point)


# -- internals --------------------------------------------------------------


# The tableau is kept in integer form: each row has integer coefficients
# whose true value is nums / den with den > 0 (the last entry is the RHS).
# One gcd pass per updated row replaces per-element Fraction normalization,
# which is where the naive implementation spent nearly all of its time.
#
# `nums` is either a Python list of exact big ints, or (fast path) an int64
# ndarray with a cached max-magnitude used to prove every vectorized update
# stays below 2**63 before it runs.


def _to_int_row(fracs: list) -> tuple[list[int], int]:
    if _all_int_rows([fracs]):
        return list(fracs), 1
    den = 1
    for f in fracs:
        den = den * f.denominator // _gcd_int(den, f.denominator)
    return [int(f * den) for f in fracs], den


class _IRow:
    __slots__ = ("nums", "den", "amax")

    def __init__(self, nums, den: int = 1, amax: int | None = None):
        # nums: list[int] (exact) or np.ndarray[int64] with amax = max(|v|).
        self.nums = nums
        self.den = den
        self.amax = amax

    def get(self, j: int) -> int:
        v = self.nums[j]
        return v if type(v) is int else int(v)

    def value(self, j: int) -> Fraction:
        return Fraction(self.get(j), self.den)


def _mk_irow(nums: list[int], den: int = 1) -> _IRow:
    """Build a row, choosing the vectorized representation when safe."""
    nums, den = _reduce_list(nums, den)
    if _NUMPY_ENABLED and len(nums) >= _NP_MIN_LEN:
        amax = max(map(abs, nums), default=0)
        if amax < _NP_SAFE:
            KERNEL_STATS["numpy_rows"] += 1
            return _IRow(np.array(nums, dtype=np.int64), den, amax)
    return _IRow(nums, den)


def _reduce_list(nums: list[int], den: int) -> tuple[list[int], int]:
    g = den
    for v in nums:
        if v:
            g = _gcd_int(g, v)
            if g == 1:
                return nums, den
    if g > 1:
        nums = [v // g for v in nums]
        den //= g
    return nums, den


def _reduce_irow(row: _IRow) -> _IRow:
    if row.amax is None:
        nums, den = _reduce_list(row.nums, row.den)
        return _IRow(nums, den)
    g = _gcd_int(int(np.gcd.reduce(np.absolute(row.nums))), row.den)
    if g > 1:
        # Exact: every element (and den) is divisible by g, so floor
        # division equals true division and amax scales exactly.
        return _IRow(row.nums // g, row.den // g, row.amax // g)
    return row


def _axpy(ca: int, a: _IRow, cb: int, b: _IRow, den: int) -> _IRow:
    """New row with nums = ca*a.nums - cb*b.nums (then gcd-reduced).

    Runs vectorized when both operands are int64 rows and the exact bound
    ``|ca|*max|a| + |cb|*max|b| < 2**63`` proves the result cannot overflow;
    otherwise computes with Python big ints (exact at any magnitude).
    """
    if (a.amax is not None and b.amax is not None
            and abs(ca) * a.amax + abs(cb) * b.amax < (1 << 63)):
        nums = ca * a.nums - cb * b.nums
        amax = int(np.absolute(nums).max()) if nums.size else 0
        return _reduce_irow(_IRow(nums, den, amax))
    an = a.nums if a.amax is None else a.nums.tolist()
    bn = b.nums if b.amax is None else b.nums.tolist()
    if a.amax is not None or b.amax is not None:
        KERNEL_STATS["overflow_fallbacks"] += 1
    nums, den = _reduce_list([ca * x - cb * y for x, y in zip(an, bn)], den)
    return _IRow(nums, den)


def _first_index(row: _IRow, ncols: int, negative: bool) -> int | None:
    """Smallest j < ncols with nums[j] < 0 (negative) or != 0."""
    nums = row.nums
    if row.amax is None:
        if negative:
            return next((j for j in range(ncols) if nums[j] < 0), None)
        return next((j for j in range(ncols) if nums[j] != 0), None)
    head = nums[:ncols]
    idx = np.flatnonzero(head < 0 if negative else head != 0)
    return int(idx[0]) if idx.size else None


def _phase_one(rows: list[list], rhs: list, ncols: int):
    """Find a basic feasible solution using artificial variables.

    Returns (tableau, basis) or (None, None) if infeasible.  The tableau is a
    list of integer rows ``[coeffs..., rhs]`` restricted to the ncols real
    columns after artificials are driven out.
    """
    m = len(rows)
    total = ncols + m  # + artificials
    tableau: list[_IRow] = []
    for i in range(m):
        nums, den = _to_int_row(rows[i] + [0] * m + [rhs[i]])
        art = den  # coefficient 1 for this row's artificial, scaled by den
        nums[ncols + i] = art
        tableau.append(_mk_irow(nums, den))
    basis = [ncols + i for i in range(m)]

    # Phase-1 objective: minimize sum of artificials.
    cost = [0] * total
    for j in range(ncols, total):
        cost[j] = 1
    zrow = _reduced_cost_row(tableau, basis, cost, total)
    _simplex_iterate(tableau, basis, zrow, total)

    if zrow.get(total) != 0:  # optimum of phase-1 > 0 => infeasible
        return None, None

    # Drive remaining artificials out of the basis (degenerate rows).
    for i in range(m):
        if basis[i] >= ncols:
            pivot_col = _first_index(tableau[i], ncols, negative=False)
            if pivot_col is None:
                continue  # redundant row; harmless to keep
            _pivot(tableau, basis, i, pivot_col, total)

    # Strip artificial columns.
    stripped: list[_IRow] = []
    new_basis: list[int] = []
    for i in range(m):
        r = tableau[i]
        if r.amax is None:
            nums = r.nums[:ncols] + [r.nums[total]]
            keep = basis[i] < ncols or any(nums[:ncols])
        else:
            nums = np.append(r.nums[:ncols], r.nums[total]).tolist()
            keep = basis[i] < ncols or any(nums[:ncols])
        if keep:
            stripped.append(_mk_irow(nums, r.den))
            new_basis.append(basis[i])
    return stripped, new_basis


def _phase_two(tableau: list[_IRow], basis: list[int], cost: list) -> LPStatus:
    ncols = len(tableau[0].nums) - 1
    # Integerize the cost vector.
    cnums, _cden = _to_int_row(list(cost))
    zrow = _reduced_cost_row(tableau, basis, cnums, ncols)
    return _simplex_iterate(tableau, basis, zrow, ncols)


def _reduced_cost_row(tableau: list[_IRow], basis: list[int],
                      cost: list[int], ncols: int) -> _IRow:
    """z-row: reduced costs (cost - c_B . B^-1 A) and objective value."""
    zrow = _mk_irow(list(cost[:ncols]) + [0], 1)
    for i, b in enumerate(basis):
        cb = cost[b] if b < len(cost) else 0
        if cb == 0:
            continue
        row = tableau[i]
        # z' = z * row.den - (cb * zden) * row  over denominator zden*row.den
        zrow = _axpy(row.den, zrow, cb * zrow.den, row, zrow.den * row.den)
    return zrow


def _simplex_iterate(tableau: list[_IRow], basis: list[int], zrow: _IRow,
                     ncols: int) -> LPStatus:
    """Run simplex (min) with Bland's rule; mutates tableau/basis/zrow."""
    m = len(tableau)
    while True:
        enter = _first_index(zrow, ncols, negative=True)
        if enter is None:
            return LPStatus.OPTIMAL
        # Ratio test rhs/a, a > 0 (Bland: smallest basis index on ties).
        # Denominators cancel inside one row; compare across rows by
        # cross-multiplication of nonnegative quantities.
        leave = None
        best_num = best_den = None  # ratio = best_num / best_den, both >= 0
        for i in range(m):
            a = tableau[i].get(enter)
            if a > 0:
                num, den = tableau[i].get(-1), a
                if leave is None:
                    better = True
                else:
                    lhs = num * best_den
                    rhs = best_num * den
                    better = lhs < rhs or (lhs == rhs and basis[i] < basis[leave])
                if better:
                    best_num, best_den = num, den
                    leave = i
        if leave is None:
            return LPStatus.UNBOUNDED
        _pivot(tableau, basis, leave, enter, ncols, zrow)


def _negate_irow(row: _IRow, den: int) -> _IRow:
    if row.amax is None:
        return _IRow([-v for v in row.nums], den)
    return _IRow(-row.nums, den, row.amax)


def _pivot(tableau: list[_IRow], basis: list[int], row: int, col: int,
           ncols: int, zrow: _IRow | None = None) -> None:
    prow = tableau[row]
    p = prow.get(col)
    # New pivot row = old / (p / den) = nums / p  (sign-fix so den > 0).
    if p > 0:
        pivot_row = _reduce_irow(_IRow(prow.nums, p, prow.amax))
    else:
        pivot_row = _reduce_irow(_negate_irow(prow, -p))
    tableau[row] = pivot_row

    prd = pivot_row.den
    for i in range(len(tableau)):
        if i == row:
            continue
        r = tableau[i]
        f = r.get(col)
        if f == 0:
            continue
        tableau[i] = _axpy(prd, r, f, pivot_row, r.den * prd)
    if zrow is not None and zrow.get(col) != 0:
        f = zrow.get(col)
        updated = _axpy(prd, zrow, f, pivot_row, zrow.den * prd)
        zrow.nums, zrow.den, zrow.amax = updated.nums, updated.den, updated.amax
    basis[row] = col


def _extract_point(tableau: list[_IRow], basis: list[int], nvars: int,
                   ncols: int) -> tuple[Fraction, ...]:
    values = [Fraction(0)] * ncols
    if not tableau:
        return tuple(Fraction(0) for _ in range(nvars))
    for i, b in enumerate(basis):
        if b < ncols:
            values[b] = Fraction(tableau[i].get(-1), tableau[i].den)
    return tuple(values[i] - values[nvars + i] for i in range(nvars))
