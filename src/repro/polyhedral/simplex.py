"""Exact two-phase simplex over rationals.

Solves linear programs whose constraints come from polyhedra in our
convention: a row ``(a_1, ..., a_n, c)`` encodes ``a.x + c >= 0`` (inequality)
or ``a.x + c = 0`` (equality), with *free* (sign-unrestricted) variables.

The solver is used by the polyhedron layer for

* rational feasibility / emptiness tests,
* redundancy removal after Fourier-Motzkin projection,
* variable bound computation (min/max of x_i over the polyhedron), which
  drives integer branch-and-bound and point enumeration.

Bland's rule is used throughout, so the solver cannot cycle.  Everything is
exact: a presolve pass substitutes away +-1-pivot equalities, and the
tableau itself is kept in integer form (one denominator per row) so a pivot
costs a single gcd pass per row instead of per-element Fraction overhead.
"""

from __future__ import annotations

import enum
from fractions import Fraction
from typing import Sequence

from .matrix import Rational, as_fraction

__all__ = ["LPStatus", "LPResult", "solve_lp", "is_feasible"]


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


class LPResult:
    """Outcome of an LP solve: status, optimal value, and a witness point."""

    __slots__ = ("status", "value", "point")

    def __init__(self, status: LPStatus, value: Fraction | None = None,
                 point: tuple[Fraction, ...] | None = None):
        self.status = status
        self.value = value
        self.point = point

    def __repr__(self) -> str:
        return f"LPResult({self.status.value}, value={self.value}, point={self.point})"


def is_feasible(eqs: Sequence[Sequence[Rational]],
                ineqs: Sequence[Sequence[Rational]],
                nvars: int) -> bool:
    """Rational feasibility of {x : eqs(x) = 0, ineqs(x) >= 0}."""
    result = solve_lp(eqs, ineqs, nvars, objective=None)
    return result.status is LPStatus.OPTIMAL


def solve_lp(eqs: Sequence[Sequence[Rational]],
             ineqs: Sequence[Sequence[Rational]],
             nvars: int,
             objective: Sequence[Rational] | None = None,
             maximize: bool = False) -> LPResult:
    """Optimize ``objective . x`` over {x : eqs = 0, ineqs >= 0}.

    ``objective`` has length ``nvars`` (no constant term); ``None`` means a
    pure feasibility check (any feasible point is returned).  Variables are
    free; internally each x_i is split as x_i = u_i - v_i with u, v >= 0.

    A presolve pass substitutes away equality rows with a +-1 pivot (exact,
    and the dominant case in polyhedra produced by dependence analysis),
    which typically shrinks the tableau by an order of magnitude.
    """
    for row in list(eqs) + list(ineqs):
        if len(row) != nvars + 1:
            raise ValueError(f"constraint row width {len(row)} != nvars+1 = {nvars + 1}")
    return _presolved_lp(eqs, ineqs, nvars, objective, maximize)


def _presolved_lp(eqs, ineqs, nvars, objective, maximize) -> LPResult:
    reduced_eqs, reduced_ineqs, keep, elim, feasible = _presolve(eqs, ineqs, nvars)
    if not feasible:
        return LPResult(LPStatus.INFEASIBLE)

    if objective is None:
        red_obj = None
    else:
        # Rewrite the objective over the kept variables by substituting the
        # eliminated ones; track the constant offset.
        obj_row = [as_fraction(v) for v in objective] + [Fraction(0)]
        for var, row in elim:
            obj_row = _substitute(obj_row, var, row)
        red_obj = [obj_row[j] for j in keep]
        obj_const = obj_row[-1]

    result = _raw_lp([_project_row(r, keep) for r in reduced_eqs],
                     [_project_row(r, keep) for r in reduced_ineqs],
                     len(keep), red_obj, maximize)
    if result.status is not LPStatus.OPTIMAL:
        return result

    # Reconstruct the full point by back-substitution.
    full = [Fraction(0)] * nvars
    for j, v in zip(keep, result.point):
        full[j] = v
    for var, row in reversed(elim):
        # row: var appears with coefficient +-1; row . x + c = 0.
        total = row[-1]
        for k, c in enumerate(row[:-1]):
            if k != var and c:
                total += c * full[k]
        full[var] = -total / row[var]
    value = result.value
    if objective is not None:
        value = sum((as_fraction(o) * x for o, x in zip(objective, full)), Fraction(0))
    return LPResult(LPStatus.OPTIMAL, value, tuple(full))


def _substitute(row: list[Fraction], var: int, pivot: list[Fraction]) -> list[Fraction]:
    """Eliminate ``var`` from ``row`` using pivot (pivot[var] is +-1)."""
    c = row[var]
    if not c:
        return row
    f = c / pivot[var]
    return [a - f * b for a, b in zip(row, pivot)]


def _presolve(eqs, ineqs, nvars):
    """Substitute away +-1-pivot equality variables.

    Returns (eqs', ineqs', keep_indices, elim_list, feasible) where rows stay
    in the original full-width coordinate system (eliminated columns zeroed).
    """
    cur_eqs = [[as_fraction(v) for v in r] for r in eqs]
    cur_ineqs = [[as_fraction(v) for v in r] for r in ineqs]
    eliminated: set[int] = set()
    elim: list[tuple[int, list[Fraction]]] = []
    while True:
        pivot_row = None
        pivot_var = None
        for r in cur_eqs:
            for j in range(nvars):
                if j not in eliminated and abs(r[j]) == 1:
                    pivot_row, pivot_var = r, j
                    break
            if pivot_row is not None:
                break
        if pivot_row is None:
            break
        cur_eqs = [_substitute(r, pivot_var, pivot_row)
                   for r in cur_eqs if r is not pivot_row]
        cur_ineqs = [_substitute(r, pivot_var, pivot_row) for r in cur_ineqs]
        eliminated.add(pivot_var)
        elim.append((pivot_var, pivot_row))

    # Constant rows: contradictions mean infeasible, tautologies are dropped.
    kept_eqs, kept_ineqs = [], []
    for r in cur_eqs:
        if any(r[:-1]):
            kept_eqs.append(r)
        elif r[-1] != 0:
            return [], [], [], [], False
    for r in cur_ineqs:
        if any(r[:-1]):
            kept_ineqs.append(r)
        elif r[-1] < 0:
            return [], [], [], [], False
    keep = [j for j in range(nvars) if j not in eliminated]
    return kept_eqs, kept_ineqs, keep, elim, True


def _project_row(row: list[Fraction], keep: list[int]) -> list[Fraction]:
    return [row[j] for j in keep] + [row[-1]]


def _raw_lp(eqs: Sequence[Sequence[Rational]],
            ineqs: Sequence[Sequence[Rational]],
            nvars: int,
            objective: Sequence[Rational] | None = None,
            maximize: bool = False) -> LPResult:
    """The unpresolved exact simplex (standard-form construction)."""

    # Standard form: columns are u_0..u_{n-1}, v_0..v_{n-1}, slacks.
    # Each constraint a.x + c (>=|=) 0 becomes a.u - a.v - s = -c  (s >= 0, ineq)
    # or a.u - a.v = -c (eq).  We then make every RHS nonnegative.
    ncols = 2 * nvars + len(ineqs)
    rows: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    for k, row in enumerate(list(eqs) + list(ineqs)):
        coeffs = [as_fraction(v) for v in row[:nvars]]
        const = as_fraction(row[nvars])
        body = coeffs + [-c for c in coeffs] + [Fraction(0)] * len(ineqs)
        if k >= len(eqs):  # inequality: subtract slack
            body[2 * nvars + (k - len(eqs))] = Fraction(-1)
        b = -const
        if b < 0:
            body = [-v for v in body]
            b = -b
        rows.append(body)
        rhs.append(b)

    tableau, basis = _phase_one(rows, rhs, ncols)
    if tableau is None:
        return LPResult(LPStatus.INFEASIBLE)

    if objective is None:
        point = _extract_point(tableau, basis, nvars, ncols)
        return LPResult(LPStatus.OPTIMAL, Fraction(0), point)

    obj = [as_fraction(v) for v in objective]
    if len(obj) != nvars:
        raise ValueError("objective length mismatch")
    if maximize:
        obj = [-v for v in obj]
    # cost vector over u, v, slacks: c.u - c.v
    cost = obj + [-v for v in obj] + [Fraction(0)] * (ncols - 2 * nvars)
    if not tableau:
        # No constraints at all: feasible, and any nonzero objective is unbounded.
        if any(v != 0 for v in obj):
            return LPResult(LPStatus.UNBOUNDED)
        return LPResult(LPStatus.OPTIMAL, Fraction(0), tuple(Fraction(0) for _ in range(nvars)))
    status = _phase_two(tableau, basis, cost)
    if status is LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED)
    point = _extract_point(tableau, basis, nvars, ncols)
    value = sum((as_fraction(o) * x for o, x in zip(objective, point)), Fraction(0))
    return LPResult(LPStatus.OPTIMAL, value, point)


# -- internals --------------------------------------------------------------


# The tableau is kept in integer form: each row is a list of ints whose true
# value is nums / den with den > 0 (the last entry is the RHS).  One gcd pass
# per updated row replaces per-element Fraction normalization, which is where
# the naive implementation spent nearly all of its time.

from math import gcd as _gcd_int


def _to_int_row(fracs: list[Fraction]) -> tuple[list[int], int]:
    den = 1
    for f in fracs:
        den = den * f.denominator // _gcd_int(den, f.denominator)
    return [int(f * den) for f in fracs], den


def _reduce_row(nums: list[int], den: int) -> tuple[list[int], int]:
    g = den
    for v in nums:
        if v:
            g = _gcd_int(g, abs(v))
            if g == 1:
                return nums, den
    if g > 1:
        nums = [v // g for v in nums]
        den //= g
    return nums, den


class _IRow:
    __slots__ = ("nums", "den")

    def __init__(self, nums: list[int], den: int = 1):
        self.nums = nums
        self.den = den

    def value(self, j: int) -> Fraction:
        return Fraction(self.nums[j], self.den)


def _phase_one(rows: list[list[Fraction]], rhs: list[Fraction], ncols: int):
    """Find a basic feasible solution using artificial variables.

    Returns (tableau, basis) or (None, None) if infeasible.  The tableau is a
    list of integer rows ``[coeffs..., rhs]`` restricted to the ncols real
    columns after artificials are driven out.
    """
    m = len(rows)
    total = ncols + m  # + artificials
    tableau: list[_IRow] = []
    for i in range(m):
        nums, den = _to_int_row(rows[i] + [Fraction(0)] * m + [rhs[i]])
        art = den  # coefficient 1 for this row's artificial, scaled by den
        nums[ncols + i] = art
        tableau.append(_IRow(nums, den))
    basis = [ncols + i for i in range(m)]

    # Phase-1 objective: minimize sum of artificials.
    cost = [0] * total
    for j in range(ncols, total):
        cost[j] = 1
    zrow = _reduced_cost_row(tableau, basis, cost, total)
    _simplex_iterate(tableau, basis, zrow, total)

    if zrow.nums[total] != 0:  # optimum of phase-1 > 0 => infeasible
        return None, None

    # Drive remaining artificials out of the basis (degenerate rows).
    for i in range(m):
        if basis[i] >= ncols:
            pivot_col = next((j for j in range(ncols) if tableau[i].nums[j] != 0), None)
            if pivot_col is None:
                continue  # redundant row; harmless to keep
            _pivot(tableau, basis, i, pivot_col, total)

    # Strip artificial columns.
    stripped: list[_IRow] = []
    new_basis: list[int] = []
    for i in range(m):
        nums = tableau[i].nums[:ncols] + [tableau[i].nums[total]]
        if basis[i] < ncols or any(nums[:ncols]):
            n2, d2 = _reduce_row(nums, tableau[i].den)
            stripped.append(_IRow(n2, d2))
            new_basis.append(basis[i])
    return stripped, new_basis


def _phase_two(tableau: list[_IRow], basis: list[int],
               cost: list[Fraction]) -> LPStatus:
    ncols = len(tableau[0].nums) - 1
    # Integerize the cost vector.
    cnums, _cden = _to_int_row([as_fraction(c) for c in cost])
    zrow = _reduced_cost_row(tableau, basis, cnums, ncols)
    return _simplex_iterate(tableau, basis, zrow, ncols)


def _reduced_cost_row(tableau: list[_IRow], basis: list[int],
                      cost: list[int], ncols: int) -> _IRow:
    """z-row: reduced costs (cost - c_B . B^-1 A) and objective value."""
    znums = list(cost[:ncols]) + [0]
    zden = 1
    for i, b in enumerate(basis):
        cb = cost[b] if b < len(cost) else 0
        if cb == 0:
            continue
        row = tableau[i]
        # z' = z - cb * row  (common denominator zden * row.den)
        new_den = zden * row.den
        znums = [zn * row.den - cb * rn * zden
                 for zn, rn in zip(znums, row.nums)]
        zden = new_den
        znums, zden = _reduce_row(znums, zden)
    return _IRow(znums, zden)


def _simplex_iterate(tableau: list[_IRow], basis: list[int], zrow: _IRow,
                     ncols: int) -> LPStatus:
    """Run simplex (min) with Bland's rule; mutates tableau/basis/zrow."""
    m = len(tableau)
    while True:
        znums = zrow.nums
        enter = next((j for j in range(ncols) if znums[j] < 0), None)
        if enter is None:
            return LPStatus.OPTIMAL
        # Ratio test rhs/a, a > 0 (Bland: smallest basis index on ties).
        # Denominators cancel inside one row; compare across rows by
        # cross-multiplication of nonnegative quantities.
        leave = None
        best_num = best_den = None  # ratio = best_num / best_den, both >= 0
        for i in range(m):
            a = tableau[i].nums[enter]
            if a > 0:
                num, den = tableau[i].nums[-1], a
                if leave is None:
                    better = True
                else:
                    lhs = num * best_den
                    rhs = best_num * den
                    better = lhs < rhs or (lhs == rhs and basis[i] < basis[leave])
                if better:
                    best_num, best_den = num, den
                    leave = i
        if leave is None:
            return LPStatus.UNBOUNDED
        _pivot(tableau, basis, leave, enter, ncols, zrow)


def _pivot(tableau: list[_IRow], basis: list[int], row: int, col: int,
           ncols: int, zrow: _IRow | None = None) -> None:
    prow = tableau[row]
    p = prow.nums[col]
    # New pivot row = old / (p / den) = nums / p  (sign-fix so den > 0).
    if p > 0:
        new_nums, new_den = list(prow.nums), p
    else:
        new_nums, new_den = [-v for v in prow.nums], -p
    new_nums, new_den = _reduce_row(new_nums, new_den)
    pivot_row = _IRow(new_nums, new_den)
    tableau[row] = pivot_row

    prn = pivot_row.nums
    prd = pivot_row.den
    for i in range(len(tableau)):
        if i == row:
            continue
        r = tableau[i]
        f = r.nums[col]
        if f == 0:
            continue
        nums = [a * prd - f * b for a, b in zip(r.nums, prn)]
        nums, den = _reduce_row(nums, r.den * prd)
        tableau[i] = _IRow(nums, den)
    if zrow is not None and zrow.nums[col] != 0:
        f = zrow.nums[col]
        nums = [a * prd - f * b for a, b in zip(zrow.nums, prn)]
        nums, den = _reduce_row(nums, zrow.den * prd)
        zrow.nums, zrow.den = nums, den
    basis[row] = col


def _extract_point(tableau: list[_IRow], basis: list[int], nvars: int,
                   ncols: int) -> tuple[Fraction, ...]:
    values = [Fraction(0)] * ncols
    if not tableau:
        return tuple(Fraction(0) for _ in range(nvars))
    for i, b in enumerate(basis):
        if b < ncols:
            values[b] = Fraction(tableau[i].nums[-1], tableau[i].den)
    return tuple(values[i] - values[nvars + i] for i in range(nvars))
