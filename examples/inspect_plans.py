#!/usr/bin/env python
"""Plan-space exploration: dependences, sharing opportunities, generated code.

Walks the full analysis-to-codegen pipeline on Example 1 and shows the
intermediate artifacts the paper describes: the dependence and sharing-
opportunity sets (Definitions 2-3 after no-write-in-between pruning and
multiplicity reduction), the Apriori search statistics, the memory/I-O
trade-off of every plan, and the pseudo-C the code generator emits for the
best plan — compare it with Figure 1(b) of the paper.

Run:  python examples/inspect_plans.py
"""

from repro import (add_multiply_program, analyze, build_executable_plan,
                   optimize, render_c)
from repro.optimizer import symbolic_io_report
from repro.report import plan_space_ascii

program = add_multiply_program()
params = {"n1": 4, "n2": 4, "n3": 2}

print("=== parametric cost formulas (Section 5.4 Remark) " + "=" * 12)
print(symbolic_io_report(program, analyze(program)))
print()

print("=== analysis " + "=" * 50)
analysis = analyze(program, param_values=params)
print(f"dependences ({len(analysis.dependences)}):")
for dep in analysis.dependences:
    print(f"  {dep.label}")
print(f"sharing opportunities ({len(analysis.opportunities)}):")
for opp in analysis.opportunities:
    pairs = opp.savings_pairs(params)
    print(f"  {opp.label:22s} {opp.type_str:6s} {len(pairs):4d} instance pairs")

print("\n=== plan space " + "=" * 48)
result = optimize(program, params)
print(f"search: {result.stats}")
print(f"{'plan':>4} {'io(s)':>8} {'mem(MB)':>8}  realized")
for plan in sorted(result.plans, key=lambda p: p.cost.io_seconds):
    labels = ", ".join(plan.realized_labels) or "(original)"
    print(f"{plan.index:>4} {plan.cost.io_seconds:>8.2f} "
          f"{plan.cost.memory_bytes / 1e6:>8.2f}  {labels}")

print("\n=== plan-space scatter (Figure 3(a) style) " + "=" * 20)
print(plan_space_ascii(result))

print("\n=== generated code for the best plan " + "=" * 25)
best = result.best()
print(render_c(build_executable_plan(program, params, best)))
