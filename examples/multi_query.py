#!/usr/bin/env python
"""Cross-query I/O sharing by composition (paper §2 related work, realized).

QPipe and cooperative scans share table scans across concurrent queries at
run time; multi-query optimizers match common subexpressions.  RIOTShare's
framework subsumes the scan-sharing case by *construction*: concatenate the
queries into one program and the shared scans surface as ordinary R->R
sharing opportunities the optimizer schedules deliberately.

Two analysts submit independent jobs touching the same matrix T:
  job 1:  O1 = T W1       (a projection of T)
  job 2:  O2 = T W2       (a different projection)
Run back to back, T is scanned twice; composed, once.

Run:  python examples/multi_query.py
"""

import tempfile

import numpy as np

from repro import Pipeline, optimize, run_program
from repro.ops import concat_programs
from repro.optimizer import per_array_io


def make_job(name, out):
    p = Pipeline(name, params=("n",))
    t = p.input("T", blocks=("n", "n"), block_shape=(32, 32))
    w = p.input(f"{out}_W", blocks=("n", "n"), block_shape=(32, 32))
    p.mark_output(p.matmul(t, w, name=out))
    return p.build()


params = {"n": 3}
job1, job2 = make_job("job1", "O1"), make_job("job2", "O2")
composed = concat_programs([job1, job2], name="two_jobs")

solo = optimize(job1, params).best()
result = optimize(composed, params)
best = result.best()

print(f"composed program: {len(composed.statements)} statements, "
      f"{len(result.analysis.opportunities)} sharing opportunities")
cross = [l for l in best.realized_labels if l.startswith("q1") and "q2" in l]
print(f"cross-query opportunities realized: {cross}")

t_stats = per_array_io(composed, params, best)["T"]
print(f"T scans: {t_stats['reads']} from disk, "
      f"{t_stats['reads_saved']} served from memory")
back_to_back = 2 * solo.cost.total_bytes
print(f"I/O: back-to-back optimized jobs {back_to_back / 1e6:.1f} MB, "
      f"composed {best.cost.total_bytes / 1e6:.1f} MB "
      f"({1 - best.cost.total_bytes / back_to_back:.0%} saved)")

rng = np.random.default_rng(1)
inputs = {n: rng.standard_normal(composed.arrays[n].shape_elems(params))
          for n in ("T", "O1_W", "O2_W")}
with tempfile.TemporaryDirectory() as workdir:
    report, out = run_program(composed, params, best, workdir, inputs)
assert np.allclose(out["O1"], inputs["T"] @ inputs["O1_W"])
assert np.allclose(out["O2"], inputs["T"] @ inputs["O2_W"])
print("both query results verified — OK")
