#!/usr/bin/env python
"""Quickstart: optimize and execute the paper's Example 1 (C = A+B; E = C D).

Builds the two-step pipeline with the operator library, runs the RIOTShare
optimizer, prints the plan space, executes the best plan against the
simulated disk, and verifies the result numerically.

Run:  python examples/quickstart.py
"""

import tempfile

import numpy as np

from repro import Pipeline, optimize, reference_outputs, run_program

# -- 1. describe the program with the operator library -----------------------
p = Pipeline("quickstart", params=("n1", "n2", "n3"))
a = p.input("A", blocks=("n1", "n2"), block_shape=(60, 40))
b = p.input("B", blocks=("n1", "n2"), block_shape=(60, 40))
d = p.input("D", blocks=("n2", "n3"), block_shape=(40, 50))
c = p.add(a, b, name="C")               # C = A + B        (intermediate)
e = p.matmul(c, d, name="E")            # E = C D
p.mark_output(e)
program = p.build()

params = {"n1": 4, "n2": 4, "n3": 1}    # block counts per dimension

# -- 2. optimize --------------------------------------------------------------
result = optimize(program, params)
print(f"{len(result.plans)} legal plans found "
      f"({result.stats.pruned_fraction:.0%} of the subset lattice pruned)\n")
for plan in sorted(result.plans, key=lambda q: q.cost.io_seconds):
    print(f"  {plan.summary()}")

best = result.best()
orig = result.original_plan
print(f"\nbest plan saves "
      f"{1 - best.cost.total_bytes / orig.cost.total_bytes:.0%} of the I/O "
      f"for {best.cost.memory_bytes / orig.cost.memory_bytes - 1:+.0%} memory")

# -- 3. execute and verify ------------------------------------------------------
rng = np.random.default_rng(0)
inputs = {name: rng.standard_normal(program.arrays[name].shape_elems(params))
          for name in ("A", "B", "D")}

with tempfile.TemporaryDirectory() as workdir:
    report, outputs = run_program(program, params, best, workdir, inputs)

expected = reference_outputs(program, params, inputs)["E"]
assert np.allclose(outputs["E"], expected), "verification failed!"
print(f"\nexecuted best plan: read {report.io.read_bytes / 1e6:.1f} MB, "
      f"wrote {report.io.write_bytes / 1e6:.1f} MB "
      f"(simulated {report.simulated_io_seconds:.2f} s of disk time)")
print(f"predicted I/O matched measured I/O: "
      f"{report.io.read_bytes == best.cost.read_bytes and report.io.write_bytes == best.cost.write_bytes}")
print("result verified against the dense reference — OK")
