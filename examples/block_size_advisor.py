#!/usr/bin/env python
"""Joint block-size + I/O-sharing optimization (paper Section 7 / Figure 3a).

The clubsuit experiment of Figure 3(a): is extra memory better spent on
bigger blocks for the unoptimized plan, or on sharing-optimized schedules?
The advisor evaluates block-size options with the full optimizer and
recommends the joint winner under a memory cap.

The single-program advisor now lives in the full advisor subsystem
(``repro.advisor``); its workload-level generalization is
``python -m repro advise``, which rescales block geometry across a whole
traced workload and verifies the predicted savings by re-running.

Run:  python examples/block_size_advisor.py
"""

from repro import add_multiply_program
from repro.advisor import BlockSizeAdvisor

params = {"n1": 4, "n2": 4, "n3": 1}


def make_program(block_rows: int):
    return add_multiply_program(block_rows=block_rows, block_cols=40, d_cols=50)


advisor = BlockSizeAdvisor(make_program, params)
options = [40, 60, 90]  # block row counts (the paper grew 6000 -> 9000)
cap = 200_000  # bytes of buffer memory

print(f"memory cap: {cap / 1e3:.0f} kB")
print(f"{'rows':>6} {'plans':>6} {'best io(s)':>11} {'mem(kB)':>8}  plan")
for choice in advisor.sweep(options, memory_cap_bytes=cap):
    if choice.best is None:
        print(f"{choice.option:>6} {len(choice.result.plans):>6} "
              f"{'—':>11} {'—':>8}  (no plan fits the cap)")
        continue
    labels = ", ".join(choice.best.realized_labels) or "(original)"
    print(f"{choice.option:>6} {len(choice.result.plans):>6} "
          f"{choice.best.cost.io_seconds:>11.3f} "
          f"{choice.best.cost.memory_bytes / 1e3:>8.1f}  {labels}")

winner = advisor.recommend(options, memory_cap_bytes=cap)
print(f"\nrecommended block rows: {winner.option} "
      f"(io {winner.best.cost.io_seconds:.3f} s-equivalent)")

# The paper's point: the unoptimized plan with the biggest blocks still loses
# to a sharing-optimized plan with smaller blocks.
big_blocks_plan0 = advisor.evaluate(90).result.original_plan
print(f"\nunoptimized plan with 90-row blocks: "
      f"io {big_blocks_plan0.cost.io_seconds:.3f} s, "
      f"mem {big_blocks_plan0.cost.memory_bytes / 1e3:.1f} kB "
      f"(clubsuit point of Figure 3(a))")
assert winner.best.cost.io_seconds < big_blocks_plan0.cost.io_seconds
print("sharing-optimized plan beats blindly enlarged blocks — as in the paper")
