#!/usr/bin/env python
"""Out-of-core ordinary least squares — the paper's Section 6.3 workload.

Fits beta = (X'X)^-1 X'Y and the per-response residual sums of squares for
a tall design matrix stored in blocks, comparing the unoptimized plan with
the sharing-optimized one (the paper reports 43.8% less I/O for 6% more
memory), then verifies the fitted coefficients against numpy's lstsq.

Uses a reduced observation count so the optimizer's Apriori search finishes
in example-time; the full Table-4 geometry runs in benchmarks/.

Run:  python examples/linear_regression.py
"""

import tempfile

import numpy as np

from repro import linreg_program, optimize, run_program

program = linreg_program(x_block=(120, 8), y_cols=4)
params = {"n": 6}  # 6 row-blocks of observations

# The linreg opportunity lattice is almost fully mutually compatible, so
# exhaustive Apriori is exponential; budget the enumeration and let the
# greedy-maximal completion find the best (full) set — see EXPERIMENTS.md.
result = optimize(program, params, max_candidates=40)
orig, best = result.original_plan, result.best()
print(f"{len(result.plans)} plans; search {result.stats}")
print(f"original plan: io={orig.cost.io_seconds * 1e3:8.2f} ms-equivalent, "
      f"mem={orig.cost.memory_bytes / 1e3:.1f} kB")
print(f"best plan:     io={best.cost.io_seconds * 1e3:8.2f} ms-equivalent, "
      f"mem={best.cost.memory_bytes / 1e3:.1f} kB")
print(f"I/O saving {1 - best.cost.io_seconds / orig.cost.io_seconds:.1%}, "
      f"memory {best.cost.memory_bytes / orig.cost.memory_bytes - 1:+.1%}")
print("realized:", ", ".join(best.realized_labels))

# -- execute and check the statistics ----------------------------------------
rng = np.random.default_rng(42)
n_obs = program.arrays["X"].shape_elems(params)[0]
n_pred = program.arrays["X"].shape_elems(params)[1]
n_resp = program.arrays["Y"].shape_elems(params)[1]
X = rng.standard_normal((n_obs, n_pred))
true_beta = rng.standard_normal((n_pred, n_resp))
Y = X @ true_beta + 0.01 * rng.standard_normal((n_obs, n_resp))

with tempfile.TemporaryDirectory() as workdir:
    report, outputs = run_program(program, params, best, workdir,
                                  {"X": X, "Y": Y})

beta_np, *_ = np.linalg.lstsq(X, Y, rcond=None)
assert np.allclose(outputs["Bhat"], beta_np, atol=1e-6), "coefficients differ!"
resid = Y - X @ beta_np
assert np.allclose(outputs["R"], (resid ** 2).sum(axis=0, keepdims=True),
                   rtol=1e-6), "RSS differs!"
print(f"\nexecuted: {report.io.read_bytes / 1e6:.2f} MB read, "
      f"{report.io.write_bytes / 1e6:.2f} MB written, "
      f"coefficients and RSS verified against numpy.linalg.lstsq — OK")
