#!/usr/bin/env python
"""Shared table scans in a relational pipeline (paper Sections 4.1 & 7).

The paper's related-work section discusses QPipe and cooperative scans —
runtime mechanisms that let concurrent queries share table scans.  RIOTShare
obtains the same effect by *plan transformation*: two consumers of a table
are scheduled so each block is read once and reused from memory.

The pipeline below computes, over one blocked table T:
  S1 = per-column sums of T            (a full scan)
  S2 = per-column sums of rows with T[:,1] >= 5   (filter + scan)
and joins a filtered T against a second table S with a block nested-loop
join, whose inner-table re-scans the optimizer also shares.

Run:  python examples/relational_pipeline.py
"""

import tempfile

import numpy as np

from repro import optimize, run_program
from repro.ops import RelationalPipeline

p = RelationalPipeline("report_queries", params=("n", "m"))
t = p.table("T", "n", block_rows=64, columns=4)
s = p.table("S", "m", block_rows=64, columns=4)
total = p.aggregate(t, name="S1")                       # scan 1 of T
flt = p.filter(t, column=1, threshold=5.0, name="F")    # scan 2 of T
fsum = p.aggregate(flt, name="S2")
joined = p.nested_loop_join(flt, s, left_key=0, right_key=0, name="J")
for ref in (total, fsum, joined):
    p.mark_output(ref)
program = p.build()

params = {"n": 6, "m": 3}
result = optimize(program, params)

print(f"{len(result.analysis.opportunities)} sharing opportunities, "
      f"{len(result.plans)} plans")
best = result.best()
orig = result.original_plan
print(f"best plan: {', '.join(best.realized_labels)}")
print(f"I/O: {orig.cost.total_bytes / 1e6:.2f} MB -> "
      f"{best.cost.total_bytes / 1e6:.2f} MB "
      f"({1 - best.cost.total_bytes / orig.cost.total_bytes:.0%} saved)")
shared_scan = [lbl for lbl in best.realized_labels if "RT" in lbl]
print(f"shared scans of T realized: {shared_scan}")

# Execute and verify against straightforward numpy.
rng = np.random.default_rng(11)
T = np.floor(rng.uniform(0, 10, size=(64 * params['n'], 4)))
S = np.floor(rng.uniform(0, 10, size=(64 * params['m'], 4)))
T[:, 0] += 1  # no all-zero rows (the filtered-row sentinel)
S[:, 0] += 1

with tempfile.TemporaryDirectory() as workdir:
    report, out = run_program(program, params, best, workdir, {"T": T, "S": S})

assert np.allclose(out["S1"], T.sum(axis=0, keepdims=True))
keep = T[:, 1] >= 5.0
assert np.allclose(out["S2"], T[keep].sum(axis=0, keepdims=True))
matches = float(np.sum(T[keep][:, 0][:, None] == S[:, 0][None, :]))
assert out["J"].sum() == matches
print(f"\nexecuted: read {report.io.read_bytes / 1e6:.2f} MB "
      f"(predicted {best.cost.read_bytes / 1e6:.2f} MB); "
      f"aggregates and join verified — OK")
