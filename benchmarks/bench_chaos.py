"""Chaos sweep benchmark: seeded failure storms against a live service.

Runs :func:`repro.service.chaos.run_chaos` across a seed list (default
``0..2``; the nightly sweep sets ``REPRO_CHAOS_SEEDS="0 1 ... 14"``) and
reports per-seed outcome tallies, wall time, and every invariant
violation.  Exit status is non-zero if any seed violates an invariant, so
CI can gate on it directly.

Artifacts:

* ``BENCH_chaos.json`` — one record per seed (tallies, violations,
  seconds);
* ``chaos_worst_seed.jsonl`` — the full replayable event trace of the
  *worst* seed (most violations, slowest as tie-break), the artifact the
  nightly uploads so a red sweep ships its own repro.
"""

import json
import os
import sys
import tempfile
from pathlib import Path

from conftest import banner, save_artifact
from repro.service.chaos import run_chaos

SEEDS = [int(s) for s in os.environ.get("REPRO_CHAOS_SEEDS", "0 1 2").split()]
JOBS = int(os.environ.get("REPRO_CHAOS_JOBS", "18"))


def main() -> int:
    banner(f"chaos sweep: {len(SEEDS)} seeds x {JOBS} jobs")
    records = []
    worst = None  # (violations, seconds, seed, trace text)
    for seed in SEEDS:
        with tempfile.TemporaryDirectory() as td:
            rep = run_chaos(Path(td), seed, jobs=JOBS)
            trace = Path(rep.trace_path).read_text(encoding="utf-8")
        rec = rep.to_dict()
        records.append(rec)
        verdict = "ok" if rep.ok else f"{len(rep.violations)} VIOLATIONS"
        print(f"seed {seed:3d}: {verdict:>14s}  "
              f"completed={rep.completed:2d} cancelled={rep.cancelled:2d} "
              f"deadline={rep.deadline_exceeded:2d} failed={rep.failed:2d} "
              f"retried={rep.retried} shed={rep.shed} "
              f"({rep.seconds:.2f}s)")
        for v in rep.violations:
            print(f"          !! {v}")
        key = (len(rep.violations), rep.seconds)
        if worst is None or key > worst[0]:
            worst = (key, seed, trace)

    save_artifact("BENCH_chaos.json", json.dumps(records, indent=2))
    (_, worst_seed, worst_trace) = worst
    save_artifact("chaos_worst_seed.jsonl", worst_trace)
    print(f"[worst seed: {worst_seed}]")

    bad = [r for r in records if r["violations"]]
    if bad:
        print(f"\nFAIL: {len(bad)}/{len(records)} seeds violated "
              f"resilience invariants")
        return 1
    print(f"\nall {len(records)} seeds clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
