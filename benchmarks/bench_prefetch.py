"""I/O–compute overlap: serial execution vs the plan-driven prefetch pipeline.

The disk runs with ``io_pace=1.0`` so every counted operation sleeps its
modeled transfer time — wall clock then *is* the modeled timeline, and the
pipeline's win (pushing ``io + compute`` toward ``max(io, compute)``) shows
up directly as wall-clock saved.  Blocks are 1024x1024 (8 MiB) so each
paced read is ~87 ms against a matmul of comparable cost.

Emits ``BENCH_prefetch.json``: one row per prefetch depth with wall /
modeled-I/O / CPU seconds, the pipeline counters, and the fraction of the
hideable time (``min(paced read I/O, compute)``) the overlap actually hid.
Every depth must stay numerically correct AND byte-exact under
``validate=True`` — overlap may never change what I/O happens, only when.
"""

import json
import tempfile

import numpy as np
import pytest

from conftest import banner, save_artifact
from repro import add_multiply_program, optimize, run_program
from repro.engine import reference_outputs
from repro.optimizer import IOModel

P = {"n1": 2, "n2": 2, "n3": 1}
DEPTHS = (0, 2, 8)


def test_prefetch_overlap_json(benchmark):
    prog = add_multiply_program(block_rows=1024, block_cols=1024,
                                d_cols=1024)
    best = optimize(prog, P).best()
    rng = np.random.default_rng(7)
    inputs = {n: rng.standard_normal(prog.arrays[n].shape_elems(P))
              for n in ("A", "B", "D")}
    truth = reference_outputs(prog, P, inputs)
    model = IOModel()

    banner("Prefetch pipeline: I/O-compute overlap at io_pace=1.0")
    records = []
    for depth in DEPTHS:
        with tempfile.TemporaryDirectory() as td:
            report, outputs = run_program(prog, P, best, td, inputs,
                                          prefetch_depth=depth,
                                          io_pace=1.0, validate=True)
        for name in outputs:
            assert np.allclose(outputs[name], truth[name]), \
                f"depth {depth}: output {name} wrong"
        assert report.validation.passed, report.validation.summary()
        assert report.io.read_bytes == best.cost.read_bytes
        assert report.io.write_bytes == best.cost.write_bytes
        rec = {
            "depth": depth,
            "wall_seconds": report.wall_seconds,
            "modeled_io_seconds": report.simulated_io_seconds,
            "cpu_seconds": report.cpu_seconds,
            "read_bytes": report.io.read_bytes,
            "write_bytes": report.io.write_bytes,
        }
        if report.prefetch is not None:
            rec.update(report.prefetch.as_dict())
        records.append(rec)
        print(f"depth {depth}: wall={rec['wall_seconds']:.3f}s "
              f"(modeled io={rec['modeled_io_seconds']:.3f}s, "
              f"cpu={rec['cpu_seconds']:.3f}s)"
              + (f" staged={rec['staged_blocks']} "
                 f"waited={rec['wait_seconds']:.3f}s"
                 if depth else " [serial]"))

    serial = records[0]
    # Only paced *read* time can hide, and it hides behind everything the
    # main thread does meanwhile: compute plus the paced writes that stay
    # on the main thread.  That's the ceiling overlap is measured against.
    read_io = model.seconds(serial["read_bytes"], 0)
    write_io = model.seconds(0, serial["write_bytes"])
    hideable = min(read_io, serial["cpu_seconds"] + write_io)
    for rec in records[1:]:
        rec["hidden_seconds"] = serial["wall_seconds"] - rec["wall_seconds"]
        rec["overlap_fraction"] = (rec["hidden_seconds"] / hideable
                                   if hideable > 0 else 0.0)
        print(f"depth {rec['depth']}: hid {rec['hidden_seconds']:.3f}s "
              f"of {hideable:.3f}s hideable "
              f"({rec['overlap_fraction']:.0%})")

    save_artifact("BENCH_prefetch.json", json.dumps(records, indent=2) + "\n")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Overlap must be real: the deepest pipeline beats serial wall clock,
    # hiding a meaningful fraction of the hideable time.  (Loose bound —
    # CI machines are noisy; locally this hides ~80%.)
    deepest = records[-1]
    assert deepest["wall_seconds"] < serial["wall_seconds"], \
        f"no overlap: {deepest['wall_seconds']:.3f}s >= " \
        f"{serial['wall_seconds']:.3f}s serial"
    assert deepest["overlap_fraction"] >= 0.25, \
        f"overlap too small: {deepest['overlap_fraction']:.0%}"
