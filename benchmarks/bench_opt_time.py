"""Reproduction of Section 6's "A Note on Optimization Time".

The paper reports 0.6 s (add+multiply), 2.1 s (two matmuls) and 156.7 s
(linear regression) with a single-threaded Python optimizer on top of the C
isl library; ours is pure Python all the way down, so absolute numbers are
larger — the claims checked here are the paper's structural ones:

* optimization cost grows with program complexity (statements,
  opportunities), not with data size;
* the Apriori search prunes most of the subset lattice for the matrix
  workloads (the paper reports 94% for linear regression, whose lattice in
  our extraction is almost fully feasible and therefore budget-bounded —
  see EXPERIMENTS.md).
"""

from conftest import banner


def test_optimization_times(fig3_result, fig4_result, fig6_result, benchmark):
    rows = [
        ("add+multiply (6.1)", "0.6 s", fig3_result[1]),
        ("two matmuls A (6.2)", "2.1 s", fig4_result[1]),
        ("linear regression (6.3)", "156.7 s", fig6_result[1]),
    ]
    banner("Optimization time (paper vs this reproduction)")
    print(f"{'workload':>24} {'paper':>9} {'ours':>9} {'tested':>7} "
          f"{'feasible':>9} {'pruned':>7}")
    for name, paper, result in rows:
        s = result.stats
        print(f"{name:>24} {paper:>9} {result.seconds:>8.1f}s "
              f"{s.candidates_tested:>7} {s.feasible:>9} {s.pruned_fraction:>7.1%}")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Complexity ordering holds: the 7-statement program costs the most.
    assert fig6_result[1].stats.candidates_tested >= \
        fig3_result[1].stats.candidates_tested
    # Matrix workloads prune a large fraction of the lattice outright.
    assert fig4_result[1].stats.pruned_fraction > 0.5
