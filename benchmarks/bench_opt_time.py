"""Reproduction of Section 6's "A Note on Optimization Time".

The paper reports 0.6 s (add+multiply), 2.1 s (two matmuls) and 156.7 s
(linear regression) with a single-threaded Python optimizer on top of the C
isl library; ours is pure Python all the way down, so absolute numbers are
larger — the claims checked here are the paper's structural ones:

* optimization cost grows with program complexity (statements,
  opportunities), not with data size;
* the Apriori search prunes most of the subset lattice for the matrix
  workloads (the paper reports 94% for linear regression, whose lattice in
  our extraction is almost fully feasible and therefore budget-bounded —
  see EXPERIMENTS.md).

This file is also the optimizer's performance harness: ``test_opt_time_json``
times exhaustive vs bound-pruned search on the golden-plan corpus cases,
prints the per-level candidate funnel (generated → tested → feasible →
costed) and writes ``benchmarks/results/BENCH_opt_time.json``.  CI's
optimizer-perf job replays it and gates on the committed baseline via
``benchmarks/check_opt_time_regression.py`` (see docs/optimizer_performance.md).
"""

import importlib.util
import json
import os
import pathlib
import time
from fractions import Fraction

from conftest import banner, save_artifact

_GOLDEN = (pathlib.Path(__file__).resolve().parents[1]
           / "tests" / "fixtures" / "golden_plans" / "regenerate.py")
_spec = importlib.util.spec_from_file_location("golden_cases", _GOLDEN)
golden_cases = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_cases)

# The perf-gated lane: small enough for every push, large enough that a
# kernel or search regression moves the needle well past noise.
QUICK_CASES = ["example1", "add_multiply", "two_matmul_B"]


def calibration_seconds() -> float:
    """A fixed, deterministic CPU workload (integer + Fraction arithmetic,
    the optimizer's own mix).  Recorded alongside every measurement so the
    regression gate compares machine-normalized times, not wall clocks."""
    t0 = time.perf_counter()
    acc = 0
    for i in range(1_500_000):
        acc = (acc * 1103515245 + i) % (1 << 62)
    x = Fraction(acc % 97, 89)
    for i in range(1, 3000):
        x += Fraction(1, i)
    return time.perf_counter() - t0


def level_rows(stats) -> list[dict]:
    return [{
        "k": k,
        "generated": stats.level_generated.get(k, 0),
        "tested": stats.level_candidates.get(k, 0),
        "feasible": stats.level_feasible.get(k, 0),
        "costed": stats.level_costed.get(k, 0),
        "seconds": round(stats.level_seconds.get(k, 0.0), 4),
    } for k in sorted(stats.level_candidates)]


def print_levels(stats) -> None:
    print(f"  {'level':>6} {'generated':>10} {'tested':>7} {'feasible':>9} "
          f"{'costed':>7} {'seconds':>8}")
    for row in level_rows(stats):
        print(f"  {row['k']:>6} {row['generated']:>10} {row['tested']:>7} "
              f"{row['feasible']:>9} {row['costed']:>7} {row['seconds']:>8.2f}")


def measure(name: str, mode: str) -> tuple[dict, object]:
    from repro import optimize

    program, params, knobs = golden_cases.build_case(name)
    t0 = time.perf_counter()
    result = optimize(program, params, prune=(mode == "pruned"), **knobs)
    seconds = time.perf_counter() - t0
    best = result.best()
    s = result.stats
    record = {
        "workload": name,
        "mode": mode,
        "params": params,
        "optimizer_seconds": seconds,
        "candidates_tested": s.candidates_tested,
        "feasible": s.feasible,
        "plans": len(result.plans),
        "cost_skips": s.cost_skips,
        "bound_exits": s.bound_exits,
        "io_lower_bound": s.io_lower_bound,
        "best_labels": sorted(best.realized_labels),
        "best_io_seconds": best.cost.io_seconds,
        "levels": level_rows(s),
    }
    return record, s


def test_opt_time_json(benchmark):
    """Exhaustive vs bound-pruned optimizer time on the golden corpus,
    with the per-level candidate funnel, emitted as BENCH_opt_time.json."""
    calibration = calibration_seconds()
    records = []
    banner("Optimizer time: exhaustive vs bound-pruned search")
    print(f"[calibration workload: {calibration:.3f}s]")
    for name in QUICK_CASES:
        for mode in ("exhaustive", "pruned"):
            rec, stats = measure(name, mode)
            rec["calibration_seconds"] = calibration
            records.append(rec)
            print(f"\n{name} [{mode}]: {rec['optimizer_seconds']:.2f}s, "
                  f"tested={rec['candidates_tested']} "
                  f"feasible={rec['feasible']} plans={rec['plans']} "
                  f"cost_skips={rec['cost_skips']} "
                  f"best_io={rec['best_io_seconds']}")
            print_levels(stats)
    save_artifact("BENCH_opt_time.json", json.dumps(records, indent=1) + "\n")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Pruned and exhaustive must agree on the chosen plan, always.
    by_case: dict = {}
    for rec in records:
        by_case.setdefault(rec["workload"], {})[rec["mode"]] = rec
    for name, modes in by_case.items():
        assert (modes["pruned"]["best_labels"],
                modes["pruned"]["best_io_seconds"]) == \
               (modes["exhaustive"]["best_labels"],
                modes["exhaustive"]["best_io_seconds"]), name
        assert modes["pruned"]["plans"] <= modes["exhaustive"]["plans"]


def test_optimization_times(fig3_result, fig4_result, fig6_result, benchmark):
    rows = [
        ("add+multiply (6.1)", "0.6 s", fig3_result[1]),
        ("two matmuls A (6.2)", "2.1 s", fig4_result[1]),
        ("linear regression (6.3)", "156.7 s", fig6_result[1]),
    ]
    banner("Optimization time (paper vs this reproduction)")
    print(f"{'workload':>24} {'paper':>9} {'ours':>9} {'tested':>7} "
          f"{'feasible':>9} {'pruned':>7}")
    for name, paper, result in rows:
        s = result.stats
        print(f"{name:>24} {paper:>9} {result.seconds:>8.1f}s "
              f"{s.candidates_tested:>7} {s.feasible:>9} {s.pruned_fraction:>7.1%}")
    for name, _paper, result in rows:
        print(f"\n{name} candidate funnel:")
        print_levels(result.stats)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Complexity ordering holds: the 7-statement program costs the most.
    assert fig6_result[1].stats.candidates_tested >= \
        fig3_result[1].stats.candidates_tested
    # Matrix workloads prune a large fraction of the lattice outright.
    assert fig4_result[1].stats.pruned_fraction > 0.5


def _plan_multiset(result):
    return sorted((tuple(sorted(p.realized_labels)), p.cost.io_seconds,
                   p.cost.memory_bytes) for p in result.plans)


def test_parallel_optimization_speedup(fig3_result, fig4_result, fig6_result,
                                       benchmark):
    """1-worker vs N-worker optimization of the fig3/fig4/fig6 programs.

    Checks the determinism guarantee (identical plan multiset and best plan)
    on every program and records the wall-clock speedup; the sequential
    session fixtures serve as the 1-worker baseline.  The speedup assertion
    only fires on machines with enough cores to express it.
    """
    from repro import optimize

    workers = 4
    extra = {"linear regression (6.3)": {"max_candidates": 400}}
    rows = []
    for name, (cfg, base) in (
            ("add+multiply (6.1)", fig3_result),
            ("two matmuls A (6.2)", fig4_result),
            ("linear regression (6.3)", fig6_result)):
        t0 = time.perf_counter()
        par = optimize(cfg.program, cfg.params, workers=workers,
                       block_bytes=cfg.paper_block_bytes,
                       **extra.get(name, {}))
        par_seconds = time.perf_counter() - t0
        same_plans = _plan_multiset(base) == _plan_multiset(par)
        same_best = (base.best().realized_labels ==
                     par.best().realized_labels)
        rows.append((name, base.seconds, par_seconds,
                     base.seconds / par_seconds, same_plans and same_best,
                     par.stats))
    banner(f"Optimization time: 1 worker vs {workers} workers "
           f"({os.cpu_count()} cores)")
    print(f"{'workload':>24} {'1w':>9} {f'{workers}w':>9} {'speedup':>8} "
          f"{'identical':>10} {'tasks':>6}")
    lines = ["workload,seq_seconds,par_seconds,speedup,identical_plans"]
    for name, seq_s, par_s, speedup, same, stats in rows:
        print(f"{name:>24} {seq_s:>8.1f}s {par_s:>8.1f}s {speedup:>7.2f}x "
              f"{str(same):>10} {stats.tasks_dispatched:>6}")
        lines.append(f"{name},{seq_s:.3f},{par_s:.3f},{speedup:.3f},{same}")
    save_artifact("opt_time_parallel.csv", "\n".join(lines) + "\n")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert all(same for *_, same, _s in rows), \
        "parallel search must return identical plans"
    if (os.cpu_count() or 1) >= workers:
        linreg_speedup = rows[-1][3]
        assert linreg_speedup >= 1.5, (
            f"expected >=1.5x speedup with {workers} workers on linear "
            f"regression, got {linreg_speedup:.2f}x")
