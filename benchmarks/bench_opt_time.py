"""Reproduction of Section 6's "A Note on Optimization Time".

The paper reports 0.6 s (add+multiply), 2.1 s (two matmuls) and 156.7 s
(linear regression) with a single-threaded Python optimizer on top of the C
isl library; ours is pure Python all the way down, so absolute numbers are
larger — the claims checked here are the paper's structural ones:

* optimization cost grows with program complexity (statements,
  opportunities), not with data size;
* the Apriori search prunes most of the subset lattice for the matrix
  workloads (the paper reports 94% for linear regression, whose lattice in
  our extraction is almost fully feasible and therefore budget-bounded —
  see EXPERIMENTS.md).
"""

import os
import time

from conftest import banner, save_artifact


def test_optimization_times(fig3_result, fig4_result, fig6_result, benchmark):
    rows = [
        ("add+multiply (6.1)", "0.6 s", fig3_result[1]),
        ("two matmuls A (6.2)", "2.1 s", fig4_result[1]),
        ("linear regression (6.3)", "156.7 s", fig6_result[1]),
    ]
    banner("Optimization time (paper vs this reproduction)")
    print(f"{'workload':>24} {'paper':>9} {'ours':>9} {'tested':>7} "
          f"{'feasible':>9} {'pruned':>7}")
    for name, paper, result in rows:
        s = result.stats
        print(f"{name:>24} {paper:>9} {result.seconds:>8.1f}s "
              f"{s.candidates_tested:>7} {s.feasible:>9} {s.pruned_fraction:>7.1%}")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # Complexity ordering holds: the 7-statement program costs the most.
    assert fig6_result[1].stats.candidates_tested >= \
        fig3_result[1].stats.candidates_tested
    # Matrix workloads prune a large fraction of the lattice outright.
    assert fig4_result[1].stats.pruned_fraction > 0.5


def _plan_multiset(result):
    return sorted((tuple(sorted(p.realized_labels)), p.cost.io_seconds,
                   p.cost.memory_bytes) for p in result.plans)


def test_parallel_optimization_speedup(fig3_result, fig4_result, fig6_result,
                                       benchmark):
    """1-worker vs N-worker optimization of the fig3/fig4/fig6 programs.

    Checks the determinism guarantee (identical plan multiset and best plan)
    on every program and records the wall-clock speedup; the sequential
    session fixtures serve as the 1-worker baseline.  The speedup assertion
    only fires on machines with enough cores to express it.
    """
    from repro import optimize

    workers = 4
    extra = {"linear regression (6.3)": {"max_candidates": 400}}
    rows = []
    for name, (cfg, base) in (
            ("add+multiply (6.1)", fig3_result),
            ("two matmuls A (6.2)", fig4_result),
            ("linear regression (6.3)", fig6_result)):
        t0 = time.perf_counter()
        par = optimize(cfg.program, cfg.params, workers=workers,
                       block_bytes=cfg.paper_block_bytes,
                       **extra.get(name, {}))
        par_seconds = time.perf_counter() - t0
        same_plans = _plan_multiset(base) == _plan_multiset(par)
        same_best = (base.best().realized_labels ==
                     par.best().realized_labels)
        rows.append((name, base.seconds, par_seconds,
                     base.seconds / par_seconds, same_plans and same_best,
                     par.stats))
    banner(f"Optimization time: 1 worker vs {workers} workers "
           f"({os.cpu_count()} cores)")
    print(f"{'workload':>24} {'1w':>9} {f'{workers}w':>9} {'speedup':>8} "
          f"{'identical':>10} {'tasks':>6}")
    lines = ["workload,seq_seconds,par_seconds,speedup,identical_plans"]
    for name, seq_s, par_s, speedup, same, stats in rows:
        print(f"{name:>24} {seq_s:>8.1f}s {par_s:>8.1f}s {speedup:>7.2f}x "
              f"{str(same):>10} {stats.tasks_dispatched:>6}")
        lines.append(f"{name},{seq_s:.3f},{par_s:.3f},{speedup:.3f},{same}")
    save_artifact("opt_time_parallel.csv", "\n".join(lines) + "\n")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    assert all(same for *_, same, _s in rows), \
        "parallel search must return identical plans"
    if (os.cpu_count() or 1) >= workers:
        linreg_speedup = rows[-1][3]
        assert linreg_speedup >= 1.5, (
            f"expected >=1.5x speedup with {workers} workers on linear "
            f"regression, got {linreg_speedup:.2f}x")
