"""Reproduction of Section 6.1: matrix addition + multiplication.

Regenerates, at the paper's exact Table-2 geometry:

* Table 2   — array geometries (sizes printed in GiB as the paper reports);
* Figure 3(a) — the plan space (memory footprint vs predicted I/O time),
  including the clubsuit big-block variant of Plan 0;
* Figure 3(b) — predicted vs actual I/O per plan (actual measured by
  executing every plan at run scale and extrapolating bytes linearly);
* the Matlab / SciDB / manual-best comparison of the section's text.
"""

import numpy as np
import pytest

from conftest import banner, save_artifact
from repro.report import plan_space_csv, predicted_vs_actual_csv
from repro import run_program
from repro.baselines import manual_best, matlab_like, scidb_like
from repro.engine import reference_outputs
from repro.optimizer import evaluate_plan
from repro.workloads import add_multiply_config, generate_inputs

PAPER_BEST_SET = {"s1WC->s2RC", "s2WE->s2RE", "s2WE->s2WE"}
PAPER_ORIGINAL_IO_S = 2394.0
PAPER_BEST_IO_S = 836.0


def test_table2_sizes(fig3_result, benchmark):
    cfg, _ = fig3_result
    banner("Table 2: matrix addition and multiplication — matrix sizes")
    rows = [("A, B, C", "A"), ("D", "D"), ("E", "E")]
    print(f"{'Matrix':>8} {'#Blocks':>9} {'Total size':>12}")
    for label, name in rows:
        arr = cfg.program.arrays[name]
        nb = arr.num_blocks(cfg.params)
        print(f"{label:>8} {f'{nb[0]}x{nb[1]}':>9} {cfg.paper_total_gib(name):>9.1f}GiB")
    benchmark.pedantic(lambda: cfg.paper_total_gib("A"), rounds=1, iterations=1)
    # Paper: 25.6GB / 1.8GB / 2.7GB.
    assert cfg.paper_total_gib("A") == pytest.approx(25.7, abs=0.2)
    assert cfg.paper_total_gib("D") == pytest.approx(1.8, abs=0.1)
    assert cfg.paper_total_gib("E") == pytest.approx(2.7, abs=0.1)


def test_fig3a_plan_space(fig3_result, benchmark):
    cfg, result = fig3_result
    banner("Figure 3(a): plan space (predicted)")
    print(f"{'plan':>4} {'mem(MB)':>9} {'I/O time(s)':>12}  realized")
    for plan in sorted(result.plans, key=lambda p: p.cost.io_seconds):
        print(f"{plan.index:>4} {plan.cost.memory_bytes / 2**20:>9.1f} "
              f"{plan.cost.io_seconds:>12.1f}  {', '.join(plan.realized_labels) or '-'}")
    benchmark.pedantic(lambda: result.best(), rounds=1, iterations=1)
    save_artifact("fig3a_plan_space.csv", plan_space_csv(result))

    # Paper: 8 legal plans (ours finds the same lattice + 2 extra feasible
    # combinations); exactly 3 distinct memory footprints; best plan realizes
    # the paper's Plan-7 set; ~2.9x I/O improvement.
    assert len(result.plans) >= 8
    assert len({p.cost.memory_bytes for p in result.plans}) == 3
    best = result.best()
    assert set(best.realized_labels) == PAPER_BEST_SET
    ratio = result.original_plan.cost.io_seconds / best.cost.io_seconds
    paper_ratio = PAPER_ORIGINAL_IO_S / PAPER_BEST_IO_S
    print(f"\nI/O improvement: {ratio:.2f}x (paper: {paper_ratio:.2f}x)")
    assert ratio == pytest.approx(paper_ratio, rel=0.15)
    # Absolute predicted seconds are produced by the same linear model with
    # the paper's bandwidths; they should land near the paper's numbers.
    assert result.original_plan.cost.io_seconds == pytest.approx(
        PAPER_ORIGINAL_IO_S, rel=0.08)
    assert best.cost.io_seconds == pytest.approx(PAPER_BEST_IO_S, rel=0.08)


def test_fig3a_clubsuit_bigger_blocks(fig3_result, benchmark):
    """The clubsuit point: Plan 0 with 9000-row blocks for A, B, C, E."""
    cfg, result = fig3_result
    grow = 9000 / 6000
    big = {n: (int(b * grow) if n in ("A", "B", "C", "E") else b)
           for n, b in cfg.paper_block_bytes.items()}
    club = evaluate_plan(cfg.program, cfg.params, result.original_plan.schedule,
                         [], io_model=result.io_model, block_bytes=big)
    best = result.best()
    banner("Figure 3(a) clubsuit: bigger blocks for Plan 0")
    print(f"clubsuit: mem={club.memory_bytes / 2**20:.0f}MB io={club.io_seconds:.0f}s")
    print(f"best:     mem={best.cost.memory_bytes / 2**20:.0f}MB io={best.cost.io_seconds:.0f}s")
    benchmark.pedantic(lambda: club.io_seconds, rounds=1, iterations=1)
    # More memory than the best plan, and still far more I/O.
    assert club.memory_bytes > best.cost.memory_bytes
    assert club.io_seconds > 1.5 * best.cost.io_seconds


def test_fig3b_predicted_vs_actual(fig3_result, benchmark, tmp_path_factory):
    cfg, result = fig3_result
    banner("Figure 3(b): predicted vs actual I/O (run scale, byte-exact)")
    inputs = generate_inputs(cfg)
    truth = reference_outputs(cfg.program, cfg.params, inputs)["E"]
    run_bytes = cfg.run_block_bytes()

    def run_all():
        rows = []
        for plan in sorted(result.plans, key=lambda p: p.index):
            pred = evaluate_plan(cfg.program, cfg.params, plan.schedule,
                                 plan.realized, io_model=result.io_model,
                                 block_bytes=run_bytes)
            td = tmp_path_factory.mktemp(f"fig3b_{plan.index}")
            report, outputs = run_program(cfg.program, cfg.params, plan, td,
                                          inputs, io_model=result.io_model)
            rows.append((plan, pred, report, outputs))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    save_artifact("fig3b_predicted_vs_actual.csv", predicted_vs_actual_csv(
        [(f"plan {p.index}", pred.io_seconds, rep.simulated_io_seconds,
          rep.cpu_seconds, rep.io.retries, rep.io.checksum_failures)
         for p, pred, rep, _ in rows]))
    print(f"{'plan':>4} {'pred I/O(s)':>12} {'actual I/O(s)':>13} "
          f"{'CPU(s)':>8} {'err':>6}")
    for plan, pred, report, outputs in rows:
        err = abs(report.simulated_io_seconds - pred.io_seconds) / pred.io_seconds
        print(f"{plan.index:>4} {pred.io_seconds:>12.3f} "
              f"{report.simulated_io_seconds:>13.3f} {report.cpu_seconds:>8.3f} "
              f"{err:>6.1%}")
        assert np.allclose(outputs["E"], truth)
        # Byte-exact agreement (the paper measured 1.7% mean error on a
        # physical drive; our substrate removes the residual noise).
        assert report.io.read_bytes == pred.read_bytes
        assert report.io.write_bytes == pred.write_bytes


def test_comparison_baselines(fig3_result, benchmark, tmp_path_factory):
    cfg, result = fig3_result
    banner("Section 6.1 comparison: Matlab-like / SciDB-like / manual-best")
    inputs = generate_inputs(cfg)

    def run():
        mk = tmp_path_factory.mktemp
        m = matlab_like(cfg.program, cfg.params, result, mk("matlab"), inputs)
        s = scidb_like(cfg.program, cfg.params, result, mk("scidb"), inputs)
        h = manual_best(cfg.program, cfg.params, result, mk("manual"), inputs)
        td = mk("ours")
        ours, _ = run_program(cfg.program, cfg.params, result.best(), td,
                              inputs, io_model=result.io_model)
        return m, s, h, ours

    m, s, h, ours = benchmark.pedantic(run, rounds=1, iterations=1)
    ours_total = ours.simulated_total_seconds
    print(f"ours (best plan): {ours_total:10.3f} s")
    for rep in (h, m, s):
        print(f"{rep.name:>16}: {rep.total_seconds:10.3f} s "
              f"({rep.total_seconds / ours_total:5.2f}x)")
    # Paper ordering: manual-best ~ ours < blocked Matlab << SciDB.
    assert h.total_seconds <= ours_total * 1.02
    assert m.total_seconds > ours_total
    assert s.total_seconds > m.total_seconds
