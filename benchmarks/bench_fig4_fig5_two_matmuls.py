"""Reproduction of Section 6.2: two matrix multiplications (C=AB, E=AD).

Regenerates Table 3 and Figures 4/5: the plan spaces of both size
configurations, the paper's four selected plans, and the headline
observation that the optimal plan flips between configurations (Plan 2 —
merged nests sharing the read of A — wins under Config A; Plan 3 — sharing
B and D instead — wins under Config B).
"""

import numpy as np
import pytest

from conftest import banner, save_artifact
from repro.report import plan_space_csv
from repro import run_program
from repro.engine import reference_outputs
from repro.optimizer import evaluate_plan
from repro.workloads import generate_inputs, two_matmul_config

# The paper's selected plans (Section 6.2).
PLAN1 = {"s1WC->s1RC", "s1WC->s1WC", "s2WE->s2RE", "s2WE->s2WE"}
PLAN2 = PLAN1 | {"s1RA->s2RA"}
PLAN3 = {"s1RA->s2RA", "s1RB->s1RB", "s2RD->s2RD"}


def _print_space(result, title):
    banner(title)
    print(f"{'plan':>4} {'mem(MB)':>9} {'I/O time(s)':>12}  realized")
    for plan in sorted(result.plans, key=lambda p: p.cost.io_seconds)[:12]:
        print(f"{plan.index:>4} {plan.cost.memory_bytes / 2**20:>9.1f} "
              f"{plan.cost.io_seconds:>12.1f}  "
              f"{', '.join(plan.realized_labels) or '-'}")
    print(f"   ... {len(result.plans)} plans total; search: {result.stats}")


def test_table3_sizes(fig4_result, fig5_result, benchmark):
    cfg_a, _ = fig4_result
    cfg_b, _ = fig5_result
    banner("Table 3: two matrix multiplications — matrix sizes")
    for cfg in (cfg_a, cfg_b):
        print(f"Config {cfg.name[-1]}:")
        for name in sorted(cfg.program.arrays):
            arr = cfg.program.arrays[name]
            nb = arr.num_blocks(cfg.params)
            print(f"  {name}: {nb[0]}x{nb[1]} blocks, "
                  f"{cfg.paper_total_gib(name):.1f}GiB")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper totals: A 15.2 / B,D 9.2 / C,E 10.8 (config A);
    #               A 12.8 / B 8.4 / C 6.4 / D 10.0 / E 7.6 (config B).
    assert cfg_a.paper_total_gib("A") == pytest.approx(15.0, abs=0.3)
    assert cfg_a.paper_total_gib("B") == pytest.approx(9.4, abs=0.3)
    assert cfg_b.paper_total_gib("A") == pytest.approx(12.9, abs=0.3)
    assert cfg_b.paper_total_gib("D") == pytest.approx(10.0, abs=0.3)


def test_fig4_config_a(fig4_result, benchmark):
    cfg, result = fig4_result
    _print_space(result, "Figure 4(a): Config A plan space (predicted)")
    save_artifact("fig4a_plan_space.csv", plan_space_csv(result))
    benchmark.pedantic(lambda: result.best(), rounds=1, iterations=1)
    # Paper: 9 sharing opportunities; dozens of plans.
    assert len(result.analysis.opportunities) == 9
    assert len(result.plans) >= 30
    best = result.best()
    # Plan 2 (merged nests + shared A read) is optimal under Config A.
    assert set(best.realized_labels) == PLAN2
    # And it beats Plan 3 here.
    p2 = result.plan_for(sorted(PLAN2))
    p3 = result.plan_for(sorted(PLAN3))
    print(f"\nPlan2 io={p2.cost.io_seconds:.0f}s vs Plan3 io={p3.cost.io_seconds:.0f}s")
    assert p2.cost.io_seconds < p3.cost.io_seconds


def test_fig5_config_b_crossover(fig4_result, fig5_result, benchmark):
    cfg_b, result_b = fig5_result
    _print_space(result_b, "Figure 5(a): Config B plan space (predicted)")
    save_artifact("fig5a_plan_space.csv", plan_space_csv(result_b))
    benchmark.pedantic(lambda: result_b.best(), rounds=1, iterations=1)
    p2 = result_b.plan_for(sorted(PLAN2))
    p3 = result_b.plan_for(sorted(PLAN3))
    print(f"\nPlan2 io={p2.cost.io_seconds:.0f}s vs Plan3 io={p3.cost.io_seconds:.0f}s")
    # The paper's headline: the ranking flips — Plan 3 beats Plan 2 under B.
    assert p3.cost.io_seconds < p2.cost.io_seconds
    # And Plan 3 is (one of) the best plans overall under Config B.
    best = result_b.best()
    assert best.cost.io_seconds <= p3.cost.io_seconds
    assert best.cost.io_seconds < p2.cost.io_seconds


@pytest.mark.parametrize("which", ["A", "B"])
def test_fig45b_predicted_vs_actual(which, fig4_result, fig5_result, benchmark,
                                    tmp_path_factory):
    cfg, result = fig4_result if which == "A" else fig5_result
    banner(f"Figure {'4' if which == 'A' else '5'}(b): predicted vs actual "
           f"(selected plans, run scale)")
    inputs = generate_inputs(cfg)
    refs = reference_outputs(cfg.program, cfg.params, inputs)
    run_bytes = cfg.run_block_bytes()
    selected = [result.original_plan,
                result.plan_for(sorted(PLAN1)),
                result.plan_for(sorted(PLAN2)),
                result.plan_for(sorted(PLAN3))]

    def run_all():
        rows = []
        for tag, plan in enumerate(selected):
            pred = evaluate_plan(cfg.program, cfg.params, plan.schedule,
                                 plan.realized, io_model=result.io_model,
                                 block_bytes=run_bytes)
            td = tmp_path_factory.mktemp(f"fig45_{which}_{tag}")
            report, outputs = run_program(cfg.program, cfg.params, plan, td,
                                          inputs, io_model=result.io_model)
            rows.append((tag, pred, report, outputs))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"{'plan':>4} {'pred I/O(s)':>12} {'actual I/O(s)':>13} {'CPU(s)':>8}")
    for tag, pred, report, outputs in rows:
        print(f"{tag:>4} {pred.io_seconds:>12.3f} "
              f"{report.simulated_io_seconds:>13.3f} {report.cpu_seconds:>8.3f}")
        assert report.io.read_bytes == pred.read_bytes
        assert report.io.write_bytes == pred.write_bytes
        assert np.allclose(outputs["C"], refs["C"])
        assert np.allclose(outputs["E"], refs["E"])
