"""Advisor benchmark: a mixed 50-job workload through the full closed loop.

Three tenant groups, chosen to exercise every concrete analyzer:

* 30 ``add_multiply`` jobs sharing A and B (one seed) with per-job D —
  block-geometry rescaling applies, and the shared intermediate C is
  materializable across all 30 jobs;
* 12 ``linreg`` jobs sharing the design matrix X with per-job responses Y —
  the Gram matrix U = X'X (and its inverse W) depend on X alone, so one
  producer can feed all 12;
* 8 small ``two_matmul`` jobs over distinct inputs — the no-sharing
  control: nothing to materialize, geometry may still apply.

The bench measures the baseline, runs the analyzer battery, verifies every
recommendation by re-running (predictions within tolerance or flagged),
and asserts the applied set cuts measured I/O by >= 15% — the subsystem's
acceptance bar.  Writes ``BENCH_advisor.json`` with one record per
recommendation class plus the workload mix and the combined reduction.
"""

import json
import time

from conftest import banner, save_artifact
from repro.advisor import (AdvisorConfig, AdvisorContext, JobSpec,
                           WorkloadSpec, measured_io_bytes, run_analyzers,
                           run_workload, validate_recommendations)

CAP = 8 << 20
TOLERANCE = 0.02


def mixed_spec() -> WorkloadSpec:
    jobs = [JobSpec("add_multiply", {"n1": 4, "n2": 4, "n3": 1}, seed=0,
                    seeds={"D": 200 + i}, plan_exact=True,
                    name=f"am{i:02}") for i in range(30)]
    jobs += [JobSpec("linreg", {"n": 6},
                     args={"x_block": [120, 20], "y_cols": 4}, seed=1,
                     seeds={"Y": 300 + i}, plan_exact=True,
                     name=f"lr{i:02}") for i in range(12)]
    jobs += [JobSpec("two_matmul", {"n1": 2, "n2": 2, "n3": 2, "n4": 1},
                     args={"a_shape": [60, 40], "b_shape": [40, 50],
                           "d_shape": [40, 30]}, seed=400 + i,
                     plan_exact=True, name=f"tm{i}") for i in range(8)]
    return WorkloadSpec(jobs)


def test_advisor_closed_loop(tmp_path_factory):
    wd = tmp_path_factory.mktemp("advisor_bench")
    spec = mixed_spec()
    config = AdvisorConfig.from_spec(
        spec, memory_cap_bytes=CAP, workers=2, max_candidates=400,
        plan_cache=str(wd / "plancache"))
    assert len(config.jobs) == 50

    banner("Advisor closed loop: 50-job mixed workload "
           "(30 add_multiply / 12 linreg / 8 two_matmul)")

    t0 = time.perf_counter()
    baseline = run_workload(config, wd / "baseline")
    baseline_wall = time.perf_counter() - t0
    before = measured_io_bytes(baseline)
    print(f"baseline: {before / 1e6:.2f} MB measured I/O "
          f"({baseline_wall:.1f}s wall)")

    t0 = time.perf_counter()
    recs = run_analyzers(AdvisorContext(config, profile=baseline))
    analyze_wall = time.perf_counter() - t0
    concrete = [r for r in recs if not r.advisory]
    print(f"analyzers: {len(recs)} recommendation(s), "
          f"{len(concrete)} concrete ({analyze_wall:.1f}s)")
    for r in recs:
        print(f"  [{r.kind}] {r.title}: predicted "
              f"{r.predicted_saved_bytes / 1e6:+.2f} MB")
    kinds = {r.kind for r in concrete}
    assert "block_geometry" in kinds
    assert "materialize" in kinds

    t0 = time.perf_counter()
    summary = validate_recommendations(config, concrete, wd / "validate",
                                       baseline=baseline,
                                       tolerance=TOLERANCE)
    validate_wall = time.perf_counter() - t0

    records = []
    for r, verdict in zip(concrete, summary["recommendations"]):
        print(f"  [{r.kind}] measured {r.measured_saved_bytes / 1e6:+.2f} MB "
              f"(error {r.validation_error:.2%} of workload"
              f"{', MISPREDICTED' if r.mispredicted else ''})")
        assert r.validated
        assert not r.mispredicted, (r.title, r.validation_error)
        records.append({
            "kind": r.kind, "title": r.title,
            "predicted_before_bytes": r.predicted_before_bytes,
            "predicted_after_bytes": r.predicted_after_bytes,
            "measured_before_bytes": r.measured_before_bytes,
            "measured_after_bytes": r.measured_after_bytes,
            "validation_error": r.validation_error,
        })

    reduction = summary["reduction"]
    print(f"applied set: {before / 1e6:.2f} -> "
          f"{summary['combined_bytes'] / 1e6:.2f} MB "
          f"({reduction:.1%} reduction, {validate_wall:.1f}s verification)")
    assert reduction >= 0.15, f"applied set saved only {reduction:.1%}"

    save_artifact("BENCH_advisor.json", json.dumps({
        "workload": {"jobs": 50, "add_multiply": 30, "linreg": 12,
                     "two_matmul": 8, "memory_cap_bytes": CAP},
        "baseline_bytes": before,
        "combined_bytes": summary["combined_bytes"],
        "reduction": reduction,
        "tolerance": TOLERANCE,
        "advisory_kinds": sorted(r.kind for r in recs if r.advisory),
        "recommendations": records,
        "wall_seconds": {"baseline": round(baseline_wall, 3),
                         "analyze": round(analyze_wall, 3),
                         "validate": round(validate_wall, 3)},
    }, indent=2) + "\n")
