#!/usr/bin/env python
"""Gate optimizer performance against the committed baseline.

Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_opt_time.py::test_opt_time_json -q
    python benchmarks/check_opt_time_regression.py \
        [--fresh benchmarks/results/BENCH_opt_time.json] \
        [--baseline benchmarks/results/BENCH_opt_time.baseline.json] \
        [--max-slowdown 1.25]

Two classes of check, per (workload, mode) record:

* **Determinism** — search counters and the chosen plan are exact-matched:
  ``candidates_tested``, ``feasible``, ``plans``, ``cost_skips``,
  ``best_labels``, ``best_io_seconds``.  Any drift means the search
  explored or chose differently, which is a correctness bug, not noise.

* **Time** — wall clocks are normalized by each run's recorded
  ``calibration_seconds`` (a fixed CPU workload timed on the same machine,
  in the same process) before comparing, so the gate tolerates slow CI
  hardware but catches real slowdowns:

      fresh.optimizer_seconds / fresh.calibration_seconds
          <= max_slowdown * baseline.optimizer_seconds / baseline.calibration_seconds

Exit status is 1 if any check fails.  To refresh the baseline after an
intentional change, re-run the bench on a quiet machine and copy
``BENCH_opt_time.json`` over ``BENCH_opt_time.baseline.json`` (see
docs/optimizer_performance.md).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
EXACT_KEYS = ("candidates_tested", "feasible", "plans", "cost_skips",
              "best_labels", "best_io_seconds")


def load(path: pathlib.Path) -> dict[tuple[str, str], dict]:
    records = json.loads(path.read_text())
    return {(r["workload"], r["mode"]): r for r in records}


def check(fresh: dict, baseline: dict, max_slowdown: float) -> list[str]:
    failures = []
    missing = set(baseline) - set(fresh)
    if missing:
        failures.append(f"fresh run is missing cases: {sorted(missing)}")
    for key in sorted(set(fresh) & set(baseline)):
        f, b = fresh[key], baseline[key]
        name = f"{key[0]} [{key[1]}]"
        for field in EXACT_KEYS:
            if f[field] != b[field]:
                failures.append(
                    f"{name}: {field} changed {b[field]!r} -> {f[field]!r}")
        f_ratio = f["optimizer_seconds"] / f["calibration_seconds"]
        b_ratio = b["optimizer_seconds"] / b["calibration_seconds"]
        if f_ratio > max_slowdown * b_ratio:
            failures.append(
                f"{name}: normalized time {f_ratio:.2f} exceeds "
                f"{max_slowdown:.2f}x baseline {b_ratio:.2f} "
                f"(raw {f['optimizer_seconds']:.2f}s vs "
                f"{b['optimizer_seconds']:.2f}s, calibration "
                f"{f['calibration_seconds']:.3f}s vs "
                f"{b['calibration_seconds']:.3f}s)")
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--fresh", type=pathlib.Path,
                    default=RESULTS / "BENCH_opt_time.json")
    ap.add_argument("--baseline", type=pathlib.Path,
                    default=RESULTS / "BENCH_opt_time.baseline.json")
    ap.add_argument("--max-slowdown", type=float, default=1.25,
                    help="allowed calibration-normalized slowdown (default 1.25)")
    args = ap.parse_args(argv)

    fresh = load(args.fresh)
    baseline = load(args.baseline)
    failures = check(fresh, baseline, args.max_slowdown)
    if failures:
        print(f"optimizer perf gate: {len(failures)} failure(s)")
        for line in failures:
            print(f"  FAIL {line}")
        return 1
    print(f"optimizer perf gate: {len(set(fresh) & set(baseline))} case(s) "
          f"within {args.max_slowdown:.2f}x of baseline, counters identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
