"""Reproduction of Section 6.3: linear regression (a complete program).

Regenerates Table 4 and Figure 6.  Paper headlines: 7 statements, 16
sharing opportunities (we extract 17 — see EXPERIMENTS.md), and a best plan
that uses only 6.0% more memory than the unoptimized plan while saving
43.8% of I/O time by sharing the reads of X across the two out-of-core
multiplications and eliminating the materialization of intermediates.
"""

import numpy as np
import pytest

from conftest import banner, save_artifact
from repro.report import plan_space_csv
from repro import run_program
from repro.optimizer import evaluate_plan
from repro.workloads import generate_inputs, linreg_config

PAPER_IO_SAVING = 0.438
PAPER_MEM_INCREASE = 0.060


def test_table4_sizes(fig6_result, benchmark):
    cfg, _ = fig6_result
    banner("Table 4: linear regression — matrix sizes")
    for name in ("X", "Y", "U", "V"):
        arr = cfg.program.arrays[name]
        nb = arr.num_blocks(cfg.params)
        total = cfg.paper_total_gib(name)
        unit = f"{total:.1f}GiB" if total >= 1 else f"{total * 1024:.1f}MiB"
        print(f"  {name}: {nb[0]}x{nb[1]} blocks, {unit}")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # Paper: X 44.7GB; Y 4.5GB; U 122.1MB; V 12.2MB.
    assert cfg.paper_total_gib("X") == pytest.approx(44.7, abs=0.5)
    assert cfg.paper_total_gib("Y") == pytest.approx(4.5, abs=0.1)
    assert cfg.paper_total_gib("U") * 1024 == pytest.approx(122.1, abs=2)
    assert cfg.paper_total_gib("V") * 1024 == pytest.approx(12.2, abs=0.5)


def test_fig6a_plan_space(fig6_result, benchmark):
    cfg, result = fig6_result
    banner("Figure 6(a): linear-regression plan space (predicted)")
    print(f"7 statements; {len(result.analysis.opportunities)} sharing "
          f"opportunities (paper: 16); search: {result.stats}")
    shown = sorted(result.plans, key=lambda p: p.cost.io_seconds)
    print(f"{'plan':>4} {'mem(MiB)':>9} {'I/O time(s)':>12} {'#opps':>6}")
    for plan in shown[:6] + shown[-3:]:
        print(f"{plan.index:>4} {plan.cost.memory_bytes / 2**20:>9.1f} "
              f"{plan.cost.io_seconds:>12.1f} {len(plan.realized):>6}")
    benchmark.pedantic(lambda: result.best(), rounds=1, iterations=1)
    save_artifact("fig6a_plan_space.csv", plan_space_csv(result))

    assert len(result.analysis.opportunities) in (16, 17)
    orig, best = result.original_plan, result.best()
    saving = 1 - best.cost.io_seconds / orig.cost.io_seconds
    mem = best.cost.memory_bytes / orig.cost.memory_bytes - 1
    print(f"\nbest plan: {saving:.1%} less I/O (paper {PAPER_IO_SAVING:.1%}) "
          f"for {mem:+.1%} memory (paper {PAPER_MEM_INCREASE:+.1%})")
    assert saving == pytest.approx(PAPER_IO_SAVING, abs=0.04)
    assert mem == pytest.approx(PAPER_MEM_INCREASE, abs=0.02)
    # The winning plan shares the reads of X across U = X'X and V = X'Y.
    assert "s1RX->s2RX" in best.realized_labels


def test_fig6b_predicted_vs_actual(fig6_result, benchmark, tmp_path_factory):
    cfg, result = fig6_result
    banner("Figure 6(b): predicted vs actual (Plans 0-2, run scale)")
    inputs = generate_inputs(cfg)
    run_bytes = cfg.run_block_bytes()
    # Plan 1 of the paper: keep U and V in memory during the multiplications.
    # Under a truncated enumeration the exact 4-set may be absent; use the
    # largest enumerated subset of it instead.
    mid_set = {"s1WU->s1WU", "s1WU->s1RU", "s2WV->s2WV", "s2WV->s2RV"}
    mid = None
    best_size = 1
    for plan in result.plans:
        labels = set(plan.realized_labels)
        if labels and labels <= mid_set and len(labels) >= best_size:
            mid = plan
            best_size = len(labels)
    selected = [("Plan 0", result.original_plan)]
    if mid is not None:
        selected.append(("Plan 1", mid))
    selected.append(("Plan 2 (best)", result.best()))

    def run_all():
        rows = []
        for tag, plan in selected:
            pred = evaluate_plan(cfg.program, cfg.params, plan.schedule,
                                 plan.realized, io_model=result.io_model,
                                 block_bytes=run_bytes)
            td = tmp_path_factory.mktemp(tag.replace(" ", "_").replace("(", "").replace(")", ""))
            report, outputs = run_program(cfg.program, cfg.params, plan, td,
                                          inputs, io_model=result.io_model)
            rows.append((tag, pred, report, outputs))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"{'':>14} {'pred I/O(s)':>12} {'actual I/O(s)':>13} {'CPU(s)':>8}")
    X, Y = inputs["X"], inputs["Y"]
    beta_np, *_ = np.linalg.lstsq(X, Y, rcond=None)
    rss_np = ((Y - X @ beta_np) ** 2).sum(axis=0, keepdims=True)
    for tag, pred, report, outputs in rows:
        print(f"{tag:>14} {pred.io_seconds:>12.4f} "
              f"{report.simulated_io_seconds:>13.4f} {report.cpu_seconds:>8.3f}")
        assert report.io.read_bytes == pred.read_bytes
        assert report.io.write_bytes == pred.write_bytes
        assert np.allclose(outputs["Bhat"], beta_np, atol=1e-8)
        assert np.allclose(outputs["R"], rss_np, rtol=1e-9)
