"""Reproduction of Section 6's "Datasets of Different Scales".

The paper ran every experiment at several data scales and found consistent
results, with optimization time unaffected by scale (the optimizer works on
polyhedra, not data).  Checked here on the add+multiply program at three
block-grid scales: the schedule search visits the same candidate lattice,
finds the same winning sharing-opportunity set, and the relative I/O saving
is scale-invariant.
"""

import json

import numpy as np
import pytest

from conftest import banner, save_artifact
from repro import optimize
from repro.engine import run_program
from repro.ops import add_multiply_program

SCALES = [
    {"n1": 6, "n2": 6, "n3": 1},
    {"n1": 12, "n2": 12, "n3": 1},
    {"n1": 18, "n2": 18, "n3": 1},
]


def test_scale_invariance(benchmark, tmp_path_factory):
    program = add_multiply_program()

    def run_all():
        return [optimize(program, params) for params in SCALES]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    banner("Datasets of different scales (add+multiply)")
    print(f"{'grid':>10} {'plans':>6} {'tested':>7} {'best set':>42} "
          f"{'saving':>7} {'opt(s)':>7}")
    savings = []
    records = []
    rng = np.random.default_rng(0)
    for params, result in zip(SCALES, results):
        best = result.best()
        saving = 1 - best.cost.io_seconds / result.original_plan.cost.io_seconds
        savings.append(saving)
        print(f"{params['n1']}x{params['n2']:>3} {len(result.plans):>6} "
              f"{result.stats.candidates_tested:>7} "
              f"{','.join(sorted(best.realized_labels)):>42} "
              f"{saving:>7.1%} {result.seconds:>7.1f}")
        # Execute the winner so the record carries actual (traced) I/O next
        # to the prediction — at every scale they must agree byte for byte.
        inputs = {n: rng.standard_normal(program.arrays[n].shape_elems(params))
                  for n in ("A", "B", "D")}
        workdir = tmp_path_factory.mktemp(
            f"scaling_{params['n1']}x{params['n2']}")
        report, _ = run_program(program, params, best, workdir, inputs,
                                io_model=result.io_model)
        records.append({
            "workload": program.name,
            "params": dict(params),
            "plans": len(result.plans),
            "candidates_tested": result.stats.candidates_tested,
            "optimizer_seconds": result.seconds,
            "best_realized": sorted(best.realized_labels),
            "io_saving_fraction": saving,
            "predicted_read_bytes": best.cost.read_bytes,
            "predicted_write_bytes": best.cost.write_bytes,
            "actual_read_bytes": report.io.read_bytes,
            "actual_write_bytes": report.io.write_bytes,
            "predicted_io_seconds": best.cost.io_seconds,
            "actual_io_seconds": report.simulated_io_seconds,
        })
        assert report.io.read_bytes == best.cost.read_bytes
        assert report.io.write_bytes == best.cost.write_bytes
    save_artifact("BENCH_scaling.json", json.dumps(records, indent=2) + "\n")

    # Same search space and same winner at every scale.
    first = results[0]
    for result in results[1:]:
        assert result.stats.candidates_tested == first.stats.candidates_tested
        assert len(result.plans) == len(first.plans)
        assert (sorted(result.best().realized_labels)
                == sorted(first.best().realized_labels))
    # Relative savings are nearly scale-free (block-count edge effects only).
    assert max(savings) - min(savings) < 0.06
