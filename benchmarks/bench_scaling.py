"""Reproduction of Section 6's "Datasets of Different Scales".

The paper ran every experiment at several data scales and found consistent
results, with optimization time unaffected by scale (the optimizer works on
polyhedra, not data).  Checked here on the add+multiply program at three
block-grid scales: the schedule search visits the same candidate lattice,
finds the same winning sharing-opportunity set, and the relative I/O saving
is scale-invariant.
"""

import pytest

from conftest import banner
from repro import optimize
from repro.ops import add_multiply_program

SCALES = [
    {"n1": 6, "n2": 6, "n3": 1},
    {"n1": 12, "n2": 12, "n3": 1},
    {"n1": 18, "n2": 18, "n3": 1},
]


def test_scale_invariance(benchmark):
    program = add_multiply_program()

    def run_all():
        return [optimize(program, params) for params in SCALES]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    banner("Datasets of different scales (add+multiply)")
    print(f"{'grid':>10} {'plans':>6} {'tested':>7} {'best set':>42} "
          f"{'saving':>7} {'opt(s)':>7}")
    savings = []
    for params, result in zip(SCALES, results):
        best = result.best()
        saving = 1 - best.cost.io_seconds / result.original_plan.cost.io_seconds
        savings.append(saving)
        print(f"{params['n1']}x{params['n2']:>3} {len(result.plans):>6} "
              f"{result.stats.candidates_tested:>7} "
              f"{','.join(sorted(best.realized_labels)):>42} "
              f"{saving:>7.1%} {result.seconds:>7.1f}")

    # Same search space and same winner at every scale.
    first = results[0]
    for result in results[1:]:
        assert result.stats.candidates_tested == first.stats.candidates_tested
        assert len(result.plans) == len(first.plans)
        assert (sorted(result.best().realized_labels)
                == sorted(first.best().realized_labels))
    # Relative savings are nearly scale-free (block-count edge effects only).
    assert max(savings) - min(savings) < 0.06
