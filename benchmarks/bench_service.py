"""Multi-query service benchmark: plan caching and inter-query I/O sharing.

Measures what :class:`repro.service.ArrayService` buys over running the same
jobs in isolation:

* **plan cache** — K identical jobs submitted serially: one Apriori search,
  K-1 cache hits, and the hit rate recorded;
* **I/O sharing** — K jobs over the *same* input matrices running
  concurrently: total disk reads vs K * (isolated reads), at worker counts
  1 and 4;
* **distinct jobs** — K jobs over distinct inputs as the no-sharing control:
  the shared pool must not conflate them, and total reads approach the
  isolated sum.

Writes ``BENCH_service.json`` with one record per (scenario, workers) cell.
"""

import json
import tempfile
import time

import numpy as np

from conftest import banner, save_artifact
from repro import add_multiply_program, optimize
from repro.engine import run_program
from repro.service import ArrayService

P = {"n1": 4, "n2": 4, "n3": 1}
CAP = 16 << 20
K = 4
WORKER_COUNTS = (1, 4)


def _inputs(program, seed):
    rng = np.random.default_rng(seed)
    return {n: rng.standard_normal(program.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


def _isolated_baseline(program, plan, seed):
    with tempfile.TemporaryDirectory() as d:
        report, outputs = run_program(program, P, plan, d,
                                      _inputs(program, seed),
                                      memory_cap_bytes=CAP,
                                      plan_exact=False)
    return report, outputs


def _run_batch(program, plan, seeds, workers, workdir, expected):
    """Submit one job per seed; return wall time + per-batch I/O totals."""
    t0 = time.perf_counter()
    with ArrayService(workdir, memory_cap_bytes=K * CAP,
                      workers=workers) as svc:
        futures = [svc.submit(program, P, _inputs(program, seed), plan=plan)
                   for seed in seeds]
        results = [f.result() for f in futures]
    wall = time.perf_counter() - t0
    for seed, r in zip(seeds, results):
        for name, ref in expected[seed].items():
            assert np.array_equal(r.outputs[name], ref), \
                f"seed {seed}: {name} diverged under workers={workers}"
    return {
        "wall_seconds": wall,
        "read_bytes": sum(r.report.io.read_bytes for r in results),
        "write_bytes": sum(r.report.io.write_bytes for r in results),
        "pool_hits": sum(r.report.pool_hits for r in results),
        "pool_misses": sum(r.report.pool_misses for r in results),
    }


def test_service_sharing_and_caching(tmp_path_factory):
    program = add_multiply_program()
    plan = optimize(program, P).best(CAP)

    distinct_seeds = list(range(K))
    identical_seeds = [0] * K
    baselines = {}
    expected = {}
    for seed in set(distinct_seeds):
        report, outputs = _isolated_baseline(program, plan, seed)
        baselines[seed] = report
        expected[seed] = outputs
    iso_read = baselines[0].io.read_bytes

    banner("Multi-query service: sharing and plan caching (add+multiply)")
    print(f"{'scenario':>10} {'workers':>8} {'wall(s)':>8} {'reads':>10} "
          f"{'vs isolated':>12} {'pool h/m':>12}")
    records = []
    for scenario, seeds in (("identical", identical_seeds),
                            ("distinct", distinct_seeds)):
        iso_sum = sum(baselines[s].io.read_bytes for s in seeds)
        for workers in WORKER_COUNTS:
            workdir = tmp_path_factory.mktemp(f"svc_{scenario}_{workers}w")
            cell = _run_batch(program, plan, seeds, workers, workdir,
                              expected)
            ratio = cell["read_bytes"] / iso_sum
            print(f"{scenario:>10} {workers:>8} {cell['wall_seconds']:>8.2f} "
                  f"{cell['read_bytes']:>10} {ratio:>11.1%} "
                  f"{cell['pool_hits']:>5}/{cell['pool_misses']}")
            records.append({
                "scenario": scenario, "workers": workers, "jobs": K,
                "isolated_read_bytes_sum": iso_sum, **cell,
                "read_ratio_vs_isolated": ratio,
            })
            if scenario == "identical":
                # K jobs over one shared dataset must beat K isolated runs.
                assert cell["read_bytes"] < iso_sum

    # Plan cache: K identical jobs serially — one search, K-1 hits.
    cache_dir = tmp_path_factory.mktemp("svc_plan_cache")
    t0 = time.perf_counter()
    with ArrayService(tmp_path_factory.mktemp("svc_cached"),
                      memory_cap_bytes=K * CAP, workers=1,
                      plan_cache=cache_dir) as svc:
        hits = sum(svc.run(program, P, _inputs(program, 0)).cache_hit
                   for _ in range(K))
    cache_wall = time.perf_counter() - t0
    hit_rate = hits / K
    print(f"plan cache: {hits}/{K} hits ({hit_rate:.0%}), "
          f"{cache_wall:.2f}s for {K} planned jobs")
    assert hits == K - 1
    records.append({
        "scenario": "plan_cache", "jobs": K, "cache_hits": hits,
        "cache_hit_rate": hit_rate, "wall_seconds": cache_wall,
        "isolated_read_bytes": iso_read,
    })
    save_artifact("BENCH_service.json", json.dumps(records, indent=2) + "\n")
