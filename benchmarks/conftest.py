"""Shared fixtures and reporting helpers for the paper-reproduction benches.

Heavy artifacts (optimization results) are session-scoped so the figure and
table benches share them; every bench prints a paper-vs-measured block that
``pytest benchmarks/ --benchmark-only -s`` shows and EXPERIMENTS.md records.
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, ".")  # repo root, for tests.fixtures reuse if needed

RESULTS_DIR = Path(__file__).parent / "results"


def banner(title: str) -> None:
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)


def save_artifact(name: str, text: str) -> None:
    """Write a figure's underlying data series under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text)
    print(f"[data series written to benchmarks/results/{name}]")


@pytest.fixture(scope="session")
def fig3_result():
    from repro import optimize
    from repro.workloads import add_multiply_config
    cfg = add_multiply_config()
    result = optimize(cfg.program, cfg.params, block_bytes=cfg.paper_block_bytes)
    return cfg, result


@pytest.fixture(scope="session")
def fig4_result():
    from repro import optimize
    from repro.workloads import two_matmul_config
    cfg = two_matmul_config("A")
    result = optimize(cfg.program, cfg.params, block_bytes=cfg.paper_block_bytes)
    return cfg, result


@pytest.fixture(scope="session")
def fig5_result():
    from repro import optimize
    from repro.workloads import two_matmul_config
    cfg = two_matmul_config("B")
    result = optimize(cfg.program, cfg.params, block_bytes=cfg.paper_block_bytes)
    return cfg, result


@pytest.fixture(scope="session")
def fig6_result():
    from repro import optimize
    from repro.workloads import linreg_config
    cfg = linreg_config()
    # The linear-regression lattice is almost fully mutually compatible, so
    # exhaustive Apriori is exponential; bound the enumeration and let the
    # greedy-maximal completion capture the paper's best plan (see
    # EXPERIMENTS.md notes on E9/E10).
    result = optimize(cfg.program, cfg.params, max_candidates=400,
                      block_bytes=cfg.paper_block_bytes)
    return cfg, result
