"""Scale-out SLO benchmark: 1000 mixed jobs x shards x worker backend.

The capstone for the sharded-disk + process-worker subsystem (ROADMAP
item 3).  A closed batch of ``REPRO_SCALEOUT_JOBS`` jobs (default 1000;
CI runs 200) mixing three job classes — 75 % small, 22.5 % medium,
2.5 % large ``add_multiply`` instances — is pushed through every cell of
shards x {1, 2, 4} x backend x {threads, procs} on a *paced* disk
(``io_pace=5`` with one device channel per shard, so shard count is
real parallel hardware, not bookkeeping):

* **throughput** — aggregate attributed read bytes / makespan, with the
  acceptance bar that shards=4 sustains >= 2x the single-disk rate;
* **latency SLO** — p50/p90/p99 submit-to-result seconds extracted from
  the service's ``job_seconds`` histogram (queue wait included: this is
  a saturated closed batch, so the tail is the backlog);
* **parity** — per-job attributed I/O totals must be identical in every
  cell (plan-exact replay is backend- and shard-independent), and a
  sample of outputs is checked against the dense reference;
* **overload** — a burst into a constrained service with degradation
  enabled, recording shed/completed splits and that the ladder engages
  instead of queueing without bound;
* **plan cache** — the same batch planned cold vs warm, recording the
  hit rate and planning-time delta.

Writes ``BENCH_scaleout.json``.
"""

import json
import os
import time

import numpy as np

from conftest import banner, save_artifact
from repro import add_multiply_program, optimize, reference_outputs
from repro.exceptions import ServiceOverloaded
from repro.obs import metrics as obs_metrics
from repro.service import ArrayService, DegradePolicy

P = {"n1": 2, "n2": 2, "n3": 1}
CAP = 128 << 20
WORKERS = 12
IO_PACE = 5.0           # sleep 5x the modeled transfer time...
PACE_CHANNELS = 1       # ...serialized per shard: one channel per device
N_JOBS = int(os.environ.get("REPRO_SCALEOUT_JOBS", "1000"))
SHARD_COUNTS = (1, 2, 4)
BACKENDS = ("threads", "procs")
VERIFY_EVERY = 50       # dense-reference check on every 50th job
DISTINCT_SEEDS = 16     # input variants per class (cycled across jobs)

CLASSES = {
    "small": (120, 80, 100),
    "medium": (300, 200, 250),
    "large": (600, 400, 500),
}
MIX = (("small", 0.75), ("medium", 0.225), ("large", 0.025))


def _job_list(n):
    jobs = []
    for name, frac in MIX[:-1]:
        jobs += [name] * int(n * frac)
    jobs += [MIX[-1][0]] * (n - len(jobs))
    rng = np.random.default_rng(0)
    rng.shuffle(jobs)
    return [(kind, i % DISTINCT_SEEDS) for i, kind in enumerate(jobs)]


def _make_inputs(program, seed):
    rng = np.random.default_rng(seed)
    return {n: rng.standard_normal(program.arrays[n].shape_elems(P))
            for n in ("A", "B", "D")}


class _Workload:
    """Programs, plans and memoized inputs shared by every cell."""

    def __init__(self, n_jobs):
        self.programs = {k: add_multiply_program(*dims)
                         for k, dims in CLASSES.items()}
        self.plans = {k: optimize(p, P).best(CAP)
                      for k, p in self.programs.items()}
        self.jobs = _job_list(n_jobs)
        self._inputs = {}
        self._refs = {}

    def inputs(self, kind, seed):
        key = (kind, seed)
        if key not in self._inputs:
            self._inputs[key] = _make_inputs(self.programs[kind], seed)
        return self._inputs[key]

    def reference(self, kind, seed):
        key = (kind, seed)
        if key not in self._refs:
            self._refs[key] = reference_outputs(
                self.programs[kind], P, self.inputs(kind, seed))
        return self._refs[key]


def _run_cell(wl, backend, shards, workdir, verify=True):
    registry = obs_metrics.MetricsRegistry()
    obs_metrics.install(registry)
    try:
        t0 = time.perf_counter()
        with ArrayService(workdir, memory_cap_bytes=CAP, workers=WORKERS,
                          backend=backend, shards=shards,
                          io_pace=IO_PACE, pace_channels=PACE_CHANNELS) as svc:
            # plan_exact pins every job to its plan's predicted I/O, so
            # attributed bytes are deterministic across backends/shards
            # (opportunistic pool hits would vary with scheduling).
            futures = [
                svc.submit(wl.programs[kind], P, wl.inputs(kind, seed),
                           plan=wl.plans[kind], plan_exact=True)
                for kind, seed in wl.jobs]
            results = [f.result(timeout=3600) for f in futures]
            quantiles = svc.stats.job_seconds.quantiles((0.5, 0.9, 0.99))
            completed = svc.stats.jobs_completed
        makespan = time.perf_counter() - t0
    finally:
        obs_metrics.uninstall()

    if verify:
        for idx in range(0, len(results), VERIFY_EVERY):
            kind, seed = wl.jobs[idx]
            expected = wl.reference(kind, seed)
            out = results[idx].outputs
            assert out, f"job {idx} returned no outputs"
            for name in out:
                assert np.allclose(out[name], expected[name]), \
                    f"{backend}/shards={shards}: job {idx} output diverged"

    read_bytes = sum(r.report.io.read_bytes for r in results)
    write_bytes = sum(r.report.io.write_bytes for r in results)
    return {
        "backend": backend, "shards": shards, "jobs": len(results),
        "completed": completed, "makespan_seconds": makespan,
        "read_bytes": read_bytes, "write_bytes": write_bytes,
        "read_throughput_mb_s": read_bytes / makespan / 1e6,
        "jobs_per_second": len(results) / makespan,
        "latency_seconds": quantiles,
    }


def test_scaleout_matrix(tmp_path_factory):
    wl = _Workload(N_JOBS)
    banner(f"Scale-out SLO matrix: {N_JOBS} mixed jobs "
           f"(pace={IO_PACE}, {PACE_CHANNELS} channel/shard, "
           f"{WORKERS} workers)")
    print(f"{'backend':>8} {'shards':>6} {'makespan':>9} {'MB/s':>7} "
          f"{'jobs/s':>7} {'p50':>6} {'p90':>6} {'p99':>6}")

    cells = []
    for backend in BACKENDS:
        for shards in SHARD_COUNTS:
            workdir = tmp_path_factory.mktemp(f"so_{backend}_{shards}")
            cell = _run_cell(wl, backend, shards, workdir)
            lat = cell["latency_seconds"]
            print(f"{backend:>8} {shards:>6} "
                  f"{cell['makespan_seconds']:>8.1f}s "
                  f"{cell['read_throughput_mb_s']:>7.1f} "
                  f"{cell['jobs_per_second']:>7.1f} "
                  f"{lat['p50']:>6.2f} {lat['p90']:>6.2f} "
                  f"{lat['p99']:>6.2f}")
            cells.append(cell)

    # Plan-exact attribution is identical in every cell: same jobs, same
    # plans, so the same charged bytes regardless of backend or shards.
    for cell in cells[1:]:
        assert cell["read_bytes"] == cells[0]["read_bytes"], cell
        assert cell["write_bytes"] == cells[0]["write_bytes"], cell
        assert cell["completed"] == N_JOBS

    by = {(c["backend"], c["shards"]): c for c in cells}
    speedup = (by[("threads", 4)]["read_throughput_mb_s"]
               / by[("threads", 1)]["read_throughput_mb_s"])
    print(f"threads shards=4 vs 1: {speedup:.2f}x read throughput")
    assert speedup >= 2.0, \
        f"sharding speedup {speedup:.2f}x below the 2x acceptance bar"

    # --- overload: burst into a constrained, degradation-enabled service
    n_burst = max(48, N_JOBS // 10)
    policy = DegradePolicy(shed_backlog=16, planner_queue_depth=4)
    workdir = tmp_path_factory.mktemp("so_overload")
    shed = 0
    with ArrayService(workdir, memory_cap_bytes=CAP, workers=2, shards=2,
                      io_pace=IO_PACE, pace_channels=PACE_CHANNELS,
                      degrade=policy) as svc:
        futures = []
        for kind, seed in wl.jobs[:n_burst]:
            try:
                futures.append(svc.submit(wl.programs[kind], P,
                                          wl.inputs(kind, seed),
                                          plan=wl.plans[kind]))
            except ServiceOverloaded:
                shed += 1
        for f in futures:
            f.result(timeout=3600)
        overload = {
            "burst": n_burst, "shed": shed,
            "completed": svc.stats.jobs_completed,
            "shed_counter": svc.stats.jobs_shed,
        }
    print(f"overload: {overload['completed']}/{n_burst} completed, "
          f"{shed} shed at backlog 16")
    assert shed > 0, "burst never tripped the shed ladder"
    assert overload["completed"] == n_burst - shed
    assert overload["shed_counter"] == shed

    # --- plan cache: identical batch planned cold vs warm (no pacing —
    # this scenario isolates planning latency, not disk bandwidth)
    n_cache = min(N_JOBS, 64)
    cache_dir = tmp_path_factory.mktemp("so_cache")
    cache = {}
    for phase in ("cold", "warm"):
        t0 = time.perf_counter()
        with ArrayService(tmp_path_factory.mktemp(f"so_{phase}"),
                          memory_cap_bytes=CAP, workers=WORKERS,
                          plan_cache=cache_dir) as svc:
            futs = [svc.submit(wl.programs[kind], P, wl.inputs(kind, seed))
                    for kind, seed in wl.jobs[:n_cache]]
            hits = sum(f.result(timeout=3600).cache_hit for f in futs)
        cache[phase] = {"wall_seconds": time.perf_counter() - t0,
                        "cache_hits": hits, "jobs": n_cache}
        print(f"plan cache {phase}: {hits}/{n_cache} hits, "
              f"{cache[phase]['wall_seconds']:.2f}s")
    # Warm services hit on every job; cold only on repeats within a batch.
    assert cache["warm"]["cache_hits"] == n_cache
    assert cache["cold"]["cache_hits"] < n_cache

    save_artifact("BENCH_scaleout.json", json.dumps({
        "config": {
            "jobs": N_JOBS, "workers": WORKERS, "io_pace": IO_PACE,
            "pace_channels": PACE_CHANNELS,
            "mix": {k: f for k, f in MIX},
            "classes": CLASSES, "params": P,
        },
        "matrix": cells,
        "sharding_speedup_threads_4v1": speedup,
        "overload": overload,
        "plan_cache": cache,
    }, indent=2) + "\n")
