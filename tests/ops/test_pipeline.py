"""Unit tests for the operator library (Pipeline) and canned programs."""

import numpy as np
import pytest

from repro.engine import reference_outputs
from repro.exceptions import ProgramError
from repro.ir import ArrayKind
from repro.ops import (Pipeline, add_multiply_program, linreg_program,
                       two_matmul_program)


class TestPipelineStructure:
    def test_add_multiply_matches_example1(self):
        prog = add_multiply_program()
        assert [s.name for s in prog.statements] == ["s1", "s2"]
        assert prog.statement("s1").kernel == "add"
        assert prog.statement("s2").kernel == "gemm_nn"
        assert prog.statement("s2").depth == 3

    def test_intermediate_and_output_kinds(self):
        prog = add_multiply_program()
        assert prog.arrays["C"].kind is ArrayKind.INTERMEDIATE
        assert prog.arrays["E"].kind is ArrayKind.OUTPUT

    def test_linreg_is_seven_flat_loops(self):
        """The paper: 'a sequence of 7 loop nests' — trivial unit-extent
        dimensions must not become loops."""
        prog = linreg_program()
        depths = [s.depth for s in prog.statements]
        assert len(prog.statements) == 7
        assert depths == [1, 1, 0, 0, 1, 1, 1]

    def test_linreg_kernels(self):
        prog = linreg_program()
        kernels = [s.kernel for s in prog.statements]
        assert kernels == ["syrk_tn", "gemm_tn", "inverse", "gemm_nn",
                           "gemm_nn", "sub", "colsumsq_acc"]

    def test_syrk_single_read(self):
        """X'X with a 1x1 result grid reads X once per instance."""
        prog = linreg_program()
        s1 = prog.statement("s1")
        x_reads = [a for a in s1.reads if a.array.name == "X"]
        assert len(x_reads) == 1

    def test_accumulator_read_guarded(self):
        prog = linreg_program()
        s1 = prog.statement("s1")
        u_reads = [a for a in s1.reads if a.array.name == "U"]
        assert len(u_reads) == 1
        assert u_reads[0].guard  # k >= 1

    def test_two_matmul_share_a(self):
        prog = two_matmul_program((80, 70), (70, 30), (70, 30))
        a_readers = {a.statement.name for a in prog.all_accesses()
                     if a.array.name == "A" and not a.is_write}
        assert a_readers == {"s1", "s2"}


class TestPipelineErrors:
    def test_matmul_dim_mismatch(self):
        p = Pipeline("bad", params=("n",))
        a = p.input("A", blocks=("n", "n"), block_shape=(4, 4))
        b = p.input("B", blocks=("n", "n"), block_shape=(5, 5))
        with pytest.raises(ProgramError):
            p.matmul(a, b)

    def test_elementwise_geometry_mismatch(self):
        p = Pipeline("bad", params=("n",))
        a = p.input("A", blocks=("n", "n"), block_shape=(4, 4))
        b = p.input("B", blocks=("n", 1), block_shape=(4, 4))
        with pytest.raises(ProgramError):
            p.add(a, b)

    def test_double_transpose_rejected(self):
        p = Pipeline("bad", params=("n",))
        a = p.input("A", blocks=("n", "n"), block_shape=(4, 4))
        with pytest.raises(ProgramError):
            p.matmul(a, a, transpose_a=True, transpose_b=True)

    def test_inverse_needs_single_block(self):
        p = Pipeline("bad", params=("n",))
        a = p.input("A", blocks=("n", "n"), block_shape=(4, 4))
        with pytest.raises(ProgramError):
            p.inverse(a)

    def test_rss_needs_single_block_column(self):
        p = Pipeline("bad", params=("n",))
        a = p.input("A", blocks=("n", "n"), block_shape=(4, 4))
        with pytest.raises(ProgramError):
            p.rss(a)


class TestSemantics:
    """Reference-interpret each canned program and compare with numpy."""

    def test_add_multiply(self):
        prog = add_multiply_program(block_rows=6, block_cols=4, d_cols=5)
        params = {"n1": 2, "n2": 3, "n3": 2}
        rng = np.random.default_rng(0)
        inputs = {n: rng.standard_normal(prog.arrays[n].shape_elems(params))
                  for n in ("A", "B", "D")}
        out = reference_outputs(prog, params, inputs)
        assert np.allclose(out["E"], (inputs["A"] + inputs["B"]) @ inputs["D"])

    def test_two_matmul(self):
        prog = two_matmul_program((6, 5), (5, 4), (5, 3))
        params = {"n1": 2, "n2": 2, "n3": 2, "n4": 2}
        rng = np.random.default_rng(1)
        inputs = {n: rng.standard_normal(prog.arrays[n].shape_elems(params))
                  for n in ("A", "B", "D")}
        out = reference_outputs(prog, params, inputs)
        assert np.allclose(out["C"], inputs["A"] @ inputs["B"])
        assert np.allclose(out["E"], inputs["A"] @ inputs["D"])

    def test_linreg_against_lstsq(self):
        prog = linreg_program(x_block=(30, 5), y_cols=2)
        params = {"n": 4}
        rng = np.random.default_rng(2)
        X = rng.standard_normal(prog.arrays["X"].shape_elems(params))
        Y = rng.standard_normal(prog.arrays["Y"].shape_elems(params))
        out = reference_outputs(prog, params, {"X": X, "Y": Y})
        beta, *_ = np.linalg.lstsq(X, Y, rcond=None)
        assert np.allclose(out["Bhat"], beta, atol=1e-8)
        rss = ((Y - X @ beta) ** 2).sum(axis=0, keepdims=True)
        assert np.allclose(out["R"], rss)

    def test_transpose_flags(self):
        p = Pipeline("t", params=("n",))
        a = p.input("A", blocks=("n", "n"), block_shape=(3, 3))
        b = p.input("B", blocks=("n", "n"), block_shape=(3, 3))
        c = p.matmul(a, b, transpose_a=True, name="C")
        d = p.matmul(a, b, transpose_b=True, name="D")
        p.mark_output(c)
        p.mark_output(d)
        prog = p.build()
        params = {"n": 2}
        rng = np.random.default_rng(3)
        am = rng.standard_normal((6, 6))
        bm = rng.standard_normal((6, 6))
        out = reference_outputs(prog, params, {"A": am, "B": bm})
        assert np.allclose(out["C"], am.T @ bm)
        assert np.allclose(out["D"], am @ bm.T)
