"""Tests for the relational / Pig-style operators (Sections 4.1 and 7)."""

import numpy as np
import pytest

from repro import optimize, run_program
from repro.analysis import analyze
from repro.engine import reference_outputs, run_kernel
from repro.exceptions import ProgramError
from repro.ops import RelationalPipeline


def make_tables(rows_per_block=8, cols=3, blocks_r=3, blocks_s=2, seed=0):
    rng = np.random.default_rng(seed)
    r = np.floor(rng.uniform(0, 10, size=(rows_per_block * blocks_r, cols)))
    s = np.floor(rng.uniform(0, 10, size=(rows_per_block * blocks_s, cols)))
    # Avoid all-zero rows (the join's filtered-row sentinel).
    r[:, 0] += 1
    s[:, 0] += 1
    return r, s


class TestKernels:
    def test_filter_ge_zeroes_rows(self):
        blk = np.array([[5.0, 1.0], [2.0, 7.0], [9.0, 3.0]])
        out = run_kernel("filter_ge", [blk], (3, 2),
                         {"column": 0, "threshold": 4.0})
        assert np.array_equal(out[0], blk[0])
        assert np.array_equal(out[1], [0.0, 0.0])
        assert np.array_equal(out[2], blk[2])

    def test_foreach_affine(self):
        blk = np.ones((2, 2))
        out = run_kernel("foreach_affine", [blk], (2, 2),
                         {"scale": 3.0, "shift": 1.0})
        assert np.array_equal(out, np.full((2, 2), 4.0))

    def test_colsum_acc(self):
        blk = np.array([[1.0, 2.0], [3.0, 4.0]])
        out = run_kernel("colsum_acc", [blk], (1, 2), {})
        assert np.array_equal(out, [[4.0, 6.0]])

    def test_join_count(self):
        r = np.array([[1.0, 0.0], [2.0, 0.0], [2.0, 0.0]])
        s = np.array([[2.0, 9.0], [3.0, 9.0]])
        out = run_kernel("join_count", [r, s], (1, 1),
                         {"left_key": 0, "right_key": 0})
        assert out[0, 0] == 2.0

    def test_join_ignores_filtered_rows(self):
        r = np.array([[2.0, 1.0], [0.0, 0.0]])  # second row filtered out
        s = np.array([[2.0, 5.0]])
        out = run_kernel("join_count", [r, s], (1, 1), {})
        assert out[0, 0] == 1.0


class TestPipelineSemantics:
    def test_scan_filter_aggregate(self):
        p = RelationalPipeline("q1", params=("n",))
        t = p.table("T", "n", block_rows=8, columns=3)
        f = p.filter(t, column=0, threshold=5.0, name="F")
        agg = p.aggregate(f, name="S")
        p.mark_output(agg)
        prog = p.build()
        params = {"n": 3}
        r, _ = make_tables()
        out = reference_outputs(prog, params, {"T": r})
        expected = r[r[:, 0] >= 5.0].sum(axis=0, keepdims=True)
        assert np.allclose(out["S"], expected)

    def test_nested_loop_join_counts(self):
        p = RelationalPipeline("q2", params=("nr", "ns"))
        r = p.table("R", "nr", block_rows=8, columns=3)
        s = p.table("S", "ns", block_rows=8, columns=3)
        j = p.nested_loop_join(r, s, name="J")
        p.mark_output(j)
        prog = p.build()
        params = {"nr": 3, "ns": 2}
        rm, sm = make_tables()
        out = reference_outputs(prog, params, {"R": rm, "S": sm})
        total = out["J"].sum()
        expected = float(np.sum(rm[:, 0][:, None] == sm[:, 0][None, :]))
        assert total == expected

    def test_filter_column_out_of_range(self):
        p = RelationalPipeline("bad", params=("n",))
        t = p.table("T", "n", block_rows=4, columns=2)
        with pytest.raises(ProgramError):
            p.filter(t, column=5, threshold=0.0)


class TestSharedScanOptimization:
    """Two consumers of one table share its scan — the QPipe/cooperative-scan
    effect, obtained by plan transformation instead of runtime detection."""

    @pytest.fixture(scope="class")
    def setup(self):
        p = RelationalPipeline("q3", params=("n",))
        t = p.table("T", "n", block_rows=8, columns=3)
        s1 = p.aggregate(t, name="S1")
        s2 = p.filter(t, column=1, threshold=5.0, name="F")
        s3 = p.aggregate(s2, name="S2")
        p.mark_output(s1)
        p.mark_output(s3)
        prog = p.build()
        params = {"n": 4}
        result = optimize(prog, params)
        return prog, params, result

    def test_scan_sharing_found(self, setup):
        prog, params, result = setup
        labels = {o.label for o in result.analysis.opportunities}
        assert "s1RT->s2RT" in labels  # the shared scan of T

    def test_best_plan_shares_the_scan(self, setup):
        prog, params, result = setup
        best = result.best()
        assert "s1RT->s2RT" in best.realized_labels
        t_bytes = prog.arrays["T"].block_bytes * 4
        # T is read once, not twice.
        assert best.cost.saved_read_bytes >= t_bytes

    def test_best_plan_executes_correctly(self, setup, tmp_path):
        prog, params, result = setup
        rng = np.random.default_rng(3)
        table = np.floor(rng.uniform(0, 10, size=(32, 3)))
        report, out = run_program(prog, params, result.best(), tmp_path,
                                  {"T": table})
        assert np.allclose(out["S1"], table.sum(axis=0, keepdims=True))
        keep = table[:, 1] >= 5.0
        assert np.allclose(out["S2"], table[keep].sum(axis=0, keepdims=True))
        assert report.io.read_bytes == result.best().cost.read_bytes

    def test_nlj_inner_scan_sharing(self):
        """NLJ: the inner table's blocks are re-read per outer block; the
        optimizer finds the self R->R chain on S (and R pinning)."""
        p = RelationalPipeline("q4", params=("nr", "ns"))
        r = p.table("R", "nr", block_rows=8, columns=2)
        s = p.table("S", "ns", block_rows=8, columns=2)
        j = p.nested_loop_join(r, s, name="J")
        p.mark_output(j)
        prog = p.build()
        result = optimize(prog, {"nr": 3, "ns": 3})
        labels = {o.label for o in result.analysis.opportunities}
        assert "s1RS->s1RS" in labels
        assert "s1RR->s1RR" in labels
        best = result.best()
        assert best.cost.saved_read_bytes > 0
